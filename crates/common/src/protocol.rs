//! The shared protocol vocabulary and pure protocol rules.
//!
//! Both the concrete engine (`zerodev_core::system`) and the exhaustive
//! model checker (`zerodev_model`) speak this vocabulary: the request
//! [`Op`]s a private hierarchy can issue, the [`EvictKind`] notices it
//! sends, and the [`Invalidation`]/[`Downgrade`] actions the uncore returns.
//! The *decision* rules the ZeroDEV mechanisms hinge on — where an
//! overflowing directory entry is placed in the LLC, which MESI state a
//! fill is granted in, which sharers a write invalidates, and when a
//! housed (memory-resident) entry must be recalled before serving data —
//! are pure functions defined here once and called from the engine's
//! transition code. The checker therefore never re-implements the
//! protocol: it drives the engine through
//! `zerodev_core::step::ProtocolHarness` and these rules are the single
//! source of truth for both.
//!
//! # Seeded mutations
//!
//! [`Mutation`] deliberately mis-implements exactly one rule, proving the
//! model checker (and the dynamic oracle) actually *depend* on each rule:
//! a checker that still reports "no violation" under a seeded mutation is
//! vacuous. Mutations are process-global and test-only; production code
//! never sets one.

#![deny(clippy::unwrap_used, clippy::indexing_slicing)]

use crate::config::SpillPolicy;
use crate::ids::{BlockAddr, CoreId, SharerSet, SocketId};
use crate::mesi::MesiState;
use std::sync::atomic::{AtomicU8, Ordering};

// ---------------------------------------------------------------------------
// Vocabulary
// ---------------------------------------------------------------------------

/// A core-cache request arriving at the uncore.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Op {
    /// Demand data read (GetS).
    Read,
    /// Instruction fetch; code blocks always fill in S state (§III-A).
    CodeRead,
    /// Write miss (GetX / read-exclusive).
    ReadExclusive,
    /// Write hit on an S-state private copy (upgrade, dataless response).
    Upgrade,
}

/// The kind of private-cache eviction being notified.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum EvictKind {
    /// Clean eviction of an S-state copy (dataless notice).
    CleanShared,
    /// Clean eviction of an E-state copy (dataless; under ZeroDEV it carries
    /// the low reconstruction bits of a fused line, §III-C2).
    CleanExclusive,
    /// Dirty eviction of an M-state copy (full-block writeback).
    Dirty,
}

impl EvictKind {
    /// The notice a private cache sends when evicting a copy held in
    /// `state`. `Invalid` has nothing to evict.
    pub fn for_state(state: MesiState) -> Option<EvictKind> {
        match state {
            MesiState::Modified => Some(EvictKind::Dirty),
            MesiState::Exclusive => Some(EvictKind::CleanExclusive),
            MesiState::Shared => Some(EvictKind::CleanShared),
            MesiState::Invalid => None,
        }
    }
}

/// Why a private copy is being invalidated.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum InvalReason {
    /// Directory-entry eviction — a DEV. ZeroDEV guarantees none occur.
    Dev,
    /// LLC inclusion victim (inclusive designs only).
    Inclusion,
    /// Ordinary coherence (a write invalidating sharers).
    Coherence,
}

/// An invalidation the caller must apply to a private cache.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Invalidation {
    /// Socket of the core losing its copy.
    pub socket: SocketId,
    /// The core losing its copy.
    pub core: CoreId,
    /// The block.
    pub block: BlockAddr,
    /// Why.
    pub reason: InvalReason,
}

/// A downgrade (M/E → S) the caller must apply to a private cache. If the
/// line was M, the caller reports the dirty data via the engine's
/// `sharing_writeback`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Downgrade {
    /// Socket of the owning core.
    pub socket: SocketId,
    /// The owning core.
    pub core: CoreId,
    /// The block.
    pub block: BlockAddr,
}

/// Where the ZeroDEV placement rule puts an overflowing directory entry.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EntryPlacement {
    /// Fused into the tracked block's own LLC line (no extra line).
    Fuse,
    /// Spilled into a full LLC line of its own.
    Spill,
}

// ---------------------------------------------------------------------------
// Pure rules
// ---------------------------------------------------------------------------

/// §III-C: placement of an entry overflowing into the LLC. `has_block` is
/// whether the tracked block itself is LLC-resident in the home bank;
/// `owned` is whether the entry records an M/E owner.
pub fn overflow_placement(policy: SpillPolicy, has_block: bool, owned: bool) -> EntryPlacement {
    let fuse = match policy {
        SpillPolicy::SpillAll => false,
        SpillPolicy::FusePrivateSpillShared => {
            has_block && (owned || mutation() == Mutation::FuseShared)
        }
        SpillPolicy::FuseAll => has_block,
    };
    if fuse {
        EntryPlacement::Fuse
    } else {
        EntryPlacement::Spill
    }
}

/// §III-C2 (FPSS): a spilled entry whose block turned M/E while the block
/// is LLC-resident re-fuses on the in-place update.
pub fn refuse_on_update(policy: SpillPolicy, owned: bool, has_block: bool) -> bool {
    policy == SpillPolicy::FusePrivateSpillShared && owned && has_block
}

/// §III-C2 (FPSS): a fused entry whose block dropped to S un-fuses (the
/// entry spills; the block bits are reconstructed from the eviction
/// notice's low bits).
pub fn unfuse_on_update(policy: SpillPolicy, owned: bool) -> bool {
    policy == SpillPolicy::FusePrivateSpillShared && !owned
}

/// §III-A: the MESI state granted on a fill served by home memory (or an
/// LLC data line) with no other private copy in the system. Code fills and
/// fills of blocks shared by another socket take S; a demand write takes M;
/// everything else takes E.
pub fn untracked_fill_grant(op: Op, shared_elsewhere: bool) -> MesiState {
    match op {
        Op::ReadExclusive => MesiState::Modified,
        Op::CodeRead => MesiState::Shared,
        _ if shared_elsewhere => MesiState::Shared,
        _ => MesiState::Exclusive,
    }
}

/// The sharers a transaction must invalidate: every core in `sharers`
/// except the requester (`keep`). This is the rule the SWMR invariant
/// rides on — leaving any other sharer alive leaves a stale copy.
pub fn invalidation_targets(sharers: SharerSet, keep: Option<CoreId>) -> Vec<CoreId> {
    let mut targets: Vec<CoreId> = sharers.iter().filter(|&c| Some(c) != keep).collect();
    if mutation() == Mutation::KeepStaleSharer {
        targets.pop();
    }
    targets
}

/// §III-D4: whether a housed (memory-resident) directory segment must be
/// recalled via GET_DE before the home copy may serve data. A corrupted
/// home block holds directory segments, not data, so any live segment of
/// the serving socket forces the recall.
pub fn must_recall_housed(home_corrupted: bool) -> bool {
    home_corrupted && mutation() != Mutation::ServeCorruptedMemory
}

// ---------------------------------------------------------------------------
// Seeded rule mutations
// ---------------------------------------------------------------------------

/// A deliberate mis-implementation of one protocol rule, used by the model
/// checker's sensitivity proof and by the fault campaign. Process-global:
/// tests that set one must run in their own process (a dedicated
/// integration-test binary) and reset it afterwards.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Mutation {
    /// No mutation: the shipped protocol.
    None,
    /// [`invalidation_targets`] silently keeps one sharer, modelling a lost
    /// invalidation (breaks SWMR / leaves a stale copy).
    KeepStaleSharer,
    /// [`overflow_placement`] fuses S-state entries under FPSS, breaking
    /// the fused ⇒ owned structural invariant of §III-C2.
    FuseShared,
    /// [`must_recall_housed`] never fires: corrupted home memory is served
    /// as if it held data (breaks §III-D corrupted-block safety).
    ServeCorruptedMemory,
}

static MUTATION: AtomicU8 = AtomicU8::new(0);

/// Activates `m` process-wide (test use only). Always pair with a reset to
/// [`Mutation::None`].
pub fn set_mutation(m: Mutation) {
    let v = match m {
        Mutation::None => 0,
        Mutation::KeepStaleSharer => 1,
        Mutation::FuseShared => 2,
        Mutation::ServeCorruptedMemory => 3,
    };
    MUTATION.store(v, Ordering::SeqCst);
}

/// The active rule mutation ([`Mutation::None`] in production).
pub fn mutation() -> Mutation {
    match MUTATION.load(Ordering::Relaxed) {
        1 => Mutation::KeepStaleSharer,
        2 => Mutation::FuseShared,
        3 => Mutation::ServeCorruptedMemory,
        _ => Mutation::None,
    }
}

/// Every seeded mutation, for sensitivity matrices.
pub const ALL_MUTATIONS: [Mutation; 3] = [
    Mutation::KeepStaleSharer,
    Mutation::FuseShared,
    Mutation::ServeCorruptedMemory,
];

/// Compile-time exhaustiveness guard for [`ALL_MUTATIONS`]: the match below
/// is exhaustive over `Mutation`, so adding a variant without seeding it in
/// the dispatch table fails this constant's evaluation instead of silently
/// skipping the new mutation in sensitivity matrices.
const fn mutation_ordinal(m: Mutation) -> usize {
    match m {
        Mutation::None => 0,
        Mutation::KeepStaleSharer => 1,
        Mutation::FuseShared => 2,
        Mutation::ServeCorruptedMemory => 3,
    }
}

// In-bounds by the loop condition; an overrun here is a compile error,
// never a runtime panic.
#[allow(clippy::indexing_slicing)]
const _: () = {
    // `None` is the shipped protocol, not a seeded mutation: the table
    // lists every other variant, in declaration order.
    assert!(ALL_MUTATIONS.len() == mutation_ordinal(Mutation::ServeCorruptedMemory));
    let mut i = 0;
    while i < ALL_MUTATIONS.len() {
        assert!(
            mutation_ordinal(ALL_MUTATIONS[i]) == i + 1,
            "ALL_MUTATIONS must list every seeded Mutation exactly once, in declaration order"
        );
        i += 1;
    }
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evict_kind_mirrors_state() {
        assert_eq!(
            EvictKind::for_state(MesiState::Modified),
            Some(EvictKind::Dirty)
        );
        assert_eq!(
            EvictKind::for_state(MesiState::Exclusive),
            Some(EvictKind::CleanExclusive)
        );
        assert_eq!(
            EvictKind::for_state(MesiState::Shared),
            Some(EvictKind::CleanShared)
        );
        assert_eq!(EvictKind::for_state(MesiState::Invalid), None);
    }

    #[test]
    fn placement_matches_paper_rules() {
        use SpillPolicy::*;
        assert_eq!(
            overflow_placement(SpillAll, true, true),
            EntryPlacement::Spill
        );
        assert_eq!(
            overflow_placement(FusePrivateSpillShared, true, true),
            EntryPlacement::Fuse
        );
        assert_eq!(
            overflow_placement(FusePrivateSpillShared, true, false),
            EntryPlacement::Spill
        );
        assert_eq!(
            overflow_placement(FusePrivateSpillShared, false, true),
            EntryPlacement::Spill
        );
        assert_eq!(
            overflow_placement(FuseAll, true, false),
            EntryPlacement::Fuse
        );
        assert_eq!(
            overflow_placement(FuseAll, false, true),
            EntryPlacement::Spill
        );
    }

    #[test]
    fn grants_match_paper_rules() {
        assert_eq!(
            untracked_fill_grant(Op::ReadExclusive, false),
            MesiState::Modified
        );
        assert_eq!(untracked_fill_grant(Op::CodeRead, false), MesiState::Shared);
        assert_eq!(untracked_fill_grant(Op::Read, true), MesiState::Shared);
        assert_eq!(untracked_fill_grant(Op::Read, false), MesiState::Exclusive);
    }

    #[test]
    fn targets_exclude_only_the_requester() {
        let mut s = SharerSet::default();
        s.insert(CoreId(0));
        s.insert(CoreId(2));
        s.insert(CoreId(5));
        let t = invalidation_targets(s, Some(CoreId(2)));
        assert_eq!(t, vec![CoreId(0), CoreId(5)]);
        assert_eq!(invalidation_targets(s, None).len(), 3);
    }

    #[test]
    fn recall_follows_corruption() {
        assert!(must_recall_housed(true));
        assert!(!must_recall_housed(false));
    }

    // NOTE: no test here flips the global mutation — it is process-global,
    // and unit tests share one process. Mutation behaviour is covered by
    // the dedicated `crates/model/tests/mutation_sensitivity.rs` binary.
}
