//! Strongly-typed identifiers and address newtypes.
//!
//! The simulator deals in *blocks* (64-byte cache lines) almost everywhere;
//! [`BlockAddr`] is the block-granular address and [`Addr`] the raw byte
//! address. Keeping them distinct types prevents the classic
//! shifted-twice/never-shifted bug family.

use std::fmt;

/// Log2 of the cache-block size in bytes (64-byte blocks everywhere, as in
/// Table I of the paper).
pub const BLOCK_SHIFT: u32 = 6;
/// Cache-block size in bytes.
pub const BLOCK_BYTES: usize = 1 << BLOCK_SHIFT;

/// A byte-granular physical address.
///
/// ```
/// use zerodev_common::{Addr, BlockAddr};
/// let a = Addr(0x40 * 7 + 5);
/// assert_eq!(BlockAddr::from_byte_addr(a), BlockAddr(7));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(pub u64);

/// A block-granular (64-byte-aligned) physical address: the byte address
/// shifted right by [`BLOCK_SHIFT`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BlockAddr(pub u64);

impl Addr {
    /// The block containing this byte address.
    #[inline]
    pub fn block(self) -> BlockAddr {
        BlockAddr(self.0 >> BLOCK_SHIFT)
    }
}

impl BlockAddr {
    /// Converts a byte address to its containing block address.
    #[inline]
    pub fn from_byte_addr(a: Addr) -> Self {
        a.block()
    }

    /// The first byte address of this block.
    #[inline]
    pub fn byte_addr(self) -> Addr {
        Addr(self.0 << BLOCK_SHIFT)
    }

    /// The 1 KB region (16 blocks) containing this block — the region
    /// granularity used by the Multi-grain Directory baseline.
    #[inline]
    pub fn region(self) -> RegionAddr {
        RegionAddr(self.0 >> 4)
    }

    /// Index of this block within its 1 KB region (0..16).
    #[inline]
    pub fn region_offset(self) -> usize {
        (self.0 & 0xf) as usize
    }
}

/// A 1 KB region address (16 consecutive blocks), used by the Multi-grain
/// Directory baseline of Zebchuk et al. that the paper compares against.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct RegionAddr(pub u64);

impl RegionAddr {
    /// The first block of this region.
    #[inline]
    pub fn first_block(self) -> BlockAddr {
        BlockAddr(self.0 << 4)
    }

    /// Iterates over the 16 blocks of the region.
    pub fn blocks(self) -> impl Iterator<Item = BlockAddr> {
        let base = self.0 << 4;
        (0..16).map(move |i| BlockAddr(base + i))
    }
}

/// A processor core within a socket (0-based, socket-local).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CoreId(pub u16);

/// A socket in a multi-socket system.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SocketId(pub u8);

/// An LLC bank / sparse-directory slice within a socket.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BankId(pub u16);

/// A simulation time point in core clock cycles (4 GHz core clock).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycle(pub u64);

impl Cycle {
    /// Zero time.
    pub const ZERO: Cycle = Cycle(0);

    /// Saturating difference `self - earlier` in cycles.
    #[inline]
    pub fn since(self, earlier: Cycle) -> u64 {
        self.0.saturating_sub(earlier.0)
    }

    /// The later of the two time points.
    #[inline]
    pub fn max(self, other: Cycle) -> Cycle {
        Cycle(self.0.max(other.0))
    }
}

impl std::ops::Add<u64> for Cycle {
    type Output = Cycle;
    #[inline]
    fn add(self, rhs: u64) -> Cycle {
        Cycle(self.0 + rhs)
    }
}

impl std::ops::AddAssign<u64> for Cycle {
    #[inline]
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

macro_rules! debug_display {
    ($ty:ident, $fmt:literal) => {
        impl fmt::Debug for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, $fmt, self.0)
            }
        }
        impl fmt::Display for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, $fmt, self.0)
            }
        }
    };
}

debug_display!(Addr, "0x{:x}");
debug_display!(BlockAddr, "B0x{:x}");
debug_display!(RegionAddr, "R0x{:x}");
debug_display!(CoreId, "c{}");
debug_display!(SocketId, "s{}");
debug_display!(BankId, "b{}");
debug_display!(Cycle, "@{}");

/// A compact sharer bit-vector over up to 128 cores of one socket.
///
/// The paper's full-map bitvector representation; 128 bits covers the largest
/// evaluated configuration (the 128-core server system).
///
/// ```
/// use zerodev_common::ids::{CoreId, SharerSet};
/// let mut s = SharerSet::default();
/// s.insert(CoreId(3));
/// s.insert(CoreId(100));
/// assert!(s.contains(CoreId(3)));
/// assert_eq!(s.count(), 2);
/// s.remove(CoreId(3));
/// assert_eq!(s.iter().collect::<Vec<_>>(), vec![CoreId(100)]);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SharerSet(pub u128);

impl SharerSet {
    /// The empty set.
    pub const EMPTY: SharerSet = SharerSet(0);

    /// A set with a single member.
    #[inline]
    pub fn only(core: CoreId) -> Self {
        SharerSet(1u128 << core.0)
    }

    /// Adds a core.
    #[inline]
    pub fn insert(&mut self, core: CoreId) {
        self.0 |= 1u128 << core.0;
    }

    /// Removes a core.
    #[inline]
    pub fn remove(&mut self, core: CoreId) {
        self.0 &= !(1u128 << core.0);
    }

    /// Membership test.
    #[inline]
    pub fn contains(self, core: CoreId) -> bool {
        self.0 & (1u128 << core.0) != 0
    }

    /// Number of sharers.
    #[inline]
    pub fn count(self) -> u32 {
        self.0.count_ones()
    }

    /// True when no core holds a copy.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// An arbitrary (lowest-index) member, used when the coherence controller
    /// must elect a sharer to forward a request to.
    #[inline]
    pub fn any(self) -> Option<CoreId> {
        if self.0 == 0 {
            None
        } else {
            Some(CoreId(self.0.trailing_zeros() as u16))
        }
    }

    /// Iterates over members in increasing core order.
    pub fn iter(self) -> impl Iterator<Item = CoreId> {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let i = bits.trailing_zeros();
                bits &= bits - 1;
                Some(CoreId(i as u16))
            }
        })
    }
}

impl fmt::Debug for SharerSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, c) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<CoreId> for SharerSet {
    fn from_iter<T: IntoIterator<Item = CoreId>>(iter: T) -> Self {
        let mut s = SharerSet::default();
        for c in iter {
            s.insert(c);
        }
        s
    }
}

/// A socket-level sharer bit-vector (up to 32 sockets).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SocketSet(pub u32);

impl SocketSet {
    /// A set with a single member.
    #[inline]
    pub fn only(s: SocketId) -> Self {
        SocketSet(1 << s.0)
    }

    /// Adds a socket.
    #[inline]
    pub fn insert(&mut self, s: SocketId) {
        self.0 |= 1 << s.0;
    }

    /// Removes a socket.
    #[inline]
    pub fn remove(&mut self, s: SocketId) {
        self.0 &= !(1 << s.0);
    }

    /// Membership test.
    #[inline]
    pub fn contains(self, s: SocketId) -> bool {
        self.0 & (1 << s.0) != 0
    }

    /// Number of member sockets.
    #[inline]
    pub fn count(self) -> u32 {
        self.0.count_ones()
    }

    /// True when empty.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// An arbitrary (lowest-index) member socket.
    #[inline]
    pub fn any(self) -> Option<SocketId> {
        if self.0 == 0 {
            None
        } else {
            Some(SocketId(self.0.trailing_zeros() as u8))
        }
    }

    /// Iterates over members in increasing socket order.
    pub fn iter(self) -> impl Iterator<Item = SocketId> {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let i = bits.trailing_zeros();
                bits &= bits - 1;
                Some(SocketId(i as u8))
            }
        })
    }
}

impl fmt::Debug for SocketSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, s) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{s}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_round_trip() {
        let a = Addr(0x12345);
        let b = a.block();
        assert_eq!(b.byte_addr().0, 0x12345 & !0x3f);
        assert_eq!(BlockAddr::from_byte_addr(b.byte_addr()), b);
    }

    #[test]
    fn region_of_block() {
        let b = BlockAddr(0x123);
        assert_eq!(b.region(), RegionAddr(0x12));
        assert_eq!(b.region_offset(), 3);
        assert_eq!(b.region().blocks().count(), 16);
        assert!(b.region().blocks().any(|x| x == b));
        assert_eq!(b.region().first_block(), BlockAddr(0x120));
    }

    #[test]
    fn cycle_arith() {
        let mut t = Cycle(10);
        t += 5;
        assert_eq!(t, Cycle(15));
        assert_eq!(t.since(Cycle(10)), 5);
        assert_eq!(t.since(Cycle(100)), 0);
        assert_eq!(t.max(Cycle(100)), Cycle(100));
        assert_eq!((t + 1).0, 16);
    }

    #[test]
    fn sharer_set_basics() {
        let mut s = SharerSet::EMPTY;
        assert!(s.is_empty());
        assert_eq!(s.any(), None);
        s.insert(CoreId(0));
        s.insert(CoreId(127));
        assert_eq!(s.count(), 2);
        assert!(s.contains(CoreId(127)));
        assert_eq!(s.any(), Some(CoreId(0)));
        s.remove(CoreId(0));
        assert_eq!(s.any(), Some(CoreId(127)));
        let collected: SharerSet = [CoreId(1), CoreId(2)].into_iter().collect();
        assert_eq!(collected.count(), 2);
    }

    #[test]
    fn sharer_set_idempotent_ops() {
        let mut s = SharerSet::only(CoreId(5));
        s.insert(CoreId(5));
        assert_eq!(s.count(), 1);
        s.remove(CoreId(9));
        assert_eq!(s.count(), 1);
    }

    #[test]
    fn socket_set_basics() {
        let mut s = SocketSet::default();
        s.insert(SocketId(3));
        s.insert(SocketId(0));
        assert_eq!(s.count(), 2);
        assert_eq!(s.any(), Some(SocketId(0)));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![SocketId(0), SocketId(3)]);
        s.remove(SocketId(0));
        assert!(!s.is_empty());
        assert!(s.contains(SocketId(3)));
        assert_eq!(SocketSet::only(SocketId(2)).count(), 1);
    }

    #[test]
    fn debug_formats_nonempty() {
        assert_eq!(format!("{:?}", CoreId(3)), "c3");
        assert_eq!(format!("{:?}", BlockAddr(0xff)), "B0xff");
        assert_eq!(format!("{:?}", SharerSet::only(CoreId(1))), "{c1}");
        assert_eq!(format!("{:?}", SocketSet::only(SocketId(1))), "{s1}");
        assert_eq!(format!("{}", Cycle(9)), "@9");
        assert_eq!(format!("{:?}", Addr(16)), "0x10");
        assert_eq!(format!("{:?}", RegionAddr(2)), "R0x2");
        assert_eq!(format!("{:?}", BankId(2)), "b2");
        assert_eq!(format!("{:?}", SocketId(2)), "s2");
    }
}
