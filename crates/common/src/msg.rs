//! Coherence message classes and their on-wire sizes.
//!
//! The paper reports interconnect traffic in *total bytes communicated*
//! (Figures 2, 3). Every protocol action in the simulator enumerates the
//! messages it puts on the network; the NoC model sums their byte sizes.
//!
//! Sizing follows the usual convention: a control message is one 8-byte flit
//! header (address + opcode + ids), a data message is header + 64-byte block.
//! The ZeroDEV eviction notices that carry the low `3 + log2(N)` (or
//! `4 + N`) reconstruction bits of a fused block are one byte larger than a
//! plain control message — the "negligible overhead" the paper describes.

/// The class of a coherence / memory message, used for traffic accounting.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MsgClass {
    /// Core request to the home LLC bank (GetS / GetX / Upgrade).
    Request,
    /// Home forwarding a request to an owner or sharer core.
    Forward,
    /// Invalidation sent to a sharer core.
    Invalidation,
    /// Dataless acknowledgement (inv-ack, busy-clear, upgrade response).
    Ack,
    /// Data response carrying a full cache block.
    Data,
    /// Clean eviction notice from a core (E or S state, dataless).
    EvictNotice,
    /// Clean eviction notice carrying fused-block reconstruction bits
    /// (ZeroDEV: E-state evictions, and last-sharer retrieval in FuseAll).
    EvictNoticeBits,
    /// Dirty writeback from a core carrying the full block.
    Writeback,
    /// LLC-to-memory-controller read request.
    MemRead,
    /// Memory-controller-to-LLC read data.
    MemReadData,
    /// LLC-to-memory-controller write (block writeback).
    MemWrite,
    /// ZeroDEV directory-entry writeback to home memory (WB_DE, carries a
    /// prepared 64-byte block with the entry in the source socket's segment).
    WbDirEntry,
    /// ZeroDEV directory-entry read request to home memory (GET_DE).
    GetDirEntry,
    /// "Directory entry not found" negative acknowledgement (DENF_NACK).
    DenfNack,
    /// Inter-socket request/response control traffic.
    SocketCtrl,
    /// Inter-socket data traffic (full block).
    SocketData,
}

/// All message classes, in a stable order (for printing traffic breakdowns).
pub const ALL_CLASSES: [MsgClass; 16] = [
    MsgClass::Request,
    MsgClass::Forward,
    MsgClass::Invalidation,
    MsgClass::Ack,
    MsgClass::Data,
    MsgClass::EvictNotice,
    MsgClass::EvictNoticeBits,
    MsgClass::Writeback,
    MsgClass::MemRead,
    MsgClass::MemReadData,
    MsgClass::MemWrite,
    MsgClass::WbDirEntry,
    MsgClass::GetDirEntry,
    MsgClass::DenfNack,
    MsgClass::SocketCtrl,
    MsgClass::SocketData,
];

impl MsgClass {
    /// Bytes in one control flit header (address + opcode + ids): the size of
    /// every dataless message.
    pub const CTRL_BYTES: u64 = 8;
    /// Bytes in the payload of a data-carrying message: one cache block.
    pub const BLOCK_BYTES: u64 = 64;
    /// Bytes in a full data message: header plus one cache block.
    pub const DATA_BYTES: u64 = Self::CTRL_BYTES + Self::BLOCK_BYTES;
    /// Bytes in a ZeroDEV eviction notice that carries fused-block
    /// reconstruction bits: one byte more than a plain control message.
    pub const EVICT_BITS_BYTES: u64 = Self::CTRL_BYTES + 1;

    /// On-wire size of one message of this class, in bytes.
    ///
    /// ```
    /// use zerodev_common::MsgClass;
    /// assert_eq!(MsgClass::Request.bytes(), MsgClass::CTRL_BYTES);
    /// assert_eq!(MsgClass::Data.bytes(), MsgClass::DATA_BYTES);
    /// assert!(MsgClass::EvictNoticeBits.bytes() > MsgClass::EvictNotice.bytes());
    /// ```
    pub fn bytes(self) -> u64 {
        match self {
            MsgClass::Request
            | MsgClass::Forward
            | MsgClass::Invalidation
            | MsgClass::Ack
            | MsgClass::EvictNotice
            | MsgClass::MemRead
            | MsgClass::GetDirEntry
            | MsgClass::DenfNack
            | MsgClass::SocketCtrl => Self::CTRL_BYTES,
            MsgClass::EvictNoticeBits => Self::EVICT_BITS_BYTES,
            MsgClass::Data
            | MsgClass::Writeback
            | MsgClass::MemReadData
            | MsgClass::MemWrite
            | MsgClass::WbDirEntry
            | MsgClass::SocketData => Self::DATA_BYTES,
        }
    }

    /// True for classes that carry a full data block.
    pub fn carries_block(self) -> bool {
        self.bytes() >= 72
    }

    /// A short stable label for printing.
    pub fn label(self) -> &'static str {
        match self {
            MsgClass::Request => "req",
            MsgClass::Forward => "fwd",
            MsgClass::Invalidation => "inv",
            MsgClass::Ack => "ack",
            MsgClass::Data => "data",
            MsgClass::EvictNotice => "evict",
            MsgClass::EvictNoticeBits => "evict+b",
            MsgClass::Writeback => "wb",
            MsgClass::MemRead => "mrd",
            MsgClass::MemReadData => "mrd-d",
            MsgClass::MemWrite => "mwr",
            MsgClass::WbDirEntry => "wb_de",
            MsgClass::GetDirEntry => "get_de",
            MsgClass::DenfNack => "denf",
            MsgClass::SocketCtrl => "sk-c",
            MsgClass::SocketData => "sk-d",
        }
    }

    /// Index of this class within [`ALL_CLASSES`].
    pub fn index(self) -> usize {
        ALL_CLASSES
            .iter()
            .position(|&c| c == self)
            .expect("class listed")
    }

    /// Virtual-network rank for deadlock analysis (DESIGN.md §12).
    ///
    /// Serving a message may only generate messages of equal or higher
    /// rank, so a full network always drains toward the response VN:
    /// 0 = core-originated requests and notices, 1 = home-generated
    /// probes, 2 = memory commands, 3 = responses. `zerodev-lint` parses
    /// this table and checks the extracted consumes→emits graph against
    /// it; the one audited descent is the `DenfNack → Request` retry in
    /// the fault engine (bounded backoff, hard retry budget).
    pub const fn vnet(self) -> u8 {
        match self {
            MsgClass::Request
            | MsgClass::EvictNotice
            | MsgClass::EvictNoticeBits
            | MsgClass::Writeback => 0,
            MsgClass::Forward | MsgClass::Invalidation | MsgClass::SocketCtrl => 1,
            MsgClass::MemRead
            | MsgClass::MemWrite
            | MsgClass::GetDirEntry
            | MsgClass::WbDirEntry => 2,
            MsgClass::Data
            | MsgClass::Ack
            | MsgClass::MemReadData
            | MsgClass::SocketData
            | MsgClass::DenfNack => 3,
        }
    }
}

/// Compile-time exhaustiveness guard for [`ALL_CLASSES`]: the match below
/// is exhaustive over `MsgClass`, so adding a variant without extending
/// (and correctly ordering) the dispatch table fails this constant's
/// evaluation instead of silently skipping the new class in traffic
/// breakdowns.
const fn variant_ordinal(c: MsgClass) -> usize {
    match c {
        MsgClass::Request => 0,
        MsgClass::Forward => 1,
        MsgClass::Invalidation => 2,
        MsgClass::Ack => 3,
        MsgClass::Data => 4,
        MsgClass::EvictNotice => 5,
        MsgClass::EvictNoticeBits => 6,
        MsgClass::Writeback => 7,
        MsgClass::MemRead => 8,
        MsgClass::MemReadData => 9,
        MsgClass::MemWrite => 10,
        MsgClass::WbDirEntry => 11,
        MsgClass::GetDirEntry => 12,
        MsgClass::DenfNack => 13,
        MsgClass::SocketCtrl => 14,
        MsgClass::SocketData => 15,
    }
}

const _: () = {
    assert!(ALL_CLASSES.len() == variant_ordinal(MsgClass::SocketData) + 1);
    let mut i = 0;
    while i < ALL_CLASSES.len() {
        assert!(
            variant_ordinal(ALL_CLASSES[i]) == i,
            "ALL_CLASSES must list every MsgClass exactly once, in declaration order"
        );
        i += 1;
    }
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_are_sane() {
        for c in ALL_CLASSES {
            assert!(c.bytes() >= 8, "{c:?} too small");
            assert!(!c.label().is_empty());
        }
        assert_eq!(MsgClass::Data.bytes(), 72);
        assert!(MsgClass::Data.carries_block());
        assert!(!MsgClass::Ack.carries_block());
    }

    #[test]
    fn evict_bits_overhead_is_one_byte() {
        assert_eq!(
            MsgClass::EvictNoticeBits.bytes() - MsgClass::EvictNotice.bytes(),
            1
        );
    }

    #[test]
    fn indexing_round_trips() {
        for (i, c) in ALL_CLASSES.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn vnet_ranks_cover_expected_networks() {
        // Rank 0 holds exactly the core-originated classes; responses are
        // all top-rank so they can always sink at a core.
        assert_eq!(MsgClass::Request.vnet(), 0);
        assert_eq!(MsgClass::Writeback.vnet(), 0);
        assert_eq!(MsgClass::Forward.vnet(), 1);
        assert_eq!(MsgClass::MemRead.vnet(), 2);
        assert_eq!(MsgClass::Data.vnet(), 3);
        assert_eq!(MsgClass::DenfNack.vnet(), 3);
        for c in ALL_CLASSES {
            assert!(c.vnet() <= 3);
        }
    }
}
