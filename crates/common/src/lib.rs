//! Foundational types for the ZeroDEV coherence-protocol reproduction.
//!
//! This crate holds everything the rest of the simulator stack agrees on:
//!
//! * [`ids`] — strongly-typed identifiers ([`CoreId`], [`SocketId`], [`BankId`])
//!   and the [`BlockAddr`] / [`Addr`] address newtypes.
//! * [`mesi`] — the MESI coherence states used by the private caches and the
//!   owner/sharer view kept by directories.
//! * [`msg`] — coherence message classes and their on-wire sizes, used for
//!   interconnect-traffic accounting.
//! * [`config`] — the full simulated-machine description (Table I of the paper
//!   is [`SystemConfig::baseline_8core`]).
//! * [`stats`] — the event counters every experiment reads out.
//! * [`rng`] — a small deterministic PRNG (xoshiro256**) so that every
//!   simulation is exactly reproducible from a seed.
//! * [`env`] — graceful environment-variable parsing (warn + default on
//!   bad values) shared by every harness knob.
//! * [`flatmap`] — a flat open-addressing `u64 → V` hash map (Fibonacci
//!   hashing, backward-shift deletion) used on the protocol engine's hot
//!   lookup paths instead of the SipHash-hardened std map.
//! * [`snap`] — hand-rolled versioned binary snapshot encoding (magic,
//!   version, FNV-1a checksum) used by checkpoint/resume.
//! * [`table`] — plain-text table rendering for the figure harnesses.
//! * [`protocol`] — the protocol vocabulary ([`protocol::Op`],
//!   [`protocol::EvictKind`], invalidations/downgrades) and the pure
//!   decision rules shared by the concrete engine and the exhaustive model
//!   checker.
//!
//! # Example
//!
//! ```
//! use zerodev_common::{Addr, BlockAddr, CoreId, config::SystemConfig};
//!
//! let cfg = SystemConfig::baseline_8core();
//! assert_eq!(cfg.cores, 8);
//! let b = BlockAddr::from_byte_addr(Addr(0x1234));
//! assert_eq!(b.byte_addr().0 % cfg.block_bytes as u64, 0);
//! let _home = cfg.home_bank(b);
//! let _ = CoreId(3);
//! ```

pub mod config;
pub mod env;
pub mod flatmap;
pub mod ids;
pub mod mesi;
pub mod msg;
pub mod protocol;
pub mod rng;
pub mod snap;
pub mod stats;
pub mod table;

pub use config::SystemConfig;
pub use flatmap::FlatMap;
pub use ids::{Addr, BankId, BlockAddr, CoreId, Cycle, SocketId};
pub use mesi::{DirState, MesiState};
pub use msg::MsgClass;
pub use rng::Prng;
pub use stats::Stats;
