//! Event counters collected by every component of the simulator.
//!
//! One [`Stats`] instance is owned by the uncore of each socket; the runner
//! merges them and derives the figures' metrics (normalised traffic, core
//! cache misses, speedups, DRAM traffic breakdowns, DEV counts).

use crate::msg::{MsgClass, ALL_CLASSES};

/// Aggregated simulation counters.
///
/// All fields are plain counts; traffic is tracked both as message counts and
/// as bytes per [`MsgClass`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Stats {
    /// Messages sent, per class (indexed by [`MsgClass::index`]).
    pub msg_counts: [u64; 16],
    /// Bytes sent, per class.
    pub msg_bytes: [u64; 16],

    /// Demand accesses that missed in the whole private hierarchy and
    /// reached the uncore ("core cache misses" in Figures 2 and 3).
    pub core_cache_misses: u64,
    /// L1D lookups that missed.
    pub l1d_misses: u64,
    /// L1I lookups that missed.
    pub l1i_misses: u64,
    /// Upgrade requests (write to an S-state private copy).
    pub upgrades: u64,

    /// LLC lookups that found the requested data block.
    pub llc_hits: u64,
    /// LLC lookups that missed on the data block.
    pub llc_misses: u64,
    /// LLC tag-array lookups (energy accounting).
    pub llc_tag_lookups: u64,
    /// LLC data-array accesses (energy accounting; includes directory-entry
    /// reads/writes performed in the data array).
    pub llc_data_accesses: u64,
    /// Extra LLC data-array accesses serving *directory entries* (ZeroDEV).
    pub llc_dir_accesses: u64,

    /// Sparse-directory lookups.
    pub dir_lookups: u64,
    /// Directory entries newly allocated.
    pub dir_allocs: u64,
    /// Live directory entries evicted from a bounded directory structure
    /// (each generates DEVs in the baseline, or a spill/fuse in ZeroDEV).
    pub dir_evictions: u64,
    /// Private-cache copies invalidated because of directory-entry eviction —
    /// the paper's DEVs. ZeroDEV guarantees this stays zero.
    pub dev_invalidations: u64,
    /// Dirty (M-state) DEVs whose data was pulled back into the LLC.
    pub dev_dirty_recalls: u64,
    /// Private copies invalidated to maintain LLC inclusion (inclusive LLC
    /// designs only; these are *not* DEVs).
    pub inclusion_invalidations: u64,
    /// Invalidations sent for ordinary coherence (write to shared block).
    pub coherence_invalidations: u64,

    /// Directory entries spilled into full LLC lines (ZeroDEV).
    pub dir_spills: u64,
    /// Directory entries fused into their block's LLC line (ZeroDEV).
    pub dir_fuses: u64,
    /// Directory entries evicted from the LLC to home memory (WB_DE flow).
    pub dir_llc_evictions: u64,
    /// GET_DE round trips (core-cache eviction could not find the entry
    /// in-socket, §III-D4).
    pub get_de_requests: u64,
    /// DENF_NACK messages (forwarded socket had evicted its entry, §III-D3).
    pub denf_nacks: u64,
    /// Reads that had to be forwarded to a sharer because the home LLC line
    /// was a corrupted/fused entry without data (FuseAll critical-path cost).
    pub fused_read_forwards: u64,

    /// Current number of LLC lines occupied by *spilled* directory entries.
    pub spilled_lines_current: u64,
    /// High-water mark of `spilled_lines_current`.
    pub spilled_lines_max: u64,
    /// Current live entries in the directory structure (for Figure 5's
    /// occupancy projection when running the unbounded directory).
    pub dir_live_entries: u64,
    /// High-water mark of `dir_live_entries`.
    pub dir_live_entries_max: u64,

    /// DRAM read transactions.
    pub dram_reads: u64,
    /// DRAM write transactions.
    pub dram_writes: u64,
    /// DRAM writes caused by directory-entry eviction from the LLC
    /// (the paper reports these are <0.5% of DRAM writes).
    pub dram_writes_dir: u64,
    /// DRAM reads needed to merge a directory entry into an already
    /// corrupted block (multi-socket read-modify-write).
    pub dram_reads_dir: u64,
    /// LLC read misses that accessed a corrupted home-memory block
    /// (paper: <0.05% of LLC read misses).
    pub llc_read_misses_corrupted: u64,

    /// Requests resolved in two hops (request + response).
    pub two_hop_reads: u64,
    /// Requests resolved in three hops (forwarded to an owner/sharer).
    pub three_hop_reads: u64,

    /// Requests crossing the socket boundary (multi-socket runs).
    pub socket_misses: u64,
}

impl Stats {
    /// Creates a zeroed counter set.
    pub fn new() -> Self {
        Stats::default()
    }

    /// Records one message of the given class on the interconnect.
    #[inline]
    pub fn msg(&mut self, class: MsgClass) {
        let i = class.index();
        self.msg_counts[i] += 1;
        self.msg_bytes[i] += class.bytes();
    }

    /// Records `n` messages of the given class.
    #[inline]
    pub fn msg_n(&mut self, class: MsgClass, n: u64) {
        let i = class.index();
        self.msg_counts[i] += n;
        self.msg_bytes[i] += class.bytes() * n;
    }

    /// Total interconnect bytes over all message classes (the Figures 2/3
    /// "traffic" metric).
    pub fn total_traffic_bytes(&self) -> u64 {
        self.msg_bytes.iter().sum()
    }

    /// Bytes for a single class.
    pub fn bytes(&self, class: MsgClass) -> u64 {
        self.msg_bytes[class.index()]
    }

    /// Message count for a single class.
    pub fn count(&self, class: MsgClass) -> u64 {
        self.msg_counts[class.index()]
    }

    /// Adjusts the live-spilled-lines gauge by `delta` and maintains the
    /// high-water mark.
    pub fn adjust_spilled_lines(&mut self, delta: i64) {
        self.spilled_lines_current = self
            .spilled_lines_current
            .checked_add_signed(delta)
            .expect("spilled-lines gauge underflow");
        self.spilled_lines_max = self.spilled_lines_max.max(self.spilled_lines_current);
    }

    /// Adjusts the live-directory-entries gauge by `delta` and maintains the
    /// high-water mark.
    pub fn adjust_dir_live(&mut self, delta: i64) {
        self.dir_live_entries = self
            .dir_live_entries
            .checked_add_signed(delta)
            .expect("dir-live gauge underflow");
        self.dir_live_entries_max = self.dir_live_entries_max.max(self.dir_live_entries);
    }

    /// Merges another counter set into this one (gauges take the max of the
    /// high-water marks and the sum of the currents).
    pub fn merge(&mut self, other: &Stats) {
        for i in 0..ALL_CLASSES.len() {
            self.msg_counts[i] += other.msg_counts[i];
            self.msg_bytes[i] += other.msg_bytes[i];
        }
        self.core_cache_misses += other.core_cache_misses;
        self.l1d_misses += other.l1d_misses;
        self.l1i_misses += other.l1i_misses;
        self.upgrades += other.upgrades;
        self.llc_hits += other.llc_hits;
        self.llc_misses += other.llc_misses;
        self.llc_tag_lookups += other.llc_tag_lookups;
        self.llc_data_accesses += other.llc_data_accesses;
        self.llc_dir_accesses += other.llc_dir_accesses;
        self.dir_lookups += other.dir_lookups;
        self.dir_allocs += other.dir_allocs;
        self.dir_evictions += other.dir_evictions;
        self.dev_invalidations += other.dev_invalidations;
        self.dev_dirty_recalls += other.dev_dirty_recalls;
        self.inclusion_invalidations += other.inclusion_invalidations;
        self.coherence_invalidations += other.coherence_invalidations;
        self.dir_spills += other.dir_spills;
        self.dir_fuses += other.dir_fuses;
        self.dir_llc_evictions += other.dir_llc_evictions;
        self.get_de_requests += other.get_de_requests;
        self.denf_nacks += other.denf_nacks;
        self.fused_read_forwards += other.fused_read_forwards;
        self.spilled_lines_current += other.spilled_lines_current;
        self.spilled_lines_max = self.spilled_lines_max.max(other.spilled_lines_max);
        self.dir_live_entries += other.dir_live_entries;
        self.dir_live_entries_max = self.dir_live_entries_max.max(other.dir_live_entries_max);
        self.dram_reads += other.dram_reads;
        self.dram_writes += other.dram_writes;
        self.dram_writes_dir += other.dram_writes_dir;
        self.dram_reads_dir += other.dram_reads_dir;
        self.llc_read_misses_corrupted += other.llc_read_misses_corrupted;
        self.two_hop_reads += other.two_hop_reads;
        self.three_hop_reads += other.three_hop_reads;
        self.socket_misses += other.socket_misses;
    }

    /// Serializes every counter, in declaration order, for checkpointing.
    pub fn snap(&self, w: &mut crate::snap::SnapWriter) {
        for v in self.msg_counts.iter().chain(self.msg_bytes.iter()) {
            w.u64(*v);
        }
        for v in self.scalar_fields() {
            w.u64(v);
        }
    }

    /// Rebuilds a counter set from a [`Stats::snap`] image.
    pub fn unsnap(r: &mut crate::snap::SnapReader<'_>) -> Result<Self, crate::snap::SnapError> {
        let mut s = Stats::new();
        for v in s.msg_counts.iter_mut().chain(s.msg_bytes.iter_mut()) {
            *v = r.u64("stats msg lane")?;
        }
        let mut scalars = [0u64; 34];
        for v in scalars.iter_mut() {
            *v = r.u64("stats scalar")?;
        }
        s.set_scalar_fields(&scalars);
        Ok(s)
    }

    /// The non-array counters in declaration order (checkpoint layout; keep
    /// in sync with [`Stats::set_scalar_fields`]).
    fn scalar_fields(&self) -> [u64; 34] {
        [
            self.core_cache_misses,
            self.l1d_misses,
            self.l1i_misses,
            self.upgrades,
            self.llc_hits,
            self.llc_misses,
            self.llc_tag_lookups,
            self.llc_data_accesses,
            self.llc_dir_accesses,
            self.dir_lookups,
            self.dir_allocs,
            self.dir_evictions,
            self.dev_invalidations,
            self.dev_dirty_recalls,
            self.inclusion_invalidations,
            self.coherence_invalidations,
            self.dir_spills,
            self.dir_fuses,
            self.dir_llc_evictions,
            self.get_de_requests,
            self.denf_nacks,
            self.fused_read_forwards,
            self.spilled_lines_current,
            self.spilled_lines_max,
            self.dir_live_entries,
            self.dir_live_entries_max,
            self.dram_reads,
            self.dram_writes,
            self.dram_writes_dir,
            self.dram_reads_dir,
            self.llc_read_misses_corrupted,
            self.two_hop_reads,
            self.three_hop_reads,
            self.socket_misses,
        ]
    }

    fn set_scalar_fields(&mut self, v: &[u64; 34]) {
        [
            &mut self.core_cache_misses,
            &mut self.l1d_misses,
            &mut self.l1i_misses,
            &mut self.upgrades,
            &mut self.llc_hits,
            &mut self.llc_misses,
            &mut self.llc_tag_lookups,
            &mut self.llc_data_accesses,
            &mut self.llc_dir_accesses,
            &mut self.dir_lookups,
            &mut self.dir_allocs,
            &mut self.dir_evictions,
            &mut self.dev_invalidations,
            &mut self.dev_dirty_recalls,
            &mut self.inclusion_invalidations,
            &mut self.coherence_invalidations,
            &mut self.dir_spills,
            &mut self.dir_fuses,
            &mut self.dir_llc_evictions,
            &mut self.get_de_requests,
            &mut self.denf_nacks,
            &mut self.fused_read_forwards,
            &mut self.spilled_lines_current,
            &mut self.spilled_lines_max,
            &mut self.dir_live_entries,
            &mut self.dir_live_entries_max,
            &mut self.dram_reads,
            &mut self.dram_writes,
            &mut self.dram_writes_dir,
            &mut self.dram_reads_dir,
            &mut self.llc_read_misses_corrupted,
            &mut self.two_hop_reads,
            &mut self.three_hop_reads,
            &mut self.socket_misses,
        ]
        .into_iter()
        .zip(v.iter())
        .for_each(|(dst, src)| *dst = *src);
    }

    /// Renders a compact multi-line summary for debugging and the examples.
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "core-cache misses: {}  (L1D {} / L1I {})  upgrades: {}",
            self.core_cache_misses, self.l1d_misses, self.l1i_misses, self.upgrades
        );
        let _ = writeln!(
            s,
            "LLC: {} hits / {} misses; dir: {} lookups, {} allocs, {} evictions",
            self.llc_hits, self.llc_misses, self.dir_lookups, self.dir_allocs, self.dir_evictions
        );
        let _ = writeln!(
            s,
            "DEV invalidations: {} ({} dirty recalls); inclusion invals: {}",
            self.dev_invalidations, self.dev_dirty_recalls, self.inclusion_invalidations
        );
        let _ = writeln!(
            s,
            "ZeroDEV: {} spills, {} fuses, {} LLC dir-evictions, {} GET_DE, {} DENF",
            self.dir_spills,
            self.dir_fuses,
            self.dir_llc_evictions,
            self.get_de_requests,
            self.denf_nacks
        );
        let _ = writeln!(
            s,
            "DRAM: {} reads ({} dir) / {} writes ({} dir)",
            self.dram_reads, self.dram_reads_dir, self.dram_writes, self.dram_writes_dir
        );
        let _ = writeln!(
            s,
            "traffic: {} bytes total; 2-hop {} / 3-hop {}",
            self.total_traffic_bytes(),
            self.two_hop_reads,
            self.three_hop_reads
        );
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn msg_accounting() {
        let mut s = Stats::new();
        s.msg(MsgClass::Request);
        s.msg(MsgClass::Data);
        s.msg_n(MsgClass::Invalidation, 3);
        assert_eq!(s.count(MsgClass::Request), 1);
        assert_eq!(s.count(MsgClass::Invalidation), 3);
        assert_eq!(s.bytes(MsgClass::Invalidation), 24);
        assert_eq!(s.total_traffic_bytes(), 8 + 72 + 24);
    }

    #[test]
    fn gauges_track_high_water() {
        let mut s = Stats::new();
        s.adjust_spilled_lines(5);
        s.adjust_spilled_lines(-2);
        s.adjust_spilled_lines(1);
        assert_eq!(s.spilled_lines_current, 4);
        assert_eq!(s.spilled_lines_max, 5);
        s.adjust_dir_live(7);
        s.adjust_dir_live(-7);
        assert_eq!(s.dir_live_entries, 0);
        assert_eq!(s.dir_live_entries_max, 7);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn gauge_underflow_panics() {
        let mut s = Stats::new();
        s.adjust_spilled_lines(-1);
    }

    #[test]
    fn merge_sums_and_maxes() {
        let mut a = Stats::new();
        a.core_cache_misses = 10;
        a.spilled_lines_max = 3;
        a.msg(MsgClass::Data);
        let mut b = Stats::new();
        b.core_cache_misses = 5;
        b.spilled_lines_max = 9;
        b.msg(MsgClass::Data);
        a.merge(&b);
        assert_eq!(a.core_cache_misses, 15);
        assert_eq!(a.spilled_lines_max, 9);
        assert_eq!(a.count(MsgClass::Data), 2);
    }

    #[test]
    fn summary_is_nonempty() {
        let s = Stats::new();
        let text = s.summary();
        assert!(text.contains("DEV invalidations"));
        assert!(text.contains("DRAM"));
    }
}

#[cfg(test)]
mod breakdown_tests {
    use super::*;

    #[test]
    fn per_class_bytes_sum_to_total() {
        let mut s = Stats::new();
        for (i, c) in ALL_CLASSES.iter().enumerate() {
            s.msg_n(*c, (i + 1) as u64);
        }
        let sum: u64 = ALL_CLASSES.iter().map(|c| s.bytes(*c)).sum();
        assert_eq!(sum, s.total_traffic_bytes());
        // Every class was recorded.
        for c in ALL_CLASSES {
            assert!(s.count(c) > 0);
        }
    }

    #[test]
    fn merge_is_associative_on_counters() {
        let mut a = Stats::new();
        a.dram_reads = 3;
        let mut b = Stats::new();
        b.dram_reads = 4;
        let mut c = Stats::new();
        c.dram_reads = 5;
        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c.dram_reads, a_bc.dram_reads);
    }
}
