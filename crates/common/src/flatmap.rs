//! A flat open-addressing hash map keyed by `u64`, tuned for the protocol
//! engine's hot paths.
//!
//! `std::collections::HashMap` defends against adversarial keys with
//! SipHash; the simulator's keys are block addresses it generates itself, so
//! that cost is pure overhead on every unbounded-directory and
//! corrupted-block lookup. [`FlatMap`] instead uses Fibonacci hashing (a
//! single multiply + shift) over linear-probed flat arrays — keys in one
//! lane, values in another — so probes stay within one or two cache lines.
//!
//! Iteration order is *slot order*: a deterministic function of the
//! insertion/removal history, never of pointer values or a per-process seed.
//! (The std map's iteration order is seeded per process; everything that
//! iterates these maps either sorts afterwards or tolerates any order, and
//! determinism across runs is an improvement.)

/// Multiplicative constant for Fibonacci hashing: `2^64 / φ`, rounded to odd.
const PHI: u64 = 0x9E37_79B9_7F4A_7C15;

/// Slot-count floor; small maps still probe fast and grow geometrically.
const MIN_CAP: usize = 16;

/// A `u64 → V` open-addressing hash map with linear probing and
/// backward-shift deletion. Grows at 7/8 occupancy; never shrinks.
#[derive(Clone, Debug)]
pub struct FlatMap<V> {
    /// Key lane; meaningful only where `vals` is `Some`.
    keys: Vec<u64>,
    /// Value lane; `Some` marks an occupied slot.
    vals: Vec<Option<V>>,
    /// Occupied-slot count.
    len: usize,
    /// `64 - log2(capacity)`: the Fibonacci-hash shift.
    shift: u32,
}

impl<V> Default for FlatMap<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> FlatMap<V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::with_capacity(MIN_CAP)
    }

    /// Creates an empty map with at least `cap` slots.
    pub fn with_capacity(cap: usize) -> Self {
        let cap = cap.max(MIN_CAP).next_power_of_two();
        let mut vals = Vec::with_capacity(cap);
        vals.resize_with(cap, || None);
        FlatMap {
            keys: vec![0; cap],
            vals,
            len: 0,
            shift: 64 - cap.trailing_zeros(),
        }
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the map holds no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn mask(&self) -> usize {
        self.keys.len() - 1
    }

    #[inline]
    fn home(&self, key: u64) -> usize {
        (key.wrapping_mul(PHI) >> self.shift) as usize
    }

    /// The slot holding `key`, or the first free slot of its probe chain.
    #[inline]
    fn probe(&self, key: u64) -> usize {
        let mask = self.mask();
        let mut i = self.home(key);
        loop {
            if self.vals[i].is_none() || self.keys[i] == key {
                return i;
            }
            i = (i + 1) & mask;
        }
    }

    /// Returns a reference to the value for `key`.
    #[inline]
    pub fn get(&self, key: u64) -> Option<&V> {
        let i = self.probe(key);
        if self.keys[i] == key {
            self.vals[i].as_ref()
        } else {
            None
        }
    }

    /// Returns a mutable reference to the value for `key`.
    #[inline]
    pub fn get_mut(&mut self, key: u64) -> Option<&mut V> {
        let i = self.probe(key);
        if self.keys[i] == key {
            self.vals[i].as_mut()
        } else {
            None
        }
    }

    /// True when `key` is present.
    #[inline]
    pub fn contains_key(&self, key: u64) -> bool {
        self.get(key).is_some()
    }

    /// Inserts `val` for `key`, returning the previous value if any.
    pub fn insert(&mut self, key: u64, val: V) -> Option<V> {
        self.reserve_one();
        let i = self.probe(key);
        if self.vals[i].is_some() {
            debug_assert_eq!(self.keys[i], key);
            self.vals[i].replace(val)
        } else {
            self.keys[i] = key;
            self.vals[i] = Some(val);
            self.len += 1;
            None
        }
    }

    /// Returns a mutable reference to the value for `key`, inserting the
    /// default first when absent (the `entry(k).or_default()` idiom).
    pub fn get_or_default(&mut self, key: u64) -> &mut V
    where
        V: Default,
    {
        self.reserve_one();
        let i = self.probe(key);
        if self.vals[i].is_none() {
            self.keys[i] = key;
            self.vals[i] = Some(V::default());
            self.len += 1;
        }
        self.vals[i].as_mut().expect("slot just filled")
    }

    /// Removes `key`, returning its value if present. Uses backward-shift
    /// deletion: later entries of the probe chain move up, so no tombstones
    /// accumulate and lookups never slow down over time.
    pub fn remove(&mut self, key: u64) -> Option<V> {
        let mut i = self.probe(key);
        self.vals[i].as_ref()?;
        let out = self.vals[i].take();
        self.len -= 1;
        // Backward-shift: close the hole so probe chains stay contiguous.
        let mask = self.mask();
        let mut j = i;
        loop {
            j = (j + 1) & mask;
            if self.vals[j].is_none() {
                break;
            }
            let home = self.home(self.keys[j]);
            // `j`'s entry may shift into the hole at `i` only if its home
            // position does not lie (cyclically) strictly after `i`.
            let between = if i <= j {
                home > i && home <= j
            } else {
                home > i || home <= j
            };
            if !between {
                self.keys[i] = self.keys[j];
                self.vals[i] = self.vals[j].take();
                i = j;
            }
        }
        out
    }

    /// Iterates over `(key, &value)` pairs in slot order (deterministic for
    /// a given history of operations).
    pub fn iter(&self) -> impl Iterator<Item = (u64, &V)> + '_ {
        self.keys
            .iter()
            .zip(self.vals.iter())
            .filter_map(|(&k, v)| v.as_ref().map(|v| (k, v)))
    }

    /// Serializes the map *lane-exactly* for checkpointing: capacity, length,
    /// hash shift, and every slot (occupied flag, key, value). Re-inserting
    /// the entries would not reproduce wrap-around probe clusters, and slot
    /// order feeds deterministic victim selection in the fault injector, so
    /// byte-identical resume requires the raw layout.
    pub fn snapshot_with(
        &self,
        w: &mut crate::snap::SnapWriter,
        mut ser: impl FnMut(&mut crate::snap::SnapWriter, &V),
    ) {
        w.usize(self.keys.len());
        w.usize(self.len);
        w.u32(self.shift);
        for (k, v) in self.keys.iter().zip(self.vals.iter()) {
            match v {
                Some(v) => {
                    w.bool(true);
                    w.u64(*k);
                    ser(w, v);
                }
                None => w.bool(false),
            }
        }
    }

    /// Rebuilds a map from a [`FlatMap::snapshot_with`] image.
    pub fn restore_with(
        r: &mut crate::snap::SnapReader<'_>,
        mut de: impl FnMut(&mut crate::snap::SnapReader<'_>) -> Result<V, crate::snap::SnapError>,
    ) -> Result<Self, crate::snap::SnapError> {
        use crate::snap::SnapError;
        let cap = r.usize("flatmap capacity")?;
        if !cap.is_power_of_two() || cap < MIN_CAP {
            return Err(SnapError::Corrupt {
                context: "flatmap capacity",
            });
        }
        let len = r.usize("flatmap len")?;
        let shift = r.u32("flatmap shift")?;
        if shift != 64 - cap.trailing_zeros() || len > cap {
            return Err(SnapError::Corrupt {
                context: "flatmap shift/len",
            });
        }
        let mut keys = vec![0u64; cap];
        let mut vals = Vec::with_capacity(cap);
        let mut occupied = 0usize;
        for key in keys.iter_mut() {
            if r.bool("flatmap slot flag")? {
                *key = r.u64("flatmap key")?;
                vals.push(Some(de(r)?));
                occupied += 1;
            } else {
                vals.push(None);
            }
        }
        if occupied != len {
            return Err(SnapError::Corrupt {
                context: "flatmap occupancy",
            });
        }
        Ok(FlatMap {
            keys,
            vals,
            len,
            shift,
        })
    }

    /// Grows the table when one more insertion would pass 7/8 occupancy.
    fn reserve_one(&mut self) {
        if (self.len + 1) * 8 <= self.keys.len() * 7 {
            return;
        }
        let new_cap = self.keys.len() * 2;
        let old_keys = std::mem::replace(&mut self.keys, vec![0; new_cap]);
        let mut new_vals = Vec::with_capacity(new_cap);
        new_vals.resize_with(new_cap, || None);
        let old_vals = std::mem::replace(&mut self.vals, new_vals);
        self.shift = 64 - new_cap.trailing_zeros();
        self.len = 0;
        for (k, v) in old_keys.into_iter().zip(old_vals) {
            if let Some(v) = v {
                let i = self.probe(k);
                self.keys[i] = k;
                self.vals[i] = Some(v);
                self.len += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove() {
        let mut m: FlatMap<u32> = FlatMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(7, 70), None);
        assert_eq!(m.insert(7, 71), Some(70));
        assert_eq!(m.get(7), Some(&71));
        assert!(m.contains_key(7));
        assert_eq!(m.len(), 1);
        assert_eq!(m.remove(7), Some(71));
        assert_eq!(m.remove(7), None);
        assert!(m.get(7).is_none());
        assert!(m.is_empty());
    }

    #[test]
    fn get_mut_and_or_default() {
        let mut m: FlatMap<Vec<u32>> = FlatMap::new();
        m.get_or_default(3).push(1);
        m.get_or_default(3).push(2);
        assert_eq!(m.get(3), Some(&vec![1, 2]));
        m.get_mut(3).unwrap().clear();
        assert_eq!(m.get(3), Some(&vec![]));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn grows_past_initial_capacity() {
        let mut m: FlatMap<u64> = FlatMap::with_capacity(MIN_CAP);
        for k in 0..10_000u64 {
            // Spread keys to stress probe chains across resizes.
            m.insert(k.wrapping_mul(0x1234_5678_9abc_def1), k);
        }
        assert_eq!(m.len(), 10_000);
        for k in 0..10_000u64 {
            assert_eq!(m.get(k.wrapping_mul(0x1234_5678_9abc_def1)), Some(&k));
        }
    }

    #[test]
    fn backward_shift_keeps_chains_reachable() {
        // Dense sequential keys collide heavily after the multiply; delete
        // every other key and verify the survivors are still reachable.
        let mut m: FlatMap<u64> = FlatMap::new();
        for k in 0..1_000u64 {
            m.insert(k, k * 10);
        }
        for k in (0..1_000u64).step_by(2) {
            assert_eq!(m.remove(k), Some(k * 10));
        }
        assert_eq!(m.len(), 500);
        for k in 0..1_000u64 {
            if k % 2 == 0 {
                assert_eq!(m.get(k), None);
            } else {
                assert_eq!(m.get(k), Some(&(k * 10)));
            }
        }
        // Re-insert into the holes.
        for k in (0..1_000u64).step_by(2) {
            assert_eq!(m.insert(k, k), None);
        }
        assert_eq!(m.len(), 1_000);
    }

    #[test]
    fn iteration_is_deterministic_and_complete() {
        let build = || {
            let mut m: FlatMap<u64> = FlatMap::new();
            for k in [9u64, 1, 55, 1 << 40, 7, 3] {
                m.insert(k, k + 1);
            }
            m.remove(55);
            m
        };
        let a: Vec<(u64, u64)> = build().iter().map(|(k, v)| (k, *v)).collect();
        let b: Vec<(u64, u64)> = build().iter().map(|(k, v)| (k, *v)).collect();
        assert_eq!(a, b, "same history, same order");
        let mut keys: Vec<u64> = a.iter().map(|(k, _)| *k).collect();
        keys.sort_unstable();
        assert_eq!(keys, vec![1, 3, 7, 9, 1 << 40]);
    }

    #[test]
    fn zero_key_is_an_ordinary_key() {
        let mut m: FlatMap<u8> = FlatMap::new();
        assert_eq!(m.get(0), None, "empty slots do not fake key 0");
        m.insert(0, 5);
        assert_eq!(m.get(0), Some(&5));
        assert_eq!(m.remove(0), Some(5));
        assert_eq!(m.get(0), None);
    }
}
