//! A small, fast, fully deterministic PRNG (xoshiro256**) used everywhere a
//! simulation needs randomness.
//!
//! The simulator must be bit-for-bit reproducible from a seed so that every
//! figure regenerates identically; `Prng` avoids depending on external crate
//! version churn for that guarantee. Seeding uses SplitMix64 as recommended
//! by the xoshiro authors.

/// Deterministic xoshiro256** generator.
///
/// ```
/// use zerodev_common::Prng;
/// let mut a = Prng::seeded(42);
/// let mut b = Prng::seeded(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let x = a.below(10);
/// assert!(x < 10);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Prng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Prng {
    /// Creates a generator from a 64-bit seed.
    pub fn seeded(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Prng { s }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `0..bound`.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Lemire's multiply-shift rejection-free approximation is fine for
        // simulation purposes (bias < 2^-32 for bounds below 2^32).
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform f64 in `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit_f64() < p
    }

    /// Forks an independent child generator; the child's stream is decorrelated
    /// from the parent's continuation.
    pub fn fork(&mut self) -> Prng {
        Prng::seeded(self.next_u64() ^ 0xa076_1d64_78bd_642f)
    }

    /// The raw xoshiro256** state, for checkpointing. Restoring it with
    /// [`Prng::from_state`] resumes the stream mid-sequence exactly.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from a captured [`Prng::state`].
    pub fn from_state(s: [u64; 4]) -> Prng {
        Prng { s }
    }
}

/// A discrete Zipf-like sampler over `0..n` with exponent `theta`, using the
/// standard inverse-CDF power approximation (as used by YCSB). Captures the
/// skewed block popularity of real workloads at negligible cost.
#[derive(Clone, Debug)]
pub struct Zipf {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2: f64,
}

impl Zipf {
    /// Creates a sampler over `0..n` with skew `theta` in `[0, 1)`;
    /// `theta = 0` degenerates to uniform.
    ///
    /// # Panics
    /// Panics if `n == 0` or `theta` is not in `[0, 1)`.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "population must be positive");
        assert!((0.0..1.0).contains(&theta), "theta must be in [0,1)");
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2.min(n), theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipf {
            n,
            theta,
            alpha,
            zetan,
            eta,
            zeta2: 0.0_f64.max(zeta2),
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // Exact for small n, integral approximation for large n.
        if n <= 10_000 {
            (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
        } else {
            let head: f64 = (1..=10_000u64).map(|i| 1.0 / (i as f64).powf(theta)).sum();
            let tail = ((n as f64).powf(1.0 - theta) - 10_000f64.powf(1.0 - theta)) / (1.0 - theta);
            head + tail
        }
    }

    /// Draws one sample in `0..n` (0 is the most popular item).
    pub fn sample(&self, rng: &mut Prng) -> u64 {
        if self.theta == 0.0 {
            return rng.below(self.n);
        }
        let u = rng.unit_f64();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5_f64.powf(self.theta) && self.n >= 2 {
            return 1;
        }
        let _ = self.zeta2;
        let v = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        v.min(self.n - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = Prng::seeded(7);
        let mut b = Prng::seeded(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Prng::seeded(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut r = Prng::seeded(1);
        for bound in [1u64, 2, 7, 1000, 1 << 40] {
            for _ in 0..200 {
                assert!(r.below(bound) < bound);
            }
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn below_zero_panics() {
        Prng::seeded(0).below(0);
    }

    #[test]
    fn unit_in_range() {
        let mut r = Prng::seeded(3);
        for _ in 0..1000 {
            let x = r.unit_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = Prng::seeded(5);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn fork_decorrelates() {
        let mut a = Prng::seeded(9);
        let mut child = a.fork();
        // The child stream differs from the parent continuation.
        assert_ne!(child.next_u64(), a.clone().next_u64());
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut r = Prng::seeded(11);
        let mut buckets = [0u32; 8];
        for _ in 0..8000 {
            buckets[r.below(8) as usize] += 1;
        }
        for &b in &buckets {
            assert!((700..1300).contains(&b), "bucket count {b} out of range");
        }
    }

    #[test]
    fn zipf_skews_toward_zero() {
        let z = Zipf::new(1000, 0.9);
        let mut r = Prng::seeded(13);
        let mut zero_hits = 0;
        let mut top_decile = 0;
        for _ in 0..10_000 {
            let s = z.sample(&mut r);
            assert!(s < 1000);
            if s == 0 {
                zero_hits += 1;
            }
            if s < 100 {
                top_decile += 1;
            }
        }
        assert!(zero_hits > 500, "item 0 should be hot: {zero_hits}");
        assert!(top_decile > 6000, "head should dominate: {top_decile}");
    }

    #[test]
    fn zipf_zero_theta_is_uniform() {
        let z = Zipf::new(100, 0.0);
        let mut r = Prng::seeded(17);
        let mut lo = 0;
        for _ in 0..10_000 {
            if z.sample(&mut r) < 50 {
                lo += 1;
            }
        }
        assert!((4500..5500).contains(&lo));
    }

    #[test]
    fn zipf_large_population() {
        let z = Zipf::new(1 << 24, 0.8);
        let mut r = Prng::seeded(19);
        for _ in 0..1000 {
            assert!(z.sample(&mut r) < (1 << 24));
        }
    }

    #[test]
    #[should_panic(expected = "population")]
    fn zipf_empty_panics() {
        let _ = Zipf::new(0, 0.5);
    }
}
