//! MESI coherence states.
//!
//! Two views exist in a directory protocol:
//!
//! * [`MesiState`] — the state a *private cache* holds a block in.
//! * [`DirState`]  — the state a *directory entry* records. As in the SGI
//!   Origin protocol the paper bases itself on, the directory cannot
//!   distinguish M from E (footnote 2 of the paper), so it records only
//!   `OwnedME` (one owner in M or E) vs `Shared`.

use std::fmt;

/// Private-cache MESI state of a block copy.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MesiState {
    /// Modified: sole, dirty copy.
    Modified,
    /// Exclusive: sole, clean copy.
    Exclusive,
    /// Shared: one of possibly many clean copies.
    Shared,
    /// Invalid / not present.
    Invalid,
}

impl MesiState {
    /// True for M and E: the core is the sole owner and may have or may
    /// silently create dirty data (E upgrades to M without a message).
    #[inline]
    pub fn is_owned(self) -> bool {
        matches!(self, MesiState::Modified | MesiState::Exclusive)
    }

    /// True when the copy is present (not Invalid).
    #[inline]
    pub fn is_valid(self) -> bool {
        self != MesiState::Invalid
    }
}

impl fmt::Display for MesiState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self {
            MesiState::Modified => 'M',
            MesiState::Exclusive => 'E',
            MesiState::Shared => 'S',
            MesiState::Invalid => 'I',
        };
        write!(f, "{c}")
    }
}

/// Directory-entry coherence state.
///
/// A directory entry exists only while at least one private copy exists, so
/// there is no Invalid variant; absence of an entry means "untracked".
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum DirState {
    /// One core owns the block in M or E (indistinguishable to the directory).
    OwnedME,
    /// One or more cores hold the block in S.
    Shared,
}

impl DirState {
    /// True for the owned (M/E) state.
    #[inline]
    pub fn is_owned(self) -> bool {
        self == DirState::OwnedME
    }
}

impl fmt::Display for DirState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DirState::OwnedME => write!(f, "M/E"),
            DirState::Shared => write!(f, "S"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owned_predicate() {
        assert!(MesiState::Modified.is_owned());
        assert!(MesiState::Exclusive.is_owned());
        assert!(!MesiState::Shared.is_owned());
        assert!(!MesiState::Invalid.is_owned());
        assert!(DirState::OwnedME.is_owned());
        assert!(!DirState::Shared.is_owned());
    }

    #[test]
    fn validity() {
        assert!(MesiState::Shared.is_valid());
        assert!(!MesiState::Invalid.is_valid());
    }

    #[test]
    fn display() {
        assert_eq!(MesiState::Modified.to_string(), "M");
        assert_eq!(MesiState::Invalid.to_string(), "I");
        assert_eq!(DirState::OwnedME.to_string(), "M/E");
        assert_eq!(DirState::Shared.to_string(), "S");
    }
}
