//! Graceful environment-variable parsing shared by every harness.
//!
//! The harness knobs (`ZERODEV_THREADS`, `ZERODEV_QUICK`, `ZERODEV_AUDIT`,
//! `ZERODEV_FAULTS`) are read in many binaries; a typo must never silently
//! change behaviour or abort a multi-hour sweep. Every reader funnels
//! through these helpers: an unparsable value earns one warning on stderr
//! and the documented default, never a panic and never silence.
//!
//! The parsing core is a pure function over `Option<&str>` so unit tests
//! never have to mutate the process environment (which races between
//! threaded tests).

use std::fmt::Display;
use std::str::FromStr;

/// Parses `raw` — the value of the environment variable `name`, or `None`
/// when unset — falling back to `default` with a warning on stderr when the
/// value does not parse.
pub fn parse_or<T>(name: &str, raw: Option<&str>, default: T) -> T
where
    T: FromStr,
    T::Err: Display,
{
    match raw {
        None => default,
        Some(v) => match v.trim().parse::<T>() {
            Ok(x) => x,
            Err(e) => {
                eprintln!("warning: ignoring {name}={v:?} ({e}); using the default");
                default
            }
        },
    }
}

/// Reads and parses the environment variable `name` via [`parse_or`].
pub fn var_or<T>(name: &str, default: T) -> T
where
    T: FromStr,
    T::Err: Display,
{
    let raw = std::env::var(name).ok();
    parse_or(name, raw.as_deref(), default)
}

/// Interprets `raw` as a boolean flag: `1`/`true`/`yes`/`on` enable,
/// `0`/`false`/`no`/`off` (and unset) disable, anything else warns to
/// stderr and disables. Matching is case-insensitive.
pub fn parse_flag(name: &str, raw: Option<&str>) -> bool {
    let Some(v) = raw else { return false };
    match v.trim().to_ascii_lowercase().as_str() {
        "1" | "true" | "yes" | "on" => true,
        "" | "0" | "false" | "no" | "off" => false,
        _ => {
            eprintln!("warning: ignoring {name}={v:?} (expected 0/1); treating as unset");
            false
        }
    }
}

/// Reads the environment variable `name` as a flag via [`parse_flag`].
pub fn var_flag(name: &str) -> bool {
    let raw = std::env::var(name).ok();
    parse_flag(name, raw.as_deref())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unset_takes_default() {
        assert_eq!(parse_or("ZERODEV_THREADS", None, 7usize), 7);
        assert!(!parse_flag("ZERODEV_QUICK", None));
    }

    #[test]
    fn valid_values_parse() {
        assert_eq!(parse_or("ZERODEV_THREADS", Some("12"), 7usize), 12);
        assert_eq!(parse_or("ZERODEV_THREADS", Some("  3 "), 7usize), 3);
        assert_eq!(parse_or("X", Some("2.5"), 1.0f64), 2.5);
    }

    #[test]
    fn garbage_falls_back_to_default() {
        assert_eq!(parse_or("ZERODEV_THREADS", Some("many"), 7usize), 7);
        assert_eq!(parse_or("ZERODEV_THREADS", Some("-4"), 7usize), 7);
        assert_eq!(parse_or("ZERODEV_THREADS", Some(""), 7usize), 7);
    }

    #[test]
    fn flags_accept_common_spellings() {
        for v in ["1", "true", "YES", "On"] {
            assert!(parse_flag("ZERODEV_AUDIT", Some(v)), "{v}");
        }
        for v in ["0", "false", "no", "OFF", ""] {
            assert!(!parse_flag("ZERODEV_AUDIT", Some(v)), "{v}");
        }
    }

    #[test]
    fn garbage_flag_is_treated_as_unset() {
        assert!(!parse_flag("ZERODEV_QUICK", Some("enable-please")));
        assert!(!parse_flag("ZERODEV_QUICK", Some("2")));
    }
}
