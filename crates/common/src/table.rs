//! Plain-text table rendering for the figure harnesses.
//!
//! Every `figN` binary prints its series as an aligned text table; this
//! module keeps the formatting in one place.

/// A simple column-aligned text table builder.
///
/// ```
/// use zerodev_common::table::Table;
/// let mut t = Table::new(&["app", "speedup"]);
/// t.row(&["vips".to_string(), "0.98".to_string()]);
/// let s = t.render();
/// assert!(s.contains("vips"));
/// assert!(s.lines().count() >= 3);
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; short rows are padded with empty cells.
    pub fn row(&mut self, cells: &[String]) {
        let mut v: Vec<String> = cells.to_vec();
        while v.len() < self.header.len() {
            v.push(String::new());
        }
        self.rows.push(v);
    }

    /// Convenience: appends a row of displayable items.
    pub fn row_display<T: std::fmt::Display>(&mut self, cells: &[T]) {
        self.row(&cells.iter().map(|c| c.to_string()).collect::<Vec<_>>());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns and a separator rule.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate().take(widths.len()) {
                if i > 0 {
                    line.push_str("  ");
                }
                // Right-align numeric-looking cells, left-align text.
                let numeric = c
                    .chars()
                    .all(|ch| ch.is_ascii_digit() || "+-.%eE".contains(ch))
                    && !c.is_empty();
                if numeric {
                    line.push_str(&format!("{c:>w$}", w = widths[i]));
                } else {
                    line.push_str(&format!("{c:<w$}", w = widths[i]));
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let rule_len = widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1));
        out.push_str(&"-".repeat(rule_len));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a normalised metric (e.g. speedup) with two decimals, the way the
/// paper's figures label their bars.
pub fn norm(v: f64) -> String {
    format!("{v:.3}")
}

/// Geometric mean of a slice of positive values (the paper's GEOMEAN bars).
///
/// # Panics
/// Panics if `values` is empty or any value is non-positive.
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of empty slice");
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "geomean requires positive values, got {v}");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

/// Arithmetic mean.
///
/// # Panics
/// Panics if `values` is empty.
pub fn mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "mean of empty slice");
    values.iter().sum::<f64>() / values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["alpha".into(), "1.000".into()]);
        t.row(&["b".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[1].starts_with('-'));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn numeric_cells_right_align() {
        let mut t = Table::new(&["col"]);
        t.row(&["5".into()]);
        t.row(&["500".into()]);
        let s = t.render();
        assert!(s.contains("  5\n"), "short numbers padded left: {s}");
    }

    #[test]
    fn row_display_works() {
        let mut t = Table::new(&["a", "b"]);
        t.row_display(&[1.5, 2.5]);
        assert!(t.render().contains("1.5"));
    }

    #[test]
    fn geomean_matches_hand_calc() {
        let g = geomean(&[1.0, 4.0]);
        assert!((g - 2.0).abs() < 1e-12);
        assert!((geomean(&[0.9, 0.9, 0.9]) - 0.9).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_nonpositive() {
        let _ = geomean(&[1.0, 0.0]);
    }

    #[test]
    fn mean_works() {
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn norm_format() {
        assert_eq!(norm(0.98765), "0.988");
    }
}
