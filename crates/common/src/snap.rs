//! Hand-rolled binary snapshot encoding for checkpoint/resume.
//!
//! The checkpoint subsystem (DESIGN.md §9) serializes the complete engine
//! state — caches, directories, event queue, RNG streams, fault-plan
//! cursors, statistics — to a versioned on-disk format. No external
//! serialization crates are used; every stateful type writes its fields in
//! declaration order through [`SnapWriter`] and reads them back through
//! [`SnapReader`]. The container format is:
//!
//! ```text
//! [magic: u64][version: u32][payload bytes][checksum: u64]
//! ```
//!
//! with the checksum an FNV-1a-64 over everything before it (magic and
//! version included). [`SnapReader::open`] verifies length, checksum,
//! magic, and version before any field is decoded, so a truncated or
//! corrupted checkpoint fails with a structured [`SnapError`] instead of
//! deserializing garbage. All integers are little-endian.

use std::fmt;

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x100_0000_01b3;

/// FNV-1a-64 over a byte slice (the checkpoint checksum).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    bytes.iter().fold(FNV_OFFSET, |h, &b| {
        (h ^ u64::from(b)).wrapping_mul(FNV_PRIME)
    })
}

/// Why a snapshot failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapError {
    /// The container does not start with the expected magic number.
    BadMagic { expected: u64, found: u64 },
    /// The container version is not the one this build reads.
    BadVersion { expected: u32, found: u32 },
    /// The checksum over the container does not match its trailer, or a
    /// decoded field failed a structural validity check (`context` names it).
    Corrupt { context: &'static str },
    /// The container ended before the field being decoded.
    Truncated { context: &'static str },
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::BadMagic { expected, found } => {
                write!(
                    f,
                    "bad magic: expected {expected:#018x}, found {found:#018x}"
                )
            }
            SnapError::BadVersion { expected, found } => {
                write!(f, "unsupported version: expected {expected}, found {found}")
            }
            SnapError::Corrupt { context } => write!(f, "corrupt snapshot: {context}"),
            SnapError::Truncated { context } => write!(f, "truncated snapshot at {context}"),
        }
    }
}

impl std::error::Error for SnapError {}

/// Append-only encoder. Construct with [`SnapWriter::new`], write fields in
/// declaration order, and seal the container with [`SnapWriter::finish`].
#[derive(Debug)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// Starts a container with the given magic number and format version.
    pub fn new(magic: u64, version: u32) -> Self {
        let mut w = SnapWriter {
            buf: Vec::with_capacity(4096),
        };
        w.u64(magic);
        w.u32(version);
        w
    }

    /// Appends the checksum trailer and returns the finished container.
    pub fn finish(mut self) -> Vec<u8> {
        let sum = fnv1a(&self.buf);
        self.buf.extend_from_slice(&sum.to_le_bytes());
        self.buf
    }

    /// Bytes written so far (header included, checksum excluded).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing beyond the header has been written. Present for
    /// `len`/`is_empty` symmetry; a fresh writer already holds its header.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// `usize` travels as `u64` (checkpoints must be portable across word
    /// sizes).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// `f64` travels as its IEEE-754 bit pattern (exact round-trip).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) {
        self.usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }
}

/// Sequential decoder over a finished container.
#[derive(Debug)]
pub struct SnapReader<'a> {
    /// Payload region (header included, checksum trailer excluded).
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// Verifies length, checksum, magic, and version, then positions the
    /// cursor at the first payload field.
    pub fn open(bytes: &'a [u8], magic: u64, version: u32) -> Result<Self, SnapError> {
        // Header (8 + 4) + checksum trailer (8).
        if bytes.len() < 20 {
            return Err(SnapError::Truncated {
                context: "container header",
            });
        }
        let (body, trailer) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(trailer.try_into().expect("8-byte trailer"));
        if fnv1a(body) != stored {
            return Err(SnapError::Corrupt {
                context: "container checksum",
            });
        }
        let mut r = SnapReader { buf: body, pos: 0 };
        let found_magic = r.u64("magic")?;
        if found_magic != magic {
            return Err(SnapError::BadMagic {
                expected: magic,
                found: found_magic,
            });
        }
        let found_version = r.u32("version")?;
        if found_version != version {
            return Err(SnapError::BadVersion {
                expected: version,
                found: found_version,
            });
        }
        Ok(r)
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], SnapError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(SnapError::Truncated { context })?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    pub fn u8(&mut self, context: &'static str) -> Result<u8, SnapError> {
        Ok(self.take(1, context)?[0])
    }

    pub fn bool(&mut self, context: &'static str) -> Result<bool, SnapError> {
        match self.u8(context)? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapError::Corrupt { context }),
        }
    }

    pub fn u16(&mut self, context: &'static str) -> Result<u16, SnapError> {
        Ok(u16::from_le_bytes(
            self.take(2, context)?.try_into().expect("2 bytes"),
        ))
    }

    pub fn u32(&mut self, context: &'static str) -> Result<u32, SnapError> {
        Ok(u32::from_le_bytes(
            self.take(4, context)?.try_into().expect("4 bytes"),
        ))
    }

    pub fn u64(&mut self, context: &'static str) -> Result<u64, SnapError> {
        Ok(u64::from_le_bytes(
            self.take(8, context)?.try_into().expect("8 bytes"),
        ))
    }

    pub fn u128(&mut self, context: &'static str) -> Result<u128, SnapError> {
        Ok(u128::from_le_bytes(
            self.take(16, context)?.try_into().expect("16 bytes"),
        ))
    }

    pub fn i64(&mut self, context: &'static str) -> Result<i64, SnapError> {
        Ok(i64::from_le_bytes(
            self.take(8, context)?.try_into().expect("8 bytes"),
        ))
    }

    pub fn usize(&mut self, context: &'static str) -> Result<usize, SnapError> {
        usize::try_from(self.u64(context)?).map_err(|_| SnapError::Corrupt { context })
    }

    pub fn f64(&mut self, context: &'static str) -> Result<f64, SnapError> {
        Ok(f64::from_bits(self.u64(context)?))
    }

    pub fn bytes(&mut self, context: &'static str) -> Result<&'a [u8], SnapError> {
        let n = self.usize(context)?;
        self.take(n, context)
    }

    pub fn str(&mut self, context: &'static str) -> Result<&'a str, SnapError> {
        std::str::from_utf8(self.bytes(context)?).map_err(|_| SnapError::Corrupt { context })
    }

    /// Asserts every payload byte was consumed — a length drift between
    /// writer and reader is a format bug, not a tolerable leftover.
    pub fn expect_end(&self) -> Result<(), SnapError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(SnapError::Corrupt {
                context: "trailing payload bytes",
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MAGIC: u64 = 0x5a44_5356_0001_cafe;

    #[test]
    fn round_trip_every_field_kind() {
        let mut w = SnapWriter::new(MAGIC, 3);
        w.u8(7);
        w.bool(true);
        w.bool(false);
        w.u16(0xbeef);
        w.u32(0xdead_beef);
        w.u64(u64::MAX - 1);
        w.u128((1u128 << 100) | 17);
        w.i64(-42);
        w.usize(123_456);
        w.f64(-0.125);
        w.bytes(&[1, 2, 3]);
        w.str("torture");
        let buf = w.finish();

        let mut r = SnapReader::open(&buf, MAGIC, 3).expect("opens");
        assert_eq!(r.u8("a").unwrap(), 7);
        assert!(r.bool("b").unwrap());
        assert!(!r.bool("c").unwrap());
        assert_eq!(r.u16("d").unwrap(), 0xbeef);
        assert_eq!(r.u32("e").unwrap(), 0xdead_beef);
        assert_eq!(r.u64("f").unwrap(), u64::MAX - 1);
        assert_eq!(r.u128("g").unwrap(), (1u128 << 100) | 17);
        assert_eq!(r.i64("h").unwrap(), -42);
        assert_eq!(r.usize("i").unwrap(), 123_456);
        assert_eq!(r.f64("j").unwrap(), -0.125);
        assert_eq!(r.bytes("k").unwrap(), &[1, 2, 3]);
        assert_eq!(r.str("l").unwrap(), "torture");
        r.expect_end().unwrap();
    }

    #[test]
    fn wrong_magic_version_and_bitflips_are_rejected() {
        let mut w = SnapWriter::new(MAGIC, 1);
        w.u64(99);
        let buf = w.finish();
        assert!(matches!(
            SnapReader::open(&buf, MAGIC ^ 1, 1),
            Err(SnapError::BadMagic { .. })
        ));
        assert!(matches!(
            SnapReader::open(&buf, MAGIC, 2),
            Err(SnapError::BadVersion { .. })
        ));
        for i in 0..buf.len() {
            let mut bad = buf.clone();
            bad[i] ^= 0x40;
            // Any single bit flip must fail to open (checksum, magic, or
            // version catches it — never a silent success).
            assert!(
                SnapReader::open(&bad, MAGIC, 1).is_err(),
                "flip at byte {i} accepted"
            );
        }
    }

    #[test]
    fn truncation_and_trailing_bytes_are_structured_errors() {
        let mut w = SnapWriter::new(MAGIC, 1);
        w.u64(5);
        w.u64(6);
        let buf = w.finish();
        assert!(matches!(
            SnapReader::open(&buf[..10], MAGIC, 1),
            Err(SnapError::Truncated { .. })
        ));
        let mut r = SnapReader::open(&buf, MAGIC, 1).unwrap();
        assert_eq!(r.u64("x").unwrap(), 5);
        assert!(matches!(r.expect_end(), Err(SnapError::Corrupt { .. })));
        assert_eq!(r.u64("y").unwrap(), 6);
        r.expect_end().unwrap();
        assert!(matches!(r.u64("z"), Err(SnapError::Truncated { .. })));
    }

    #[test]
    fn bool_rejects_non_canonical_bytes() {
        let mut w = SnapWriter::new(MAGIC, 1);
        w.u8(2);
        let buf = w.finish();
        let mut r = SnapReader::open(&buf, MAGIC, 1).unwrap();
        assert!(matches!(r.bool("flag"), Err(SnapError::Corrupt { .. })));
    }
}
