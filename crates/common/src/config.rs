//! Simulated-machine description.
//!
//! [`SystemConfig`] captures Table I of the paper plus every design knob the
//! evaluation sweeps: sparse-directory kind and size, ZeroDEV policy, LLC
//! design (non-inclusive / EPD / inclusive), LLC capacity/associativity, core
//! count and socket count.

use crate::ids::{BankId, BlockAddr, SocketId, BLOCK_BYTES};
use std::fmt;

/// Error returned by [`SystemConfig::validate`] for inconsistent machines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError(pub String);

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid system configuration: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

/// An exact rational directory-size ratio `R` (entries per aggregate private
/// last-level-cache block), e.g. `1×`, `1/8×`, `1/32×`.
///
/// ```
/// use zerodev_common::config::Ratio;
/// assert_eq!(Ratio::ONE.apply(32768), 32768);
/// assert_eq!(Ratio::new(1, 8).apply(32768), 4096);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Ratio {
    num: u32,
    den: u32,
}

impl Ratio {
    /// The well-provisioned `1×` baseline ratio.
    pub const ONE: Ratio = Ratio { num: 1, den: 1 };

    /// Creates a ratio `num/den`.
    ///
    /// # Panics
    /// Panics if `den == 0` or `num == 0`.
    pub fn new(num: u32, den: u32) -> Self {
        assert!(num > 0 && den > 0, "ratio must be positive");
        Ratio { num, den }
    }

    /// Applies the ratio to a count, rounding down but never below 1.
    pub fn apply(self, count: usize) -> usize {
        (count * self.num as usize / self.den as usize).max(1)
    }

    /// Ratio value as a float (for printing).
    pub fn as_f64(self) -> f64 {
        f64::from(self.num) / f64::from(self.den)
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}x", self.num)
        } else {
            write!(f, "{}/{}x", self.num, self.den)
        }
    }
}

/// Geometry of one set-associative cache structure.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CacheGeometry {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes.
    pub block_bytes: usize,
}

impl CacheGeometry {
    /// Creates a geometry.
    pub fn new(size_bytes: usize, ways: usize) -> Self {
        CacheGeometry {
            size_bytes,
            ways,
            block_bytes: BLOCK_BYTES,
        }
    }

    /// Number of lines.
    pub fn lines(&self) -> usize {
        self.size_bytes / self.block_bytes
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.lines() / self.ways
    }
}

/// The sparse-directory design plugged into the uncore.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DirectoryKind {
    /// A traditional set-associative sparse directory sized `ratio ×` the
    /// aggregate private-L2 block count, with 1-bit NRU replacement (the
    /// paper's baseline). With `replacement_disabled`, a conflict overflows
    /// to the LLC instead of evicting (ZeroDEV §III-C4) — only meaningful
    /// when ZeroDEV is enabled.
    Sparse {
        /// Entries relative to aggregate private-L2 blocks.
        ratio: Ratio,
        /// Set associativity (8 in all paper configurations).
        ways: usize,
        /// ZeroDEV option: never evict; overflow to the LLC.
        replacement_disabled: bool,
    },
    /// An unlimited-capacity directory (the paper's idealised comparison
    /// point in Figures 2–4).
    Unbounded,
    /// No dedicated directory structure at all; every entry lives in the LLC
    /// (ZeroDEV "No Dir" configurations). Invalid without ZeroDEV.
    None,
    /// SecDir (Yan et al., ISCA 2019): per-core private partitions plus a
    /// shared partition, iso-storage with a `ratio ×` baseline directory.
    SecDir(SecDirGeometry),
    /// Multi-grain Directory (Zebchuk et al., MICRO 2013): one entry can
    /// track a private 1 KB region; shared blocks get block-grain entries.
    MultiGrain {
        /// Entries relative to aggregate private-L2 blocks.
        ratio: Ratio,
        /// Set associativity.
        ways: usize,
    },
}

/// Per-slice SecDir partition geometry.
///
/// The paper's 8-core 1× configuration partitions each 512-set × 8-way
/// baseline slice into eight private zones of 32 sets × 7 ways plus a shared
/// zone of 512 sets × 5 ways.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SecDirGeometry {
    /// Sets in the shared partition of one slice.
    pub shared_sets: usize,
    /// Ways in the shared partition.
    pub shared_ways: usize,
    /// Sets in each per-core private partition of one slice.
    pub private_sets: usize,
    /// Ways in each per-core private partition.
    pub private_ways: usize,
}

impl SecDirGeometry {
    /// The paper's 8-core, 1×-iso-storage geometry.
    pub fn eight_core_1x() -> Self {
        SecDirGeometry {
            shared_sets: 512,
            shared_ways: 5,
            private_sets: 32,
            private_ways: 7,
        }
    }

    /// The paper's 8-core, 1/8×-iso-storage geometry (sets divided by 8,
    /// associativity unchanged).
    pub fn eight_core_eighth() -> Self {
        SecDirGeometry {
            shared_sets: 64,
            shared_ways: 5,
            private_sets: 4,
            private_ways: 7,
        }
    }

    /// The paper's 128-core, 1× geometry: 128 private zones of 4 sets ×
    /// 8 ways and a shared zone of 256 sets × 4 ways per slice.
    pub fn server_1x() -> Self {
        SecDirGeometry {
            shared_sets: 256,
            shared_ways: 4,
            private_sets: 4,
            private_ways: 8,
        }
    }

    /// The paper's 128-core, 1/8× geometry: four-way fully-associative
    /// private partitions and a 32-set × 4-way shared partition.
    pub fn server_eighth() -> Self {
        SecDirGeometry {
            shared_sets: 32,
            shared_ways: 4,
            private_sets: 1,
            private_ways: 4,
        }
    }
}

/// The LLC design being simulated (§III-A, §III-E, §III-F).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum LlcDesign {
    /// Non-inclusive, non-exclusive with always-fill on demand (baseline):
    /// demand fills from memory allocate in the LLC *and* the requester's
    /// private caches; LLC evictions do not invalidate core caches.
    NonInclusive,
    /// Exclusive-private-data (AMD Magny-Cours style): M/E blocks live only
    /// in private caches; the LLC holds shared and evicted-owner blocks.
    Epd,
    /// Inclusive: every privately cached block is also in the LLC; LLC
    /// eviction back-invalidates core caches.
    Inclusive,
}

impl fmt::Display for LlcDesign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LlcDesign::NonInclusive => write!(f, "non-inclusive"),
            LlcDesign::Epd => write!(f, "EPD"),
            LlcDesign::Inclusive => write!(f, "inclusive"),
        }
    }
}

/// ZeroDEV directory-entry caching policy in the LLC (§III-C).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SpillPolicy {
    /// Every overflowing entry takes a full LLC line (§III-C1).
    SpillAll,
    /// Fuse into the tracked block's line when its state is M/E, spill when
    /// S (§III-C2). The policy the paper selects.
    FusePrivateSpillShared,
    /// Fuse whenever the tracked block is LLC-resident, regardless of state;
    /// spill otherwise (§III-C3, ICCI-derived).
    FuseAll,
}

impl fmt::Display for SpillPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpillPolicy::SpillAll => write!(f, "SpillAll"),
            SpillPolicy::FusePrivateSpillShared => write!(f, "FPSS"),
            SpillPolicy::FuseAll => write!(f, "FuseAll"),
        }
    }
}

/// LLC replacement-policy extension protecting cached directory entries
/// (§III-D1).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum LlcReplacement {
    /// Plain LRU (baseline; treats directory-entry lines like data lines).
    Lru,
    /// spill-protect LRU: a spilled entry is bumped to MRU right after its
    /// block, so the block is always evicted first.
    SpLru,
    /// dataLRU: victimise every ordinary data/code line in the set before
    /// any spilled or fused entry. The policy the paper selects.
    DataLru,
}

impl fmt::Display for LlcReplacement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LlcReplacement::Lru => write!(f, "LRU"),
            LlcReplacement::SpLru => write!(f, "spLRU"),
            LlcReplacement::DataLru => write!(f, "dataLRU"),
        }
    }
}

/// Socket-level directory handling in multi-socket systems (§III-D5).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SocketDirBacking {
    /// Back the socket-level directory in home memory (first solution; used
    /// for the paper's four-socket evaluation, baseline and ZeroDEV).
    MemoryBacked,
    /// ZeroDEV applied to socket-level entries: reserve a per-block memory
    /// partition plus a DirEvict bit (second solution, constant overhead).
    DirEvictBit,
}

/// How memory-housed directory-entry segments encode their sharer sets
/// (§III-D: full-map is the paper's evaluated configuration; the hybrid
/// limited-pointer / coarse-vector format is its scaling option for large
/// socket counts — coarse decoding yields a safe superset of the sharers).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SegmentFormat {
    /// One bit per core plus a state bit (`N + 1` bits per segment).
    FullMap,
    /// Up to `max_pointers` exact pointers, falling back to a coarse vector
    /// of `coarse_bits` group bits.
    Hybrid {
        /// Pointer slots before falling back to coarse mode.
        max_pointers: u8,
        /// Coarse-vector width in bits (≤ 64).
        coarse_bits: u8,
    },
}

impl SegmentFormat {
    /// Segment size in bits for an `N`-core socket, excluding the shared
    /// valid/corrupted bookkeeping (§III-D: `N + 1` bits full-map; the
    /// hybrid uses 1 state bit + 1 mode bit + the wider of its two fields).
    pub fn segment_bits(self, cores: usize) -> u32 {
        match self {
            SegmentFormat::FullMap => cores as u32 + 1,
            SegmentFormat::Hybrid {
                max_pointers,
                coarse_bits,
            } => {
                let ptr_bits = (usize::BITS - cores.saturating_sub(1).leading_zeros()).max(1);
                2 + (u32::from(max_pointers) * ptr_bits).max(u32::from(coarse_bits))
            }
        }
    }

    /// How many sockets' segments fit in one 64-byte (512-bit) home block —
    /// the hard ceiling on the socket count a ZeroDEV machine can track.
    pub fn sockets_per_block(self, cores: usize) -> usize {
        (512 / self.segment_bits(cores).max(1)) as usize
    }
}

/// ZeroDEV-specific configuration; `None` in [`SystemConfig::zerodev`] means
/// the baseline protocol.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ZeroDevConfig {
    /// How overflowing directory entries are accommodated in the LLC.
    pub policy: SpillPolicy,
    /// LLC replacement extension.
    pub llc_replacement: LlcReplacement,
    /// Encoding of memory-housed segments.
    pub segment_format: SegmentFormat,
}

impl Default for ZeroDevConfig {
    /// The configuration the paper converges on: FPSS + dataLRU with
    /// full-map segments.
    fn default() -> Self {
        ZeroDevConfig {
            policy: SpillPolicy::FusePrivateSpillShared,
            llc_replacement: LlcReplacement::DataLru,
            segment_format: SegmentFormat::FullMap,
        }
    }
}

/// On-chip interconnect parameters (Table I: 2D mesh, 1-cycle routing,
/// 1-cycle link).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct NocConfig {
    /// Cycles per hop (router + link).
    pub hop_cycles: u64,
    /// Flit payload size in bytes (serialisation latency = extra flits).
    pub flit_bytes: u64,
}

impl Default for NocConfig {
    fn default() -> Self {
        NocConfig {
            hop_cycles: 2,
            flit_bytes: 16,
        }
    }
}

/// DDR3-2133 main-memory parameters (Table I, modelled after DRAMSim2).
/// All timing fields are in DRAM command-clock cycles (1066 MHz).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DramConfig {
    /// Independent single-channel controllers.
    pub channels: usize,
    /// Ranks per channel.
    pub ranks: usize,
    /// Banks per rank.
    pub banks: usize,
    /// Row-buffer size in bytes.
    pub row_bytes: usize,
    /// CAS latency (tCL).
    pub t_cas: u64,
    /// RAS-to-CAS delay (tRCD).
    pub t_rcd: u64,
    /// Row-precharge time (tRP).
    pub t_rp: u64,
    /// Row-active time (tRAS).
    pub t_ras: u64,
    /// Burst length in transfers (BL=8 → 4 command-clock cycles of data bus).
    pub burst_len: u64,
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig {
            channels: 2,
            ranks: 2,
            banks: 8,
            row_bytes: 1024,
            t_cas: 14,
            t_rcd: 14,
            t_rp: 14,
            t_ras: 35,
            burst_len: 8,
        }
    }
}

impl DramConfig {
    /// Converts DRAM command-clock cycles to 4 GHz core cycles.
    ///
    /// DDR3-2133 runs a 1066 MHz command clock; at a 4 GHz core clock one
    /// DRAM cycle is 15/4 core cycles.
    pub fn to_core_cycles(&self, dram_cycles: u64) -> u64 {
        dram_cycles * 15 / 4
    }
}

/// The complete description of one simulated machine.
#[derive(Clone, PartialEq, Debug)]
pub struct SystemConfig {
    /// Cores per socket.
    pub cores: usize,
    /// Socket count (1 for the single-socket studies, 4 for §V multi-socket).
    pub sockets: usize,
    /// Cache-block size in bytes (64 everywhere).
    pub block_bytes: usize,
    /// Per-core L1 instruction cache.
    pub l1i: CacheGeometry,
    /// Per-core L1 data cache.
    pub l1d: CacheGeometry,
    /// Per-core unified L2 (the last-level private cache the directory
    /// ratio is defined against).
    pub l2: CacheGeometry,
    /// L1 hit latency in core cycles.
    pub l1_hit_cycles: u64,
    /// Additional L2 hit latency (on top of the L1 lookup) in core cycles.
    pub l2_hit_cycles: u64,
    /// Shared LLC geometry (whole-socket capacity).
    pub llc: CacheGeometry,
    /// Number of LLC banks (each with an adjacent sparse-directory slice).
    pub llc_banks: usize,
    /// LLC tag-array lookup latency (CACTI: 3 cycles).
    pub llc_tag_cycles: u64,
    /// LLC data-array access latency (CACTI: 4 cycles).
    pub llc_data_cycles: u64,
    /// LLC inclusion design.
    pub llc_design: LlcDesign,
    /// Sparse-directory design.
    pub directory: DirectoryKind,
    /// ZeroDEV mechanisms; `None` = baseline protocol.
    pub zerodev: Option<ZeroDevConfig>,
    /// Interconnect parameters.
    pub noc: NocConfig,
    /// Main-memory parameters.
    pub dram: DramConfig,
    /// One-way inter-socket routing delay in core cycles (20 ns at 4 GHz).
    pub inter_socket_cycles: u64,
    /// Socket-level directory handling (multi-socket only).
    pub socket_dir: SocketDirBacking,
    /// Sets in each home socket's socket-directory cache (8 ways each;
    /// multi-socket only). The default models a 256K-entry cache; tiny
    /// model-checking configurations shrink it so machine snapshots stay
    /// cheap to clone.
    pub socket_dir_cache_sets: usize,
}

impl SystemConfig {
    /// Table I: the 8-core single-socket baseline — 32 KB 8-way L1s, 256 KB
    /// 8-way L2, 8 MB 16-way 8-bank LLC, 1× 8-way sparse directory with
    /// 1-bit NRU, two DDR3-2133 channels.
    pub fn baseline_8core() -> Self {
        SystemConfig {
            cores: 8,
            sockets: 1,
            block_bytes: BLOCK_BYTES,
            l1i: CacheGeometry::new(32 << 10, 8),
            l1d: CacheGeometry::new(32 << 10, 8),
            l2: CacheGeometry::new(256 << 10, 8),
            l1_hit_cycles: 3,
            l2_hit_cycles: 10,
            llc: CacheGeometry::new(8 << 20, 16),
            llc_banks: 8,
            llc_tag_cycles: 3,
            llc_data_cycles: 4,
            llc_design: LlcDesign::NonInclusive,
            directory: DirectoryKind::Sparse {
                ratio: Ratio::ONE,
                ways: 8,
                replacement_disabled: false,
            },
            zerodev: None,
            noc: NocConfig::default(),
            dram: DramConfig::default(),
            inter_socket_cycles: 80,
            socket_dir: SocketDirBacking::MemoryBacked,
            socket_dir_cache_sets: 8192,
        }
    }

    /// The 128-core single-socket server machine: 32 MB 16-way LLC, 128 KB
    /// 8-way L2s, eight DDR3-2133 channels.
    pub fn server_128core() -> Self {
        let mut cfg = Self::baseline_8core();
        cfg.cores = 128;
        cfg.l2 = CacheGeometry::new(128 << 10, 8);
        cfg.llc = CacheGeometry::new(32 << 20, 16);
        cfg.llc_banks = 32;
        cfg.dram.channels = 8;
        cfg
    }

    /// The four-socket machine of §V: four 8-core sockets, each with an
    /// 8 MB non-inclusive LLC; socket directory backed in home memory.
    pub fn four_socket() -> Self {
        let mut cfg = Self::baseline_8core();
        cfg.sockets = 4;
        cfg
    }

    /// Switches this configuration to ZeroDEV with the given options and
    /// directory kind, returning `self` for chaining.
    pub fn with_zerodev(mut self, zd: ZeroDevConfig, directory: DirectoryKind) -> Self {
        // ZeroDEV always runs its sparse directory replacement-disabled
        // (§III-C4: strictly better and simpler).
        self.directory = match directory {
            DirectoryKind::Sparse { ratio, ways, .. } => DirectoryKind::Sparse {
                ratio,
                ways,
                replacement_disabled: true,
            },
            other => other,
        };
        self.zerodev = Some(zd);
        self
    }

    /// Switches to a baseline (non-ZeroDEV) sparse directory of the given
    /// size ratio, returning `self` for chaining.
    pub fn with_sparse_dir(mut self, ratio: Ratio) -> Self {
        self.directory = DirectoryKind::Sparse {
            ratio,
            ways: 8,
            replacement_disabled: false,
        };
        self
    }

    /// Total blocks in all private last-level (L2) caches — the denominator
    /// of the directory ratio `R`.
    pub fn aggregate_l2_blocks(&self) -> usize {
        self.l2.lines() * self.cores
    }

    /// Total entries in a `ratio ×` sparse directory for this machine.
    pub fn dir_entries(&self, ratio: Ratio) -> usize {
        ratio.apply(self.aggregate_l2_blocks())
    }

    /// LLC lines per bank.
    pub fn llc_lines_per_bank(&self) -> usize {
        self.llc.lines() / self.llc_banks
    }

    /// LLC sets per bank.
    pub fn llc_sets_per_bank(&self) -> usize {
        self.llc_lines_per_bank() / self.llc.ways
    }

    /// The home LLC bank of a block within its socket (low-order block-address
    /// interleaving, standard for banked LLCs).
    pub fn home_bank(&self, block: BlockAddr) -> BankId {
        BankId((block.0 % self.llc_banks as u64) as u16)
    }

    /// The home socket of a block (interleaved above the bank bits so that
    /// consecutive blocks spread across banks before sockets).
    pub fn home_socket(&self, block: BlockAddr) -> SocketId {
        SocketId(((block.0 >> 6) % self.sockets as u64) as u8)
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    /// Returns [`ConfigError`] when any structure has a non-positive or
    /// non-power-of-two set count, the directory kind is inconsistent with
    /// the ZeroDEV setting, or bank/core counts do not divide capacities.
    pub fn validate(&self) -> Result<(), ConfigError> {
        fn check_geom(name: &str, g: &CacheGeometry) -> Result<(), ConfigError> {
            if g.ways == 0 || g.size_bytes == 0 {
                return Err(ConfigError(format!("{name}: zero-sized")));
            }
            if !g.lines().is_multiple_of(g.ways) {
                return Err(ConfigError(format!("{name}: lines not divisible by ways")));
            }
            if !g.sets().is_power_of_two() {
                return Err(ConfigError(format!(
                    "{name}: set count {} is not a power of two",
                    g.sets()
                )));
            }
            Ok(())
        }
        check_geom("l1i", &self.l1i)?;
        check_geom("l1d", &self.l1d)?;
        check_geom("l2", &self.l2)?;
        check_geom("llc", &self.llc)?;
        if self.llc_banks == 0 {
            return Err(ConfigError("LLC needs at least one bank".into()));
        }
        if self.block_bytes != 64 {
            return Err(ConfigError(
                "only 64-byte blocks are supported (home-socket interleaving and \
                 segment packing assume them)"
                    .into(),
            ));
        }
        if !self.llc.lines().is_multiple_of(self.llc_banks) {
            return Err(ConfigError("LLC lines not divisible by banks".into()));
        }
        if !self.llc_lines_per_bank().is_multiple_of(self.llc.ways) {
            return Err(ConfigError("LLC bank lines not divisible by ways".into()));
        }
        if !self.llc_sets_per_bank().is_power_of_two() {
            return Err(ConfigError("LLC sets per bank not a power of two".into()));
        }
        if self.cores == 0 || self.sockets == 0 {
            return Err(ConfigError("need at least one core and socket".into()));
        }
        // Identifier-width bounds come before the (tighter) sharer-set caps
        // below: a `SocketId` is 8-bit and a `CoreId` 16-bit, so anything
        // wider would silently wrap when the engine derives per-core ids,
        // aliasing threads onto the wrong core. The caps keep these
        // unreachable today, but the representation bound must hold on its
        // own if they are ever raised.
        if self.sockets > (u8::MAX as usize) + 1 {
            return Err(ConfigError(format!(
                "{} sockets exceed the 8-bit SocketId space (max 256)",
                self.sockets
            )));
        }
        if self.cores > (u16::MAX as usize) + 1 {
            return Err(ConfigError(format!(
                "{} cores per socket exceed the 16-bit CoreId space (max 65536)",
                self.cores
            )));
        }
        if self.dram.channels == 0 {
            // Without this, the zero surfaces later as a mesh-placement
            // assert deep inside SocketTopology::new.
            return Err(ConfigError("DRAM needs at least one channel".into()));
        }
        if self.cores > 128 {
            return Err(ConfigError("SharerSet supports at most 128 cores".into()));
        }
        if self.sockets > 32 {
            return Err(ConfigError("SocketSet supports at most 32 sockets".into()));
        }
        if !self.socket_dir_cache_sets.is_power_of_two() {
            return Err(ConfigError(
                "socket-dir cache sets must be a power of two".into(),
            ));
        }
        match &self.directory {
            DirectoryKind::None if self.zerodev.is_none() => {
                return Err(ConfigError(
                    "a directory-less machine requires ZeroDEV".into(),
                ));
            }
            DirectoryKind::Sparse {
                replacement_disabled: true,
                ..
            } if self.zerodev.is_none() => {
                return Err(ConfigError(
                    "replacement-disabled sparse directory requires ZeroDEV".into(),
                ));
            }
            DirectoryKind::Sparse { ways, .. } | DirectoryKind::MultiGrain { ways, .. }
                if *ways == 0 =>
            {
                return Err(ConfigError("directory needs at least one way".into()));
            }
            _ => {}
        }
        if let Some(zd) = &self.zerodev {
            if let SegmentFormat::Hybrid { coarse_bits, .. } = zd.segment_format {
                if coarse_bits == 0 || coarse_bits > 64 {
                    return Err(ConfigError(format!(
                        "hybrid segment coarse vector must be 1..=64 bits, got {coarse_bits}"
                    )));
                }
            }
            let capacity = zd.segment_format.sockets_per_block(self.cores);
            if self.sockets > capacity {
                return Err(ConfigError(format!(
                    "{} sockets exceed the {} segments a 512-bit home block can house \
                     ({:?} at {} cores/socket)",
                    self.sockets, capacity, zd.segment_format, self.cores
                )));
            }
        }
        Ok(())
    }

    /// A stable 64-bit fingerprint covering every configuration field,
    /// used by the parallel experiment engine as part of its baseline
    /// memoization key: two configs share a fingerprint exactly when they
    /// would produce identical simulations.
    ///
    /// Computed as FNV-1a over the canonical `Debug` rendering, which
    /// includes every field (and every field of nested enums/structs), so
    /// new knobs are picked up automatically. No field is floating-point,
    /// so the rendering is exact.
    pub fn fingerprint(&self) -> u64 {
        format!("{self:?}")
            .bytes()
            .fold(0xcbf2_9ce4_8422_2325_u64, |h, b| {
                (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3)
            })
    }

    /// Renders the configuration as a human-readable multi-line summary
    /// (the `fig_table1` harness prints this as the Table I reproduction).
    pub fn describe(&self) -> String {
        let mut s = String::new();
        use std::fmt::Write as _;
        let _ = writeln!(
            s,
            "cores/socket: {}   sockets: {}   block: {} B",
            self.cores, self.sockets, self.block_bytes
        );
        let _ = writeln!(
            s,
            "L1I/L1D: {} KB {}-way   L2: {} KB {}-way (hit {} + {} cyc)",
            self.l1i.size_bytes >> 10,
            self.l1i.ways,
            self.l2.size_bytes >> 10,
            self.l2.ways,
            self.l1_hit_cycles,
            self.l2_hit_cycles
        );
        let _ = writeln!(
            s,
            "LLC: {} MB {}-way, {} banks, tag {} cyc, data {} cyc, {} design",
            self.llc.size_bytes >> 20,
            self.llc.ways,
            self.llc_banks,
            self.llc_tag_cycles,
            self.llc_data_cycles,
            self.llc_design
        );
        let _ = writeln!(s, "directory: {:?}", self.directory);
        match self.zerodev {
            Some(zd) => {
                let _ = writeln!(s, "ZeroDEV: {} + {}", zd.policy, zd.llc_replacement);
            }
            None => {
                let _ = writeln!(s, "ZeroDEV: off (baseline protocol)");
            }
        }
        let _ = writeln!(
            s,
            "NoC: 2D mesh, {} cyc/hop, {} B flits; inter-socket {} cyc",
            self.noc.hop_cycles, self.noc.flit_bytes, self.inter_socket_cycles
        );
        let _ = writeln!(
            s,
            "DRAM: {} ch x {} ranks x {} banks, {} B rows, {}-{}-{}-{} (DDR3-2133)",
            self.dram.channels,
            self.dram.ranks,
            self.dram.banks,
            self.dram.row_bytes,
            self.dram.t_cas,
            self.dram.t_rcd,
            self.dram.t_rp,
            self.dram.t_ras
        );
        s
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self::baseline_8core()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_table1() {
        let cfg = SystemConfig::baseline_8core();
        cfg.validate().expect("baseline valid");
        assert_eq!(cfg.cores, 8);
        assert_eq!(cfg.llc.size_bytes, 8 << 20);
        assert_eq!(cfg.llc.ways, 16);
        assert_eq!(cfg.llc_banks, 8);
        // 1x directory = aggregate L2 blocks: 8 * 256KB / 64B = 32768.
        assert_eq!(cfg.aggregate_l2_blocks(), 32768);
        assert_eq!(cfg.dir_entries(Ratio::ONE), 32768);
        // 32768 entries, 8 slices, 8 ways -> 512 sets per slice (paper: SecDir
        // partitions "each baseline directory slice having 512 sets and 8 ways").
        assert_eq!(cfg.dir_entries(Ratio::ONE) / cfg.llc_banks / 8, 512);
        // 1x entries are 25% of LLC blocks (4:1 LLC:L2 capacity ratio).
        assert_eq!(cfg.dir_entries(Ratio::ONE) * 4, cfg.llc.lines());
    }

    #[test]
    fn server_config() {
        let cfg = SystemConfig::server_128core();
        cfg.validate().expect("server valid");
        assert_eq!(cfg.cores, 128);
        assert_eq!(cfg.llc.size_bytes, 32 << 20);
        assert_eq!(cfg.dram.channels, 8);
    }

    #[test]
    fn four_socket_config() {
        let cfg = SystemConfig::four_socket();
        cfg.validate().expect("valid");
        assert_eq!(cfg.sockets, 4);
        // home_socket covers all sockets over a block range
        let mut seen = [false; 4];
        for b in 0..4096u64 {
            seen[cfg.home_socket(BlockAddr(b)).0 as usize] = true;
        }
        assert!(seen.iter().all(|&x| x));
    }

    #[test]
    fn ratios() {
        assert_eq!(Ratio::new(1, 8).apply(32768), 4096);
        assert_eq!(Ratio::new(1, 32).apply(32768), 1024);
        assert_eq!(Ratio::new(1, 2).to_string(), "1/2x");
        assert_eq!(Ratio::ONE.to_string(), "1x");
        assert!((Ratio::new(1, 4).as_f64() - 0.25).abs() < 1e-12);
        // never rounds to zero
        assert_eq!(Ratio::new(1, 1000).apply(10), 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_ratio_panics() {
        let _ = Ratio::new(0, 1);
    }

    #[test]
    fn validation_rejects_zero_dram_channels() {
        let mut cfg = SystemConfig::baseline_8core();
        cfg.dram.channels = 0;
        let err = cfg.validate().expect_err("channel-less DRAM must fail");
        assert!(err.0.contains("channel"), "{err}");
    }

    #[test]
    fn validation_rejects_nodir_without_zerodev() {
        let mut cfg = SystemConfig::baseline_8core();
        cfg.directory = DirectoryKind::None;
        assert!(cfg.validate().is_err());
        let cfg = cfg.with_zerodev(ZeroDevConfig::default(), DirectoryKind::None);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn validation_rejects_repl_disabled_without_zerodev() {
        let mut cfg = SystemConfig::baseline_8core();
        cfg.directory = DirectoryKind::Sparse {
            ratio: Ratio::ONE,
            ways: 8,
            replacement_disabled: true,
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn with_zerodev_forces_replacement_disabled() {
        let cfg = SystemConfig::baseline_8core().with_zerodev(
            ZeroDevConfig::default(),
            DirectoryKind::Sparse {
                ratio: Ratio::new(1, 8),
                ways: 8,
                replacement_disabled: false,
            },
        );
        match cfg.directory {
            DirectoryKind::Sparse {
                replacement_disabled,
                ..
            } => assert!(replacement_disabled),
            _ => panic!("expected sparse"),
        }
    }

    #[test]
    fn validation_rejects_unhousable_socket_counts() {
        // Full-map segments for 128-core sockets take 129 bits: only 3 fit
        // in a 512-bit home block, so a 4-socket machine must be rejected
        // up front instead of panicking mid-simulation.
        let mut cfg = SystemConfig::server_128core()
            .with_zerodev(ZeroDevConfig::default(), DirectoryKind::None);
        cfg.sockets = 4;
        let err = cfg.validate().unwrap_err();
        assert!(err.to_string().contains("segments"), "{err}");
        cfg.sockets = 3;
        assert!(cfg.validate().is_ok());
        // A hybrid format packs more segments and lifts the cap.
        cfg.sockets = 4;
        cfg.zerodev.as_mut().unwrap().segment_format = SegmentFormat::Hybrid {
            max_pointers: 4,
            coarse_bits: 16,
        };
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn validation_rejects_id_width_overflow() {
        // Regression: these used to reach the engine, where a bare
        // `as u8`/`as u16` cast silently wrapped the per-core ids.
        let mut cfg = SystemConfig::baseline_8core();
        cfg.sockets = 300;
        let err = cfg.validate().expect_err("300 sockets must fail");
        assert!(err.0.contains("SocketId"), "{err}");
        let mut cfg = SystemConfig::baseline_8core();
        cfg.cores = 70_000;
        let err = cfg.validate().expect_err("70000 cores must fail");
        assert!(err.0.contains("CoreId"), "{err}");
        // The tighter sharer-set caps still own the in-width range.
        let mut cfg = SystemConfig::baseline_8core();
        cfg.sockets = 40;
        assert!(cfg.validate().unwrap_err().0.contains("SocketSet"));
        let mut cfg = SystemConfig::baseline_8core();
        cfg.cores = 200;
        assert!(cfg.validate().unwrap_err().0.contains("SharerSet"));
    }

    #[test]
    fn validation_rejects_degenerate_llc_and_blocks() {
        let mut cfg = SystemConfig::baseline_8core();
        cfg.llc = CacheGeometry::new(0, 16);
        assert!(cfg.validate().is_err());
        let mut cfg = SystemConfig::baseline_8core();
        cfg.llc = CacheGeometry::new(8 << 20, 0);
        assert!(cfg.validate().is_err());
        let mut cfg = SystemConfig::baseline_8core();
        cfg.llc_banks = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = SystemConfig::baseline_8core();
        cfg.block_bytes = 128;
        assert!(cfg.validate().unwrap_err().to_string().contains("64-byte"));
    }

    #[test]
    fn validation_rejects_bad_hybrid_coarse_vectors() {
        for coarse_bits in [0u8, 65] {
            let cfg = SystemConfig::baseline_8core().with_zerodev(
                ZeroDevConfig {
                    segment_format: SegmentFormat::Hybrid {
                        max_pointers: 4,
                        coarse_bits,
                    },
                    ..Default::default()
                },
                DirectoryKind::None,
            );
            let err = cfg.validate().unwrap_err();
            assert!(err.to_string().contains("coarse"), "{err}");
        }
    }

    #[test]
    fn home_mapping_covers_banks() {
        let cfg = SystemConfig::baseline_8core();
        let mut seen = vec![false; cfg.llc_banks];
        for b in 0..64u64 {
            seen[cfg.home_bank(BlockAddr(b)).0 as usize] = true;
        }
        assert!(seen.iter().all(|&x| x));
    }

    #[test]
    fn dram_clock_conversion() {
        let d = DramConfig::default();
        assert_eq!(d.to_core_cycles(4), 15);
        assert_eq!(d.to_core_cycles(14), 52);
    }

    #[test]
    fn describe_mentions_key_facts() {
        let cfg = SystemConfig::baseline_8core();
        let d = cfg.describe();
        assert!(d.contains("8 MB"));
        assert!(d.contains("DDR3-2133"));
        assert!(d.contains("baseline protocol"));
        let zd = SystemConfig::baseline_8core()
            .with_zerodev(ZeroDevConfig::default(), DirectoryKind::None);
        assert!(zd.describe().contains("FPSS"));
    }

    #[test]
    fn geometry_math() {
        let g = CacheGeometry::new(8 << 20, 16);
        assert_eq!(g.lines(), 131072);
        assert_eq!(g.sets(), 8192);
    }

    #[test]
    fn secdir_geometries() {
        let g = SecDirGeometry::eight_core_1x();
        // iso-storage sanity: shared 512*5 + 8 private zones * 32*7 entries
        assert_eq!(g.shared_sets * g.shared_ways, 2560);
        assert_eq!(g.private_sets * g.private_ways * 8, 1792);
        let s = SecDirGeometry::server_eighth();
        assert_eq!(s.private_sets, 1); // fully associative
    }

    #[test]
    fn fingerprint_is_stable_and_field_sensitive() {
        let a = SystemConfig::baseline_8core();
        let b = SystemConfig::baseline_8core();
        assert_eq!(a.fingerprint(), b.fingerprint());
        // Every kind of edit must change the fingerprint.
        let mut c = SystemConfig::baseline_8core();
        c.cores = 4;
        assert_ne!(a.fingerprint(), c.fingerprint());
        let d = SystemConfig::baseline_8core().with_sparse_dir(Ratio::new(1, 8));
        assert_ne!(a.fingerprint(), d.fingerprint());
        let e = SystemConfig::baseline_8core()
            .with_zerodev(ZeroDevConfig::default(), DirectoryKind::None);
        assert_ne!(a.fingerprint(), e.fingerprint());
        let mut f = SystemConfig::baseline_8core();
        f.llc_design = LlcDesign::Inclusive;
        assert_ne!(a.fingerprint(), f.fingerprint());
        let mut g = SystemConfig::baseline_8core();
        g.dram.t_cas = 15;
        assert_ne!(a.fingerprint(), g.fingerprint());
    }

    #[test]
    fn config_error_display() {
        let e = ConfigError("boom".into());
        assert!(e.to_string().contains("boom"));
    }
}
