//! The generic set-associative tagged array.

/// Replacement policy family maintained inside the array.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Replacement {
    /// True LRU via a per-set recency stack (Table I: all caches LRU).
    Lru,
    /// One-bit not-recently-used (Table I: the sparse directory's policy).
    Nru,
}

/// Per-line metadata bit: the line holds a payload.
const VALID: u8 = 1 << 0;
/// Per-line metadata bit: NRU reference bit.
const NRU_REF: u8 = 1 << 1;

/// Moves `way` to the MRU end of the stack in a single forward pass,
/// shifting the entries in front of it down one slot; appends it as the
/// sole shift when absent (a newly filled way). Equivalent to
/// `remove(pos)` + `insert(0, way)` without the double shift. A way that
/// is already MRU is a no-op — the common hit path touches nothing.
///
/// `stack` is the full ways-sized slot array of one set; `len` is the
/// number of live slots (the stack occupies `stack[..len]`).
#[inline]
fn stack_promote(stack: &mut [u8], len: &mut u8, way: u8) {
    let n = *len as usize;
    if stack[..n].first() == Some(&way) {
        return;
    }
    let mut prev = way;
    for slot in stack[..n].iter_mut() {
        std::mem::swap(slot, &mut prev);
        if prev == way {
            return;
        }
    }
    stack[n] = prev;
    *len += 1;
}

/// Moves `way` (which must be in the stack — every valid way is) to the
/// LRU end in a single backward pass.
#[inline]
fn stack_demote(stack: &mut [u8], len: u8, way: u8) {
    let n = len as usize;
    let mut prev = way;
    for slot in stack[..n].iter_mut().rev() {
        std::mem::swap(slot, &mut prev);
        if prev == way {
            return;
        }
    }
    debug_assert!(false, "demoted way {way} was not in the recency stack");
}

/// Removes `way` from the stack in a single pass (shifting later entries
/// up); no-op when absent.
#[inline]
fn stack_remove(stack: &mut [u8], len: &mut u8, way: u8) {
    let n = *len as usize;
    let mut found = false;
    for i in 0..n {
        if found {
            stack[i - 1] = stack[i];
        } else if stack[i] == way {
            found = true;
        }
    }
    if found {
        *len -= 1;
    }
}

/// Saved contents of a single set — the unit of a copy-on-write undo log
/// for speculative execution. One `SetUndo` is refilled by
/// [`SetAssoc::save_set`] and applied back by [`SetAssoc::restore_set`];
/// its buffers are reused across snapshots.
#[derive(Debug)]
pub struct SetUndo<T> {
    set: usize,
    set_live: u8,
    tags: Vec<u64>,
    meta: Vec<u8>,
    recency: Vec<u8>,
    data: Vec<Option<T>>,
}

impl<T> Default for SetUndo<T> {
    fn default() -> Self {
        SetUndo {
            set: 0,
            set_live: 0,
            tags: Vec::new(),
            meta: Vec::new(),
            recency: Vec::new(),
            data: Vec::new(),
        }
    }
}

/// A set-associative tagged array with duplicate-tag support.
///
/// Keys are arbitrary `u64` frame identifiers; the low bits index the set and
/// the remainder forms the tag. Two lines in one set may carry the *same*
/// tag as long as a caller-supplied predicate distinguishes their payloads —
/// exactly the situation ZeroDEV creates when a data block and its spilled
/// directory entry coexist in an LLC set (§III-C1).
///
/// All lookup/touch/remove operations take a `pred` on the payload; use
/// `|_| true` when tags are unique (ordinary caches).
///
/// Storage is struct-of-arrays: tags, one-byte line metadata, and payloads
/// live in three parallel flat vectors, so the hit-path set scan touches
/// only the tag and metadata lanes. Recency stacks are likewise one flat
/// ways-per-set array plus a per-set length, with no per-set heap
/// allocations.
#[derive(Clone, Debug)]
pub struct SetAssoc<T> {
    sets: usize,
    ways: usize,
    /// Per-line tags (`sets × ways`, set-major).
    tags: Vec<u64>,
    /// Per-line metadata bits (`VALID`, `NRU_REF`), parallel to `tags`.
    meta: Vec<u8>,
    /// Per-line payloads, parallel to `tags`.
    data: Vec<Option<T>>,
    /// Flat per-set recency stacks: way indices, MRU first. The stack of
    /// set `s` occupies `recency[s*ways..][..set_live[s]]`. Maintained for
    /// both policies (NRU victim search ignores it). Invariant: a set's
    /// stack holds exactly its valid ways.
    recency: Vec<u8>,
    /// Valid-way count per set (== its recency-stack length).
    set_live: Vec<u8>,
    policy: Replacement,
    /// Count of valid lines (kept so `len` needs no scan).
    live: usize,
}

impl<T> SetAssoc<T> {
    /// Creates an array with `sets` sets of `ways` ways.
    ///
    /// # Panics
    /// Panics if `sets` is not a positive power of two or `ways` is 0 or
    /// exceeds 255.
    pub fn new(sets: usize, ways: usize, policy: Replacement) -> Self {
        assert!(
            sets > 0 && sets.is_power_of_two(),
            "sets must be a power of two"
        );
        assert!(ways > 0 && ways <= 255, "ways must be in 1..=255");
        let n = sets * ways;
        let mut data = Vec::with_capacity(n);
        data.resize_with(n, || None);
        SetAssoc {
            sets,
            ways,
            tags: vec![0; n],
            meta: vec![0; n],
            data,
            recency: vec![0; n],
            set_live: vec![0; sets],
            policy,
            live: 0,
        }
    }

    /// The set index `key` maps to. Exposed so speculative callers can
    /// deduplicate per-set snapshots (see [`Self::save_set`]).
    #[inline]
    pub fn set_index(&self, key: u64) -> usize {
        self.set_of(key)
    }

    /// Saves the full contents of the set containing `key` into `out`,
    /// reusing `out`'s buffers — a pooled undo log allocates only while it
    /// grows. Restore with [`Self::restore_set`].
    pub fn save_set(&self, key: u64, out: &mut SetUndo<T>)
    where
        T: Clone,
    {
        let set = self.set_of(key);
        let r = set * self.ways..(set + 1) * self.ways;
        out.set = set;
        out.set_live = self.set_live[set];
        out.tags.clear();
        out.tags.extend_from_slice(&self.tags[r.clone()]);
        out.meta.clear();
        out.meta.extend_from_slice(&self.meta[r.clone()]);
        out.recency.clear();
        out.recency.extend_from_slice(&self.recency[r.clone()]);
        out.data.clear();
        out.data.extend(self.data[r].iter().cloned());
    }

    /// Restores a set saved from *this* array by [`Self::save_set`],
    /// adjusting the global valid-line count by the delta.
    pub fn restore_set(&mut self, from: &SetUndo<T>)
    where
        T: Clone,
    {
        let set = from.set;
        debug_assert_eq!(from.tags.len(), self.ways, "snapshot from this array");
        let r = set * self.ways..(set + 1) * self.ways;
        self.live += from.set_live as usize;
        self.live -= self.set_live[set] as usize;
        self.set_live[set] = from.set_live;
        self.tags[r.clone()].copy_from_slice(&from.tags);
        self.meta[r.clone()].copy_from_slice(&from.meta);
        self.recency[r.clone()].copy_from_slice(&from.recency);
        for (d, s) in self.data[r].iter_mut().zip(&from.data) {
            d.clone_from(s);
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Total valid lines currently held.
    #[inline]
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no line is valid.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    #[inline]
    fn set_of(&self, key: u64) -> usize {
        (key % self.sets as u64) as usize
    }

    #[inline]
    fn tag_of(&self, key: u64) -> u64 {
        key / self.sets as u64
    }

    #[inline]
    fn key_of(&self, set: usize, tag: u64) -> u64 {
        tag * self.sets as u64 + set as u64
    }

    #[inline]
    fn idx(&self, set: usize, way: usize) -> usize {
        set * self.ways + way
    }

    fn find_way(&self, key: u64, pred: impl Fn(&T) -> bool) -> Option<usize> {
        let set = self.set_of(key);
        let tag = self.tag_of(key);
        let base = set * self.ways;
        (0..self.ways).find(|&w| {
            let i = base + w;
            self.meta[i] & VALID != 0
                && self.tags[i] == tag
                && self.data[i].as_ref().is_some_and(&pred)
        })
    }

    /// Looks up a line without updating recency.
    pub fn peek(&self, key: u64, pred: impl Fn(&T) -> bool) -> Option<&T> {
        self.find_way(key, pred).map(|w| {
            self.data[self.idx(self.set_of(key), w)]
                .as_ref()
                .expect("valid line has data")
        })
    }

    /// Mutable lookup without recency update.
    pub fn peek_mut(&mut self, key: u64, pred: impl Fn(&T) -> bool) -> Option<&mut T> {
        let set = self.set_of(key);
        self.find_way(key, pred).map(move |w| {
            let i = self.idx(set, w);
            self.data[i].as_mut().expect("valid line has data")
        })
    }

    fn promote(&mut self, set: usize, way: usize) {
        let base = set * self.ways;
        stack_promote(
            &mut self.recency[base..base + self.ways],
            &mut self.set_live[set],
            way as u8,
        );
        self.meta[base + way] |= NRU_REF;
    }

    /// Looks up a line, updating its recency (LRU promotion / NRU bit).
    /// Returns a mutable payload reference on hit.
    pub fn touch(&mut self, key: u64, pred: impl Fn(&T) -> bool) -> Option<&mut T> {
        let set = self.set_of(key);
        let way = self.find_way(key, pred)?;
        self.promote(set, way);
        let i = self.idx(set, way);
        Some(self.data[i].as_mut().expect("valid line has data"))
    }

    /// Demotes a line to the LRU position of its set without invalidating it
    /// (used for replacement-priority experiments).
    pub fn demote(&mut self, key: u64, pred: impl Fn(&T) -> bool) -> bool {
        let set = self.set_of(key);
        let Some(way) = self.find_way(key, pred) else {
            return false;
        };
        let base = set * self.ways;
        stack_demote(
            &mut self.recency[base..base + self.ways],
            self.set_live[set],
            way as u8,
        );
        self.meta[base + way] &= !NRU_REF;
        true
    }

    /// Removes a line and returns its payload.
    pub fn remove(&mut self, key: u64, pred: impl Fn(&T) -> bool) -> Option<T> {
        let set = self.set_of(key);
        let way = self.find_way(key, pred)?;
        let base = set * self.ways;
        stack_remove(
            &mut self.recency[base..base + self.ways],
            &mut self.set_live[set],
            way as u8,
        );
        self.live -= 1;
        self.meta[base + way] = 0;
        self.data[base + way].take()
    }

    fn pick_invalid_way(&self, set: usize) -> Option<usize> {
        let base = set * self.ways;
        (0..self.ways).find(|&w| self.meta[base + w] & VALID == 0)
    }

    /// Chooses a victim way in `set`, preferring unprotected lines and
    /// never selecting an excluded one. Returns `None` when every line in
    /// the set is excluded — exclusion is a hard bar, not a preference (a
    /// victimised "excluded" line is exactly the bug class the exclusion
    /// exists to prevent; see `insert_excluding`).
    ///
    /// For LRU this scans the recency stack from the LRU end for the first
    /// line with `protected(data) == false`, falling back to the true LRU
    /// non-excluded line when everything is protected — the paper's
    /// `dataLRU` search. For NRU it scans for a not-referenced unprotected
    /// line, clearing all reference bits when none qualifies (classic 1-bit
    /// NRU). `excluded` receives the candidate's full key and is a hard bar
    /// on top of either search.
    fn pick_victim_way(
        &mut self,
        set: usize,
        protected: impl Fn(&T) -> bool,
        excluded: impl Fn(u64, &T) -> bool,
    ) -> Option<usize> {
        let base = set * self.ways;
        let bar = |this: &Self, w: usize| {
            excluded(
                this.key_of(set, this.tags[base + w]),
                this.data[base + w].as_ref().expect("valid line has data"),
            )
        };
        match self.policy {
            Replacement::Lru => {
                let live = self.set_live[set] as usize;
                debug_assert_eq!(live, self.ways, "full set has full stack");
                for i in (0..live).rev() {
                    let w = self.recency[base + i] as usize;
                    if !protected(self.data[base + w].as_ref().expect("valid line has data"))
                        && !bar(self, w)
                    {
                        return Some(w);
                    }
                }
                // Everything unexcluded is protected: true LRU among the
                // non-excluded lines.
                for i in (0..live).rev() {
                    let w = self.recency[base + i] as usize;
                    if !bar(self, w) {
                        return Some(w);
                    }
                }
                None
            }
            Replacement::Nru => {
                // Two passes: unprotected & not-referenced, then clear bits.
                for pass in 0..2 {
                    for w in 0..self.ways {
                        if self.meta[base + w] & NRU_REF == 0
                            && !protected(
                                self.data[base + w].as_ref().expect("valid line has data"),
                            )
                            && !bar(self, w)
                        {
                            return Some(w);
                        }
                    }
                    if pass == 0 {
                        for w in 0..self.ways {
                            self.meta[base + w] &= !NRU_REF;
                        }
                    }
                }
                // Everything protected: the first non-excluded way.
                (0..self.ways).find(|&w| !bar(self, w))
            }
        }
    }

    /// Inserts a payload for `key`, evicting if the set is full.
    ///
    /// The victim search prefers lines for which `protected` returns false;
    /// a protected line is evicted only when every line in the set is
    /// protected. Returns the evicted `(key, payload)` if any.
    pub fn insert(
        &mut self,
        key: u64,
        data: T,
        protected: impl Fn(&T) -> bool,
    ) -> Option<(u64, T)> {
        match self.insert_excluding(key, data, protected, |_, _| false) {
            Ok(evicted) => evicted,
            Err(_) => unreachable!("nothing is excluded, so insertion cannot be refused"),
        }
    }

    /// [`Self::insert`] with a hard exclusion: a line for which `excluded`
    /// returns true (given its full key and payload) is never chosen as the
    /// victim. Lets a caller shield a specific resident line from its own
    /// insertion — e.g. a directory-entry spill must not displace its own
    /// block's data line.
    ///
    /// # Errors
    /// When the set is full and every line in it is excluded, the insertion
    /// is *refused*: nothing changes and the payload comes back as `Err`.
    /// (Victimising the excluded line instead would defeat the exclusion —
    /// the caller asked for it precisely because that eviction is unsafe.)
    pub fn insert_excluding(
        &mut self,
        key: u64,
        data: T,
        protected: impl Fn(&T) -> bool,
        excluded: impl Fn(u64, &T) -> bool,
    ) -> Result<Option<(u64, T)>, T> {
        let set = self.set_of(key);
        let tag = self.tag_of(key);
        let base = set * self.ways;
        let (way, evicted) = match self.pick_invalid_way(set) {
            Some(w) => (w, None),
            None => {
                let Some(w) = self.pick_victim_way(set, protected, excluded) else {
                    return Err(data);
                };
                let victim_key = self.key_of(set, self.tags[base + w]);
                stack_remove(
                    &mut self.recency[base..base + self.ways],
                    &mut self.set_live[set],
                    w as u8,
                );
                self.live -= 1;
                self.meta[base + w] = 0;
                let payload = self.data[base + w].take().expect("valid line has data");
                (w, Some((victim_key, payload)))
            }
        };
        self.tags[base + way] = tag;
        self.meta[base + way] = VALID;
        self.data[base + way] = Some(data);
        self.live += 1;
        self.promote(set, way);
        Ok(evicted)
    }

    /// Inserts only if an invalid way exists (the ZeroDEV replacement-
    /// disabled sparse directory, §III-C4).
    ///
    /// # Errors
    /// Returns the payload back as `Err` when the set is full.
    pub fn insert_no_evict(&mut self, key: u64, data: T) -> Result<(), T> {
        let set = self.set_of(key);
        match self.pick_invalid_way(set) {
            Some(way) => {
                let tag = self.tag_of(key);
                let i = self.idx(set, way);
                self.tags[i] = tag;
                self.meta[i] = VALID;
                self.data[i] = Some(data);
                self.live += 1;
                self.promote(set, way);
                Ok(())
            }
            None => Err(data),
        }
    }

    /// Iterates over all valid `(key, &payload)` pairs (diagnostics,
    /// invariant checks).
    pub fn iter(&self) -> impl Iterator<Item = (u64, &T)> + '_ {
        (0..self.sets).flat_map(move |set| {
            (0..self.ways).filter_map(move |w| {
                let i = set * self.ways + w;
                if self.meta[i] & VALID != 0 {
                    Some((
                        self.key_of(set, self.tags[i]),
                        self.data[i].as_ref().expect("valid line has data"),
                    ))
                } else {
                    None
                }
            })
        })
    }

    /// Iterates over the valid `(key, &payload)` pairs of the set containing
    /// `key`, in MRU→LRU order.
    pub fn iter_set(&self, key: u64) -> impl Iterator<Item = (u64, &T)> + '_ {
        let set = self.set_of(key);
        let base = set * self.ways;
        let live = self.set_live[set] as usize;
        self.recency[base..base + live].iter().map(move |&w| {
            let i = base + w as usize;
            (
                self.key_of(set, self.tags[i]),
                self.data[i].as_ref().expect("stacked line is valid"),
            )
        })
    }

    /// Number of valid lines in the set containing `key` (the recency
    /// stack holds exactly the valid ways, so no scan is needed).
    #[inline]
    pub fn set_len(&self, key: u64) -> usize {
        self.set_live[self.set_of(key)] as usize
    }

    /// Serializes the whole array *lane-exactly* for checkpointing — the
    /// whole-hierarchy generalization of [`Self::save_set`]. Geometry
    /// (sets, ways, policy) is written first and verified by
    /// [`Self::restore_with`] against the target instance; then the tag,
    /// metadata, recency, and payload lanes follow verbatim, so a restored
    /// array reproduces victim choice, NRU bits, and duplicate-tag layout
    /// byte-for-byte. `ser` encodes one payload.
    pub fn snapshot_with(
        &self,
        w: &mut zerodev_common::snap::SnapWriter,
        mut ser: impl FnMut(&mut zerodev_common::snap::SnapWriter, &T),
    ) {
        w.usize(self.sets);
        w.usize(self.ways);
        w.u8(match self.policy {
            Replacement::Lru => 0,
            Replacement::Nru => 1,
        });
        w.usize(self.live);
        for &t in &self.tags {
            w.u64(t);
        }
        for &m in &self.meta {
            w.u8(m);
        }
        for &r in &self.recency {
            w.u8(r);
        }
        for &l in &self.set_live {
            w.u8(l);
        }
        for d in &self.data {
            match d {
                Some(v) => {
                    w.bool(true);
                    ser(w, v);
                }
                None => w.bool(false),
            }
        }
    }

    /// Restores a [`Self::snapshot_with`] image into this array, which must
    /// have been constructed with the same geometry (the snapshot's header
    /// is checked against it). `de` decodes one payload.
    ///
    /// # Errors
    /// Fails with a structural [`zerodev_common::snap::SnapError`] on any
    /// geometry mismatch, lane-length drift, or payload decode error.
    pub fn restore_with(
        &mut self,
        r: &mut zerodev_common::snap::SnapReader<'_>,
        mut de: impl FnMut(
            &mut zerodev_common::snap::SnapReader<'_>,
        ) -> Result<T, zerodev_common::snap::SnapError>,
    ) -> Result<(), zerodev_common::snap::SnapError> {
        use zerodev_common::snap::SnapError;
        let sets = r.usize("setassoc sets")?;
        let ways = r.usize("setassoc ways")?;
        let policy = match r.u8("setassoc policy")? {
            0 => Replacement::Lru,
            1 => Replacement::Nru,
            _ => {
                return Err(SnapError::Corrupt {
                    context: "setassoc policy",
                })
            }
        };
        if sets != self.sets || ways != self.ways || policy != self.policy {
            return Err(SnapError::Corrupt {
                context: "setassoc geometry",
            });
        }
        let live = r.usize("setassoc live")?;
        if live > sets * ways {
            return Err(SnapError::Corrupt {
                context: "setassoc live count",
            });
        }
        self.live = live;
        for t in self.tags.iter_mut() {
            *t = r.u64("setassoc tag")?;
        }
        for m in self.meta.iter_mut() {
            *m = r.u8("setassoc meta")?;
        }
        for rec in self.recency.iter_mut() {
            *rec = r.u8("setassoc recency")?;
        }
        for l in self.set_live.iter_mut() {
            *l = r.u8("setassoc set_live")?;
        }
        for d in self.data.iter_mut() {
            *d = if r.bool("setassoc line flag")? {
                Some(de(r)?)
            } else {
                None
            };
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn any(_: &u32) -> bool {
        true
    }
    fn none(_: &u32) -> bool {
        false
    }

    #[test]
    fn hit_and_miss() {
        let mut c: SetAssoc<u32> = SetAssoc::new(4, 2, Replacement::Lru);
        assert!(c.insert(5, 50, none).is_none());
        assert_eq!(c.peek(5, any), Some(&50));
        assert_eq!(c.peek(9, any), None); // same set (9 % 4 == 1? no: 5%4=1, 9%4=1) different tag
        assert_eq!(c.touch(5, any), Some(&mut 50));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c: SetAssoc<u32> = SetAssoc::new(1, 3, Replacement::Lru);
        c.insert(0, 0, none);
        c.insert(1, 1, none);
        c.insert(2, 2, none);
        c.touch(0, any); // order MRU->LRU: 0,2,1
        let v = c.insert(3, 3, none).unwrap();
        assert_eq!(v, (1, 1));
        let v = c.insert(4, 4, none).unwrap();
        assert_eq!(v, (2, 2));
    }

    #[test]
    fn protected_lines_survive() {
        // dataLRU: ordinary lines evicted before protected (spilled/fused).
        let mut c: SetAssoc<u32> = SetAssoc::new(1, 4, Replacement::Lru);
        for i in 0..4 {
            c.insert(i, i as u32, none);
        }
        // mark payloads >= 2 as protected; LRU order is 0 (LRU-most) .. 3
        let protected = |v: &u32| *v >= 2;
        let v = c.insert(10, 10, protected).unwrap();
        assert_eq!(v, (0, 0), "oldest unprotected evicted first");
        let v = c.insert(11, 11, protected).unwrap();
        assert_eq!(v, (1, 1));
        // now only protected (2,3) and new unprotected-looking (10,11)? 10,11 are >= 2 so protected.
        let v = c.insert(12, 12, protected).unwrap();
        assert_eq!(v.0, 2, "all protected: true LRU evicted");
    }

    #[test]
    fn duplicate_tags_coexist() {
        // A data block (even payload) and its spilled entry (odd payload)
        // share a key.
        let mut c: SetAssoc<u32> = SetAssoc::new(2, 4, Replacement::Lru);
        c.insert(6, 100, none);
        c.insert(6, 101, none);
        assert_eq!(c.peek(6, |v| v % 2 == 0), Some(&100));
        assert_eq!(c.peek(6, |v| v % 2 == 1), Some(&101));
        assert_eq!(c.set_len(6), 2);
        let removed = c.remove(6, |v| v % 2 == 1);
        assert_eq!(removed, Some(101));
        assert_eq!(c.peek(6, |v| v % 2 == 0), Some(&100));
    }

    #[test]
    fn excluded_line_is_never_victimised() {
        // The excluded line sits at the LRU end — the natural victim — but
        // exclusion is a hard bar: the next line up must be taken instead.
        let mut c: SetAssoc<u32> = SetAssoc::new(1, 3, Replacement::Lru);
        c.insert(0, 100, none);
        c.insert(1, 101, none);
        c.insert(2, 102, none);
        // MRU->LRU: 2,1,0 — key 0 is LRU-most and excluded.
        let v = c
            .insert_excluding(3, 103, none, |k, _| k == 0)
            .expect("a non-excluded victim exists");
        assert_eq!(v, Some((1, 101)), "next-LRU line evicted instead");
        assert_eq!(c.peek(0, any), Some(&100), "excluded line survives");
    }

    #[test]
    fn excluded_way_is_only_valid_victim() {
        // The corner: the set is full and every line is excluded, so the
        // *only* candidate is the line the caller shielded. Victimising it
        // would defeat the exclusion — the insertion must be refused with
        // the set untouched.
        let mut c: SetAssoc<u32> = SetAssoc::new(1, 1, Replacement::Lru);
        c.insert(0, 100, none);
        let refused = c.insert_excluding(1, 101, none, |k, _| k == 0);
        assert_eq!(refused, Err(101), "payload handed back on refusal");
        assert_eq!(c.peek(0, any), Some(&100), "excluded line untouched");
        assert_eq!(c.peek(1, any), None, "refused payload not inserted");
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn invalid_way_sidesteps_exclusion() {
        // With a free way the exclusion never comes into play: the payload
        // lands in the invalid way and the excluded line is untouched.
        let mut c: SetAssoc<u32> = SetAssoc::new(1, 2, Replacement::Lru);
        c.insert(0, 100, none);
        let v = c
            .insert_excluding(1, 101, none, |k, _| k == 0)
            .expect("free way exists");
        assert_eq!(v, None);
        assert_eq!(c.peek(0, any), Some(&100));
        assert_eq!(c.peek(1, any), Some(&101));
    }

    #[test]
    fn exclusion_overrides_protection_fallback() {
        // All lines protected, all but one excluded: the protected-line
        // fallback must still honour the exclusion bar.
        let mut c: SetAssoc<u32> = SetAssoc::new(1, 2, Replacement::Lru);
        c.insert(0, 100, none);
        c.insert(1, 101, none);
        let v = c
            .insert_excluding(2, 102, any, |k, _| k == 0)
            .expect("one non-excluded line remains");
        assert_eq!(
            v,
            Some((1, 101)),
            "excluded line skipped even when all protected"
        );
        assert_eq!(c.peek(0, any), Some(&100));
    }

    #[test]
    fn nru_refuses_all_excluded_set() {
        let mut c: SetAssoc<u32> = SetAssoc::new(1, 2, Replacement::Nru);
        c.insert(0, 100, none);
        c.insert(1, 101, none);
        let refused = c.insert_excluding(2, 102, none, |_, _| true);
        assert_eq!(refused, Err(102));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn no_evict_insert() {
        let mut c: SetAssoc<u32> = SetAssoc::new(1, 2, Replacement::Lru);
        assert!(c.insert_no_evict(0, 0).is_ok());
        assert!(c.insert_no_evict(1, 1).is_ok());
        assert_eq!(c.insert_no_evict(2, 2), Err(2));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn remove_then_reinsert() {
        let mut c: SetAssoc<u32> = SetAssoc::new(2, 2, Replacement::Lru);
        c.insert(0, 1, none);
        assert_eq!(c.remove(0, any), Some(1));
        assert_eq!(c.remove(0, any), None);
        assert!(c.is_empty());
        assert!(c.insert(0, 2, none).is_none());
    }

    #[test]
    fn nru_finds_unreferenced_victim() {
        let mut c: SetAssoc<u32> = SetAssoc::new(1, 4, Replacement::Nru);
        for i in 0..4 {
            c.insert(i, i as u32, none);
        }
        // all referenced on insert; first insert clears bits then picks way 0
        let v = c.insert(4, 4, none).unwrap();
        assert_eq!(v, (0, 0));
        // ways 1..3 now unreferenced; touching 2 sets its bit
        c.touch(2, any);
        let v = c.insert(5, 5, none).unwrap();
        assert_eq!(v, (1, 1), "unreferenced way evicted before referenced");
    }

    #[test]
    fn nru_respects_protection() {
        let mut c: SetAssoc<u32> = SetAssoc::new(1, 2, Replacement::Nru);
        c.insert(0, 0, none);
        c.insert(1, 1, none);
        let v = c.insert(2, 2, |v| *v == 0).unwrap();
        assert_eq!(v, (1, 1));
    }

    #[test]
    fn demote_moves_to_lru() {
        let mut c: SetAssoc<u32> = SetAssoc::new(1, 3, Replacement::Lru);
        c.insert(0, 0, none);
        c.insert(1, 1, none);
        c.insert(2, 2, none);
        assert!(c.demote(2, any)); // 2 was MRU; now LRU
        let v = c.insert(3, 3, none).unwrap();
        assert_eq!(v, (2, 2));
        assert!(!c.demote(99, any));
    }

    #[test]
    fn iter_set_is_mru_order() {
        let mut c: SetAssoc<u32> = SetAssoc::new(1, 3, Replacement::Lru);
        c.insert(0, 0, none);
        c.insert(1, 1, none);
        c.touch(0, any);
        let order: Vec<u64> = c.iter_set(0).map(|(k, _)| k).collect();
        assert_eq!(order, vec![0, 1]);
    }

    #[test]
    fn promote_of_mru_way_short_circuits() {
        // The hit-path no-op: promoting the way that is already MRU must
        // leave the stack untouched (and, through the public API, keep the
        // set order stable across repeated touches of the MRU line).
        let mut stack = [2u8, 0, 1];
        let mut len = 3u8;
        stack_promote(&mut stack, &mut len, 2);
        assert_eq!(stack, [2, 0, 1]);
        assert_eq!(len, 3);

        let mut c: SetAssoc<u32> = SetAssoc::new(1, 3, Replacement::Lru);
        c.insert(0, 0, none);
        c.insert(1, 1, none);
        c.insert(2, 2, none); // MRU->LRU: 2,1,0
        c.touch(2, any);
        c.touch(2, any);
        let order: Vec<u64> = c.iter_set(0).map(|(k, _)| k).collect();
        assert_eq!(order, vec![2, 1, 0], "MRU touch changes nothing");
        let v = c.insert(3, 3, none).unwrap();
        assert_eq!(v, (0, 0), "LRU victim unaffected by MRU touches");
    }

    #[test]
    fn iter_visits_all() {
        let mut c: SetAssoc<u32> = SetAssoc::new(4, 2, Replacement::Lru);
        for i in 0..8 {
            c.insert(i, i as u32, none);
        }
        let mut keys: Vec<u64> = c.iter().map(|(k, _)| k).collect();
        keys.sort_unstable();
        assert_eq!(keys, (0..8).collect::<Vec<u64>>());
    }

    #[test]
    fn len_and_set_len_track_churn() {
        let mut c: SetAssoc<u32> = SetAssoc::new(2, 2, Replacement::Lru);
        assert_eq!(c.len(), 0);
        c.insert(0, 0, none);
        c.insert(2, 2, none); // set 0
        c.insert(1, 1, none); // set 1
        assert_eq!(c.len(), 3);
        assert_eq!(c.set_len(0), 2);
        assert!(c.insert(4, 4, none).is_some(), "set 0 full, evicts");
        assert_eq!(c.len(), 3, "eviction keeps the count stable");
        assert_eq!(c.set_len(0), 2);
        assert_eq!(c.remove(1, any), Some(1));
        assert_eq!(c.len(), 2);
        assert_eq!(c.set_len(1), 0);
        assert!(c.insert_no_evict(3, 3).is_ok());
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn key_set_tag_round_trip() {
        let c: SetAssoc<u32> = SetAssoc::new(8, 2, Replacement::Lru);
        for key in [0u64, 7, 8, 1 << 40, (1 << 40) + 5] {
            let set = c.set_of(key);
            let tag = c.tag_of(key);
            assert_eq!(c.key_of(set, tag), key);
        }
    }

    #[test]
    fn save_restore_round_trips_one_set() {
        let mut c: SetAssoc<u32> = SetAssoc::new(2, 2, Replacement::Lru);
        c.insert(0, 10, none); // set 0
        c.insert(2, 12, none); // set 0
        c.insert(1, 11, none); // set 1
        let mut undo = SetUndo::default();
        c.save_set(0, &mut undo);
        // Churn set 0: recency flip, eviction, removal.
        c.touch(0, any);
        assert_eq!(c.insert(4, 14, none), Some((2, 12)));
        c.remove(0, any);
        assert_eq!(c.len(), 2);
        c.restore_set(&undo);
        assert_eq!(c.len(), 3, "valid-line count restored");
        assert_eq!(c.peek(0, any), Some(&10));
        assert_eq!(c.peek(2, any), Some(&12));
        assert_eq!(c.peek(4, any), None);
        assert_eq!(c.peek(1, any), Some(&11), "other sets untouched");
        // Recency restored too: 2 was MRU at save time, so 0 is the victim.
        assert_eq!(c.insert(4, 14, none), Some((0, 10)));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_sets_panic() {
        let _: SetAssoc<u32> = SetAssoc::new(3, 2, Replacement::Lru);
    }

    #[test]
    #[should_panic(expected = "ways")]
    fn zero_ways_panic() {
        let _: SetAssoc<u32> = SetAssoc::new(4, 0, Replacement::Lru);
    }
}
