//! Set-associative cache arrays and replacement policies for the ZeroDEV
//! simulator.
//!
//! The same generic array backs every tagged structure in the machine: the
//! private L1/L2 caches, the shared LLC banks, the sparse-directory slices,
//! the SecDir partitions, and the Multi-grain Directory. The ZeroDEV LLC
//! replacement extensions (`spLRU`, `dataLRU`, §III-D1 of the paper) are
//! expressed through the *protected-line* victim search of
//! [`SetAssoc::insert`] plus caller-controlled recency touches.
//!
//! # Example
//!
//! ```
//! use zerodev_cache::{SetAssoc, Replacement};
//!
//! let mut cache: SetAssoc<&'static str> = SetAssoc::new(2, 2, Replacement::Lru);
//! assert!(cache.insert(0, "a", |_| false).is_none());
//! assert!(cache.insert(2, "b", |_| false).is_none()); // same set as key 0
//! cache.touch(0, |_| true);                            // "a" becomes MRU
//! let victim = cache.insert(4, "c", |_| false).unwrap();
//! assert_eq!(victim, (2, "b"));                        // LRU way evicted
//! ```

mod evbuf;
mod setassoc;

pub use evbuf::EvictionBuffer;
pub use setassoc::{Replacement, SetAssoc, SetUndo};
