//! The per-LLC-bank eviction buffer.
//!
//! The FuseAll policy (§III-C3 of the paper) requires a sharer core to
//! preserve an evicted block in an eviction buffer until the home LLC bank
//! acknowledges the eviction, so the home can retrieve the low bits needed
//! to reconstruct a fused line. The multi-socket protocol (§III-D3) likewise
//! keeps a block in the LLC eviction buffer of a socket while the home
//! socket decides whether this was the last system-wide copy.

use std::collections::VecDeque;

/// A bounded FIFO of `(key, payload)` entries awaiting acknowledgement.
#[derive(Clone, Debug)]
pub struct EvictionBuffer<T> {
    capacity: usize,
    entries: VecDeque<(u64, T)>,
}

impl<T> EvictionBuffer<T> {
    /// Creates a buffer holding at most `capacity` entries.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "eviction buffer needs capacity");
        EvictionBuffer {
            capacity,
            entries: VecDeque::with_capacity(capacity),
        }
    }

    /// Number of buffered entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True when a further push would displace the oldest entry.
    pub fn is_full(&self) -> bool {
        self.entries.len() == self.capacity
    }

    /// Buffers an entry. When full, the oldest entry is retired (its ack is
    /// assumed delivered — the simulator treats buffer overflow as forced
    /// in-order retirement) and returned.
    pub fn push(&mut self, key: u64, payload: T) -> Option<(u64, T)> {
        let displaced = if self.is_full() {
            self.entries.pop_front()
        } else {
            None
        };
        self.entries.push_back((key, payload));
        displaced
    }

    /// Looks up a buffered entry by key.
    pub fn get(&self, key: u64) -> Option<&T> {
        self.entries.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    /// Removes and returns the entry for `key` (the ack arrived).
    pub fn take(&mut self, key: u64) -> Option<T> {
        let pos = self.entries.iter().position(|(k, _)| *k == key)?;
        self.entries.remove(pos).map(|(_, v)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_take() {
        let mut b: EvictionBuffer<u32> = EvictionBuffer::new(4);
        assert!(b.is_empty());
        assert!(b.push(1, 10).is_none());
        assert!(b.push(2, 20).is_none());
        assert_eq!(b.get(1), Some(&10));
        assert_eq!(b.take(1), Some(10));
        assert_eq!(b.get(1), None);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn overflow_retires_oldest() {
        let mut b: EvictionBuffer<u32> = EvictionBuffer::new(2);
        b.push(1, 10);
        b.push(2, 20);
        assert!(b.is_full());
        let displaced = b.push(3, 30);
        assert_eq!(displaced, Some((1, 10)));
        assert_eq!(b.len(), 2);
        assert_eq!(b.get(2), Some(&20));
        assert_eq!(b.get(3), Some(&30));
    }

    #[test]
    fn take_missing_is_none() {
        let mut b: EvictionBuffer<u32> = EvictionBuffer::new(2);
        assert_eq!(b.take(9), None);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _: EvictionBuffer<u32> = EvictionBuffer::new(0);
    }
}
