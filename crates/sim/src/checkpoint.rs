//! Deterministic checkpoint/resume for paused runs.
//!
//! A [`crate::engine::PausedRun`] sits at a reference-loop boundary: the
//! effects buffer is drained, every in-flight access has retired, and the
//! entire remaining run is a pure function of (machine state, workload
//! generator state, event queue, fault plan). [`PausedRun::checkpoint`]
//! serializes exactly that closure into a versioned, checksummed image
//! ([`zerodev_common::snap`]); [`PausedRun::restore`] rebuilds a run that
//! continues **byte-identically** to the uninterrupted original — same
//! statistics, same event order, same fault sequence — pinned by the
//! kill-and-resume parity matrix in the bench crate.
//!
//! The image stores machine *state*, not machine *shape*: the caller
//! supplies the [`SystemConfig`] at restore time and the image carries a
//! fingerprint of it ([`zerodev_core::System::config_fingerprint`]), so a
//! checkpoint can never be thawed into a differently shaped machine.
//! Structures are rebuilt by their constructors and then lane-restored,
//! keeping probe order, replacement metadata, and fault-victim selection
//! exact.

use crate::core_model::AccessEffects;
use crate::engine::{EngineState, PausedRun, Simulation, Watchdog};
use crate::faults::FaultPlan;
use zerodev_common::snap::{SnapError, SnapReader, SnapWriter};
use zerodev_common::SystemConfig;
use zerodev_workloads::Workload;

/// Checkpoint container magic ("a paused ZeroDEV run").
pub const MAGIC: u64 = 0x5eed_c8ec_7020_21ff;

/// Checkpoint format version; bumped on any layout change so stale images
/// fail structurally instead of decoding garbage.
pub const VERSION: u32 = 1;

impl PausedRun {
    /// Serializes the paused run into a self-contained image: run target,
    /// watchdog tuning, workload generators (PRNG streams and cursors),
    /// the full machine (caches, directories, DRAM, oracle shadow), every
    /// core's private hierarchy, the fault plan, and the event-loop state.
    // lint:allow(snapshot_complete(fx), reusable effects buffer; empty at every pause boundary (each step clears then drains it))
    pub fn checkpoint(&self) -> Vec<u8> {
        let mut w = SnapWriter::new(MAGIC, VERSION);
        w.u64(self.refs_per_core);
        let (sim, st) = (&self.sim, &self.st);
        sim.watchdog().snap(&mut w);
        sim.workload().snap(&mut w);
        sim.system().snap(&mut w);
        w.usize(sim.cores().len());
        for core in sim.cores() {
            core.snap(&mut w);
        }
        match sim.faults() {
            None => w.bool(false),
            Some(plan) => {
                w.bool(true);
                plan.snap(&mut w);
            }
        }
        st.snap(&mut w);
        w.finish()
    }

    /// Rebuilds a paused run from a [`Self::checkpoint`] image taken on a
    /// machine built from `cfg`. The restored run continues byte-identically
    /// to the original.
    ///
    /// # Errors
    /// Fails with a [`SnapError`] on container damage (bad magic/version,
    /// checksum mismatch, truncation), a config fingerprint or geometry
    /// mismatch, or any corrupt field.
    pub fn restore(cfg: &SystemConfig, bytes: &[u8]) -> Result<PausedRun, SnapError> {
        let mut r = SnapReader::open(bytes, MAGIC, VERSION)?;
        let refs_per_core = r.u64("checkpoint refs per core")?;
        let watchdog = Watchdog::unsnap(&mut r)?;
        let workload = Workload::unsnap(&mut r)?;
        if workload.threads.len() != cfg.cores * cfg.sockets {
            return Err(SnapError::Corrupt {
                context: "workload thread count does not match the machine",
            });
        }
        let mut sim = Simulation::new(cfg, workload);
        sim.set_watchdog_raw(watchdog);
        sim.system_mut().unsnap(&mut r)?;
        let n = r.usize("checkpoint core count")?;
        if n != sim.cores().len() {
            return Err(SnapError::Corrupt {
                context: "core count does not match the machine",
            });
        }
        for core in sim.cores_mut() {
            core.unsnap(&mut r)?;
        }
        if r.bool("checkpoint faults flag")? {
            sim.set_fault_plan(FaultPlan::unsnap(&mut r)?);
        }
        let st = EngineState::unsnap(&mut r, n)?;
        r.expect_end()?;
        Ok(PausedRun {
            sim,
            st,
            refs_per_core,
            fx: AccessEffects::default(),
        })
    }
}
