//! Energy model for the sparse directory and the LLC (the paper's CACTI
//! substitute, §V "Energy Expense").
//!
//! The paper reports that ZeroDEV running without a sparse directory saves
//! about 9 % of the combined sparse-directory + LLC energy: the directory's
//! leakage and dynamic energy vanish, partially offset by extra LLC
//! data-array activity for the entries cached there. The constants below
//! follow CACTI-style scaling (per-access energy grows roughly with the
//! square root of capacity; leakage linearly with capacity) and are
//! calibrated so the reference machine reproduces that estimate.

use zerodev_common::config::{DirectoryKind, SystemConfig};
use zerodev_common::Stats;

/// Energy breakdown of one simulation run, in nanojoules.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EnergyReport {
    /// Sparse-directory dynamic energy.
    pub dir_dynamic_nj: f64,
    /// Sparse-directory leakage energy.
    pub dir_leakage_nj: f64,
    /// LLC dynamic energy (tag + data, including directory-entry accesses).
    pub llc_dynamic_nj: f64,
    /// LLC leakage energy.
    pub llc_leakage_nj: f64,
}

impl EnergyReport {
    /// Total directory + LLC energy.
    pub fn total_nj(&self) -> f64 {
        self.dir_dynamic_nj + self.dir_leakage_nj + self.llc_dynamic_nj + self.llc_leakage_nj
    }
}

/// Bits per sparse-directory entry: ~26-bit tag + sharer vector + state,
/// busy, NRU bits.
fn dir_entry_bits(cores: usize) -> f64 {
    26.0 + cores as f64 + 3.0
}

/// Directory capacity in bytes for the configured design (0 when absent).
pub fn dir_capacity_bytes(cfg: &SystemConfig) -> f64 {
    let entries = match &cfg.directory {
        DirectoryKind::Sparse { ratio, .. } => cfg.dir_entries(*ratio) as f64,
        DirectoryKind::MultiGrain { ratio, .. } => cfg.dir_entries(*ratio) as f64,
        DirectoryKind::SecDir(g) => {
            let slices = if cfg.cores >= 128 { 32.0 } else { 8.0 };
            slices
                * (g.shared_sets * g.shared_ways + cfg.cores * g.private_sets * g.private_ways)
                    as f64
        }
        DirectoryKind::Unbounded => cfg.dir_entries(zerodev_common::config::Ratio::ONE) as f64,
        DirectoryKind::None => 0.0,
    };
    entries * dir_entry_bits(cfg.cores) / 8.0
}

/// Per-access energy in nJ for an SRAM of `bytes` capacity (CACTI-style
/// sqrt scaling anchored at 1 nJ for an 8 MB array).
fn access_nj(bytes: f64) -> f64 {
    if bytes <= 0.0 {
        0.0
    } else {
        (bytes / (8.0 * 1024.0 * 1024.0)).sqrt()
    }
}

/// Leakage power in nW for an SRAM of `bytes` capacity, anchored at 1 W
/// (1e9 nW) for an 8 MB high-performance array — the regime where the
/// paper's CACTI numbers live; leakage dominates sustained operation.
fn leakage_nw(bytes: f64) -> f64 {
    bytes / (8.0 * 1024.0 * 1024.0) * 1.0e9
}

/// Computes the energy report for a run of `cycles` core cycles at 4 GHz
/// with the given counters.
pub fn energy(cfg: &SystemConfig, stats: &Stats, cycles: u64) -> EnergyReport {
    let seconds = cycles as f64 / 4.0e9;
    let dir_bytes = dir_capacity_bytes(cfg) * cfg.sockets as f64;
    let llc_bytes = cfg.llc.size_bytes as f64 * cfg.sockets as f64;
    // The LLC tag array is ~6% of the data array's capacity.
    let tag_bytes = llc_bytes * 0.06;
    // Directory arrays are small, wide, and highly associative (CAM-like
    // match lines, per-slice peripheral overhead): CACTI charges them far
    // more per bit than a large SRAM. Weight per-access energy by 2x and
    // leakage density by 8x relative to a same-capacity SRAM.
    let dir_access = 2.0 * access_nj(dir_bytes / cfg.sockets as f64);
    let dir_leak_bytes = dir_bytes * 8.0;
    let dir_ops = (stats.dir_lookups + stats.dir_allocs + stats.dir_evictions) as f64;
    EnergyReport {
        dir_dynamic_nj: dir_ops * dir_access,
        dir_leakage_nj: leakage_nw(dir_leak_bytes) * seconds,
        llc_dynamic_nj: stats.llc_tag_lookups as f64 * access_nj(tag_bytes / cfg.sockets as f64)
            + stats.llc_data_accesses as f64 * access_nj(llc_bytes / cfg.sockets as f64),
        llc_leakage_nj: leakage_nw(llc_bytes) * seconds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zerodev_common::config::{DirectoryKind, Ratio, ZeroDevConfig};

    #[test]
    fn directory_capacity_scales_with_ratio() {
        let cfg = SystemConfig::baseline_8core();
        let full = dir_capacity_bytes(&cfg);
        let eighth = dir_capacity_bytes(&cfg.clone().with_sparse_dir(Ratio::new(1, 8)));
        assert!((full / eighth - 8.0).abs() < 0.01);
        // ~148 KB for the 1x directory of the 8-core machine (32768 entries
        // × 37 bits).
        assert!((120_000.0..200_000.0).contains(&full), "got {full}");
    }

    #[test]
    fn no_directory_has_zero_capacity() {
        let cfg = SystemConfig::baseline_8core()
            .with_zerodev(ZeroDevConfig::default(), DirectoryKind::None);
        assert_eq!(dir_capacity_bytes(&cfg), 0.0);
    }

    #[test]
    fn removing_directory_saves_energy() {
        let base_cfg = SystemConfig::baseline_8core();
        let zd_cfg = SystemConfig::baseline_8core()
            .with_zerodev(ZeroDevConfig::default(), DirectoryKind::None);
        // Same activity profile except ZeroDEV adds LLC data accesses for
        // directory entries.
        let mut base_stats = Stats::new();
        base_stats.dir_lookups = 1_000_000;
        base_stats.dir_allocs = 100_000;
        base_stats.llc_tag_lookups = 1_000_000;
        base_stats.llc_data_accesses = 600_000;
        let mut zd_stats = base_stats.clone();
        zd_stats.llc_data_accesses += 150_000; // entry reads/writes
        let cycles = 50_000_000;
        let e_base = energy(&base_cfg, &base_stats, cycles);
        let e_zd = energy(&zd_cfg, &zd_stats, cycles);
        assert_eq!(e_zd.dir_dynamic_nj + e_zd.dir_leakage_nj, 0.0);
        let saving = 1.0 - e_zd.total_nj() / e_base.total_nj();
        assert!(
            (0.02..0.30).contains(&saving),
            "saving {saving} outside the plausible band around the paper's 9%"
        );
    }

    #[test]
    fn energy_total_sums_parts() {
        let r = EnergyReport {
            dir_dynamic_nj: 1.0,
            dir_leakage_nj: 2.0,
            llc_dynamic_nj: 3.0,
            llc_leakage_nj: 4.0,
        };
        assert!((r.total_nj() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn secdir_capacity_counts_partitions() {
        let mut cfg = SystemConfig::baseline_8core();
        cfg.directory =
            DirectoryKind::SecDir(zerodev_common::config::SecDirGeometry::eight_core_1x());
        let b = dir_capacity_bytes(&cfg);
        assert!(b > 0.0);
    }
}
