//! One-call experiment execution helpers used by the figure harnesses.

use crate::energy::{energy, EnergyReport};
use crate::engine::{SimResult, Simulation, DEFAULT_WATCHDOG_HORIZON, DEFAULT_WATCHDOG_PERIOD};
use crate::faults::FaultConfig;
use zerodev_common::{env, SystemConfig};
use zerodev_workloads::Workload;

/// Run length parameters.
#[derive(Clone, Copy, Debug)]
pub struct RunParams {
    /// References each core must retire in the measured region.
    pub refs_per_core: u64,
    /// References each core executes to warm caches before measurement.
    pub warmup_refs: u64,
    /// Worker threads used by the parallel sweep engine
    /// ([`crate::parallel::Engine`]) for (config × workload) grids.
    /// `1` selects the exact serial path (no threads are spawned).
    /// Has no effect on simulation results — every run is deterministic.
    pub threads: usize,
    /// Speculation shards for intra-run parallelism (`crate::shard`):
    /// cores are partitioned into this many shards that run ahead on
    /// worker threads between epoch barriers, while the global event
    /// order is committed serially. `1` (the default, `ZERODEV_SHARDS`
    /// unset) selects the exact serial event loop. Has no effect on
    /// simulation results — sharded runs are byte-identical to serial.
    pub shards: usize,
    /// Runs the coherence-invariant oracle (`zerodev_core::oracle`)
    /// alongside the protocol engine: a shadow MESI model checked after
    /// every uncore transaction, panicking with an event-log dump on the
    /// first violation. Audited runs produce byte-identical statistics;
    /// release sweeps leave this off and pay nothing.
    pub audit: bool,
    /// Deterministic fault injection ([`crate::faults`]); `None` (the
    /// default, `ZERODEV_FAULTS` unset) is zero-cost-off.
    pub faults: Option<FaultConfig>,
    /// Cycles of per-core heartbeat silence before the forward-progress
    /// watchdog declares [`crate::SimError::Stalled`]. The watchdog only
    /// reads the event stream: any horizon that does not fire leaves
    /// results byte-identical. Override with `ZERODEV_WATCHDOG_HORIZON`.
    pub watchdog_horizon: u64,
    /// References between watchdog heartbeat scans (clamped to >= 1 when
    /// applied). Override with `ZERODEV_WATCHDOG_PERIOD`.
    pub watchdog_period: u64,
}

/// Worker count used when `ZERODEV_THREADS` is unset: all available cores.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

impl Default for RunParams {
    fn default() -> Self {
        // Sized so a full figure (dozens of configurations) regenerates in
        // seconds while footprints still exceed the private caches.
        RunParams {
            refs_per_core: 100_000,
            warmup_refs: 25_000,
            threads: default_threads(),
            shards: 1,
            audit: false,
            faults: None,
            watchdog_horizon: DEFAULT_WATCHDOG_HORIZON,
            watchdog_period: DEFAULT_WATCHDOG_PERIOD,
        }
    }
}

impl RunParams {
    /// A faster profile for smoke tests and CI.
    pub fn quick() -> Self {
        RunParams {
            refs_per_core: 8_000,
            warmup_refs: 2_000,
            ..Default::default()
        }
    }

    /// Reads `ZERODEV_QUICK=1` to switch every harness to the quick profile,
    /// `ZERODEV_THREADS=N` to set the sweep worker count (`1` = serial),
    /// `ZERODEV_SHARDS=N` to shard each run's simulation internally
    /// (`1` = the exact serial event loop; results are identical either way),
    /// `ZERODEV_AUDIT=1` to run every simulation under the coherence oracle,
    /// `ZERODEV_FAULTS=<spec>` to arm deterministic fault injection, and
    /// `ZERODEV_WATCHDOG_HORIZON=N` / `ZERODEV_WATCHDOG_PERIOD=N` to tune
    /// the forward-progress watchdog (cycles of heartbeat silence, and
    /// references between scans). All parsing goes through
    /// [`zerodev_common::env`]: an invalid value warns once on stderr and
    /// falls back to the default instead of silently misbehaving or
    /// aborting a sweep.
    pub fn from_env() -> Self {
        let mut p = if env::var_flag("ZERODEV_QUICK") {
            Self::quick()
        } else {
            Self::default()
        };
        p.threads = env::var_or("ZERODEV_THREADS", default_threads()).max(1);
        p.shards = env::var_or("ZERODEV_SHARDS", 1).max(1);
        p.audit = env::var_flag("ZERODEV_AUDIT");
        p.faults = FaultConfig::from_env();
        p.watchdog_horizon = env::var_or("ZERODEV_WATCHDOG_HORIZON", p.watchdog_horizon);
        p.watchdog_period = env::var_or("ZERODEV_WATCHDOG_PERIOD", p.watchdog_period).max(1);
        p
    }

    /// Applies the watchdog tuning to a built simulation.
    fn arm(&self, sim: &mut Simulation) {
        sim.set_watchdog(self.watchdog_horizon, self.watchdog_period);
        if self.audit {
            sim.enable_audit();
        }
        if let Some(fc) = self.faults {
            sim.set_faults(fc);
        }
    }
}

/// Runs `workload` on the machine in `cfg` and attaches the energy report.
pub fn run(cfg: &SystemConfig, workload: Workload, params: &RunParams) -> RunWithEnergy {
    let mut sim = Simulation::new(cfg, workload);
    params.arm(&mut sim);
    let result = sim.run_sharded(params.refs_per_core, params.warmup_refs, params.shards);
    let e = energy(cfg, &result.stats, result.completion_cycles);
    RunWithEnergy { result, energy: e }
}

/// A run result plus its energy report.
#[derive(Clone, Debug)]
pub struct RunWithEnergy {
    /// The simulation result.
    pub result: SimResult,
    /// The directory + LLC energy report.
    pub energy: EnergyReport,
}

impl std::ops::Deref for RunWithEnergy {
    type Target = SimResult;
    fn deref(&self) -> &SimResult {
        &self.result
    }
}

/// Convenience: ratio of traffic bytes (config / baseline).
pub fn traffic_ratio(cfg_run: &SimResult, base: &SimResult) -> f64 {
    cfg_run.stats.total_traffic_bytes() as f64 / base.stats.total_traffic_bytes().max(1) as f64
}

/// Convenience: ratio of core-cache misses (config / baseline).
pub fn miss_ratio(cfg_run: &SimResult, base: &SimResult) -> f64 {
    cfg_run.stats.core_cache_misses as f64 / base.stats.core_cache_misses.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use zerodev_common::config::{DirectoryKind, ZeroDevConfig};
    use zerodev_workloads::{multithreaded, rate};

    #[test]
    fn run_attaches_energy() {
        let cfg = SystemConfig::baseline_8core();
        let wl = multithreaded("swaptions", 8, 3).unwrap();
        let r = run(&cfg, wl, &RunParams::quick());
        assert!(r.energy.total_nj() > 0.0);
        assert!(r.completion_cycles > 0);
    }

    #[test]
    fn zerodev_nodir_has_no_devs_on_real_workload() {
        let cfg = SystemConfig::baseline_8core()
            .with_zerodev(ZeroDevConfig::default(), DirectoryKind::None);
        let wl = multithreaded("ocean_cp", 8, 5).unwrap();
        let r = run(&cfg, wl, &RunParams::quick());
        assert_eq!(r.stats.dev_invalidations, 0);
        assert!(r.stats.dir_spills + r.stats.dir_fuses > 0);
    }

    #[test]
    fn ratios_are_near_one_for_identical_configs() {
        let cfg = SystemConfig::baseline_8core();
        let a = run(&cfg, rate("leela", 8, 7).unwrap(), &RunParams::quick());
        let b = run(&cfg, rate("leela", 8, 7).unwrap(), &RunParams::quick());
        assert!((traffic_ratio(&a, &b) - 1.0).abs() < 1e-9);
        assert!((miss_ratio(&a, &b) - 1.0).abs() < 1e-9);
        assert!((a.speedup_vs(&b).expect("same core count") - 1.0).abs() < 1e-9);
    }
}
