//! The parallel sweep engine: executes a (config × workload) grid across a
//! scoped worker pool with deterministic result ordering and a process-wide
//! baseline memoization cache.
//!
//! Every [`crate::engine::Simulation`] run is fully deterministic and
//! self-contained, so a figure's grid of runs is embarrassingly parallel:
//! the engine only has to preserve *result ordering*, not execution
//! ordering, for the printed tables to come out bit-identical to the serial
//! harness. Jobs are pulled from a shared queue by `threads` scoped workers
//! and each result lands in the slot of its job index; callers then consume
//! the slots in submission order.
//!
//! Runs are additionally memoized in a process-wide cache keyed by
//! `(SystemConfig fingerprint, workload name, seed, run length)`. The
//! figure harnesses re-run the identical baseline simulation for every
//! figure that shares it (Figures 19–21 and 23 alone sweep the same
//! baseline over the same applications four times); with `all_figures`
//! executing every figure in one process, each baseline is computed once
//! and every later figure gets a cache hit.
//!
//! Thread count comes from [`RunParams::threads`] (`ZERODEV_THREADS` in the
//! environment; default = available parallelism). `threads == 1` takes an
//! exact serial path that spawns nothing.

use crate::runner::{run, RunParams, RunWithEnergy};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};
use zerodev_common::SystemConfig;
use zerodev_workloads::Workload;

/// A shareable workload constructor. Workloads are consumed per run, so
/// jobs carry factories; `Send + Sync` lets any worker build the workload.
pub type WorkloadMaker = Arc<dyn Fn() -> Workload + Send + Sync>;

/// One simulation to execute: a machine, a workload factory, and a run
/// length.
#[derive(Clone)]
pub struct RunJob {
    /// The machine to simulate.
    pub cfg: SystemConfig,
    /// Builds the workload (called on the worker that runs the job).
    pub make: WorkloadMaker,
    /// Run length (the `threads` field is ignored per job).
    pub params: RunParams,
    /// The seed the workload factory closes over; part of the memo key.
    pub seed: u64,
    /// Whether this run may be served from / stored into the memo cache.
    pub memo: bool,
}

impl RunJob {
    /// A memoized job (the default; every harness run is deterministic).
    pub fn new(cfg: SystemConfig, make: WorkloadMaker, params: RunParams, seed: u64) -> Self {
        RunJob {
            cfg,
            make,
            params,
            seed,
            memo: true,
        }
    }
}

/// The result slot of one job: the run, its wall-clock, and whether it was
/// served from the memo cache.
#[derive(Clone)]
pub struct JobOutcome {
    /// The (possibly shared) run result.
    pub run: Arc<RunWithEnergy>,
    /// Wall-clock time this job took on its worker.
    pub wall: Duration,
    /// True when the result came from the memoization cache.
    pub cache_hit: bool,
}

/// The memoization key: everything that determines a run's result.
/// `RunParams::threads` is deliberately excluded — it cannot affect results.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct MemoKey {
    fingerprint: u64,
    workload: String,
    seed: u64,
    refs_per_core: u64,
    warmup_refs: u64,
}

/// One cache slot. The per-key mutex makes memoization race-free under the
/// worker pool: the first worker to claim a key holds its entry lock while
/// simulating, so a concurrent duplicate blocks and then reads the finished
/// result as a cache hit instead of recomputing it.
type MemoEntry = Arc<Mutex<Option<Arc<RunWithEnergy>>>>;

fn memo_cache() -> &'static Mutex<HashMap<MemoKey, MemoEntry>> {
    static CACHE: OnceLock<Mutex<HashMap<MemoKey, MemoEntry>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Aggregate sweep accounting since process start (or the last
/// [`reset_summary`]), across every grid run by every [`Engine`].
#[derive(Clone, Copy, Default, Debug)]
pub struct SweepSummary {
    /// Simulations actually executed.
    pub runs_executed: u64,
    /// Jobs served from the memoization cache.
    pub cache_hits: u64,
    /// Total simulated cycles across executed runs (`completion_cycles`).
    pub sim_cycles: u64,
    /// Summed per-job wall-clock of executed runs (CPU-side busy time; with
    /// N workers this exceeds elapsed wall-clock by up to N×).
    pub busy: Duration,
}

impl SweepSummary {
    /// Simulated cycles per second of real time, given the caller's
    /// elapsed wall-clock (the caller knows the true elapsed span; `busy`
    /// here is summed across workers).
    pub fn cycles_per_sec(&self, elapsed: Duration) -> f64 {
        self.sim_cycles as f64 / elapsed.as_secs_f64().max(1e-9)
    }
}

fn summary_cell() -> &'static Mutex<SweepSummary> {
    static SUMMARY: OnceLock<Mutex<SweepSummary>> = OnceLock::new();
    SUMMARY.get_or_init(|| Mutex::new(SweepSummary::default()))
}

/// Snapshot of the process-wide sweep accounting.
pub fn summary() -> SweepSummary {
    *summary_cell().lock().expect("summary lock")
}

/// Resets the process-wide sweep accounting (test isolation).
pub fn reset_summary() {
    *summary_cell().lock().expect("summary lock") = SweepSummary::default();
}

/// Empties the memoization cache (test isolation / memory reclamation).
pub fn clear_memo_cache() {
    memo_cache().lock().expect("memo lock").clear();
}

fn record(executed: bool, sim_cycles: u64, wall: Duration) {
    let mut s = summary_cell().lock().expect("summary lock");
    if executed {
        s.runs_executed += 1;
        s.sim_cycles += sim_cycles;
        s.busy += wall;
    } else {
        s.cache_hits += 1;
    }
}

/// Runs one job: build the workload, consult the cache, simulate on a miss.
fn execute_job(job: &RunJob) -> JobOutcome {
    let t0 = Instant::now();
    let workload = (job.make)();
    let key = job.memo.then(|| MemoKey {
        fingerprint: job.cfg.fingerprint(),
        workload: workload.name.clone(),
        seed: job.seed,
        refs_per_core: job.params.refs_per_core,
        warmup_refs: job.params.warmup_refs,
    });
    if let Some(k) = key {
        let entry: MemoEntry = memo_cache()
            .lock()
            .expect("memo lock")
            .entry(k)
            .or_default()
            .clone();
        let mut slot = entry.lock().expect("memo entry lock");
        if let Some(run) = slot.clone() {
            drop(slot);
            let wall = t0.elapsed();
            record(false, 0, wall);
            return JobOutcome {
                run,
                wall,
                cache_hit: true,
            };
        }
        // First claimant: simulate while holding the entry lock so a
        // concurrent duplicate waits for this result instead of redoing it.
        let result = Arc::new(run(&job.cfg, workload, &job.params));
        *slot = Some(result.clone());
        drop(slot);
        let wall = t0.elapsed();
        record(true, result.result.completion_cycles, wall);
        return JobOutcome {
            run: result,
            wall,
            cache_hit: false,
        };
    }
    let result = Arc::new(run(&job.cfg, workload, &job.params));
    let wall = t0.elapsed();
    record(true, result.result.completion_cycles, wall);
    JobOutcome {
        run: result,
        wall,
        cache_hit: false,
    }
}

/// The sweep engine: a fixed worker count and a `run_grid` entry point.
#[derive(Clone, Copy, Debug)]
pub struct Engine {
    threads: usize,
}

impl Engine {
    /// An engine with `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        Engine {
            threads: threads.max(1),
        }
    }

    /// An engine sized by the environment (`ZERODEV_THREADS`, default =
    /// available parallelism) via [`RunParams::from_env`].
    pub fn from_env() -> Self {
        Engine::new(RunParams::from_env().threads)
    }

    /// The worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Executes every job and returns one outcome per job, **in job
    /// order** regardless of which worker finished when — callers printing
    /// tables from the outcomes produce output bit-identical to a serial
    /// run. With one thread (or one job) this is the exact serial path:
    /// jobs run in order on the calling thread and nothing is spawned.
    pub fn run_grid(&self, jobs: &[RunJob]) -> Vec<JobOutcome> {
        if self.threads == 1 || jobs.len() <= 1 {
            return jobs.iter().map(execute_job).collect();
        }
        let slots: Vec<OnceLock<JobOutcome>> = jobs.iter().map(|_| OnceLock::new()).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..self.threads.min(jobs.len()) {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(job) = jobs.get(i) else { break };
                    slots[i]
                        .set(execute_job(job))
                        .unwrap_or_else(|_| unreachable!("slot {i} filled twice"));
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.into_inner().expect("every slot filled"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zerodev_workloads::multithreaded;

    /// Serializes tests in this module: every job execution bumps the
    /// process-wide sweep summary, so tests asserting exact counter deltas
    /// must not overlap with other job-running tests.
    static GUARD: Mutex<()> = Mutex::new(());

    fn lock() -> std::sync::MutexGuard<'static, ()> {
        GUARD.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn quick() -> RunParams {
        RunParams {
            refs_per_core: 2_000,
            warmup_refs: 200,
            ..Default::default()
        }
    }

    fn job(app: &'static str, seed: u64, memo: bool) -> RunJob {
        RunJob {
            cfg: SystemConfig::baseline_8core(),
            make: Arc::new(move || multithreaded(app, 8, seed).unwrap()),
            params: quick(),
            seed,
            memo,
        }
    }

    #[test]
    fn parallel_matches_serial_and_preserves_order() {
        let _g = lock();
        let apps = ["ferret", "swaptions", "canneal", "vips", "streamcluster"];
        let jobs: Vec<RunJob> = apps.iter().map(|&a| job(a, 0xbeef, false)).collect();
        let serial = Engine::new(1).run_grid(&jobs);
        let parallel = Engine::new(4).run_grid(&jobs);
        assert_eq!(serial.len(), parallel.len());
        for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
            assert_eq!(s.run.result.name, apps[i], "slot order preserved");
            assert_eq!(p.run.result.name, apps[i], "slot order preserved");
            assert_eq!(
                s.run.result.completion_cycles,
                p.run.result.completion_cycles
            );
            assert_eq!(
                s.run.result.stats.core_cache_misses,
                p.run.result.stats.core_cache_misses
            );
            assert_eq!(
                s.run.result.stats.total_traffic_bytes(),
                p.run.result.stats.total_traffic_bytes()
            );
        }
    }

    #[test]
    fn memoized_jobs_hit_the_cache() {
        let _g = lock();
        // A seed no other test uses keeps this isolated from the shared
        // process-wide cache.
        let seed = 0x51ee_d00d_0001;
        let jobs = vec![
            job("blackscholes", seed, true),
            job("blackscholes", seed, true),
        ];
        let outs = Engine::new(1).run_grid(&jobs);
        assert!(!outs[0].cache_hit);
        assert!(outs[1].cache_hit);
        assert!(Arc::ptr_eq(&outs[0].run, &outs[1].run));
        // A different config misses.
        let mut other = job("blackscholes", seed, true);
        other.cfg.l2_hit_cycles += 1;
        let out = Engine::new(1).run_grid(std::slice::from_ref(&other));
        assert!(!out[0].cache_hit);
    }

    #[test]
    fn summary_counts_runs_and_hits() {
        let _g = lock();
        let seed = 0x51ee_d00d_0002;
        let before = summary();
        let jobs = vec![
            job("fluidanimate", seed, true),
            job("fluidanimate", seed, true),
        ];
        let _ = Engine::new(2).run_grid(&jobs);
        let after = summary();
        assert_eq!(after.runs_executed - before.runs_executed, 1);
        assert_eq!(after.cache_hits - before.cache_hits, 1);
        assert!(after.sim_cycles > before.sim_cycles);
    }

    #[test]
    fn unmemoized_jobs_recompute() {
        let _g = lock();
        let seed = 0x51ee_d00d_0003;
        let jobs = vec![job("dedup", seed, false), job("dedup", seed, false)];
        let outs = Engine::new(2).run_grid(&jobs);
        assert!(!outs[0].cache_hit && !outs[1].cache_hit);
        assert!(!Arc::ptr_eq(&outs[0].run, &outs[1].run));
        assert_eq!(
            outs[0].run.result.completion_cycles, outs[1].run.result.completion_cycles,
            "deterministic recompute"
        );
    }
}
