//! The parallel sweep engine: executes a (config × workload) grid across a
//! scoped worker pool with deterministic result ordering and a process-wide
//! baseline memoization cache.
//!
//! Every [`crate::engine::Simulation`] run is fully deterministic and
//! self-contained, so a figure's grid of runs is embarrassingly parallel:
//! the engine only has to preserve *result ordering*, not execution
//! ordering, for the printed tables to come out bit-identical to the serial
//! harness. Jobs are pulled from a shared queue by `threads` scoped workers
//! and each result lands in the slot of its job index; callers then consume
//! the slots in submission order.
//!
//! Runs are additionally memoized in a process-wide cache keyed by
//! `(SystemConfig fingerprint, workload name, seed, run length)`. The
//! figure harnesses re-run the identical baseline simulation for every
//! figure that shares it (Figures 19–21 and 23 alone sweep the same
//! baseline over the same applications four times); with `all_figures`
//! executing every figure in one process, each baseline is computed once
//! and every later figure gets a cache hit.
//!
//! Thread count comes from [`RunParams::threads`] (`ZERODEV_THREADS` in the
//! environment; default = available parallelism). `threads == 1` takes an
//! exact serial path that spawns nothing.

use crate::faults::FaultConfig;
use crate::runner::{run, RunParams, RunWithEnergy};
// lint:allow(nondeterministic_map, host-side memo cache keyed per run; results are read back per key and its iteration order is never observed by simulated state)
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
// lint:allow(wall_clock, wall-clock here is host-side budgeting and diagnostics only; simulated time is Cycle-based and never reads it)
use std::time::{Duration, Instant};
use zerodev_common::SystemConfig;
use zerodev_workloads::Workload;

/// Locks a mutex, recovering from poison: every structure behind these
/// locks (cache map, cache entries, counters) is valid after any partial
/// update, and a worker that panicked mid-job must degrade that one point,
/// not every later sweep.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Renders a panic payload as text (panics carry `String` or `&str`).
fn panic_message(p: Box<dyn std::any::Any + Send>) -> String {
    p.downcast_ref::<String>()
        .cloned()
        .or_else(|| p.downcast_ref::<&str>().map(|s| (*s).to_string()))
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

/// A shareable workload constructor. Workloads are consumed per run, so
/// jobs carry factories; `Send + Sync` lets any worker build the workload.
pub type WorkloadMaker = Arc<dyn Fn() -> Workload + Send + Sync>;

/// One simulation to execute: a machine, a workload factory, and a run
/// length.
#[derive(Clone)]
pub struct RunJob {
    /// The machine to simulate.
    pub cfg: SystemConfig,
    /// Builds the workload (called on the worker that runs the job).
    pub make: WorkloadMaker,
    /// Run length (the `threads` field is ignored per job).
    pub params: RunParams,
    /// The seed the workload factory closes over; part of the memo key.
    pub seed: u64,
    /// Whether this run may be served from / stored into the memo cache.
    pub memo: bool,
}

impl std::fmt::Debug for RunJob {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunJob")
            .field("cfg", &self.cfg)
            .field("make", &"<workload factory>")
            .field("params", &self.params)
            .field("seed", &self.seed)
            .field("memo", &self.memo)
            .finish()
    }
}

impl RunJob {
    /// A memoized job (the default; every harness run is deterministic).
    pub fn new(cfg: SystemConfig, make: WorkloadMaker, params: RunParams, seed: u64) -> Self {
        RunJob {
            cfg,
            make,
            params,
            seed,
            memo: true,
        }
    }
}

/// How one sweep point ended: a result, or an isolated failure. Workers run
/// each job under `catch_unwind`, so one panicking configuration degrades
/// its point instead of aborting the whole figure sweep.
#[derive(Clone, Debug)]
pub enum PointResult {
    /// The point simulated (or was served from the cache).
    Ok(Arc<RunWithEnergy>),
    /// The point panicked; the message says where and why. Also recorded in
    /// the process-wide [`failed_points`] registry.
    Failed(String),
}

impl PointResult {
    /// The run, if the point succeeded.
    pub fn ok(&self) -> Option<&Arc<RunWithEnergy>> {
        match self {
            PointResult::Ok(r) => Some(r),
            PointResult::Failed(_) => None,
        }
    }

    /// The failure message, if the point failed.
    pub fn failure(&self) -> Option<&str> {
        match self {
            PointResult::Ok(_) => None,
            PointResult::Failed(m) => Some(m),
        }
    }

    /// True when the point failed.
    pub fn is_failed(&self) -> bool {
        matches!(self, PointResult::Failed(_))
    }

    /// The run.
    ///
    /// # Panics
    /// Panics with the failure message when the point failed.
    pub fn unwrap(&self) -> &Arc<RunWithEnergy> {
        match self {
            PointResult::Ok(r) => r,
            PointResult::Failed(m) => panic!("sweep point failed: {m}"),
        }
    }
}

/// The result slot of one job: the point outcome, its wall-clock, and
/// whether it was served from the memo cache.
#[derive(Clone, Debug)]
pub struct JobOutcome {
    /// The (possibly shared) point outcome.
    pub run: PointResult,
    /// Wall-clock time this job took on its worker.
    pub wall: Duration,
    /// True when the result came from the memoization cache.
    pub cache_hit: bool,
}

/// The memoization key: everything that determines a run's result.
/// `RunParams::threads` and `RunParams::shards` are deliberately excluded —
/// neither can affect results (sharded runs are byte-identical to serial).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct MemoKey {
    fingerprint: u64,
    workload: String,
    seed: u64,
    refs_per_core: u64,
    warmup_refs: u64,
    /// Fault injection changes results (and may be what a run is *for*),
    /// so faulted runs never share cache slots with clean ones.
    faults: Option<FaultConfig>,
    /// Auditing never changes results, but a faulted audited run can panic
    /// where its unaudited twin completes — keep them apart.
    audit: bool,
}

/// One cache slot. The per-key mutex makes memoization race-free under the
/// worker pool: the first worker to claim a key holds its entry lock while
/// simulating, so a concurrent duplicate blocks and then reads the finished
/// result as a cache hit instead of recomputing it.
type MemoEntry = Arc<Mutex<Option<Arc<RunWithEnergy>>>>;

// lint:allow(nondeterministic_map, memo cache lookups are by exact key; no iteration)
fn memo_cache() -> &'static Mutex<HashMap<MemoKey, MemoEntry>> {
    // lint:allow(nondeterministic_map, memo cache lookups are by exact key; no iteration)
    static CACHE: OnceLock<Mutex<HashMap<MemoKey, MemoEntry>>> = OnceLock::new();
    // lint:allow(nondeterministic_map, memo cache lookups are by exact key; no iteration)
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Aggregate sweep accounting since process start (or the last
/// [`reset_summary`]), across every grid run by every [`Engine`].
#[derive(Clone, Copy, Default, Debug)]
pub struct SweepSummary {
    /// Simulations actually executed.
    pub runs_executed: u64,
    /// Jobs served from the memoization cache.
    pub cache_hits: u64,
    /// Points that panicked and were isolated ([`PointResult::Failed`]).
    pub failed: u64,
    /// Total simulated cycles across executed runs (`completion_cycles`).
    pub sim_cycles: u64,
    /// Total references retired across executed runs
    /// ([`crate::engine::SimResult::refs_retired`]).
    pub refs_retired: u64,
    /// Summed per-job wall-clock of executed runs (CPU-side busy time; with
    /// N workers this exceeds elapsed wall-clock by up to N×).
    pub busy: Duration,
}

impl SweepSummary {
    /// Simulated cycles per second of real time, given the caller's
    /// elapsed wall-clock (the caller knows the true elapsed span; `busy`
    /// here is summed across workers).
    pub fn cycles_per_sec(&self, elapsed: Duration) -> f64 {
        self.sim_cycles as f64 / elapsed.as_secs_f64().max(1e-9)
    }

    /// References retired per second of real time, given the caller's
    /// elapsed wall-clock.
    pub fn refs_per_sec(&self, elapsed: Duration) -> f64 {
        self.refs_retired as f64 / elapsed.as_secs_f64().max(1e-9)
    }
}

fn summary_cell() -> &'static Mutex<SweepSummary> {
    static SUMMARY: OnceLock<Mutex<SweepSummary>> = OnceLock::new();
    SUMMARY.get_or_init(|| Mutex::new(SweepSummary::default()))
}

/// Snapshot of the process-wide sweep accounting.
pub fn summary() -> SweepSummary {
    *lock_recover(summary_cell())
}

/// Resets the process-wide sweep accounting (test isolation).
pub fn reset_summary() {
    *lock_recover(summary_cell()) = SweepSummary::default();
}

/// Empties the memoization cache (test isolation / memory reclamation).
pub fn clear_memo_cache() {
    lock_recover(memo_cache()).clear();
}

fn failures_cell() -> &'static Mutex<Vec<String>> {
    static FAILURES: OnceLock<Mutex<Vec<String>>> = OnceLock::new();
    FAILURES.get_or_init(|| Mutex::new(Vec::new()))
}

fn context_cell() -> &'static Mutex<Option<String>> {
    static CONTEXT: OnceLock<Mutex<Option<String>>> = OnceLock::new();
    CONTEXT.get_or_init(|| Mutex::new(None))
}

/// Names the sweep currently running (e.g. the figure), so an isolated
/// point failure can say *which figure's grid* it degraded. The figure
/// harness sets this before each figure body and clears it after; `None`
/// clears it.
pub fn set_sweep_context(label: Option<&str>) {
    *lock_recover(context_cell()) = label.map(str::to_string);
}

/// Every isolated point failure since process start (or the last
/// [`reset_failures`]), in the order workers hit them. The figure harness
/// prints this as the degraded-sweep summary.
pub fn failed_points() -> Vec<String> {
    lock_recover(failures_cell()).clone()
}

/// Clears the failed-point registry (test isolation).
pub fn reset_failures() {
    lock_recover(failures_cell()).clear();
}

fn record(executed: bool, sim_cycles: u64, refs_retired: u64, wall: Duration) {
    let mut s = lock_recover(summary_cell());
    if executed {
        s.runs_executed += 1;
        s.sim_cycles += sim_cycles;
        s.refs_retired += refs_retired;
        s.busy += wall;
    } else {
        s.cache_hits += 1;
    }
}

/// Registers one isolated failure and builds its outcome. The description
/// names the sweep ([`set_sweep_context`], typically the figure), the
/// workload, the config point, the seed and run length, and carries the
/// panic/`SimError` payload — everything the degraded-sweep summary needs
/// to reproduce the point.
// lint:allow(wall_clock, job wall-time is carried into the degraded-sweep diagnostics only)
fn fail_outcome(job: &RunJob, workload: Option<&str>, msg: String, t0: Instant) -> JobOutcome {
    let ctx = lock_recover(context_cell())
        .as_deref()
        .map(|c| format!("[{c}] "))
        .unwrap_or_default();
    let desc = format!(
        "{ctx}{} on config {:016x} (seed {:#x}, {} refs/core{}{}): {msg}",
        workload.unwrap_or("<workload construction>"),
        job.cfg.fingerprint(),
        job.seed,
        job.params.refs_per_core,
        if job.params.audit { ", audited" } else { "" },
        if job.params.faults.is_some() {
            ", faults armed"
        } else {
            ""
        },
    );
    lock_recover(failures_cell()).push(desc.clone());
    lock_recover(summary_cell()).failed += 1;
    JobOutcome {
        run: PointResult::Failed(desc),
        wall: t0.elapsed(),
        cache_hit: false,
    }
}

/// Runs one job: build the workload, consult the cache, simulate on a
/// miss. The workload factory and the simulation both run under
/// `catch_unwind`; a panic yields [`PointResult::Failed`] and leaves the
/// memo cache slot empty rather than poisoned.
fn execute_job(job: &RunJob) -> JobOutcome {
    // lint:allow(wall_clock, per-job wall-time feeds failure diagnostics and the budget governor, never simulated state)
    let t0 = Instant::now();
    let workload = match catch_unwind(AssertUnwindSafe(|| (job.make)())) {
        Ok(w) => w,
        Err(p) => return fail_outcome(job, None, panic_message(p), t0),
    };
    let name = workload.name.clone();
    let key = job.memo.then(|| MemoKey {
        fingerprint: job.cfg.fingerprint(),
        workload: name.clone(),
        seed: job.seed,
        refs_per_core: job.params.refs_per_core,
        warmup_refs: job.params.warmup_refs,
        faults: job.params.faults,
        audit: job.params.audit,
    });
    let entry: Option<MemoEntry> =
        key.map(|k| lock_recover(memo_cache()).entry(k).or_default().clone());
    // First claimant of a key simulates while holding the entry lock so a
    // concurrent duplicate waits for this result instead of redoing it.
    let mut slot = entry.as_ref().map(|e| lock_recover(e));
    if let Some(run) = slot.as_deref().and_then(Clone::clone) {
        drop(slot);
        let wall = t0.elapsed();
        record(false, 0, 0, wall);
        return JobOutcome {
            run: PointResult::Ok(run),
            wall,
            cache_hit: true,
        };
    }
    match catch_unwind(AssertUnwindSafe(|| run(&job.cfg, workload, &job.params))) {
        Ok(r) => {
            let result = Arc::new(r);
            if let Some(s) = slot.as_deref_mut() {
                *s = Some(result.clone());
            }
            drop(slot);
            let wall = t0.elapsed();
            record(
                true,
                result.result.completion_cycles,
                result.result.refs_retired,
                wall,
            );
            JobOutcome {
                run: PointResult::Ok(result),
                wall,
                cache_hit: false,
            }
        }
        Err(p) => {
            // The slot guard drops unpoisoned (the panic was caught below
            // it); the empty slot lets a later identical job retry.
            drop(slot);
            fail_outcome(job, Some(&name), panic_message(p), t0)
        }
    }
}

/// The sweep engine: a fixed worker count and a `run_grid` entry point.
#[derive(Clone, Copy, Debug)]
pub struct Engine {
    threads: usize,
}

impl Engine {
    /// An engine with `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        Engine {
            threads: threads.max(1),
        }
    }

    /// An engine sized by the environment (`ZERODEV_THREADS`, default =
    /// available parallelism) via [`RunParams::from_env`].
    pub fn from_env() -> Self {
        Engine::new(RunParams::from_env().threads)
    }

    /// The worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Executes every job and returns one outcome per job, **in job
    /// order** regardless of which worker finished when — callers printing
    /// tables from the outcomes produce output bit-identical to a serial
    /// run. With one thread (or one job) this is the exact serial path:
    /// jobs run in order on the calling thread and nothing is spawned.
    pub fn run_grid(&self, jobs: &[RunJob]) -> Vec<JobOutcome> {
        if self.threads == 1 || jobs.len() <= 1 {
            return jobs.iter().map(execute_job).collect();
        }
        let slots: Vec<OnceLock<JobOutcome>> = jobs.iter().map(|_| OnceLock::new()).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..self.threads.min(jobs.len()) {
                // lint:allow(thread_spawn, scoped worker pool over independent sweep points; each point is itself a deterministic serial run and results are collected by index)
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(job) = jobs.get(i) else { break };
                    slots[i]
                        .set(execute_job(job))
                        .unwrap_or_else(|_| unreachable!("slot {i} filled twice"));
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.into_inner().expect("every slot filled"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zerodev_workloads::multithreaded;

    /// Serializes tests in this module: every job execution bumps the
    /// process-wide sweep summary, so tests asserting exact counter deltas
    /// must not overlap with other job-running tests.
    static GUARD: Mutex<()> = Mutex::new(());

    fn lock() -> std::sync::MutexGuard<'static, ()> {
        GUARD.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn quick() -> RunParams {
        RunParams {
            refs_per_core: 2_000,
            warmup_refs: 200,
            ..Default::default()
        }
    }

    fn job(app: &'static str, seed: u64, memo: bool) -> RunJob {
        RunJob {
            cfg: SystemConfig::baseline_8core(),
            make: Arc::new(move || multithreaded(app, 8, seed).unwrap()),
            params: quick(),
            seed,
            memo,
        }
    }

    #[test]
    fn parallel_matches_serial_and_preserves_order() {
        let _g = lock();
        let apps = ["ferret", "swaptions", "canneal", "vips", "streamcluster"];
        let jobs: Vec<RunJob> = apps.iter().map(|&a| job(a, 0xbeef, false)).collect();
        let serial = Engine::new(1).run_grid(&jobs);
        let parallel = Engine::new(4).run_grid(&jobs);
        assert_eq!(serial.len(), parallel.len());
        for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
            let (s, p) = (s.run.unwrap(), p.run.unwrap());
            assert_eq!(s.result.name, apps[i], "slot order preserved");
            assert_eq!(p.result.name, apps[i], "slot order preserved");
            assert_eq!(s.result.completion_cycles, p.result.completion_cycles);
            assert_eq!(
                s.result.stats.core_cache_misses,
                p.result.stats.core_cache_misses
            );
            assert_eq!(
                s.result.stats.total_traffic_bytes(),
                p.result.stats.total_traffic_bytes()
            );
        }
    }

    #[test]
    fn memoized_jobs_hit_the_cache() {
        let _g = lock();
        // A seed no other test uses keeps this isolated from the shared
        // process-wide cache.
        let seed = 0x51ee_d00d_0001;
        let jobs = vec![
            job("blackscholes", seed, true),
            job("blackscholes", seed, true),
        ];
        let outs = Engine::new(1).run_grid(&jobs);
        assert!(!outs[0].cache_hit);
        assert!(outs[1].cache_hit);
        assert!(Arc::ptr_eq(outs[0].run.unwrap(), outs[1].run.unwrap()));
        // A different config misses.
        let mut other = job("blackscholes", seed, true);
        other.cfg.l2_hit_cycles += 1;
        let out = Engine::new(1).run_grid(std::slice::from_ref(&other));
        assert!(!out[0].cache_hit);
    }

    #[test]
    fn summary_counts_runs_and_hits() {
        let _g = lock();
        let seed = 0x51ee_d00d_0002;
        let before = summary();
        let jobs = vec![
            job("fluidanimate", seed, true),
            job("fluidanimate", seed, true),
        ];
        let _ = Engine::new(2).run_grid(&jobs);
        let after = summary();
        assert_eq!(after.runs_executed - before.runs_executed, 1);
        assert_eq!(after.cache_hits - before.cache_hits, 1);
        assert!(after.sim_cycles > before.sim_cycles);
    }

    #[test]
    fn unmemoized_jobs_recompute() {
        let _g = lock();
        let seed = 0x51ee_d00d_0003;
        let jobs = vec![job("dedup", seed, false), job("dedup", seed, false)];
        let outs = Engine::new(2).run_grid(&jobs);
        assert!(!outs[0].cache_hit && !outs[1].cache_hit);
        assert!(!Arc::ptr_eq(outs[0].run.unwrap(), outs[1].run.unwrap()));
        assert_eq!(
            outs[0].run.unwrap().result.completion_cycles,
            outs[1].run.unwrap().result.completion_cycles,
            "deterministic recompute"
        );
    }

    #[test]
    fn panicking_point_is_isolated_and_registered() {
        let _g = lock();
        reset_failures();
        let before = summary();
        let seed = 0x51ee_d00d_0004;
        let mut bad = job("facesim", seed, false);
        bad.make = Arc::new(|| panic!("deliberate test panic"));
        let jobs = vec![
            job("facesim", seed, false),
            bad,
            job("canneal", seed, false),
        ];
        let outs = Engine::new(2).run_grid(&jobs);
        assert!(outs[0].run.ok().is_some(), "healthy point unaffected");
        assert!(outs[2].run.ok().is_some(), "healthy point unaffected");
        assert!(outs[1].run.is_failed());
        let msg = outs[1].run.failure().expect("failure message");
        assert!(msg.contains("deliberate test panic"), "got: {msg}");
        let registry = failed_points();
        assert_eq!(registry.len(), 1);
        assert_eq!(registry[0], msg);
        assert_eq!(summary().failed - before.failed, 1);
        reset_failures();
    }

    #[test]
    fn failure_description_names_context_point_and_payload() {
        let _g = lock();
        reset_failures();
        let seed = 0x51ee_d00d_0006;
        let mut bad = job("bodytrack", seed, false);
        bad.params.audit = true;
        bad.make = Arc::new(|| panic!("synthetic oracle violation"));
        set_sweep_context(Some("Figure 12"));
        let outs = Engine::new(1).run_grid(std::slice::from_ref(&bad));
        set_sweep_context(None);
        let msg = outs[0].run.failure().expect("failure message").to_string();
        let fingerprint = format!("{:016x}", bad.cfg.fingerprint());
        for needle in [
            "[Figure 12]",
            &fingerprint,
            "0x51eed00d0006",
            "2000 refs/core",
            "audited",
            "synthetic oracle violation",
        ] {
            assert!(msg.contains(needle), "missing `{needle}` in: {msg}");
        }
        // Cleared context leaves no stale figure label on later failures.
        let outs = Engine::new(1).run_grid(std::slice::from_ref(&bad));
        let msg = outs[0].run.failure().expect("failure message");
        assert!(!msg.contains("[Figure 12]"), "stale context in: {msg}");
        reset_failures();
    }

    #[test]
    fn failed_memoized_point_is_not_cached() {
        let _g = lock();
        reset_failures();
        let seed = 0x51ee_d00d_0005;
        let mut bad = job("freqmine", seed, true);
        bad.make = Arc::new(|| panic!("first attempt fails"));
        let outs = Engine::new(1).run_grid(std::slice::from_ref(&bad));
        assert!(outs[0].run.is_failed());
        // The identical key retries from scratch instead of replaying the
        // failure (or a poisoned slot) out of the cache.
        let good = job("freqmine", seed, true);
        let outs = Engine::new(1).run_grid(std::slice::from_ref(&good));
        assert!(!outs[0].cache_hit, "failure must not populate the cache");
        assert!(outs[0].run.ok().is_some());
        reset_failures();
    }
}
