//! The private cache hierarchy of one core.
//!
//! Each core has split 32 KB L1I/L1D caches and a unified 256 KB L2
//! (Table I), all LRU. The L2 is the coherence point tracked by the
//! directory; the L1s are inclusive presence filters beneath it. All L2
//! evictions are notified to the uncore (clean notices are dataless),
//! keeping the directory exact — the protocol relies on this (§III-A).

use zerodev_cache::{Replacement, SetAssoc, SetUndo};
use zerodev_common::snap::{SnapError, SnapReader, SnapWriter};
use zerodev_common::{BlockAddr, CoreId, Cycle, MesiState, SocketId, SystemConfig};
use zerodev_core::{EvictKind, Op, System};
use zerodev_workloads::MemRef;

/// An L2 line: the MESI state of this core's copy.
#[derive(Clone, Copy, Debug)]
struct L2Line {
    state: MesiState,
}

fn mesi_tag(s: MesiState) -> u8 {
    match s {
        MesiState::Modified => 0,
        MesiState::Exclusive => 1,
        MesiState::Shared => 2,
        MesiState::Invalid => 3,
    }
}

fn mesi_from_tag(tag: u8) -> Result<MesiState, SnapError> {
    Ok(match tag {
        0 => MesiState::Modified,
        1 => MesiState::Exclusive,
        2 => MesiState::Shared,
        3 => MesiState::Invalid,
        _ => {
            return Err(SnapError::Corrupt {
                context: "unknown MESI state tag",
            })
        }
    })
}

/// One reference the sharded engine speculated ahead of the global commit
/// order (`crate::shard`): a *pure private* access — L1 hit, L1-miss/L2-hit
/// refill, or silent E→M store — whose entire effect is confined to this
/// core's hierarchy plus a known latency and L1-miss counter delta. The
/// commit walker replays the counter delta and latency in exact global
/// event order; the cache-array effects already happened on the core's
/// hierarchy (guarded by a copy-on-write undo log, [`ModelUndo`]).
#[derive(Clone, Copy, Debug)]
pub(crate) struct SpecEntry {
    /// The speculated reference.
    pub mref: MemRef,
    /// Core-visible latency (private hierarchy only; no uncore share).
    pub latency: u64,
    /// True when the reference missed the L1 and refilled it from the L2
    /// (the walker then applies the matching `l1i_misses`/`l1d_misses`
    /// increment at commit time, and conflict checks must treat the entry
    /// as an insertion into its L1 set).
    pub l1_fill: bool,
}

/// Per-epoch copy-on-write undo log for one core's speculation
/// (`crate::shard`): before a speculated reference or an uncore delivery
/// mutates a cache set, that set's contents are saved here — once per set
/// per epoch. Rolling back a poisoned speculation is then a restore of the
/// touched sets plus a replay of the committed prefix; the full hierarchy
/// is never copied.
#[derive(Debug)]
pub(crate) struct ModelUndo {
    l1i: CacheUndo<()>,
    l1d: CacheUndo<()>,
    l2: CacheUndo<L2Line>,
}

impl ModelUndo {
    /// An empty log sized for `cm`'s cache geometries.
    pub(crate) fn for_model(cm: &CoreModel) -> Self {
        ModelUndo {
            l1i: CacheUndo::new(cm.l1i.sets()),
            l1d: CacheUndo::new(cm.l1d.sets()),
            l2: CacheUndo::new(cm.l2.sets()),
        }
    }

    /// Starts a new epoch: previous snapshots are forgotten in O(1).
    pub(crate) fn begin_epoch(&mut self) {
        self.l1i.begin();
        self.l1d.begin();
        self.l2.begin();
    }
}

/// The per-cache half of [`ModelUndo`]: a pooled snapshot stack plus an
/// epoch stamp per set that deduplicates saves within an epoch.
#[derive(Debug)]
struct CacheUndo<T> {
    /// Snapshot pool; `saved[..used]` are live this epoch.
    saved: Vec<SetUndo<T>>,
    used: usize,
    /// Last epoch each set was saved in.
    stamp: Vec<u32>,
    epoch: u32,
}

impl<T: Clone> CacheUndo<T> {
    fn new(sets: usize) -> Self {
        CacheUndo {
            saved: Vec::new(),
            used: 0,
            stamp: vec![0; sets],
            epoch: 0,
        }
    }

    fn begin(&mut self) {
        self.used = 0;
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Stamp wrap-around (once per 2^32 epochs): clear and restart.
            self.stamp.fill(0);
            self.epoch = 1;
        }
    }

    fn save(&mut self, cache: &SetAssoc<T>, key: u64) {
        let set = cache.set_index(key);
        if self.stamp[set] == self.epoch {
            return;
        }
        self.stamp[set] = self.epoch;
        if self.used == self.saved.len() {
            self.saved.push(SetUndo::default());
        }
        cache.save_set(key, &mut self.saved[self.used]);
        self.used += 1;
    }

    fn restore(&self, cache: &mut SetAssoc<T>) {
        // Each set is saved at most once per epoch with its pre-epoch
        // contents and distinct sets do not overlap, so order is free.
        for u in &self.saved[..self.used] {
            cache.restore_set(u);
        }
    }
}

/// Effects of one core access that the engine must apply to *other* cores.
#[derive(Debug, Default)]
pub struct AccessEffects {
    /// Latency spent in the private hierarchy (never overlapped).
    pub latency: u64,
    /// Latency spent in the uncore (overlappable: the engine divides this
    /// by the workload's memory-level parallelism before stalling the core).
    pub uncore_latency: u64,
    /// Invalidations to apply across the machine.
    pub invalidations: Vec<zerodev_core::Invalidation>,
    /// Downgrades to apply across the machine.
    pub downgrades: Vec<zerodev_core::system::Downgrade>,
}

/// One core's private hierarchy.
#[derive(Debug)]
pub struct CoreModel {
    socket: SocketId,
    core: CoreId,
    l1i: SetAssoc<()>,
    l1d: SetAssoc<()>,
    l2: SetAssoc<L2Line>,
    l1_hit: u64,
    l2_hit: u64,
}

impl CoreModel {
    /// Builds the hierarchy for one core of the machine in `cfg`.
    pub fn new(cfg: &SystemConfig, socket: SocketId, core: CoreId) -> Self {
        CoreModel {
            socket,
            core,
            l1i: SetAssoc::new(cfg.l1i.sets(), cfg.l1i.ways, Replacement::Lru),
            l1d: SetAssoc::new(cfg.l1d.sets(), cfg.l1d.ways, Replacement::Lru),
            l2: SetAssoc::new(cfg.l2.sets(), cfg.l2.ways, Replacement::Lru),
            l1_hit: cfg.l1_hit_cycles,
            l2_hit: cfg.l2_hit_cycles,
        }
    }

    /// The socket this core belongs to.
    pub fn socket(&self) -> SocketId {
        self.socket
    }

    /// This core's id within its socket.
    pub fn core(&self) -> CoreId {
        self.core
    }

    /// The MESI state of this core's copy of `block` (Invalid if absent).
    pub fn state_of(&self, block: BlockAddr) -> MesiState {
        self.l2
            .peek(block.0, |_| true)
            .map_or(MesiState::Invalid, |l| l.state)
    }

    /// Number of valid L2 lines (diagnostics).
    pub fn l2_lines(&self) -> usize {
        self.l2.len()
    }

    /// Serializes the private hierarchy lane-exactly for checkpointing
    /// (ids and hit latencies are config-derived and rebuilt by
    /// [`Self::new`], not stored).
    // lint:allow(snapshot_complete(socket, core, l1_hit, l2_hit), ids and hit latencies are config-derived and rebuilt by CoreModel::new)
    pub(crate) fn snap(&self, w: &mut SnapWriter) {
        self.l1i.snapshot_with(w, |_, ()| {});
        self.l1d.snapshot_with(w, |_, ()| {});
        self.l2.snapshot_with(w, |w, l| w.u8(mesi_tag(l.state)));
    }

    /// Restores a [`Self::snap`] image into this freshly built hierarchy.
    ///
    /// # Errors
    /// Fails with a decode [`SnapError`] on geometry mismatch or corrupt
    /// input.
    // lint:allow(snapshot_complete(socket, core, l1_hit, l2_hit), ids and hit latencies are config-derived and rebuilt by CoreModel::new)
    pub(crate) fn unsnap(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        self.l1i.restore_with(r, |_| Ok(()))?;
        self.l1d.restore_with(r, |_| Ok(()))?;
        self.l2.restore_with(r, |r| {
            Ok(L2Line {
                state: mesi_from_tag(r.u8("l2 line state")?)?,
            })
        })
    }

    /// Processes one memory reference at time `now`, driving the uncore on
    /// misses and upgrades. Returns the effects for the engine to apply.
    pub fn access(&mut self, sys: &mut System, now: Cycle, r: MemRef) -> AccessEffects {
        let mut fx = AccessEffects::default();
        self.access_into(sys, now, r, &mut fx);
        fx
    }

    /// Allocation-free form of [`Self::access`]: resets and refills the
    /// caller-owned effects buffer. The engine reuses one buffer across
    /// every reference, so the invalidation/downgrade vectors stop churning
    /// the allocator on the hot path.
    pub fn access_into(&mut self, sys: &mut System, now: Cycle, r: MemRef, fx: &mut AccessEffects) {
        fx.latency = self.l1_hit;
        fx.uncore_latency = 0;
        fx.invalidations.clear();
        fx.downgrades.clear();
        let key = r.block.0;
        let l1 = if r.code { &mut self.l1i } else { &mut self.l1d };
        let l1_hit = l1.touch(key, |_| true).is_some();
        let mut l2_state = self.state_of(r.block);
        if !l1_hit {
            if r.code {
                sys.stats.l1i_misses += 1;
            } else {
                sys.stats.l1d_misses += 1;
            }
            if l2_state.is_valid() {
                // L2 hit: refill the L1 (inclusive; L1 victims are silent).
                fx.latency += self.l2_hit;
                let _ = self.l2.touch(key, |_| true);
                let l1 = if r.code { &mut self.l1i } else { &mut self.l1d };
                let _ = l1.insert(key, (), |_| false);
            } else {
                // Full private-hierarchy miss → uncore.
                fx.latency += self.l2_hit;
                let op = if r.write {
                    Op::ReadExclusive
                } else if r.code {
                    Op::CodeRead
                } else {
                    Op::Read
                };
                let (lat, grant) = sys.access_into(
                    now,
                    self.socket,
                    self.core,
                    r.block,
                    op,
                    &mut fx.invalidations,
                    &mut fx.downgrades,
                );
                fx.uncore_latency += lat;
                self.fill_l2(sys, now, r.block, grant, fx);
                let l1 = if r.code { &mut self.l1i } else { &mut self.l1d };
                let _ = l1.insert(key, (), |_| false);
                l2_state = grant;
            }
        }
        // Stores need ownership at the coherence point.
        if r.write {
            match l2_state {
                MesiState::Modified => {}
                MesiState::Exclusive => {
                    // Silent E→M upgrade.
                    self.set_state(r.block, MesiState::Modified);
                }
                MesiState::Shared => {
                    let (lat, _) = sys.access_into(
                        now,
                        self.socket,
                        self.core,
                        r.block,
                        Op::Upgrade,
                        &mut fx.invalidations,
                        &mut fx.downgrades,
                    );
                    fx.uncore_latency += lat;
                    self.set_state(r.block, MesiState::Modified);
                }
                MesiState::Invalid => {
                    unreachable!("write path installed the line above")
                }
            }
        }
    }

    fn set_state(&mut self, block: BlockAddr, state: MesiState) {
        if let Some(l) = self.l2.peek_mut(block.0, |_| true) {
            l.state = state;
        }
    }

    /// Installs a freshly granted line in the L2, notifying the uncore of
    /// the victim (and keeping the L1s inclusive).
    fn fill_l2(
        &mut self,
        sys: &mut System,
        now: Cycle,
        block: BlockAddr,
        grant: MesiState,
        fx: &mut AccessEffects,
    ) {
        debug_assert!(grant.is_valid());
        let victim = self.l2.insert(block.0, L2Line { state: grant }, |_| false);
        if let Some((vkey, vline)) = victim {
            let vblock = BlockAddr(vkey);
            // L1 copies of the victim vanish with it (inclusive hierarchy).
            let _ = self.l1i.remove(vkey, |_| true);
            let _ = self.l1d.remove(vkey, |_| true);
            let kind = match vline.state {
                MesiState::Modified => EvictKind::Dirty,
                MesiState::Exclusive => EvictKind::CleanExclusive,
                MesiState::Shared => EvictKind::CleanShared,
                MesiState::Invalid => unreachable!("valid lines only in L2"),
            };
            sys.evict_into(
                now,
                self.socket,
                self.core,
                vblock,
                kind,
                &mut fx.invalidations,
            );
        }
    }

    /// [`Self::speculate`] with copy-on-write set snapshots: the cache sets
    /// the reference will touch are saved into `undo` first (once per set
    /// per epoch), so a poisoned speculation rolls back by
    /// [`Self::restore_from`] + replay instead of a full-hierarchy copy —
    /// the sharded engine speculates directly on the committed hierarchy.
    pub(crate) fn speculate_cow(&mut self, r: MemRef, undo: &mut ModelUndo) -> Option<SpecEntry> {
        let st = self.state_of(r.block);
        if st == MesiState::Invalid || (r.write && st == MesiState::Shared) {
            // Pause before any snapshot: nothing is going to mutate.
            return None;
        }
        if r.code {
            undo.l1i.save(&self.l1i, r.block.0);
        } else {
            undo.l1d.save(&self.l1d, r.block.0);
        }
        undo.l2.save(&self.l2, r.block.0);
        self.speculate(r)
    }

    /// Saves the sets an uncore delivery for `block` may touch (an
    /// invalidation reaches both L1s and the L2; a downgrade only the L2 —
    /// saved uniformly, the dedup makes the distinction moot).
    pub(crate) fn save_delivery_sets(&self, block: BlockAddr, undo: &mut ModelUndo) {
        undo.l1i.save(&self.l1i, block.0);
        undo.l1d.save(&self.l1d, block.0);
        undo.l2.save(&self.l2, block.0);
    }

    /// Restores every set saved in `undo` this epoch, returning the
    /// hierarchy to its state at the matching [`ModelUndo::begin_epoch`].
    pub(crate) fn restore_from(&mut self, undo: &ModelUndo) {
        undo.l1i.restore(&mut self.l1i);
        undo.l1d.restore(&mut self.l1d);
        undo.l2.restore(&mut self.l2);
    }

    /// Attempts to execute `r` purely within this private hierarchy,
    /// without touching the uncore, global statistics, or simulated time —
    /// the sharded engine's speculation step.
    ///
    /// Returns `None` — with this hierarchy left untouched — when the
    /// reference needs the uncore (a full private miss, or a store to a
    /// Shared line): those references must run through the ordinary
    /// [`Self::access_into`] path at their committed position in the global
    /// event order. Otherwise performs exactly the private-hierarchy effect
    /// `access_into` would have (L1/L2 recency, L1 refill, silent E→M
    /// upgrade) and returns the entry the commit walker needs to replay the
    /// latency and L1-miss accounting in order.
    pub(crate) fn speculate(&mut self, r: MemRef) -> Option<SpecEntry> {
        let st = self.state_of(r.block);
        if st == MesiState::Invalid || (r.write && st == MesiState::Shared) {
            return None;
        }
        let key = r.block.0;
        let mut latency = self.l1_hit;
        let l1 = if r.code { &mut self.l1i } else { &mut self.l1d };
        let l1_fill = l1.touch(key, |_| true).is_none();
        if l1_fill {
            // L1 miss, L2 hit (the line is valid here): refill the L1.
            latency += self.l2_hit;
            let _ = self.l2.touch(key, |_| true);
            let l1 = if r.code { &mut self.l1i } else { &mut self.l1d };
            let _ = l1.insert(key, (), |_| false);
        }
        if r.write && st == MesiState::Exclusive {
            self.set_state(r.block, MesiState::Modified);
        }
        Some(SpecEntry {
            mref: r,
            latency,
            l1_fill,
        })
    }

    /// Applies an invalidation from the uncore. Returns the state the line
    /// was in (the engine reports M lines back to the protocol).
    pub fn apply_invalidation(&mut self, block: BlockAddr) -> MesiState {
        let state = self.state_of(block);
        let _ = self.l2.remove(block.0, |_| true);
        let _ = self.l1i.remove(block.0, |_| true);
        let _ = self.l1d.remove(block.0, |_| true);
        state
    }

    /// Applies a downgrade (M/E → S). Returns true when the line was M
    /// (the engine then reports the sharing writeback).
    pub fn apply_downgrade(&mut self, block: BlockAddr) -> bool {
        let was_m = self.state_of(block) == MesiState::Modified;
        self.set_state(block, MesiState::Shared);
        was_m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zerodev_common::config::CacheGeometry;
    use zerodev_workloads::MemRef;

    fn cfg() -> SystemConfig {
        let mut cfg = SystemConfig::baseline_8core();
        cfg.cores = 2;
        cfg.l1i = CacheGeometry::new(1 << 10, 2);
        cfg.l1d = CacheGeometry::new(1 << 10, 2);
        cfg.l2 = CacheGeometry::new(4 << 10, 4);
        cfg.llc = CacheGeometry::new(64 << 10, 4);
        cfg.llc_banks = 2;
        cfg
    }

    fn mk(sys: &System, core: u16) -> CoreModel {
        CoreModel::new(sys.config(), SocketId(0), CoreId(core))
    }

    fn read(b: u64) -> MemRef {
        MemRef {
            block: BlockAddr(b),
            write: false,
            code: false,
            gap: 0,
        }
    }

    fn write(b: u64) -> MemRef {
        MemRef {
            block: BlockAddr(b),
            write: true,
            code: false,
            gap: 0,
        }
    }

    #[test]
    fn l1_hit_is_cheap() {
        let mut sys = System::new(cfg()).unwrap();
        let mut c = mk(&sys, 0);
        let miss = c.access(&mut sys, Cycle(0), read(5));
        assert!(miss.uncore_latency > 100);
        let hit = c.access(&mut sys, Cycle(10), read(5));
        assert_eq!(hit.latency, sys.config().l1_hit_cycles);
        assert_eq!(hit.uncore_latency, 0);
    }

    #[test]
    fn l2_hit_after_l1_eviction() {
        let mut sys = System::new(cfg()).unwrap();
        let mut c = mk(&sys, 0);
        // L1D: 8 sets × 2 ways. Fill one set with 3 blocks: 5, 5+8, 5+16.
        c.access(&mut sys, Cycle(0), read(5));
        c.access(&mut sys, Cycle(0), read(5 + 8));
        c.access(&mut sys, Cycle(0), read(5 + 16));
        // Block 5 fell out of L1 but is still in L2.
        let lat = c.access(&mut sys, Cycle(0), read(5));
        assert_eq!(
            lat.latency,
            sys.config().l1_hit_cycles + sys.config().l2_hit_cycles
        );
    }

    #[test]
    fn write_to_exclusive_is_silent() {
        let mut sys = System::new(cfg()).unwrap();
        let mut c = mk(&sys, 0);
        c.access(&mut sys, Cycle(0), read(5));
        assert_eq!(c.state_of(BlockAddr(5)), MesiState::Exclusive);
        let before = sys.stats.upgrades;
        let fx = c.access(&mut sys, Cycle(0), write(5));
        assert_eq!(fx.latency, sys.config().l1_hit_cycles);
        assert_eq!(sys.stats.upgrades, before, "no upgrade message for E→M");
        assert_eq!(c.state_of(BlockAddr(5)), MesiState::Modified);
    }

    #[test]
    fn write_to_shared_upgrades() {
        let mut sys = System::new(cfg()).unwrap();
        let mut c0 = mk(&sys, 0);
        let mut c1 = mk(&sys, 1);
        c0.access(&mut sys, Cycle(0), read(5));
        let fx = c1.access(&mut sys, Cycle(0), read(5));
        for d in &fx.downgrades {
            assert_eq!(d.core, CoreId(0));
            c0.apply_downgrade(d.block);
        }
        assert_eq!(c0.state_of(BlockAddr(5)), MesiState::Shared);
        let fx = c0.access(&mut sys, Cycle(0), write(5));
        assert_eq!(sys.stats.upgrades, 1);
        // c1 must be invalidated.
        assert!(fx
            .invalidations
            .iter()
            .any(|i| i.core == CoreId(1) && i.block == BlockAddr(5)));
        c1.apply_invalidation(BlockAddr(5));
        assert_eq!(c1.state_of(BlockAddr(5)), MesiState::Invalid);
        assert_eq!(c0.state_of(BlockAddr(5)), MesiState::Modified);
    }

    #[test]
    fn l2_eviction_notifies_uncore() {
        let mut sys = System::new(cfg()).unwrap();
        let mut c = mk(&sys, 0);
        // L2: 16 sets × 4 ways. Overfill one set.
        let sets = sys.config().l2.sets() as u64;
        for i in 0..5 {
            c.access(&mut sys, Cycle(0), read(3 + i * sets));
        }
        // The first block was evicted and its entry freed.
        assert!(sys.entry_of(SocketId(0), BlockAddr(3)).is_none());
        assert_eq!(c.state_of(BlockAddr(3)), MesiState::Invalid);
        assert_eq!(c.l2_lines(), 4);
    }

    #[test]
    fn dirty_l2_eviction_writes_back() {
        let mut sys = System::new(cfg()).unwrap();
        let mut c = mk(&sys, 0);
        let sets = sys.config().l2.sets() as u64;
        c.access(&mut sys, Cycle(0), write(3));
        for i in 1..5 {
            c.access(&mut sys, Cycle(0), read(3 + i * sets));
        }
        assert!(matches!(
            sys.llc_line_of(SocketId(0), BlockAddr(3)),
            Some(zerodev_core::LlcLine::Data { dirty: true })
        ));
    }

    #[test]
    fn code_reads_use_l1i_and_share() {
        let mut sys = System::new(cfg()).unwrap();
        let mut c0 = mk(&sys, 0);
        let mut c1 = mk(&sys, 1);
        let code = MemRef {
            block: BlockAddr(7),
            write: false,
            code: true,
            gap: 0,
        };
        c0.access(&mut sys, Cycle(0), code);
        assert_eq!(c0.state_of(BlockAddr(7)), MesiState::Shared);
        let fx = c1.access(&mut sys, Cycle(0), code);
        assert!(fx.downgrades.is_empty(), "code is S-state, no downgrade");
        assert_eq!(c1.state_of(BlockAddr(7)), MesiState::Shared);
    }
}
