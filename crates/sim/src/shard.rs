//! Deterministic intra-run parallel simulation (`ZERODEV_SHARDS`).
//!
//! The serial engine's semantics are defined entirely by the global
//! `(time, core)` event order: statistics, oracle observations, and fault
//! draws all evolve along that single sequence. Any parallelisation must
//! therefore reproduce it *exactly* — the repo's parity idiom demands
//! byte-identical results at any shard count.
//!
//! The natural seam is the core boundary: between uncore transactions, a
//! core's references touch only its own L1I/L1D/L2, so their effects
//! commute with every other core's private work. This driver exploits
//! that with **epoch-based speculation + serial commit**:
//!
//! 1. **Phase A (parallel)** — cores are partitioned into shards, each
//!    shard's [`CoreSlot`]s are *moved* to a worker thread (plain `Send`
//!    ownership transfer over channels; no locks, no interior references).
//!    Each core runs ahead through [`CoreModel::speculate_cow`]: pure
//!    private references (L1 hits, L1→L2 refills, silent E→M stores)
//!    execute directly on the committed hierarchy, guarded by a
//!    copy-on-write undo log that snapshots each touched cache set once
//!    per epoch; the first reference that needs the uncore — or the end
//!    of the speculation window — stops the run-ahead.
//! 2. **Phase B (serial)** — the walker processes the global event queue
//!    on the main thread. A speculated reference *commits* with pure
//!    bookkeeping (fault draw, latency, L1-miss counters, next event) —
//!    no cache probes, no generator draws. When a core's speculation is
//!    exhausted, every prior reference of that core has already committed
//!    (its event times strictly increase), so its hierarchy already *is*
//!    the committed state: the core simply goes live and runs its
//!    remaining references through the ordinary serial path
//!    ([`CoreModel::access_into`] + [`apply_effects_via`]). The epoch
//!    ends once every core has gone serial; then Phase A begins anew.
//!
//! Cross-core protocol traffic (invalidations/downgrades) produced by a
//! serial access may land on a core that still has uncommitted
//! speculation. If the delivery cannot interact with the uncommitted
//! suffix — the usual case — it is applied in place (its sets snapshotted
//! first) and logged at its commit position; otherwise the speculation is
//! *poisoned*: the undo log restores the hierarchy to its epoch-start
//! state, the committed prefix is replayed (interleaving the logged
//! deliveries at their recorded positions), the discarded suffix's
//! references are queued for serial re-execution, and the core goes
//! serial early. Either way the observable state at every commit point
//! equals the serial run's, so the result is byte-identical — the parity
//! matrix in `crates/bench/tests/parity.rs` pins this against the serial
//! golden fingerprints.

use std::collections::VecDeque;
use std::sync::mpsc;

use crate::core_model::{AccessEffects, CoreModel, ModelUndo, SpecEntry};
use crate::engine::{
    apply_effects_via, fault_post_at, fault_pre_at, EffectSink, EventQueue, SimError, SimResult,
    Simulation,
};
use crate::faults::FaultPlan;
use zerodev_common::{BlockAddr, CoreId, Cycle, MesiState, SocketId, Stats, SystemConfig};
use zerodev_workloads::{MemRef, ThreadGen};

/// Speculation window of the first epoch (references per core).
const WINDOW_START: usize = 128;
/// Window floor: below this the epoch overhead (buffer refresh, channel
/// round-trip) dominates and the serial path would win anyway.
const WINDOW_MIN: usize = 64;
/// Window ceiling: bounds the rollback cost of a poisoned speculation and
/// the memory held in speculation logs.
const WINDOW_MAX: usize = 8_192;

/// How Phase A distributes the speculation work.
///
/// `Threads` is the parallel transport: each shard's slots move to a
/// persistent worker thread by ownership transfer and speculate
/// concurrently. On a single-CPU host the OS can only time-slice those
/// workers over one core, so the channel round-trips buy nothing;
/// `Inline` runs the identical speculation loop on the driver thread
/// instead. The transport moves *where* Phase A executes, never *what*
/// it computes — results are byte-identical either way (pinned by
/// `thread_transport_matches_inline_exactly`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Transport {
    Inline,
    Threads,
}

impl Transport {
    /// Threaded when the host can actually run workers in parallel, or
    /// when `ZERODEV_SHARD_THREADS=1` forces the threaded transport (for
    /// measuring its overhead); inline on single-CPU hosts.
    fn auto() -> Self {
        let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
        if cpus > 1 || zerodev_common::env::var_flag("ZERODEV_SHARD_THREADS") {
            Transport::Threads
        } else {
            Transport::Inline
        }
    }
}

/// The shard boundary contract (and the enabler for ROADMAP item 5):
/// everything a shard owns is plain movable data.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<CoreSlot>();
};

/// The geometry facts the walker needs without borrowing the `System`.
#[derive(Clone, Copy)]
struct Geom {
    /// Cores per socket (flattens `(socket, core)` to a slot index).
    cores_per_socket: usize,
    /// L1I set count (conflict checks on speculated code refills).
    l1i_sets: u64,
    /// L1D set count (conflict checks on speculated data refills).
    l1d_sets: u64,
}

impl Geom {
    fn of(cfg: &SystemConfig) -> Self {
        Geom {
            cores_per_socket: cfg.cores,
            l1i_sets: cfg.l1i.sets() as u64,
            l1d_sets: cfg.l1d.sets() as u64,
        }
    }
}

/// An uncore effect that arrived while the target core was speculating.
#[derive(Clone, Copy, Debug)]
enum Delivery {
    /// Remove the block everywhere in the private hierarchy.
    Invalidate(BlockAddr),
    /// Demote the block's coherence-point copy to Shared.
    Downgrade(BlockAddr),
}

/// Per-epoch speculation bookkeeping of one core.
#[derive(Debug, Default)]
struct Lane {
    /// References speculated this epoch, in program order.
    entries: Vec<SpecEntry>,
    /// How many of `entries` the walker has committed.
    committed: usize,
    /// Deliveries applied to the speculation buffer, tagged with the
    /// commit position they arrived at (replayed on rollback).
    deliveries: Vec<(usize, Delivery)>,
    /// Drawn-but-unexecuted references (the pausing reference and any
    /// rolled-back suffix), consumed before fresh generator draws so the
    /// per-thread draw order matches the serial run exactly.
    pending: VecDeque<MemRef>,
    /// True once the core executes serially on its committed model (set at
    /// the epoch's commit-exhaustion transition, on rollback, and during
    /// warm-up).
    live: bool,
}

/// One core's state in the sharded driver: the hierarchy, its speculation
/// undo log, the reference generator, and the epoch bookkeeping.
struct CoreSlot {
    /// The private hierarchy. Holds the committed state plus — while the
    /// core speculates — the uncommitted speculated suffix, rolled back
    /// through `undo` if the speculation is poisoned.
    real: CoreModel,
    /// Copy-on-write snapshots of the cache sets touched this epoch.
    undo: ModelUndo,
    /// This core's reference generator.
    wl: ThreadGen,
    /// Memory-level parallelism of the workload thread (constant per run).
    mlp: f64,
    lane: Lane,
}

/// Phase A worker body: start a fresh undo epoch and run ahead until the
/// window closes or a reference needs the uncore.
fn speculate_slot(slot: &mut CoreSlot, window: usize) {
    let lane = &mut slot.lane;
    lane.entries.clear();
    lane.committed = 0;
    lane.deliveries.clear();
    lane.live = false;
    slot.undo.begin_epoch();
    for _ in 0..window {
        let r = match lane.pending.pop_front() {
            Some(r) => r,
            None => slot.wl.next_ref(),
        };
        match slot.real.speculate_cow(r, &mut slot.undo) {
            Some(e) => lane.entries.push(e),
            None => {
                // Needs the uncore: executed live at its committed position.
                lane.pending.push_front(r);
                break;
            }
        }
    }
}

/// True when `d`'s effect on `block` could change what the uncommitted
/// suffix of `lane` did on the speculation buffer.
///
/// * An **invalidation** conflicts with any suffix reference to the block
///   itself (the re-run would miss), and with any suffix L1 refill into
///   the block's L1 set (removing the block frees a way, so the refill
///   would have picked a different victim). Speculation never inserts
///   into the L2, and removing one key commutes with recency promotions
///   of other keys, so no L2-set check is needed.
/// * A **downgrade** (`write_only`) conflicts only with a suffix *store*
///   to the block (it would have needed an upgrade after the demotion);
///   suffix loads behave identically in M/E/S.
fn conflicts(lane: &Lane, geom: Geom, block: BlockAddr, write_only: bool) -> bool {
    lane.entries[lane.committed..].iter().any(|e| {
        if e.mref.block == block {
            return !write_only || e.mref.write;
        }
        if write_only {
            return false;
        }
        e.l1_fill && {
            let sets = if e.mref.code {
                geom.l1i_sets
            } else {
                geom.l1d_sets
            };
            e.mref.block.0 % sets == block.0 % sets
        }
    })
}

fn apply_delivery(cm: &mut CoreModel, d: Delivery) {
    match d {
        Delivery::Invalidate(b) => {
            let _ = cm.apply_invalidation(b);
        }
        Delivery::Downgrade(b) => {
            let _ = cm.apply_downgrade(b);
        }
    }
}

/// Poisoned-speculation rollback: restore the hierarchy to its epoch-start
/// state through the undo log, rebuild the committed state by replaying
/// the committed prefix with the logged deliveries interleaved at their
/// recorded positions, queue the discarded suffix for serial
/// re-execution, and go live.
///
/// Replay touches no global state — the committed entries' statistics and
/// fault draws were already applied by the walker in global order.
fn rollback(slot: &mut CoreSlot) {
    slot.real.restore_from(&slot.undo);
    let lane = &mut slot.lane;
    let mut next_d = 0;
    for i in 0..lane.committed {
        while next_d < lane.deliveries.len() && lane.deliveries[next_d].0 == i {
            apply_delivery(&mut slot.real, lane.deliveries[next_d].1);
            next_d += 1;
        }
        let replayed = slot.real.speculate(lane.entries[i].mref);
        debug_assert!(
            matches!(replayed, Some(r) if r.latency == lane.entries[i].latency
                && r.l1_fill == lane.entries[i].l1_fill),
            "committed speculation diverged on replay"
        );
    }
    while next_d < lane.deliveries.len() {
        apply_delivery(&mut slot.real, lane.deliveries[next_d].1);
        next_d += 1;
    }
    // The suffix re-executes serially, ahead of any reference drawn later
    // (the pause reference, if any, is already behind it in `pending`).
    for e in lane.entries[lane.committed..].iter().rev() {
        lane.pending.push_front(e.mref);
    }
    lane.entries.truncate(lane.committed);
    lane.deliveries.clear();
    lane.live = true;
}

/// The walker's effect sink: deliveries to live cores land on the
/// committed model (exactly the serial path); deliveries to speculating
/// cores are conflict-checked, then either applied in place (sets
/// snapshotted first, so a later poison can still roll back) or resolved
/// by rollback.
struct SlotSink<'a> {
    slots: &'a mut [CoreSlot],
    geom: Geom,
    /// The walker's gone-serial counter (rollback flips a core live).
    live_cores: &'a mut usize,
}

impl EffectSink for SlotSink<'_> {
    fn downgrade(&mut self, socket: SocketId, core: CoreId, block: BlockAddr) -> bool {
        let idx = socket.0 as usize * self.geom.cores_per_socket + core.0 as usize;
        let slot = &mut self.slots[idx];
        if slot.lane.live {
            return slot.real.apply_downgrade(block);
        }
        if conflicts(&slot.lane, self.geom, block, true) {
            rollback(slot);
            *self.live_cores += 1;
            return slot.real.apply_downgrade(block);
        }
        // No conflict: the delivery commutes with the uncommitted suffix,
        // so the post-suffix state it sees equals the post-prefix state
        // the serial run would have shown it.
        slot.real.save_delivery_sets(block, &mut slot.undo);
        slot.lane
            .deliveries
            .push((slot.lane.committed, Delivery::Downgrade(block)));
        slot.real.apply_downgrade(block)
    }

    fn invalidate(&mut self, socket: SocketId, core: CoreId, block: BlockAddr) -> MesiState {
        let idx = socket.0 as usize * self.geom.cores_per_socket + core.0 as usize;
        let slot = &mut self.slots[idx];
        if slot.lane.live {
            return slot.real.apply_invalidation(block);
        }
        if conflicts(&slot.lane, self.geom, block, false) {
            rollback(slot);
            *self.live_cores += 1;
            return slot.real.apply_invalidation(block);
        }
        slot.real.save_delivery_sets(block, &mut slot.undo);
        slot.lane
            .deliveries
            .push((slot.lane.committed, Delivery::Invalidate(block)));
        slot.real.apply_invalidation(block)
    }
}

/// Runs `sim` to completion with `shards >= 2` speculation shards,
/// byte-identical to [`Simulation::try_run`].
pub(crate) fn run(
    sim: Simulation,
    refs_per_core: u64,
    warmup_refs: u64,
    shards: usize,
) -> Result<SimResult, SimError> {
    run_with(sim, refs_per_core, warmup_refs, shards, Transport::auto())
}

/// [`run`] with an explicit Phase A transport (tests force `Threads` so
/// the worker/channel path stays covered on single-CPU CI hosts).
fn run_with(
    sim: Simulation,
    refs_per_core: u64,
    warmup_refs: u64,
    shards: usize,
    transport: Transport,
) -> Result<SimResult, SimError> {
    let (mut sys, cores, workload, mut faults, watchdog) = sim.into_parts();
    let n = cores.len();
    debug_assert!(shards >= 2 && shards <= n);
    let geom = Geom::of(sys.config());
    let name = workload.name;
    let kind = workload.kind;
    let mut slots: Vec<CoreSlot> = cores
        .into_iter()
        .zip(workload.threads)
        .map(|(real, wl)| CoreSlot {
            undo: ModelUndo::for_model(&real),
            real,
            mlp: wl.spec().mlp,
            wl,
            lane: Lane {
                live: true,
                ..Lane::default()
            },
        })
        .collect();

    // Warm-up runs serially: its round-robin order is untimed and every
    // lane is live, so this is the serial engine's warm-up verbatim.
    let mut fx = AccessEffects::default();
    let mut warm_live = n;
    for _ in 0..warmup_refs {
        for t in 0..n {
            let r = slots[t].wl.next_ref();
            let mlp = slots[t].mlp;
            slots[t].real.access_into(&mut sys, Cycle(0), r, &mut fx);
            let mut sink = SlotSink {
                slots: &mut slots,
                geom,
                live_cores: &mut warm_live,
            };
            let _ = apply_effects_via(&mut sys, Cycle(0), &mut fx, mlp, &mut sink);
        }
    }
    // Reset statistics after warm-up, preserving the live gauges (they
    // track real structure occupancy, not events).
    let mut fresh = Stats::new();
    fresh.spilled_lines_current = sys.stats.spilled_lines_current;
    fresh.spilled_lines_max = fresh.spilled_lines_current;
    fresh.dir_live_entries = sys.stats.dir_live_entries;
    fresh.dir_live_entries_max = fresh.dir_live_entries;
    sys.stats = fresh;

    // Contiguous shard ranges, sized within one core of each other.
    let chunk = |s: usize| -> std::ops::Range<usize> {
        let (base, extra) = (n / shards, n % shards);
        let start = s * base + s.min(extra);
        start..start + base + usize::from(s < extra)
    };

    let mut queue = EventQueue::new(n);
    let mut refs_done = vec![0u64; n];
    let mut instrs = vec![0u64; n];
    let mut core_cycles = vec![0u64; n];
    let mut core_instrs = vec![0u64; n];
    let mut finished = 0usize;
    let mut last_retire = vec![0u64; n];
    let mut pops = 0u64;
    let mut window = WINDOW_START;

    std::thread::scope(|scope| -> Result<SimResult, SimError> {
        // One persistent worker per shard (threaded transport only); slots
        // travel by ownership transfer. Dropping the feed senders (closure
        // return) ends the workers, and the scope joins them.
        let (back_tx, back_rx) = mpsc::channel::<(usize, Vec<CoreSlot>)>();
        let mut feeds = Vec::with_capacity(shards);
        if transport == Transport::Threads {
            for s in 0..shards {
                let (tx, rx) = mpsc::channel::<(Vec<CoreSlot>, usize)>();
                let back = back_tx.clone();
                // lint:allow(thread_spawn, shard speculation workers; the commit walker re-validates every speculated slot in deterministic order (ZERODEV_SHARDS is bit-identical to serial))
                scope.spawn(move || {
                    while let Ok((mut batch, window)) = rx.recv() {
                        for slot in &mut batch {
                            speculate_slot(slot, window);
                        }
                        if back.send((s, batch)).is_err() {
                            return;
                        }
                    }
                });
                feeds.push(tx);
            }
        }
        drop(back_tx);
        let mut parts: Vec<Option<Vec<CoreSlot>>> = (0..shards).map(|_| None).collect();

        'run: loop {
            // ---- Phase A: speculate every core forward one window.
            match transport {
                Transport::Inline => {
                    for slot in &mut slots {
                        speculate_slot(slot, window);
                    }
                }
                Transport::Threads => {
                    // Scatter the slots to the workers, gather them back.
                    for s in (0..shards).rev() {
                        let batch = slots.split_off(chunk(s).start);
                        feeds[s].send((batch, window)).expect("shard worker alive");
                    }
                    for _ in 0..shards {
                        let (s, batch) = back_rx.recv().expect("shard worker alive");
                        parts[s] = Some(batch);
                    }
                    for p in parts.iter_mut() {
                        slots.extend(p.take().expect("every shard reported"));
                    }
                }
            }

            // ---- Phase B: commit the global (time, core) order serially.
            let mut live_cores = 0usize;
            while live_cores < n {
                let (now, t) = queue.peek_min();
                pops += 1;
                watchdog.check(pops, now, &last_retire)?;
                let slot = &mut slots[t];
                if !slot.lane.live {
                    if slot.lane.committed < slot.lane.entries.len() {
                        // Commit a speculated pure reference: the cache
                        // effects already happened on the buffer, so only
                        // the global-order bookkeeping runs here.
                        let e = slot.lane.entries[slot.lane.committed];
                        slot.lane.committed += 1;
                        let (socket, core) = (slot.real.socket(), slot.real.core());
                        let issue = now + u64::from(e.mref.gap);
                        let draw = faults.as_deref_mut().map(FaultPlan::draw);
                        if let Some(d) = draw {
                            fault_pre_at(
                                &mut sys,
                                &mut faults,
                                t,
                                socket,
                                core,
                                issue,
                                e.mref.block,
                                d,
                            )?;
                        }
                        if e.l1_fill {
                            if e.mref.code {
                                sys.stats.l1i_misses += 1;
                            } else {
                                sys.stats.l1d_misses += 1;
                            }
                        }
                        let done = issue + e.latency;
                        if let Some(d) = draw {
                            fault_post_at(
                                &mut sys,
                                &mut faults,
                                socket,
                                core,
                                done,
                                e.mref.block,
                                d,
                            );
                        }
                        instrs[t] += u64::from(e.mref.gap) + 1;
                        refs_done[t] += 1;
                        last_retire[t] = done;
                        if refs_done[t] == refs_per_core {
                            core_cycles[t] = done;
                            core_instrs[t] = instrs[t];
                            finished += 1;
                            if finished == n {
                                break 'run;
                            }
                        }
                        queue.replace_min(done, t);
                        continue;
                    }
                    // Every prior reference of this core has committed, so
                    // its hierarchy already holds the committed state: go
                    // serial for the rest of the epoch (the undo log is
                    // simply abandoned until the next epoch resets it).
                    slot.lane.live = true;
                    live_cores += 1;
                }
                // Serial execution on the committed model — the serial
                // engine's loop body.
                let r = match slot.lane.pending.pop_front() {
                    Some(r) => r,
                    None => slot.wl.next_ref(),
                };
                let mlp = slot.mlp;
                let (socket, core) = (slot.real.socket(), slot.real.core());
                let issue = now + u64::from(r.gap);
                let draw = faults.as_deref_mut().map(FaultPlan::draw);
                if let Some(d) = draw {
                    fault_pre_at(&mut sys, &mut faults, t, socket, core, issue, r.block, d)?;
                }
                slots[t]
                    .real
                    .access_into(&mut sys, Cycle(issue), r, &mut fx);
                let mut sink = SlotSink {
                    slots: &mut slots,
                    geom,
                    live_cores: &mut live_cores,
                };
                let lat = apply_effects_via(&mut sys, Cycle(issue), &mut fx, mlp, &mut sink);
                let done = issue + lat;
                if let Some(d) = draw {
                    fault_post_at(&mut sys, &mut faults, socket, core, done, r.block, d);
                }
                instrs[t] += u64::from(r.gap) + 1;
                refs_done[t] += 1;
                last_retire[t] = done;
                if refs_done[t] == refs_per_core {
                    core_cycles[t] = done;
                    core_instrs[t] = instrs[t];
                    finished += 1;
                    if finished == n {
                        break 'run;
                    }
                }
                queue.replace_min(done, t);
            }

            // Epoch over: retarget the window at twice the average commit
            // depth, so it tracks just past the typical uncore distance.
            // Purely a throughput knob — results never depend on it.
            let committed: usize = slots.iter().map(|s| s.lane.committed).sum();
            window = (committed / n * 2).clamp(WINDOW_MIN, WINDOW_MAX);
        }

        // A final exhaustive pass over every shadow-tracked block before
        // the statistics are frozen (no-op unless auditing).
        sys.audit_sweep();

        let (dr, dw) = sys.memory().dram_counts();
        Ok(SimResult {
            name,
            kind,
            stats: sys.stats.clone(),
            completion_cycles: core_cycles.iter().copied().max().unwrap_or(0),
            refs_retired: pops,
            core_cycles,
            core_instrs,
            dram_rw: (dr, dw),
            faults: faults.take().map(|p| p.stats).unwrap_or_default(),
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use zerodev_workloads::multithreaded;

    fn serial(name: &str, shards: usize) -> SimResult {
        let cfg = SystemConfig::baseline_8core();
        let wl = multithreaded(name, 8, 11).unwrap();
        Simulation::new(&cfg, wl).run_sharded(2_000, 200, shards)
    }

    #[test]
    fn sharded_matches_serial_exactly() {
        let a = serial("canneal", 1);
        for shards in [2, 4, 8] {
            let b = serial("canneal", shards);
            assert_eq!(a.stats, b.stats, "stats diverged at {shards} shards");
            assert_eq!(a.core_cycles, b.core_cycles);
            assert_eq!(a.core_instrs, b.core_instrs);
            assert_eq!(a.completion_cycles, b.completion_cycles);
            assert_eq!(a.refs_retired, b.refs_retired);
            assert_eq!(a.dram_rw, b.dram_rw);
        }
    }

    #[test]
    fn sharded_matches_serial_under_audit() {
        let cfg = SystemConfig::baseline_8core();
        let mk = || {
            let mut sim = Simulation::new(&cfg, multithreaded("ferret", 8, 7).unwrap());
            sim.enable_audit();
            sim
        };
        let a = mk().run_sharded(1_500, 150, 1);
        let b = mk().run_sharded(1_500, 150, 3);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.completion_cycles, b.completion_cycles);
        assert_eq!(a.refs_retired, b.refs_retired);
    }

    /// The threaded transport must produce the same bytes as the inline
    /// one even where [`Transport::auto`] would never pick it (a
    /// single-CPU CI host), so force both sides explicitly.
    #[test]
    fn thread_transport_matches_inline_exactly() {
        let cfg = SystemConfig::baseline_8core();
        let mk = || Simulation::new(&cfg, multithreaded("canneal", 8, 11).unwrap());
        let a = run_with(mk(), 2_000, 200, 4, Transport::Inline).unwrap();
        let b = run_with(mk(), 2_000, 200, 4, Transport::Threads).unwrap();
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.core_cycles, b.core_cycles);
        assert_eq!(a.core_instrs, b.core_instrs);
        assert_eq!(a.completion_cycles, b.completion_cycles);
        assert_eq!(a.refs_retired, b.refs_retired);
        assert_eq!(a.dram_rw, b.dram_rw);
    }

    /// Throughput scratch harness for tuning the speculation window and
    /// the bench gate probe; prints serial vs 4-shard wall clock per app.
    /// `cargo test --release -p zerodev-sim -- --ignored --nocapture shard_throughput`
    #[test]
    #[ignore = "timing harness, not a check"]
    fn shard_throughput_survey() {
        for (app, refs, warm) in [
            ("swaptions", 12_000u64, 1_200u64),
            ("x264.pass1", 12_000, 6_000),
            ("blackscholes", 12_000, 6_000),
            ("ferret", 12_000, 6_000),
        ] {
            let cfg = SystemConfig::four_socket();
            let mut best = [f64::MAX; 2];
            for (i, shards) in [1usize, 4].into_iter().enumerate() {
                for _ in 0..2 {
                    let wl = multithreaded(app, 32, 7).unwrap();
                    let sim = Simulation::new(&cfg, wl);
                    let t0 = std::time::Instant::now();
                    let _ = sim.run_sharded(refs, warm, shards);
                    best[i] = best[i].min(t0.elapsed().as_secs_f64());
                }
            }
            println!(
                "{app:<14} refs {refs} warm {warm}: serial {:.3}s sharded {:.3}s ({:.2}x)",
                best[0],
                best[1],
                best[0] / best[1],
            );
        }
    }

    #[test]
    fn shard_count_clamps_to_core_count() {
        let a = serial("swaptions", 1);
        let b = serial("swaptions", 64);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.completion_cycles, b.completion_cycles);
    }
}
