//! Full-system CMP simulation: trace-driven cores on top of the
//! `zerodev-core` protocol engine.
//!
//! * [`core_model`] — the private L1I/L1D/L2 hierarchy of one core,
//!   including upgrade generation, eviction notices, and the application of
//!   invalidations/downgrades.
//! * [`engine`] — the event loop interleaving all cores deterministically,
//!   plus completion/IPC accounting (weighted speedup for multi-programmed
//!   workloads, completion time for multi-threaded ones).
//! * [`energy`] — the CACTI-substitute energy model for the
//!   sparse-directory + LLC energy comparison (§V).
//! * [`runner`] — one-call experiment execution: run a workload on a
//!   config, normalise against a baseline.
//! * [`parallel`] — the sweep engine: executes a (config × workload) grid
//!   across a scoped worker pool with deterministic result ordering, a
//!   process-wide baseline memoization cache, and panic isolation (a
//!   failed point degrades the sweep instead of aborting it).
//! * [`faults`] — deterministic fault injection (`ZERODEV_FAULTS`): seeded
//!   state corruption the oracle must catch, and message-level faults the
//!   protocol must absorb without statistics divergence.
//! * [`checkpoint`] — deterministic checkpoint/resume: a paused run
//!   serializes to a versioned, checksummed image and restores into a run
//!   that continues byte-identically to the uninterrupted original.
//! * `shard` — deterministic intra-run parallelism (`ZERODEV_SHARDS`):
//!   cores are partitioned into shards that speculate private-hierarchy
//!   work on worker threads between epoch barriers, while a serial walker
//!   commits the global event order — results are byte-identical to the
//!   serial loop at any shard count.
//!
//! # Example
//!
//! ```
//! use zerodev_sim::runner::{run, RunParams};
//! use zerodev_common::SystemConfig;
//! use zerodev_workloads::multithreaded;
//!
//! let cfg = SystemConfig::baseline_8core();
//! let wl = multithreaded("swaptions", 8, 1).unwrap();
//! let res = run(&cfg, wl, &RunParams { refs_per_core: 2_000, warmup_refs: 200, ..Default::default() });
//! assert!(res.completion_cycles > 0);
//! ```

pub mod checkpoint;
pub mod core_model;
pub mod energy;
pub mod engine;
pub mod faults;
pub mod parallel;
pub mod runner;
mod shard;

pub use engine::{PausedRun, RunStatus, SimError, SimResult, Simulation};
pub use faults::{FaultConfig, FaultPlan, FaultStats, StateFault};
pub use parallel::{Engine, JobOutcome, PointResult, RunJob, WorkloadMaker};
pub use runner::{run, RunParams};
