//! The deterministic event loop interleaving all cores, with a
//! forward-progress watchdog and optional deterministic fault injection.

use crate::core_model::{AccessEffects, CoreModel};
use crate::faults::{FaultConfig, FaultPlan, FaultStats};
use zerodev_common::snap::{SnapError, SnapReader, SnapWriter};
use zerodev_common::{CoreId, Cycle, MesiState, MsgClass, SocketId, Stats, SystemConfig};
use zerodev_core::{InvalReason, System};
use zerodev_workloads::{Workload, WorkloadKind};

/// Cycles a core may go without retiring a reference before the watchdog
/// declares the run stalled ([`Watchdog::horizon`] default). Legitimate
/// per-reference latency is bounded by a few thousand cycles (DRAM queueing
/// included), so a million-cycle silence is a livelock/deadlock, never a
/// slow access.
pub const DEFAULT_WATCHDOG_HORIZON: u64 = 1_000_000;

/// References between watchdog scans of the per-core heartbeats
/// ([`Watchdog::period`] default; keeps the check O(1) amortised per
/// reference).
pub const DEFAULT_WATCHDOG_PERIOD: u64 = 4_096;

/// The forward-progress watchdog's tuning knobs. Shared by the serial loop
/// and the sharded commit walker so a configured horizon applies to both;
/// the watchdog only reads the event stream, so results are byte-identical
/// at any setting that does not fire.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) struct Watchdog {
    /// Cycles of per-core heartbeat silence that declare a stall.
    pub(crate) horizon: u64,
    /// References between heartbeat scans (>= 1).
    pub(crate) period: u64,
}

impl Default for Watchdog {
    fn default() -> Self {
        Watchdog {
            horizon: DEFAULT_WATCHDOG_HORIZON,
            period: DEFAULT_WATCHDOG_PERIOD,
        }
    }
}

impl Watchdog {
    /// One scan point of the event loop: every [`Self::period`] pops, find
    /// the least-recently-retiring core and declare a stall if its
    /// heartbeat silence exceeds [`Self::horizon`].
    #[inline]
    pub(crate) fn check(&self, pops: u64, now: u64, last_retire: &[u64]) -> Result<(), SimError> {
        if pops.is_multiple_of(self.period) {
            let (lag, &seen) = last_retire
                .iter()
                .enumerate()
                .min_by_key(|&(_, &s)| s)
                .expect("at least one core");
            if now.saturating_sub(seen) > self.horizon {
                return Err(SimError::Stalled {
                    core: lag,
                    cycle: now,
                    last_event: format!(
                        "no retirement since cycle {seen} (heartbeat horizon {horizon})",
                        horizon = self.horizon
                    ),
                });
            }
        }
        Ok(())
    }

    /// Serializes the knobs for checkpointing.
    pub(crate) fn snap(&self, w: &mut SnapWriter) {
        w.u64(self.horizon);
        w.u64(self.period);
    }

    /// Inverse of [`Self::snap`].
    ///
    /// # Errors
    /// Fails with a decode [`SnapError`] on truncated or corrupt input.
    pub(crate) fn unsnap(r: &mut SnapReader) -> Result<Watchdog, SnapError> {
        let horizon = r.u64("watchdog horizon")?;
        let period = r.u64("watchdog period")?;
        if period == 0 {
            return Err(SnapError::Corrupt {
                context: "watchdog period must be nonzero",
            });
        }
        Ok(Watchdog { horizon, period })
    }
}

/// Packs an event as `(time << 32) | core` so that plain integer order is
/// exactly lexicographic `(time, core)` order. `u128` keys keep the packing
/// exact for any 64-bit timestamp.
#[inline]
fn event_key(time: u64, core: usize) -> u128 {
    ((time as u128) << 32) | core as u128
}

/// A flat binary min-heap of packed `(time, core)` event keys.
///
/// The event loop's steady state is pop-min immediately followed by a push
/// of the same core's next event; [`Self::replace_min`] fuses the pair into
/// a single sift-down, halving the heap traffic of the former
/// `BinaryHeap` pop/push sequence. Keys compare exactly like `(time, core)`
/// tuples, so the schedule — and therefore every statistic — is unchanged.
#[derive(Debug)]
pub(crate) struct EventQueue {
    keys: Vec<u128>,
}

impl EventQueue {
    /// One event per core, start times staggered by one cycle. The sequence
    /// `(0,0), (1,1), …` is already heap-ordered, so no heapify is needed.
    pub(crate) fn new(cores: usize) -> Self {
        assert!(cores < (1 << 32), "core index must pack into 32 bits");
        EventQueue {
            keys: (0..cores).map(|t| event_key(t as u64, t)).collect(),
        }
    }

    /// The earliest pending `(time, core)` event.
    #[inline]
    pub(crate) fn peek_min(&self) -> (u64, usize) {
        let k = self.keys[0];
        ((k >> 32) as u64, (k & 0xffff_ffff) as usize)
    }

    /// Replaces the minimum event and restores the heap property.
    #[inline]
    pub(crate) fn replace_min(&mut self, time: u64, core: usize) {
        self.keys[0] = event_key(time, core);
        self.sift_down();
    }

    fn sift_down(&mut self) {
        let n = self.keys.len();
        let mut i = 0;
        loop {
            let l = 2 * i + 1;
            if l >= n {
                return;
            }
            let r = l + 1;
            let c = if r < n && self.keys[r] < self.keys[l] {
                r
            } else {
                l
            };
            if self.keys[i] <= self.keys[c] {
                return;
            }
            self.keys.swap(i, c);
            i = c;
        }
    }

    /// Serializes the raw heap lanes for checkpointing. The heap's array
    /// layout (not just its contents) is captured: sift order after resume
    /// must match an uninterrupted run event-for-event.
    pub(crate) fn snap(&self, w: &mut SnapWriter) {
        w.usize(self.keys.len());
        for &k in &self.keys {
            w.u128(k);
        }
    }

    /// Inverse of [`Self::snap`]; `cores` is the expected heap size.
    ///
    /// # Errors
    /// Fails with a decode [`SnapError`] on truncated or corrupt input, or
    /// when the image's heap size does not match `cores`.
    pub(crate) fn unsnap(r: &mut SnapReader, cores: usize) -> Result<EventQueue, SnapError> {
        let len = r.usize("event queue len")?;
        if len != cores {
            return Err(SnapError::Corrupt {
                context: "event queue size does not match the machine",
            });
        }
        let mut keys = Vec::with_capacity(len);
        for _ in 0..len {
            keys.push(r.u128("event queue key")?);
        }
        Ok(EventQueue { keys })
    }
}

/// A structured forward-progress failure, surfaced instead of an infinite
/// loop (livelock) or an unexplained panic.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SimError {
    /// A core stopped retiring references: its retry budget was exhausted
    /// by a NACK storm, or its heartbeat went silent past the watchdog
    /// horizon.
    Stalled {
        /// The core that stopped making progress.
        core: usize,
        /// Simulated cycle at which the stall was declared.
        cycle: u64,
        /// What the core was last seen doing.
        last_event: String,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Stalled {
                core,
                cycle,
                last_event,
            } => write!(
                f,
                "forward-progress watchdog: core {core} stalled at cycle {cycle} ({last_event})"
            ),
        }
    }
}

impl std::error::Error for SimError {}

/// Outcome of one simulation run.
#[derive(Clone, Debug)]
pub struct SimResult {
    /// Workload name.
    pub name: String,
    /// Workload kind (decides the speedup metric).
    pub kind: WorkloadKind,
    /// Protocol/uncore counters.
    pub stats: Stats,
    /// Per-core cycle count at which the core retired its reference target.
    pub core_cycles: Vec<u64>,
    /// Per-core instructions retired at the target point.
    pub core_instrs: Vec<u64>,
    /// Completion time of the slowest core (multi-threaded metric).
    pub completion_cycles: u64,
    /// References retired in the measured region across all cores (early
    /// finishers keep retiring until the last core hits its target, so this
    /// can exceed `refs_per_core × cores`). Feeds the bench harness's
    /// references-per-second throughput metric.
    pub refs_retired: u64,
    /// DRAM (reads, writes) observed.
    pub dram_rw: (u64, u64),
    /// What the fault plan injected (empty unless faults were configured).
    /// Kept apart from [`Stats`] so faulted runs remain comparable to
    /// fault-free ones field-for-field.
    pub faults: FaultStats,
}

impl SimResult {
    /// Per-core IPC at the measurement target.
    pub fn ipcs(&self) -> Vec<f64> {
        self.core_cycles
            .iter()
            .zip(&self.core_instrs)
            .map(|(&c, &i)| i as f64 / c.max(1) as f64)
            .collect()
    }

    /// The paper's speedup metric versus a baseline run: completion-time
    /// ratio for multi-threaded workloads, normalised weighted speedup for
    /// multi-programmed ones. Returns `None` when the runs have different
    /// core counts (the ratio would be meaningless).
    pub fn speedup_vs(&self, base: &SimResult) -> Option<f64> {
        if self.core_cycles.len() != base.core_cycles.len() {
            return None;
        }
        Some(match self.kind {
            WorkloadKind::MultiThreaded => {
                base.completion_cycles as f64 / self.completion_cycles.max(1) as f64
            }
            WorkloadKind::MultiProgrammed => {
                let a = self.ipcs();
                let b = base.ipcs();
                a.iter().zip(&b).map(|(x, y)| x / y).sum::<f64>() / a.len() as f64
            }
        })
    }

    /// Core-cache misses per kilo-instruction (Figure 2 annotation).
    pub fn misses_per_kilo_instr(&self) -> f64 {
        let instrs: u64 = self.core_instrs.iter().sum();
        self.stats.core_cache_misses as f64 * 1000.0 / instrs.max(1) as f64
    }
}

/// Where [`apply_effects_via`] lands invalidations/downgrades: the serial
/// engine routes them straight into its `Vec<CoreModel>`, while the sharded
/// driver (`crate::shard`) interposes its speculation bookkeeping (poison
/// detection, delivery logging) before the same per-core application.
pub(crate) trait EffectSink {
    /// Downgrades `block` at `(socket, core)`; returns true when the copy
    /// was Modified (the caller then reports the sharing writeback).
    fn downgrade(
        &mut self,
        socket: SocketId,
        core: CoreId,
        block: zerodev_common::BlockAddr,
    ) -> bool;
    /// Invalidates `block` at `(socket, core)`; returns the state the copy
    /// was in (the caller routes Modified data back to the protocol).
    fn invalidate(
        &mut self,
        socket: SocketId,
        core: CoreId,
        block: zerodev_common::BlockAddr,
    ) -> MesiState;
}

/// Applies one access's invalidations/downgrades through `sink`, reporting
/// dirty data back to the protocol (which may cascade). Returns the
/// core-visible latency: private latency plus the uncore latency de-rated
/// by the workload's memory-level parallelism.
///
/// Drains the effect buffer in place so callers can reuse one allocation
/// across every reference: invalidations are consumed LIFO off the tail
/// while cascading recalls append to the same vector — exactly the order
/// the former take-and-extend version processed. Shared verbatim between
/// the serial loop and the sharded commit walker so the two paths cannot
/// drift.
// Responses terminate at the requesting core: delivering them generates
// no further traffic, which is what makes vnet 3 the drain of the order.
// lint:consumes(Data, Ack, MemReadData, SocketData)
pub(crate) fn apply_effects_via(
    sys: &mut System,
    now: Cycle,
    fx: &mut AccessEffects,
    mlp: f64,
    sink: &mut impl EffectSink,
) -> u64 {
    let latency = fx.latency + (fx.uncore_latency as f64 / mlp.max(1.0)).round() as u64;
    for d in fx.downgrades.drain(..) {
        if sink.downgrade(d.socket, d.core, d.block) {
            sys.sharing_writeback(now, d.socket, d.block);
        }
    }
    while let Some(inv) = fx.invalidations.pop() {
        let state = sink.invalidate(inv.socket, inv.core, inv.block);
        if state == MesiState::Modified {
            match inv.reason {
                InvalReason::Dev => {
                    sys.dev_dirty_recall_into(now, inv.socket, inv.block, &mut fx.invalidations);
                }
                InvalReason::Inclusion => {
                    sys.inclusion_dirty_writeback(now, inv.socket, inv.block);
                }
                InvalReason::Coherence => {
                    // Dirty data travelled with the ownership transfer.
                }
            }
        }
    }
    latency
}

/// Requester-side fault handling *before* the access reaches the uncore
/// (see [`Simulation::fault_pre`] for semantics). Free-standing so the
/// sharded commit walker can drive the identical fault path without a
/// `Simulation` value.
#[allow(clippy::too_many_arguments)] // one call site per driver; a params struct would only obscure it
                                     // lint:consumes(DenfNack)
pub(crate) fn fault_pre_at(
    sys: &mut System,
    faults: &mut Option<Box<FaultPlan>>,
    t: usize,
    socket: SocketId,
    core: CoreId,
    issue: u64,
    block: zerodev_common::BlockAddr,
    d: crate::faults::FaultDraw,
) -> Result<(), SimError> {
    let Some(len) = d.nack_storm else {
        return Ok(());
    };
    let plan = faults.as_deref_mut().expect("fault draw without a plan");
    let budget = plan.config().retry_budget;
    if len > budget {
        return Err(SimError::Stalled {
            core: t,
            cycle: issue,
            last_event: format!(
                "DENF_NACK storm of {len} on {block:?} exceeded the retry budget of {budget}"
            ),
        });
    }
    // The nacked request is re-issued after backoff: the one audited
    // descent in the MsgClass order (DESIGN.md §12). The cycle cannot
    // sustain itself — backoff grows with the storm length and the retry
    // budget turns an unbounded storm into SimError::Stalled.
    // lint:allow(msg_class_cycle, bounded DENF_NACK retry: backoff + hard retry budget guarantee drain)
    plan.stats.nack_storms += 1; // lint:emits(Request)
    plan.stats.nacks += u64::from(len);
    plan.stats.backoff_cycles += plan.config().backoff_cycles(len);
    let mut phantom = 0u64;
    for _ in 0..len {
        phantom += sys.fault_route(socket, core, block, MsgClass::DenfNack.bytes());
    }
    plan.stats.phantom_noc_cycles += phantom;
    Ok(())
}

/// Completion-side fault handling *after* the access resolved (see
/// [`Simulation::fault_post`] for semantics). Free-standing for the same
/// reason as [`fault_pre_at`].
pub(crate) fn fault_post_at(
    sys: &mut System,
    faults: &mut Option<Box<FaultPlan>>,
    socket: SocketId,
    core: CoreId,
    done: u64,
    block: zerodev_common::BlockAddr,
    d: crate::faults::FaultDraw,
) {
    if let Some(extra) = d.delay {
        let plan = faults.as_deref_mut().expect("plan present");
        plan.stats.delayed += 1;
        plan.stats.delay_cycles += extra;
    }
    if d.duplicate {
        let current = sys.duplicate_completion_is_current(socket, core, block);
        let phantom = sys.fault_route(socket, core, block, MsgClass::Data.bytes());
        let plan = faults.as_deref_mut().expect("plan present");
        plan.stats.duplicates += 1;
        if !current {
            plan.stats.duplicates_stale += 1;
        }
        plan.stats.phantom_noc_cycles += phantom;
    }
    if let Some(kind) = d.corrupt {
        if let Some(plan) = faults.as_deref_mut() {
            if let Some((victim, desc)) = sys.inject_state_fault(kind, plan.rng_mut()) {
                plan.corruption_injected(format!("at cycle {done}: {kind:?}: {desc}"));
                sys.audit_check_block(victim);
            }
        }
    }
}

/// The serial sink: effects land directly on the committed core models.
struct CoreSink<'a> {
    cores: &'a mut [CoreModel],
    cores_per_socket: usize,
}

impl CoreSink<'_> {
    #[inline]
    fn index(&self, socket: SocketId, core: CoreId) -> usize {
        socket.0 as usize * self.cores_per_socket + core.0 as usize
    }
}

impl EffectSink for CoreSink<'_> {
    fn downgrade(
        &mut self,
        socket: SocketId,
        core: CoreId,
        block: zerodev_common::BlockAddr,
    ) -> bool {
        let idx = self.index(socket, core);
        self.cores[idx].apply_downgrade(block)
    }

    fn invalidate(
        &mut self,
        socket: SocketId,
        core: CoreId,
        block: zerodev_common::BlockAddr,
    ) -> MesiState {
        let idx = self.index(socket, core);
        self.cores[idx].apply_invalidation(block)
    }
}

/// A running simulation: the protocol engine plus all core models and the
/// workload's reference generators.
#[derive(Debug)]
pub struct Simulation {
    sys: System,
    cores: Vec<CoreModel>,
    workload: Workload,
    /// Deterministic fault plan; `None` (the default) is zero-cost-off.
    faults: Option<Box<FaultPlan>>,
    /// Forward-progress watchdog tuning (defaults match the historical
    /// constants, so untouched runs are byte-identical).
    watchdog: Watchdog,
}

impl Simulation {
    /// Builds a simulation of `workload` on the machine in `cfg`.
    ///
    /// # Panics
    /// Panics when the workload thread count does not match the machine's
    /// total core count, or the config is invalid.
    pub fn new(cfg: &SystemConfig, workload: Workload) -> Self {
        let total = cfg.cores * cfg.sockets;
        assert_eq!(
            workload.threads.len(),
            total,
            "workload threads ({}) must match machine cores ({total})",
            workload.threads.len()
        );
        let sys = System::new(cfg.clone()).expect("valid config");
        // `System::new` ran `SystemConfig::validate`, which bounds sockets
        // and per-socket cores to their id widths — so these conversions
        // cannot fail. Checked anyway: a silent wrap here would alias
        // threads onto the wrong core.
        let cores = (0..total)
            .map(|t| {
                let socket = u8::try_from(t / cfg.cores).expect("validate bounds socket ids");
                let core = u16::try_from(t % cfg.cores).expect("validate bounds core ids");
                CoreModel::new(cfg, SocketId(socket), CoreId(core))
            })
            .collect();
        Simulation {
            sys,
            cores,
            workload,
            faults: None,
            watchdog: Watchdog::default(),
        }
    }

    /// Arms deterministic fault injection ([`crate::faults`]) for the
    /// measured region. Message-level faults never perturb timing or
    /// statistics; state corruptions are meant to be caught by the oracle
    /// (enable [`Self::enable_audit`] too).
    pub fn set_faults(&mut self, cfg: FaultConfig) {
        self.faults = Some(Box::new(FaultPlan::new(cfg)));
    }

    /// Tunes the forward-progress watchdog: `horizon` cycles of per-core
    /// heartbeat silence declare a stall, scanned every `period` references
    /// (`period` is clamped to at least 1). The watchdog only reads the
    /// event stream, so any setting that does not fire leaves results
    /// byte-identical to the defaults ([`DEFAULT_WATCHDOG_HORIZON`],
    /// [`DEFAULT_WATCHDOG_PERIOD`]).
    pub fn set_watchdog(&mut self, horizon: u64, period: u64) {
        self.watchdog = Watchdog {
            horizon,
            period: period.max(1),
        };
    }

    /// Read access to the protocol engine (diagnostics).
    pub fn system(&self) -> &System {
        &self.sys
    }

    /// Mutable engine access for checkpoint restoration.
    pub(crate) fn system_mut(&mut self) -> &mut System {
        &mut self.sys
    }

    /// The core models (checkpoint serialization).
    pub(crate) fn cores(&self) -> &[CoreModel] {
        &self.cores
    }

    /// Mutable core models for checkpoint restoration.
    pub(crate) fn cores_mut(&mut self) -> &mut [CoreModel] {
        &mut self.cores
    }

    /// The workload generators (checkpoint serialization).
    pub(crate) fn workload(&self) -> &Workload {
        &self.workload
    }

    /// The fault plan, if armed (checkpoint serialization).
    pub(crate) fn faults(&self) -> Option<&FaultPlan> {
        self.faults.as_deref()
    }

    /// Installs an already-built fault plan (checkpoint restoration).
    pub(crate) fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = Some(Box::new(plan));
    }

    /// The watchdog tuning (checkpoint serialization).
    pub(crate) fn watchdog(&self) -> Watchdog {
        self.watchdog
    }

    /// Installs watchdog tuning verbatim (checkpoint restoration).
    pub(crate) fn set_watchdog_raw(&mut self, wd: Watchdog) {
        self.watchdog = wd;
    }

    /// Turns on the coherence-invariant oracle (`zerodev_core::oracle`):
    /// every subsequent uncore transaction is replayed against a shadow
    /// MESI model and checked. Must be called before the first reference
    /// is simulated. Audited runs produce byte-identical statistics.
    pub fn enable_audit(&mut self) {
        self.sys.enable_audit();
    }

    /// Applies invalidations/downgrades to the victim cores via
    /// [`apply_effects_via`] (the logic shared with the sharded walker).
    fn apply_effects(&mut self, now: Cycle, fx: &mut AccessEffects, mlp: f64) -> u64 {
        let cores_per_socket = self.sys.config().cores;
        let mut sink = CoreSink {
            cores: &mut self.cores,
            cores_per_socket,
        };
        apply_effects_via(&mut self.sys, now, fx, mlp, &mut sink)
    }

    /// Requester-side fault handling *before* the access reaches the
    /// uncore: a forced `DENF_NACK` storm either exhausts the retry budget
    /// (a structured stall) or is absorbed with bounded exponential
    /// backoff, accounted virtually and as phantom NoC traffic.
    fn fault_pre(
        &mut self,
        t: usize,
        issue: u64,
        block: zerodev_common::BlockAddr,
        d: crate::faults::FaultDraw,
    ) -> Result<(), SimError> {
        let (socket, core) = (self.cores[t].socket(), self.cores[t].core());
        fault_pre_at(
            &mut self.sys,
            &mut self.faults,
            t,
            socket,
            core,
            issue,
            block,
            d,
        )
    }

    /// Completion-side fault handling *after* the access resolved: delayed
    /// completions (virtual lateness), duplicated completions (re-delivered
    /// and dropped — idempotent if the line is still tracked, stale if it
    /// raced an invalidation), and armed state corruption (injected once a
    /// victim exists, then immediately re-checked by the oracle).
    fn fault_post(
        &mut self,
        t: usize,
        done: u64,
        block: zerodev_common::BlockAddr,
        d: crate::faults::FaultDraw,
    ) {
        let (socket, core) = (self.cores[t].socket(), self.cores[t].core());
        fault_post_at(
            &mut self.sys,
            &mut self.faults,
            socket,
            core,
            done,
            block,
            d,
        );
    }

    /// Runs until every core has retired `refs_per_core` references after a
    /// per-core warm-up of `warmup_refs` (not counted in the statistics).
    /// Early finishers keep running until the last core reaches its target,
    /// as in the paper's multi-programmed methodology.
    ///
    /// # Panics
    /// Panics (via [`SimError`]'s message) when the forward-progress
    /// watchdog fires; use [`Self::try_run`] to handle stalls structurally.
    pub fn run(self, refs_per_core: u64, warmup_refs: u64) -> SimResult {
        self.try_run(refs_per_core, warmup_refs)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`Self::run`], surfacing livelock/deadlock as [`SimError::Stalled`]
    /// instead of looping forever: every core must keep retiring references
    /// within the watchdog horizon, and NACKed flows get a bounded retry
    /// budget. The watchdog only reads the event stream — armed or not,
    /// results are byte-identical.
    ///
    /// Implemented as [`Self::start`] + a single unbounded
    /// [`PausedRun::advance`] + [`PausedRun::finish`], so the whole-run and
    /// incremental (checkpointable) paths share one event-loop body.
    pub fn try_run(self, refs_per_core: u64, warmup_refs: u64) -> Result<SimResult, SimError> {
        let mut run = self.start(refs_per_core, warmup_refs);
        run.advance(u64::MAX)?;
        Ok(run.finish())
    }

    /// Executes the warm-up phase, resets the statistics, and returns the
    /// measured region as a [`PausedRun`] positioned at its first
    /// reference. Advance it in bounded steps ([`PausedRun::advance`]) —
    /// checkpointing at any pause boundary — and seal it with
    /// [`PausedRun::finish`].
    pub fn start(mut self, refs_per_core: u64, warmup_refs: u64) -> PausedRun {
        let n = self.cores.len();
        // One effects buffer for the whole run: `access_into` clears and
        // refills it, `apply_effects` drains it.
        let mut fx = AccessEffects::default();
        // Warm-up: interleave round-robin without timing.
        for _ in 0..warmup_refs {
            for t in 0..n {
                let r = self.workload.threads[t].next_ref();
                let (socket, core) = (self.cores[t].socket(), self.cores[t].core());
                let _ = (socket, core);
                let mlp = self.workload.threads[t].spec().mlp;
                self.cores[t].access_into(&mut self.sys, Cycle(0), r, &mut fx);
                let _ = self.apply_effects(Cycle(0), &mut fx, mlp);
            }
        }
        // Reset statistics after warm-up, preserving the live gauges (they
        // track real structure occupancy, not events).
        let mut fresh = Stats::new();
        fresh.spilled_lines_current = self.sys.stats.spilled_lines_current;
        fresh.spilled_lines_max = fresh.spilled_lines_current;
        fresh.dir_live_entries = self.sys.stats.dir_live_entries;
        fresh.dir_live_entries_max = fresh.dir_live_entries;
        self.sys.stats = fresh;

        PausedRun {
            st: EngineState::new(n),
            sim: self,
            refs_per_core,
            fx,
        }
    }

    /// [`Self::run`] with the deterministic sharded driver
    /// (`crate::shard`): cores are partitioned into `shards` shards that
    /// speculate private-hierarchy work on worker threads, while the global
    /// `(time, core)` event order is committed serially — results are
    /// byte-identical to [`Self::run`] at any shard count. `shards <= 1`
    /// (or a single core) falls back to the serial loop.
    ///
    /// # Panics
    /// Panics (via [`SimError`]'s message) when the forward-progress
    /// watchdog fires; use [`Self::try_run_sharded`] for structured stalls.
    pub fn run_sharded(self, refs_per_core: u64, warmup_refs: u64, shards: usize) -> SimResult {
        self.try_run_sharded(refs_per_core, warmup_refs, shards)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`Self::run_sharded`], surfacing stalls as [`SimError::Stalled`].
    pub fn try_run_sharded(
        self,
        refs_per_core: u64,
        warmup_refs: u64,
        shards: usize,
    ) -> Result<SimResult, SimError> {
        let shards = shards.clamp(1, self.cores.len().max(1));
        if shards <= 1 {
            return self.try_run(refs_per_core, warmup_refs);
        }
        crate::shard::run(self, refs_per_core, warmup_refs, shards)
    }

    /// Decomposes the simulation into the parts the sharded driver owns.
    #[allow(clippy::type_complexity)] // one caller; naming the tuple would only add indirection
    pub(crate) fn into_parts(
        self,
    ) -> (
        System,
        Vec<CoreModel>,
        Workload,
        Option<Box<FaultPlan>>,
        Watchdog,
    ) {
        (
            self.sys,
            self.cores,
            self.workload,
            self.faults,
            self.watchdog,
        )
    }
}

/// The mutable state of the measured-region event loop, separated from the
/// machine ([`Simulation`]) so a paused run can serialize both halves into
/// one checkpoint image.
#[derive(Debug)]
pub(crate) struct EngineState {
    /// Pending `(time, core)` events, one per core.
    pub(crate) queue: EventQueue,
    /// References retired per core this region.
    pub(crate) refs_done: Vec<u64>,
    /// Instructions retired per core (gap instructions + the reference).
    pub(crate) instrs: Vec<u64>,
    /// Per-core completion cycle, latched when the core hits its target.
    pub(crate) core_cycles: Vec<u64>,
    /// Per-core instruction count, latched with [`Self::core_cycles`].
    pub(crate) core_instrs: Vec<u64>,
    /// Cores that reached their reference target.
    pub(crate) finished: usize,
    /// Watchdog state: the cycle each core last retired a reference.
    pub(crate) last_retire: Vec<u64>,
    /// Event-loop pops (= total references retired across all cores).
    pub(crate) pops: u64,
}

impl EngineState {
    fn new(n: usize) -> Self {
        EngineState {
            queue: EventQueue::new(n),
            refs_done: vec![0; n],
            instrs: vec![0; n],
            core_cycles: vec![0; n],
            core_instrs: vec![0; n],
            finished: 0,
            last_retire: vec![0; n],
            pops: 0,
        }
    }

    /// Serializes the loop state for checkpointing.
    pub(crate) fn snap(&self, w: &mut SnapWriter) {
        self.queue.snap(w);
        for lane in [
            &self.refs_done,
            &self.instrs,
            &self.core_cycles,
            &self.core_instrs,
            &self.last_retire,
        ] {
            for &v in lane.iter() {
                w.u64(v);
            }
        }
        w.usize(self.finished);
        w.u64(self.pops);
    }

    /// Inverse of [`Self::snap`]; `cores` is the machine's core count.
    ///
    /// # Errors
    /// Fails with a decode [`SnapError`] on truncated or corrupt input, or
    /// when the image does not match a `cores`-core machine.
    pub(crate) fn unsnap(r: &mut SnapReader, cores: usize) -> Result<EngineState, SnapError> {
        let queue = EventQueue::unsnap(r, cores)?;
        let mut lanes: [Vec<u64>; 5] = Default::default();
        for lane in &mut lanes {
            *lane = (0..cores)
                .map(|_| r.u64("engine per-core lane"))
                .collect::<Result<_, _>>()?;
        }
        let [refs_done, instrs, core_cycles, core_instrs, last_retire] = lanes;
        let finished = r.usize("engine finished count")?;
        if finished > cores {
            return Err(SnapError::Corrupt {
                context: "finished count exceeds the core count",
            });
        }
        let pops = r.u64("engine pops")?;
        Ok(EngineState {
            queue,
            refs_done,
            instrs,
            core_cycles,
            core_instrs,
            finished,
            last_retire,
            pops,
        })
    }
}

/// What a bounded [`PausedRun::advance`] observed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RunStatus {
    /// Every core reached its reference target; call
    /// [`PausedRun::finish`].
    Finished,
    /// The step budget ran out first; the run can be advanced further,
    /// checkpointed, or abandoned.
    Paused,
}

/// A measured region in flight, pausable between any two references.
///
/// Produced by [`Simulation::start`] (or by restoring a checkpoint, see
/// `crate::checkpoint`). The loop body here is *the* serial event loop —
/// [`Simulation::try_run`] is a single unbounded advance — so pausing,
/// checkpointing, and resuming cannot drift from an uninterrupted run.
#[derive(Debug)]
pub struct PausedRun {
    pub(crate) sim: Simulation,
    pub(crate) st: EngineState,
    pub(crate) refs_per_core: u64,
    /// Reusable effects buffer; empty at every pause boundary (each step
    /// clears and then drains it), so checkpoints never serialize it.
    pub(crate) fx: AccessEffects,
}

impl PausedRun {
    /// Executes up to `max_steps` references of the global event order.
    ///
    /// Returns [`RunStatus::Finished`] once every core has retired its
    /// target (further calls are no-ops), [`RunStatus::Paused`] when the
    /// step budget ran out first.
    ///
    /// # Errors
    /// [`SimError::Stalled`] when the forward-progress watchdog fires or a
    /// NACK storm exhausts the retry budget. The run remains intact — it
    /// can still be checkpointed for post-mortem replay — but advancing
    /// further will re-examine the same stalled event.
    pub fn advance(&mut self, max_steps: u64) -> Result<RunStatus, SimError> {
        let n = self.sim.cores.len();
        if self.st.finished == n {
            return Ok(RunStatus::Finished);
        }
        let st = &mut self.st;
        let sim = &mut self.sim;
        for _ in 0..max_steps {
            let (now, t) = st.queue.peek_min();
            st.pops += 1;
            sim.watchdog.check(st.pops, now, &st.last_retire)?;
            let r = sim.workload.threads[t].next_ref();
            let mlp = sim.workload.threads[t].spec().mlp;
            let issue = now + u64::from(r.gap);
            let draw = sim
                .faults
                .as_deref_mut()
                .map(crate::faults::FaultPlan::draw);
            if let Some(d) = draw {
                sim.fault_pre(t, issue, r.block, d)?;
            }
            sim.cores[t].access_into(&mut sim.sys, Cycle(issue), r, &mut self.fx);
            let lat = sim.apply_effects(Cycle(issue), &mut self.fx, mlp);
            let done = issue + lat;
            if let Some(d) = draw {
                sim.fault_post(t, done, r.block, d);
            }
            st.instrs[t] += u64::from(r.gap) + 1;
            st.refs_done[t] += 1;
            st.last_retire[t] = done;
            if st.refs_done[t] == self.refs_per_core {
                st.core_cycles[t] = done;
                st.core_instrs[t] = st.instrs[t];
                st.finished += 1;
                if st.finished == n {
                    return Ok(RunStatus::Finished);
                }
            }
            st.queue.replace_min(done, t);
        }
        Ok(RunStatus::Paused)
    }

    /// Seals the run: the final audit sweep (no-op unless auditing) and the
    /// assembled [`SimResult`]. Normally called after
    /// [`RunStatus::Finished`]; calling earlier freezes whatever has been
    /// retired so far (per-core completion data is zero for unfinished
    /// cores).
    pub fn finish(mut self) -> SimResult {
        // A final exhaustive pass over every shadow-tracked block before
        // the statistics are frozen (no-op unless auditing).
        self.sim.sys.audit_sweep();

        let (dr, dw) = self.sim.sys.memory().dram_counts();
        SimResult {
            name: self.sim.workload.name.clone(),
            kind: self.sim.workload.kind,
            stats: self.sim.sys.stats.clone(),
            completion_cycles: self.st.core_cycles.iter().copied().max().unwrap_or(0),
            refs_retired: self.st.pops,
            core_cycles: self.st.core_cycles,
            core_instrs: self.st.core_instrs,
            dram_rw: (dr, dw),
            faults: self.sim.faults.take().map(|p| p.stats).unwrap_or_default(),
        }
    }

    /// True once every core has retired its reference target.
    pub fn is_finished(&self) -> bool {
        self.st.finished == self.sim.cores.len()
    }

    /// References retired so far across all cores (event-loop pops).
    pub fn refs_retired(&self) -> u64 {
        self.st.pops
    }

    /// The per-core reference target this run was started with.
    pub fn refs_per_core(&self) -> u64 {
        self.refs_per_core
    }

    /// Read access to the protocol engine (diagnostics).
    pub fn system(&self) -> &System {
        &self.sim.sys
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zerodev_workloads::multithreaded;

    fn small_run(name: &str) -> SimResult {
        let cfg = SystemConfig::baseline_8core();
        let wl = multithreaded(name, 8, 11).unwrap();
        Simulation::new(&cfg, wl).run(2_000, 200)
    }

    #[test]
    fn run_completes_all_cores() {
        let r = small_run("swaptions");
        assert_eq!(r.core_cycles.len(), 8);
        assert!(r.core_cycles.iter().all(|&c| c > 0));
        assert!(r.completion_cycles >= *r.core_cycles.iter().max().unwrap());
        assert!(r.stats.core_cache_misses > 0);
        assert!(r.dram_rw.0 > 0);
    }

    #[test]
    fn deterministic_repeats() {
        let a = small_run("ferret");
        let b = small_run("ferret");
        assert_eq!(a.completion_cycles, b.completion_cycles);
        assert_eq!(a.stats.core_cache_misses, b.stats.core_cache_misses);
        assert_eq!(a.stats.total_traffic_bytes(), b.stats.total_traffic_bytes());
    }

    #[test]
    fn speedup_vs_self_is_one() {
        let a = small_run("ferret");
        let b = small_run("ferret");
        let s = a.speedup_vs(&b).expect("same core count");
        assert!((s - 1.0).abs() < 1e-9, "self speedup {s}");
    }

    #[test]
    fn speedup_vs_mismatched_core_counts_is_none() {
        let a = small_run("ferret");
        let mut b = a.clone();
        b.core_cycles.pop();
        assert_eq!(a.speedup_vs(&b), None);
    }

    #[test]
    fn try_run_is_clean_and_identical_to_run() {
        let cfg = SystemConfig::baseline_8core();
        let wl = || multithreaded("ferret", 8, 11).unwrap();
        let a = Simulation::new(&cfg, wl()).run(2_000, 200);
        let b = Simulation::new(&cfg, wl())
            .try_run(2_000, 200)
            .expect("clean run must not stall");
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.completion_cycles, b.completion_cycles);
        assert_eq!(a.faults, FaultStats::default());
    }

    #[test]
    fn ipcs_are_positive_and_bounded() {
        let r = small_run("streamcluster");
        for ipc in r.ipcs() {
            assert!(ipc > 0.0 && ipc <= 1.0, "ipc {ipc}");
        }
        assert!(r.misses_per_kilo_instr() > 0.0);
    }

    #[test]
    #[should_panic(expected = "must match")]
    fn thread_count_mismatch_panics() {
        let cfg = SystemConfig::baseline_8core();
        let wl = multithreaded("ferret", 4, 1).unwrap();
        let _ = Simulation::new(&cfg, wl);
    }

    #[test]
    #[should_panic(expected = "exceed the 8-bit SocketId space")]
    fn oversized_socket_count_is_rejected_before_ids_wrap() {
        // Regression: 300 sockets used to wrap `SocketId` (a u8) and alias
        // threads onto the wrong socket; validation now rejects it first.
        let mut cfg = SystemConfig::baseline_8core();
        cfg.sockets = 300;
        let wl = multithreaded("ferret", 8 * 300, 1).unwrap();
        let _ = Simulation::new(&cfg, wl);
    }
}
