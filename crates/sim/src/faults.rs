//! Deterministic fault injection: configuration, per-run plan, and stats.
//!
//! ZeroDEV's safety argument rests on invariants the PR-2 oracle checks on
//! *clean* runs; this module supplies the adversarial side. A
//! [`FaultPlan`], seeded from [`FaultConfig::seed`] and driven by
//! [`zerodev_common::Prng`], decides per measured access whether to inject:
//!
//! * **state corruption** ([`StateFault`]) — sharer-bit flips, LLC-resident
//!   entry corruption, housed home-segment flips. These silently break the
//!   protocol's invariants; the fault campaign proves the oracle flags
//!   every one (detector sensitivity).
//! * **message-level faults** — forced `DENF_NACK` storms with bounded
//!   exponential backoff, delayed completions, and duplicated completions.
//!   The protocol must absorb these without any state or statistics
//!   divergence (resilience): their cost is accounted *virtually* in
//!   [`FaultStats`] and as phantom NoC traffic, never in the timed event
//!   stream, so a faulted run's final [`zerodev_common::Stats`] are
//!   byte-identical to the fault-free run.
//!
//! The whole subsystem is zero-cost-off: with no `FaultConfig` in
//! [`crate::runner::RunParams`] (and `ZERODEV_FAULTS` unset) the engine
//! takes one `None` branch per reference and produces byte-identical
//! output to a build without the module.

use zerodev_common::snap::{SnapError, SnapReader, SnapWriter};
use zerodev_common::Prng;
pub use zerodev_core::StateFault;

fn fault_tag(k: StateFault) -> u8 {
    match k {
        StateFault::SharerFlip => 0,
        StateFault::LlcEntryCorrupt => 1,
        StateFault::HomeSegmentFlip => 2,
    }
}

fn fault_from_tag(tag: u8) -> Result<StateFault, SnapError> {
    Ok(match tag {
        0 => StateFault::SharerFlip,
        1 => StateFault::LlcEntryCorrupt,
        2 => StateFault::HomeSegmentFlip,
        _ => {
            return Err(SnapError::Corrupt {
                context: "unknown state-fault tag",
            })
        }
    })
}

/// Parts-per-million probability bound (1.0).
pub const PPM: u32 = 1_000_000;

/// A complete, hashable description of the faults to inject in one run.
/// Probabilities are parts-per-million so the config stays `Eq + Hash` and
/// can key the sweep memo cache.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct FaultConfig {
    /// Seed of the fault plan's own PRNG (independent of workload seeds).
    pub seed: u64,
    /// Per-access probability (ppm) of a forced `DENF_NACK` storm.
    pub nack_ppm: u32,
    /// NACKs in a storm before the re-forward succeeds.
    pub nack_len: u32,
    /// Retries the requester tolerates before declaring a stall
    /// (`SimError::Stalled`): the watchdog's bounded-retry budget.
    pub retry_budget: u32,
    /// First-retry backoff in cycles; doubles per retry (exponential).
    pub backoff_base: u64,
    /// Per-retry backoff ceiling in cycles.
    pub backoff_cap: u64,
    /// Per-access probability (ppm) of a delayed completion.
    pub delay_ppm: u32,
    /// Extra (virtual) cycles a delayed completion is late by.
    pub delay_cycles: u64,
    /// Per-access probability (ppm) of a duplicated completion.
    pub dup_ppm: u32,
    /// State corruption: the fault class and the measured-access index to
    /// arm it at (injection retries every access until a victim exists).
    pub corrupt: Option<(StateFault, u64)>,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 0xfa017,
            nack_ppm: 0,
            nack_len: 4,
            retry_budget: 16,
            backoff_base: 8,
            backoff_cap: 1_024,
            delay_ppm: 0,
            delay_cycles: 50,
            dup_ppm: 0,
            corrupt: None,
        }
    }
}

impl FaultConfig {
    /// Parses a `ZERODEV_FAULTS` spec: comma-separated `key=value` pairs.
    ///
    /// Keys: `seed`, `nack` (ppm), `nack_len`, `retries`, `backoff_base`,
    /// `backoff_cap`, `delay` (ppm), `delay_cycles`, `dup` (ppm), and
    /// `corrupt=<sharer|llc|home>@<access-index>`.
    /// Example: `nack=500,delay=200,dup=100,seed=7`.
    ///
    /// # Errors
    /// Returns a message describing the first malformed pair.
    pub fn parse(spec: &str) -> Result<FaultConfig, String> {
        fn num<T: std::str::FromStr>(k: &str, v: &str) -> Result<T, String> {
            v.trim()
                .parse()
                .map_err(|_| format!("`{k}={v}`: not a number"))
        }
        fn ppm(k: &str, v: &str) -> Result<u32, String> {
            let p: u32 = num(k, v)?;
            if p > PPM {
                return Err(format!("`{k}={v}`: probability above {PPM} ppm"));
            }
            Ok(p)
        }
        let mut fc = FaultConfig::default();
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (k, v) = part
                .split_once('=')
                .ok_or_else(|| format!("`{part}`: expected key=value"))?;
            match k.trim() {
                "seed" => fc.seed = num(k, v)?,
                "nack" => fc.nack_ppm = ppm(k, v)?,
                "nack_len" => fc.nack_len = num(k, v)?,
                "retries" => fc.retry_budget = num(k, v)?,
                "backoff_base" => fc.backoff_base = num(k, v)?,
                "backoff_cap" => fc.backoff_cap = num(k, v)?,
                "delay" => fc.delay_ppm = ppm(k, v)?,
                "delay_cycles" => fc.delay_cycles = num(k, v)?,
                "dup" => fc.dup_ppm = ppm(k, v)?,
                "corrupt" => {
                    let (kind, at) = v
                        .split_once('@')
                        .ok_or_else(|| format!("`{part}`: expected corrupt=<kind>@<index>"))?;
                    let kind = match kind.trim() {
                        "sharer" => StateFault::SharerFlip,
                        "llc" => StateFault::LlcEntryCorrupt,
                        "home" => StateFault::HomeSegmentFlip,
                        other => {
                            return Err(format!("`{other}`: unknown fault kind (sharer|llc|home)"))
                        }
                    };
                    fc.corrupt = Some((kind, num(k, at)?));
                }
                other => return Err(format!("`{other}`: unknown fault key")),
            }
        }
        Ok(fc)
    }

    /// [`Self::parse`] over an environment-variable value, with the shared
    /// warn-and-fall-back discipline of [`zerodev_common::env`]: unset or
    /// empty means no faults, malformed warns to stderr and disables.
    pub fn parse_env(name: &str, raw: Option<&str>) -> Option<FaultConfig> {
        let raw = raw?;
        if raw.trim().is_empty() {
            return None;
        }
        match FaultConfig::parse(raw) {
            Ok(fc) => Some(fc),
            Err(e) => {
                eprintln!("warning: ignoring {name}={raw:?} ({e}); fault injection disabled");
                None
            }
        }
    }

    /// Reads `ZERODEV_FAULTS` via [`Self::parse_env`].
    pub fn from_env() -> Option<FaultConfig> {
        let raw = std::env::var("ZERODEV_FAULTS").ok();
        FaultConfig::parse_env("ZERODEV_FAULTS", raw.as_deref())
    }

    /// Total backoff cycles a storm of `len` NACKs costs the requester:
    /// exponential from [`Self::backoff_base`], capped per retry at
    /// [`Self::backoff_cap`] (the bound that makes the backoff, and hence
    /// any stall, finite).
    pub fn backoff_cycles(&self, len: u32) -> u64 {
        (0..len)
            .map(|i| {
                self.backoff_base
                    .checked_shl(i)
                    .unwrap_or(self.backoff_cap)
                    .min(self.backoff_cap)
            })
            .fold(0u64, u64::saturating_add)
    }
}

/// Everything a faulted run observed, kept apart from the protocol's
/// [`zerodev_common::Stats`] so message-level faults stay provably
/// stats-neutral. Backoff and delay costs are *virtual* cycles: accounted
/// here, never added to the timed event stream.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Forced `DENF_NACK` storms survived.
    pub nack_storms: u64,
    /// Individual NACKs across all storms.
    pub nacks: u64,
    /// Virtual requester-side backoff cycles across all storms.
    pub backoff_cycles: u64,
    /// Completions delivered late.
    pub delayed: u64,
    /// Virtual cycles of added completion delay.
    pub delay_cycles: u64,
    /// Completions delivered twice.
    pub duplicates: u64,
    /// Duplicates that raced a later invalidation (dropped as stale rather
    /// than as idempotent).
    pub duplicates_stale: u64,
    /// State corruptions injected.
    pub corruptions: u64,
    /// One-way latency of phantom messages routed through the NoC.
    pub phantom_noc_cycles: u64,
    /// Human-readable description of every injected state corruption.
    pub injected: Vec<String>,
}

impl FaultStats {
    /// Total injected events of any class.
    pub fn total_events(&self) -> u64 {
        self.nack_storms + self.delayed + self.duplicates + self.corruptions
    }
}

/// What the plan decided for one measured access.
#[derive(Clone, Copy, Debug, Default)]
pub struct FaultDraw {
    /// Force a `DENF_NACK` storm of this many NACKs.
    pub nack_storm: Option<u32>,
    /// Deliver the completion this many cycles late (virtually).
    pub delay: Option<u64>,
    /// Deliver the completion twice.
    pub duplicate: bool,
    /// A state corruption is armed and waiting for a victim.
    pub corrupt: Option<StateFault>,
}

/// The per-run fault schedule: owns the fault PRNG, decides one
/// [`FaultDraw`] per measured access, and accumulates [`FaultStats`].
/// Fully determined by its [`FaultConfig`] — two runs with equal configs
/// inject identical fault sequences.
#[derive(Debug)]
pub struct FaultPlan {
    cfg: FaultConfig,
    rng: Prng,
    accesses: u64,
    armed: Option<StateFault>,
    /// Everything injected so far.
    pub stats: FaultStats,
}

impl FaultPlan {
    /// A plan executing `cfg`.
    pub fn new(cfg: FaultConfig) -> Self {
        FaultPlan {
            cfg,
            rng: Prng::seeded(cfg.seed ^ 0x5eed_fa017),
            accesses: 0,
            armed: None,
            stats: FaultStats::default(),
        }
    }

    /// The config the plan executes.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// The fault PRNG (victim selection for state corruption).
    pub fn rng_mut(&mut self) -> &mut Prng {
        &mut self.rng
    }

    fn chance(&mut self, ppm: u32) -> bool {
        ppm > 0 && self.rng.below(u64::from(PPM)) < u64::from(ppm)
    }

    /// Decides the faults for the next measured access.
    pub fn draw(&mut self) -> FaultDraw {
        let i = self.accesses;
        self.accesses += 1;
        if let Some((kind, at)) = self.cfg.corrupt {
            if i == at {
                self.armed = Some(kind);
            }
        }
        FaultDraw {
            nack_storm: self
                .chance(self.cfg.nack_ppm)
                .then(|| self.cfg.nack_len.max(1)),
            delay: self
                .chance(self.cfg.delay_ppm)
                .then_some(self.cfg.delay_cycles),
            duplicate: self.chance(self.cfg.dup_ppm),
            corrupt: self.armed,
        }
    }

    /// Records a successful state corruption and disarms the trigger.
    pub fn corruption_injected(&mut self, desc: String) {
        self.armed = None;
        self.stats.corruptions += 1;
        self.stats.injected.push(desc);
    }

    /// Serializes the whole plan — config, PRNG state, draw cursor, armed
    /// corruption, and accumulated stats — for checkpointing. A restored
    /// plan continues the exact fault sequence of the original.
    pub fn snap(&self, w: &mut SnapWriter) {
        w.u64(self.cfg.seed);
        w.u32(self.cfg.nack_ppm);
        w.u32(self.cfg.nack_len);
        w.u32(self.cfg.retry_budget);
        w.u64(self.cfg.backoff_base);
        w.u64(self.cfg.backoff_cap);
        w.u32(self.cfg.delay_ppm);
        w.u64(self.cfg.delay_cycles);
        w.u32(self.cfg.dup_ppm);
        match self.cfg.corrupt {
            None => w.bool(false),
            Some((kind, at)) => {
                w.bool(true);
                w.u8(fault_tag(kind));
                w.u64(at);
            }
        }
        for s in self.rng.state() {
            w.u64(s);
        }
        w.u64(self.accesses);
        match self.armed {
            None => w.bool(false),
            Some(kind) => {
                w.bool(true);
                w.u8(fault_tag(kind));
            }
        }
        w.u64(self.stats.nack_storms);
        w.u64(self.stats.nacks);
        w.u64(self.stats.backoff_cycles);
        w.u64(self.stats.delayed);
        w.u64(self.stats.delay_cycles);
        w.u64(self.stats.duplicates);
        w.u64(self.stats.duplicates_stale);
        w.u64(self.stats.corruptions);
        w.u64(self.stats.phantom_noc_cycles);
        w.usize(self.stats.injected.len());
        for desc in &self.stats.injected {
            w.str(desc);
        }
    }

    /// Inverse of [`Self::snap`].
    ///
    /// # Errors
    /// Fails with a decode [`SnapError`] on truncated or corrupt input.
    pub fn unsnap(r: &mut SnapReader) -> Result<FaultPlan, SnapError> {
        let mut cfg = FaultConfig {
            seed: r.u64("fault seed")?,
            nack_ppm: r.u32("fault nack ppm")?,
            nack_len: r.u32("fault nack len")?,
            retry_budget: r.u32("fault retry budget")?,
            backoff_base: r.u64("fault backoff base")?,
            backoff_cap: r.u64("fault backoff cap")?,
            delay_ppm: r.u32("fault delay ppm")?,
            delay_cycles: r.u64("fault delay cycles")?,
            dup_ppm: r.u32("fault dup ppm")?,
            corrupt: None,
        };
        if r.bool("fault corrupt flag")? {
            let kind = fault_from_tag(r.u8("fault corrupt kind")?)?;
            cfg.corrupt = Some((kind, r.u64("fault corrupt index")?));
        }
        let rng = Prng::from_state([
            r.u64("fault rng state")?,
            r.u64("fault rng state")?,
            r.u64("fault rng state")?,
            r.u64("fault rng state")?,
        ]);
        let accesses = r.u64("fault accesses")?;
        let armed = r
            .bool("fault armed flag")?
            .then(|| fault_from_tag(r.u8("fault armed kind")?))
            .transpose()?;
        let mut stats = FaultStats {
            nack_storms: r.u64("fault stat")?,
            nacks: r.u64("fault stat")?,
            backoff_cycles: r.u64("fault stat")?,
            delayed: r.u64("fault stat")?,
            delay_cycles: r.u64("fault stat")?,
            duplicates: r.u64("fault stat")?,
            duplicates_stale: r.u64("fault stat")?,
            corruptions: r.u64("fault stat")?,
            phantom_noc_cycles: r.u64("fault stat")?,
            injected: Vec::new(),
        };
        let n = r.usize("fault injected count")?;
        for _ in 0..n {
            stats
                .injected
                .push(r.str("fault injected desc")?.to_owned());
        }
        Ok(FaultPlan {
            cfg,
            rng,
            accesses,
            armed,
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_round_trips() {
        let fc = FaultConfig::parse("nack=500, nack_len=3, retries=8, delay=200, dup=100, seed=7")
            .unwrap();
        assert_eq!(fc.nack_ppm, 500);
        assert_eq!(fc.nack_len, 3);
        assert_eq!(fc.retry_budget, 8);
        assert_eq!(fc.delay_ppm, 200);
        assert_eq!(fc.dup_ppm, 100);
        assert_eq!(fc.seed, 7);
        assert_eq!(fc.corrupt, None);
    }

    #[test]
    fn corrupt_spec_parses_all_kinds() {
        for (txt, kind) in [
            ("sharer", StateFault::SharerFlip),
            ("llc", StateFault::LlcEntryCorrupt),
            ("home", StateFault::HomeSegmentFlip),
        ] {
            let fc = FaultConfig::parse(&format!("corrupt={txt}@2000")).unwrap();
            assert_eq!(fc.corrupt, Some((kind, 2000)));
        }
    }

    #[test]
    fn bad_specs_are_rejected() {
        for bad in [
            "nack",
            "nack=many",
            "nack=2000000",
            "corrupt=sharer",
            "corrupt=what@10",
            "unknown=1",
        ] {
            assert!(FaultConfig::parse(bad).is_err(), "{bad} must not parse");
        }
    }

    #[test]
    fn env_parsing_warns_and_disables_on_garbage() {
        assert_eq!(FaultConfig::parse_env("ZERODEV_FAULTS", None), None);
        assert_eq!(FaultConfig::parse_env("ZERODEV_FAULTS", Some("  ")), None);
        assert_eq!(
            FaultConfig::parse_env("ZERODEV_FAULTS", Some("garbage")),
            None
        );
        assert!(FaultConfig::parse_env("ZERODEV_FAULTS", Some("nack=10")).is_some());
    }

    #[test]
    fn backoff_is_exponential_and_capped() {
        let fc = FaultConfig {
            backoff_base: 8,
            backoff_cap: 64,
            ..Default::default()
        };
        // 8 + 16 + 32 + 64 + 64(cap)
        assert_eq!(fc.backoff_cycles(5), 184);
        assert_eq!(fc.backoff_cycles(0), 0);
        // Shift overflow pins at the cap and the sum saturates.
        let huge = FaultConfig {
            backoff_base: 1,
            backoff_cap: u64::MAX,
            ..Default::default()
        };
        assert_eq!(huge.backoff_cycles(70), u64::MAX);
    }

    #[test]
    fn plans_are_deterministic() {
        let cfg = FaultConfig {
            nack_ppm: 100_000,
            delay_ppm: 50_000,
            dup_ppm: 25_000,
            ..Default::default()
        };
        let mut a = FaultPlan::new(cfg);
        let mut b = FaultPlan::new(cfg);
        for _ in 0..10_000 {
            let (x, y) = (a.draw(), b.draw());
            assert_eq!(x.nack_storm, y.nack_storm);
            assert_eq!(x.delay, y.delay);
            assert_eq!(x.duplicate, y.duplicate);
        }
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn corruption_arms_at_index_and_stays_armed_until_injected() {
        let cfg = FaultConfig {
            corrupt: Some((StateFault::SharerFlip, 3)),
            ..Default::default()
        };
        let mut p = FaultPlan::new(cfg);
        for i in 0..3 {
            assert_eq!(p.draw().corrupt, None, "access {i}");
        }
        assert_eq!(p.draw().corrupt, Some(StateFault::SharerFlip));
        // Still armed: no victim existed yet.
        assert_eq!(p.draw().corrupt, Some(StateFault::SharerFlip));
        p.corruption_injected("done".into());
        assert_eq!(p.draw().corrupt, None);
        assert_eq!(p.stats.corruptions, 1);
    }
}
