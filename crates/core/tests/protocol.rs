//! End-to-end protocol tests driving [`zerodev_core::System`] through a
//! miniature private-cache model that honours the caller contract
//! (invalidations/downgrades applied, dirty data reported back).

use std::collections::HashMap;
use zerodev_common::config::{
    CacheGeometry, DirectoryKind, LlcReplacement, Ratio, SpillPolicy, SystemConfig, ZeroDevConfig,
};
use zerodev_common::{BlockAddr, CoreId, Cycle, MesiState, SocketId};
use zerodev_core::{EvictKind, InvalReason, LlcLine, Op, System};

/// A small machine so set conflicts are easy to provoke.
fn tiny_cfg() -> SystemConfig {
    let mut cfg = SystemConfig::baseline_8core();
    cfg.cores = 4;
    cfg.l1i = CacheGeometry::new(4 << 10, 2);
    cfg.l1d = CacheGeometry::new(4 << 10, 2);
    cfg.l2 = CacheGeometry::new(8 << 10, 4); // 128 blocks/core, 512 aggregate
    cfg.llc = CacheGeometry::new(64 << 10, 4); // 1024 lines
    cfg.llc_banks = 2; // 512 lines/bank → 128 sets
    cfg
}

fn zerodev_nodir(policy: SpillPolicy, repl: LlcReplacement) -> SystemConfig {
    tiny_cfg().with_zerodev(
        ZeroDevConfig {
            policy,
            llc_replacement: repl,
            ..Default::default()
        },
        DirectoryKind::None,
    )
}

/// Blocks that collide in one LLC set of bank 0 of the tiny config.
fn same_set_blocks(cfg: &SystemConfig, set: u64, n: usize) -> Vec<BlockAddr> {
    let banks = cfg.llc_banks as u64;
    let sets = cfg.llc_sets_per_bank() as u64;
    (0..n as u64)
        .map(|i| BlockAddr(banks * (set + i * sets)))
        .collect()
}

/// Minimal legal driver: tracks every core's private copies, applies
/// invalidations and downgrades, reports dirty data, and checks invariants
/// after every operation.
struct Harness {
    sys: System,
    /// (socket, core) → block → state
    priv_lines: HashMap<(u8, u16), HashMap<BlockAddr, MesiState>>,
}

impl Harness {
    fn new(cfg: SystemConfig) -> Self {
        Harness {
            sys: System::new(cfg).expect("valid config"),
            priv_lines: HashMap::new(),
        }
    }

    fn state(&self, s: u8, c: u16, b: BlockAddr) -> MesiState {
        self.priv_lines
            .get(&(s, c))
            .and_then(|m| m.get(&b))
            .copied()
            .unwrap_or(MesiState::Invalid)
    }

    fn set_state(&mut self, s: u8, c: u16, b: BlockAddr, st: MesiState) {
        let m = self.priv_lines.entry((s, c)).or_default();
        if st == MesiState::Invalid {
            m.remove(&b);
        } else {
            m.insert(b, st);
        }
    }

    fn apply(
        &mut self,
        invals: &[zerodev_core::Invalidation],
        downgrades: &[zerodev_core::system::Downgrade],
    ) {
        for inv in invals {
            let st = self.state(inv.socket.0, inv.core.0, inv.block);
            if st == MesiState::Modified {
                match inv.reason {
                    InvalReason::Dev => {
                        let extra = self.sys.dev_dirty_recall(Cycle(0), inv.socket, inv.block);
                        // Recursive victims are rare in these tests; apply.
                        self.apply(&extra, &[]);
                    }
                    InvalReason::Inclusion => {
                        self.sys
                            .inclusion_dirty_writeback(Cycle(0), inv.socket, inv.block);
                    }
                    InvalReason::Coherence => {}
                }
            }
            self.set_state(inv.socket.0, inv.core.0, inv.block, MesiState::Invalid);
        }
        for d in downgrades {
            let st = self.state(d.socket.0, d.core.0, d.block);
            assert!(st.is_owned(), "downgrade of non-owned line {st}");
            if st == MesiState::Modified {
                self.sys.sharing_writeback(Cycle(0), d.socket, d.block);
            }
            self.set_state(d.socket.0, d.core.0, d.block, MesiState::Shared);
        }
    }

    fn op(&mut self, s: u8, c: u16, b: BlockAddr, op: Op) -> u64 {
        let r = self.sys.access(Cycle(0), SocketId(s), CoreId(c), b, op);
        let invals = r.invalidations.clone();
        let downs = r.downgrades.clone();
        self.apply(&invals, &downs);
        self.set_state(s, c, b, r.grant);
        self.sys.check_invariants();
        self.check_swmr(b);
        r.latency
    }

    fn read(&mut self, s: u8, c: u16, b: BlockAddr) -> u64 {
        assert_eq!(self.state(s, c, b), MesiState::Invalid, "read is a miss");
        self.op(s, c, b, Op::Read)
    }

    fn write(&mut self, s: u8, c: u16, b: BlockAddr) -> u64 {
        match self.state(s, c, b) {
            MesiState::Invalid => self.op(s, c, b, Op::ReadExclusive),
            MesiState::Shared => self.op(s, c, b, Op::Upgrade),
            MesiState::Exclusive | MesiState::Modified => {
                // Silent E→M upgrade.
                self.set_state(s, c, b, MesiState::Modified);
                0
            }
        }
    }

    fn evict(&mut self, s: u8, c: u16, b: BlockAddr) {
        let st = self.state(s, c, b);
        let kind = match st {
            MesiState::Modified => EvictKind::Dirty,
            MesiState::Exclusive => EvictKind::CleanExclusive,
            MesiState::Shared => EvictKind::CleanShared,
            MesiState::Invalid => panic!("evicting an absent line"),
        };
        let invals = self.sys.evict(Cycle(0), SocketId(s), CoreId(c), b, kind);
        self.set_state(s, c, b, MesiState::Invalid);
        self.apply(&invals, &[]);
        self.sys.check_invariants();
    }

    /// Single-writer / multiple-reader: cross-checks private states against
    /// the directory's view of `b`.
    fn check_swmr(&self, b: BlockAddr) {
        for s in 0..self.sys.config().sockets as u8 {
            let entry = self.sys.entry_of(SocketId(s), b);
            let mut holders = Vec::new();
            for c in 0..self.sys.config().cores as u16 {
                let st = self.state(s, c, b);
                if st.is_valid() {
                    holders.push((c, st));
                }
            }
            let owners = holders.iter().filter(|(_, st)| st.is_owned()).count();
            assert!(owners <= 1, "SWMR violated at {b:?}: {holders:?}");
            if owners == 1 {
                assert_eq!(holders.len(), 1, "owner coexists with sharers at {b:?}");
            }
            // Every private copy is tracked somewhere (entry in socket or
            // housed at home memory).
            if !holders.is_empty() {
                assert!(
                    entry.is_some() || self.sys.memory_corrupted(b),
                    "untracked private copies at {b:?}"
                );
            }
            if let Some(e) = entry {
                for (c, _) in &holders {
                    assert!(
                        e.sharers.contains(CoreId(*c)),
                        "directory lost sharer c{c} of {b:?}"
                    );
                }
            }
        }
    }
}

#[test]
fn first_read_grants_exclusive() {
    let mut h = Harness::new(tiny_cfg());
    let b = BlockAddr(0x40);
    let lat = h.read(0, 0, b);
    assert!(lat > 100, "memory fetch latency, got {lat}");
    assert_eq!(h.state(0, 0, b), MesiState::Exclusive);
    assert_eq!(h.sys.stats.dram_reads, 1);
    assert!(matches!(
        h.sys.llc_line_of(SocketId(0), b),
        Some(LlcLine::Data { dirty: false })
    ));
    let e = h.sys.entry_of(SocketId(0), b).unwrap();
    assert_eq!(e.owner(), Some(CoreId(0)));
}

#[test]
fn code_read_grants_shared() {
    let mut h = Harness::new(tiny_cfg());
    let b = BlockAddr(0x40);
    h.op(0, 0, b, Op::CodeRead);
    assert_eq!(h.state(0, 0, b), MesiState::Shared);
    assert!(!h.sys.entry_of(SocketId(0), b).unwrap().state.is_owned());
}

#[test]
fn second_read_is_three_hop_with_downgrade() {
    let mut h = Harness::new(tiny_cfg());
    let b = BlockAddr(0x40);
    h.read(0, 0, b);
    let lat = h.read(0, 1, b);
    assert!(lat > 0);
    assert_eq!(h.sys.stats.three_hop_reads, 1);
    assert_eq!(h.state(0, 0, b), MesiState::Shared, "owner downgraded");
    assert_eq!(h.state(0, 1, b), MesiState::Shared);
    let e = h.sys.entry_of(SocketId(0), b).unwrap();
    assert_eq!(e.sharers.count(), 2);
}

#[test]
fn third_read_served_from_llc_two_hop() {
    let mut h = Harness::new(tiny_cfg());
    let b = BlockAddr(0x40);
    h.read(0, 0, b);
    h.read(0, 1, b);
    let before = h.sys.stats.two_hop_reads;
    h.read(0, 2, b);
    assert_eq!(h.sys.stats.two_hop_reads, before + 1);
    assert_eq!(h.sys.entry_of(SocketId(0), b).unwrap().sharers.count(), 3);
}

#[test]
fn write_invalidates_sharers() {
    let mut h = Harness::new(tiny_cfg());
    let b = BlockAddr(0x40);
    h.read(0, 0, b);
    h.read(0, 1, b);
    h.read(0, 2, b);
    // Core 1 upgrades: cores 0 and 2 must lose their copies.
    h.write(0, 1, b);
    assert_eq!(h.state(0, 1, b), MesiState::Modified);
    assert_eq!(h.state(0, 0, b), MesiState::Invalid);
    assert_eq!(h.state(0, 2, b), MesiState::Invalid);
    assert_eq!(h.sys.stats.coherence_invalidations, 2);
    let e = h.sys.entry_of(SocketId(0), b).unwrap();
    assert_eq!(e.owner(), Some(CoreId(1)));
}

#[test]
fn rfo_transfers_ownership() {
    let mut h = Harness::new(tiny_cfg());
    let b = BlockAddr(0x40);
    h.write(0, 0, b); // RFO from memory
    assert_eq!(h.state(0, 0, b), MesiState::Modified);
    h.write(0, 1, b); // RFO forwarded to owner, who invalidates itself
    assert_eq!(h.state(0, 0, b), MesiState::Invalid);
    assert_eq!(h.state(0, 1, b), MesiState::Modified);
    assert_eq!(
        h.sys.entry_of(SocketId(0), b).unwrap().owner(),
        Some(CoreId(1))
    );
}

#[test]
fn clean_eviction_frees_entry() {
    let mut h = Harness::new(tiny_cfg());
    let b = BlockAddr(0x40);
    h.read(0, 0, b);
    h.evict(0, 0, b);
    assert!(h.sys.entry_of(SocketId(0), b).is_none());
    // Block still in LLC (non-inclusive keeps it) — a re-read is 2-hop.
    let before = h.sys.stats.two_hop_reads;
    h.read(0, 1, b);
    assert_eq!(h.sys.stats.two_hop_reads, before + 1);
}

#[test]
fn dirty_eviction_lands_in_llc() {
    let mut h = Harness::new(tiny_cfg());
    let b = BlockAddr(0x40);
    h.write(0, 0, b);
    h.evict(0, 0, b);
    assert!(matches!(
        h.sys.llc_line_of(SocketId(0), b),
        Some(LlcLine::Data { dirty: true })
    ));
    assert!(h.sys.entry_of(SocketId(0), b).is_none());
}

#[test]
fn shared_eviction_keeps_entry_for_remaining_sharer() {
    let mut h = Harness::new(tiny_cfg());
    let b = BlockAddr(0x40);
    h.read(0, 0, b);
    h.read(0, 1, b);
    h.evict(0, 0, b);
    let e = h.sys.entry_of(SocketId(0), b).unwrap();
    assert_eq!(e.sharers.count(), 1);
    assert!(e.sharers.contains(CoreId(1)));
}

#[test]
fn baseline_conflicts_generate_devs() {
    let mut cfg = tiny_cfg();
    // A tiny directory: 4 entries, 2 ways → 2 sets.
    cfg.directory = DirectoryKind::Sparse {
        ratio: Ratio::new(1, 128),
        ways: 2,
        replacement_disabled: false,
    };
    let mut h = Harness::new(cfg);
    // Touch many distinct blocks from one core; directory conflicts must
    // invalidate earlier blocks (DEVs).
    for i in 0..32u64 {
        h.read(0, 0, BlockAddr(0x1000 + i));
    }
    assert!(h.sys.stats.dev_invalidations > 0, "expected DEVs");
    assert!(h.sys.stats.dir_evictions > 0);
    // The core lost some lines without evicting them itself.
    let live = (0..32u64)
        .filter(|i| h.state(0, 0, BlockAddr(0x1000 + i)).is_valid())
        .count();
    assert!(live < 32, "some blocks were DEV-invalidated");
}

#[test]
fn dev_of_modified_block_recalls_dirty_data() {
    let mut cfg = tiny_cfg();
    cfg.directory = DirectoryKind::Sparse {
        ratio: Ratio::new(1, 128),
        ways: 2,
        replacement_disabled: false,
    };
    let mut h = Harness::new(cfg);
    // Write (M state) then cause directory conflicts.
    let victim = BlockAddr(0x1000);
    h.write(0, 0, victim);
    for i in 1..32u64 {
        h.read(0, 0, BlockAddr(0x1000 + i));
    }
    if h.state(0, 0, victim) == MesiState::Invalid {
        // The dirty block was recalled into the LLC.
        assert!(h.sys.stats.dev_dirty_recalls > 0);
        assert!(matches!(
            h.sys.llc_line_of(SocketId(0), victim),
            Some(LlcLine::Data { dirty: true })
        ));
    }
}

#[test]
fn zerodev_never_generates_devs() {
    for policy in [
        SpillPolicy::SpillAll,
        SpillPolicy::FusePrivateSpillShared,
        SpillPolicy::FuseAll,
    ] {
        let mut h = Harness::new(zerodev_nodir(policy, LlcReplacement::DataLru));
        for i in 0..64u64 {
            h.read(0, (i % 4) as u16, BlockAddr(0x2000 + i));
        }
        for i in 0..64u64 {
            h.read(0, ((i + 1) % 4) as u16, BlockAddr(0x2000 + i));
        }
        for i in 0..32u64 {
            h.write(0, (i % 4) as u16, BlockAddr(0x2000 + i));
        }
        assert_eq!(h.sys.stats.dev_invalidations, 0, "{policy:?} produced DEVs");
        assert!(h.sys.stats.dir_spills + h.sys.stats.dir_fuses > 0);
    }
}

#[test]
fn fpss_fuses_private_and_spills_shared() {
    let mut h = Harness::new(zerodev_nodir(
        SpillPolicy::FusePrivateSpillShared,
        LlcReplacement::DataLru,
    ));
    let b = BlockAddr(0x40);
    h.read(0, 0, b); // E grant → entry fused with the LLC line
    assert!(matches!(
        h.sys.llc_line_of(SocketId(0), b),
        Some(LlcLine::Fused { .. })
    ));
    assert_eq!(h.sys.stats.dir_fuses, 1);
    // Sharing downgrades the block → the entry must spill (fused ⇒ M/E).
    h.read(0, 1, b);
    assert!(matches!(
        h.sys.llc_line_of(SocketId(0), b),
        Some(LlcLine::Data { .. })
    ));
    assert!(h.sys.stats.dir_spills >= 1);
    assert_eq!(h.sys.spilled_lines(SocketId(0)), 1);
    // Upgrade back to M → re-fused, spill freed.
    h.write(0, 1, b);
    assert!(matches!(
        h.sys.llc_line_of(SocketId(0), b),
        Some(LlcLine::Fused { .. })
    ));
    assert_eq!(h.sys.spilled_lines(SocketId(0)), 0);
}

#[test]
fn spillall_always_spills() {
    let mut h = Harness::new(zerodev_nodir(
        SpillPolicy::SpillAll,
        LlcReplacement::DataLru,
    ));
    let b = BlockAddr(0x40);
    h.read(0, 0, b);
    assert_eq!(h.sys.stats.dir_spills, 1);
    assert_eq!(h.sys.stats.dir_fuses, 0);
    assert_eq!(h.sys.spilled_lines(SocketId(0)), 1);
}

#[test]
fn fuseall_fuses_shared_blocks_and_forwards_reads() {
    let mut h = Harness::new(zerodev_nodir(SpillPolicy::FuseAll, LlcReplacement::DataLru));
    let b = BlockAddr(0x40);
    h.read(0, 0, b);
    h.read(0, 1, b); // block now shared; FuseAll keeps the entry fused
    assert!(matches!(
        h.sys.llc_line_of(SocketId(0), b),
        Some(LlcLine::Fused { .. })
    ));
    // A third read cannot be served by the corrupted line: forwarded.
    let before = h.sys.stats.fused_read_forwards;
    h.read(0, 2, b);
    assert_eq!(h.sys.stats.fused_read_forwards, before + 1);
}

#[test]
fn fuseall_last_sharer_eviction_reconstructs_line() {
    let mut h = Harness::new(zerodev_nodir(SpillPolicy::FuseAll, LlcReplacement::DataLru));
    let b = BlockAddr(0x40);
    h.read(0, 0, b);
    h.read(0, 1, b);
    h.evict(0, 0, b);
    h.evict(0, 1, b);
    // Entry freed; the fused line reverted to plain data.
    assert!(h.sys.entry_of(SocketId(0), b).is_none());
    assert!(matches!(
        h.sys.llc_line_of(SocketId(0), b),
        Some(LlcLine::Data { .. })
    ));
}

#[test]
fn wbde_corrupts_home_memory_and_recovers() {
    let cfg = zerodev_nodir(SpillPolicy::FusePrivateSpillShared, LlcReplacement::DataLru);
    let sets = cfg.llc_sets_per_bank() as u64;
    assert_eq!(sets, 128); // 64 KB, 4-way, 2 banks → 512 lines/bank
    let blocks = same_set_blocks(&cfg, 5, 8);
    let mut h = Harness::new(cfg);
    // Make every block shared → spilled entries pile up in one set.
    for &b in &blocks {
        h.read(0, 0, b);
        h.read(0, 1, b);
    }
    // 8 spilled entries + data lines compete for 4 ways: dataLRU evicts the
    // data lines first, then entries must go home (WB_DE).
    assert!(h.sys.stats.dir_llc_evictions > 0, "expected WB_DE events");
    assert!(h.sys.stats.dram_writes_dir > 0);
    assert_eq!(h.sys.stats.dev_invalidations, 0, "still no DEVs");
    // Find a block whose memory is corrupted and whose entry left the socket.
    let corrupted: Vec<BlockAddr> = blocks
        .iter()
        .copied()
        .filter(|&b| h.sys.memory_corrupted(b) && h.sys.entry_of(SocketId(0), b).is_none())
        .collect();
    assert!(!corrupted.is_empty(), "an entry was housed in memory");
    let b = corrupted[0];
    // Cores 0 and 1 still hold S copies. A third core's read must recover
    // the entry from memory and be served by a sharer.
    let before = h.sys.stats.llc_read_misses_corrupted;
    h.read(0, 2, b);
    assert_eq!(h.sys.stats.llc_read_misses_corrupted, before + 1);
    assert!(h.sys.entry_of(SocketId(0), b).is_some(), "entry recovered");
    assert_eq!(h.state(0, 2, b), MesiState::Shared);
}

#[test]
fn get_de_flow_on_eviction_without_entry() {
    let cfg = zerodev_nodir(SpillPolicy::FusePrivateSpillShared, LlcReplacement::DataLru);
    let blocks = same_set_blocks(&cfg, 9, 8);
    let mut h = Harness::new(cfg);
    for &b in &blocks {
        h.read(0, 0, b);
        h.read(0, 1, b);
    }
    let corrupted: Vec<BlockAddr> = blocks
        .iter()
        .copied()
        .filter(|&b| h.sys.memory_corrupted(b) && h.sys.entry_of(SocketId(0), b).is_none())
        .collect();
    assert!(!corrupted.is_empty());
    let b = corrupted[0];
    // Core 0 evicts its S copy: the entry is at home → GET_DE.
    let before = h.sys.stats.get_de_requests;
    h.evict(0, 0, b);
    assert_eq!(h.sys.stats.get_de_requests, before + 1);
    // Core 1 evicts the last copy: the block must be retrieved from the
    // evicting core to overwrite the corrupted memory block.
    h.evict(0, 1, b);
    assert!(
        !h.sys.memory_corrupted(b),
        "last-copy eviction restores memory"
    );
}

#[test]
fn inclusive_llc_back_invalidates() {
    let mut cfg = tiny_cfg();
    cfg.llc_design = zerodev_common::config::LlcDesign::Inclusive;
    let sets = cfg.llc_sets_per_bank() as u64;
    let _ = sets;
    let blocks = same_set_blocks(&cfg, 3, 8);
    let mut h = Harness::new(cfg);
    for &b in &blocks {
        h.read(0, 0, b);
    }
    // 8 blocks into a 4-way set: inclusion victims must have invalidated
    // core 0's copies.
    assert!(h.sys.stats.inclusion_invalidations > 0);
    let live = blocks
        .iter()
        .filter(|&&b| h.state(0, 0, b).is_valid())
        .count();
    assert!(live <= 4);
}

#[test]
fn inclusive_zerodev_never_evicts_entries_from_llc() {
    let mut cfg = zerodev_nodir(SpillPolicy::FusePrivateSpillShared, LlcReplacement::DataLru);
    cfg.llc_design = zerodev_common::config::LlcDesign::Inclusive;
    let blocks = same_set_blocks(&cfg, 7, 12);
    let mut h = Harness::new(cfg);
    for &b in &blocks {
        h.read(0, 0, b);
        h.read(0, 1, b);
    }
    // §III-F: dataLRU victimises blocks before entries; inclusion then
    // frees the entries early — no directory entry ever leaves the LLC.
    assert_eq!(h.sys.stats.dir_llc_evictions, 0);
    assert_eq!(h.sys.stats.dev_invalidations, 0);
    assert!(h.sys.stats.inclusion_invalidations > 0);
}

#[test]
fn epd_keeps_private_blocks_out_of_llc() {
    let mut cfg = tiny_cfg();
    cfg.llc_design = zerodev_common::config::LlcDesign::Epd;
    let mut h = Harness::new(cfg);
    let b = BlockAddr(0x40);
    h.read(0, 0, b);
    assert!(
        h.sys.llc_line_of(SocketId(0), b).is_none(),
        "EPD: private fill bypasses the LLC"
    );
    // Sharing allocates the block in the LLC.
    h.read(0, 1, b);
    assert!(h.sys.llc_line_of(SocketId(0), b).is_some());
    // A write (upgrade) deallocates it again.
    h.write(0, 1, b);
    assert!(h.sys.llc_line_of(SocketId(0), b).is_none());
}

#[test]
fn epd_allocates_on_owner_eviction() {
    let mut cfg = tiny_cfg();
    cfg.llc_design = zerodev_common::config::LlcDesign::Epd;
    let mut h = Harness::new(cfg);
    let b = BlockAddr(0x40);
    h.write(0, 0, b);
    h.evict(0, 0, b);
    assert!(matches!(
        h.sys.llc_line_of(SocketId(0), b),
        Some(LlcLine::Data { dirty: true })
    ));
}

#[test]
fn zerodev_with_replacement_disabled_sparse_dir() {
    let cfg = tiny_cfg().with_zerodev(
        ZeroDevConfig::default(),
        DirectoryKind::Sparse {
            ratio: Ratio::new(1, 64), // 8 entries
            ways: 2,
            replacement_disabled: false, // with_zerodev forces true
        },
    );
    let mut h = Harness::new(cfg);
    for i in 0..64u64 {
        h.read(0, 0, BlockAddr(0x3000 + i));
    }
    // The dedicated structure filled up and overflowed to the LLC; nothing
    // was ever evicted from it.
    assert_eq!(h.sys.stats.dev_invalidations, 0);
    assert_eq!(h.sys.stats.dir_evictions, 0);
    assert!(h.sys.stats.dir_fuses + h.sys.stats.dir_spills > 0);
}

#[test]
fn upgrade_with_llc_resident_entry_reads_data_array() {
    let mut h = Harness::new(zerodev_nodir(
        SpillPolicy::FusePrivateSpillShared,
        LlcReplacement::DataLru,
    ));
    let b = BlockAddr(0x40);
    h.read(0, 0, b);
    h.read(0, 1, b); // entry spilled now
    let dir_reads_before = h.sys.stats.llc_dir_accesses;
    h.write(0, 0, b); // upgrade must read the spilled entry
    assert!(h.sys.stats.llc_dir_accesses > dir_reads_before);
    assert_eq!(h.state(0, 1, b), MesiState::Invalid);
}

#[test]
fn traffic_accounting_is_plausible() {
    let mut h = Harness::new(tiny_cfg());
    let b = BlockAddr(0x40);
    h.read(0, 0, b);
    let t1 = h.sys.stats.total_traffic_bytes();
    assert!(t1 > 0);
    h.read(0, 1, b);
    let t2 = h.sys.stats.total_traffic_bytes();
    assert!(t2 > t1);
    // A data response is at least 72 bytes of the total.
    assert!(h.sys.stats.bytes(zerodev_common::MsgClass::Data) >= 144);
}

#[test]
fn multisocket_remote_read_and_write() {
    let mut cfg = tiny_cfg();
    cfg.sockets = 4;
    let mut h = Harness::new(cfg);
    let b = BlockAddr(0x40);
    let home = h.sys.config().home_socket(b);
    // Socket 0 reads: exclusive grant.
    let lat0 = h.read(0, 0, b);
    // A remote socket reads the same block: must be forwarded/fetched.
    let lat1 = h.read(2, 0, b);
    assert!(lat1 > 0 && lat0 > 0);
    assert!(h.sys.stats.socket_misses >= 1);
    assert_eq!(
        h.state(0, 0, b),
        MesiState::Shared,
        "remote read downgraded"
    );
    assert_eq!(h.state(2, 0, b), MesiState::Shared);
    // Remote write invalidates the other socket's copy.
    h.write(2, 0, b);
    assert_eq!(h.state(0, 0, b), MesiState::Invalid);
    assert_eq!(h.state(2, 0, b), MesiState::Modified);
    let _ = home;
}

#[test]
fn multisocket_denf_nack_flow() {
    let mut cfg = zerodev_nodir(SpillPolicy::FusePrivateSpillShared, LlcReplacement::DataLru);
    cfg.sockets = 4;
    let sets = cfg.llc_sets_per_bank() as u64;
    let banks = cfg.llc_banks as u64;
    let mut h = Harness::new(cfg);
    // Socket 1 reads a pile of same-set blocks shared by two cores, pushing
    // spilled entries out to home memory (WB_DE).
    let blocks: Vec<BlockAddr> = (0..10u64)
        .map(|i| BlockAddr(banks * (11 + i * sets)))
        .collect();
    for &b in &blocks {
        h.read(1, 0, b);
        h.read(1, 1, b);
    }
    let corrupted: Vec<BlockAddr> = blocks
        .iter()
        .copied()
        .filter(|&b| {
            h.sys.memory_corrupted(b)
                && h.sys.entry_of(SocketId(1), b).is_none()
                && h.sys.llc_line_of(SocketId(1), b).is_none()
                && h.sys.config().home_socket(b) != SocketId(1)
        })
        .collect();
    if corrupted.is_empty() {
        // Set geometry may keep lines resident; the WB_DE machinery itself
        // is covered by the single-socket test.
        assert!(h.sys.stats.dir_llc_evictions > 0);
        return;
    }
    let b = corrupted[0];
    // A third socket (neither home nor socket 1) reads the block: home
    // forwards to socket 1, which cannot find its entry → DENF_NACK.
    let requester = (0..4u8)
        .find(|&s| s != 1 && SocketId(s) != h.sys.config().home_socket(b))
        .unwrap();
    let before = h.sys.stats.denf_nacks;
    h.read(requester, 0, b);
    assert_eq!(h.sys.stats.denf_nacks, before + 1, "DENF_NACK exercised");
    assert_eq!(h.state(requester, 0, b), MesiState::Shared);
}

#[test]
fn multisocket_zerodev_still_dev_free() {
    let mut cfg = zerodev_nodir(SpillPolicy::FusePrivateSpillShared, LlcReplacement::DataLru);
    cfg.sockets = 2;
    let mut h = Harness::new(cfg);
    for i in 0..48u64 {
        let b = BlockAddr(0x4000 + i);
        h.read((i % 2) as u8, (i % 4) as u16, b);
        h.read(((i + 1) % 2) as u8, ((i + 1) % 4) as u16, b);
    }
    for i in 0..16u64 {
        h.write((i % 2) as u8, (i % 4) as u16, BlockAddr(0x4000 + i));
    }
    assert_eq!(h.sys.stats.dev_invalidations, 0);
}

#[test]
fn latencies_order_sanely() {
    // L2→LLC hit < LLC miss to DRAM; 3-hop > 2-hop.
    let mut h = Harness::new(tiny_cfg());
    let b1 = BlockAddr(0x40);
    let b2 = BlockAddr(0x80);
    let miss_lat = h.read(0, 0, b1); // DRAM
    h.read(0, 1, b1);
    let hit_lat = h.read(0, 2, b1); // LLC 2-hop
    assert!(
        hit_lat < miss_lat,
        "LLC hit {hit_lat} should beat DRAM {miss_lat}"
    );
    h.read(0, 0, b2);
    let fwd_lat = h.read(0, 1, b2); // 3-hop
    assert!(fwd_lat > hit_lat, "3-hop {fwd_lat} > 2-hop {hit_lat}");
}
