//! Machine-state checkpoint round-trips: drive a machine through random
//! traffic, serialize it with [`System::snap`], restore into a freshly
//! built machine, and require (a) a byte-identical re-serialization and
//! (b) byte-identical behaviour when both machines continue under the same
//! operation stream. Exercised across every directory family, the ZeroDEV
//! spill policies, multi-socket machines, and with the audit oracle
//! attached.

use zerodev_common::config::{
    CacheGeometry, DirectoryKind, LlcDesign, LlcReplacement, Ratio, SpillPolicy, SystemConfig,
    ZeroDevConfig,
};
use zerodev_common::snap::{SnapReader, SnapWriter};
use zerodev_common::{BlockAddr, CoreId, Cycle, MesiState, Prng, SocketId};
use zerodev_core::{system::Downgrade, EvictKind, InvalReason, Invalidation, Op, System};

const MAGIC: u64 = 0x7357_5eed_5eed_7357;
const VERSION: u32 = 1;

/// Minimal private-cache model so invalidations/downgrades are honoured the
/// way the protocol expects (dirty recalls reported back, etc.).
struct Model {
    sys: System,
    lines: std::collections::HashMap<(u8, u16, u64), MesiState>,
}

impl Model {
    fn new(sys: System) -> Self {
        Model {
            sys,
            lines: std::collections::HashMap::new(),
        }
    }

    fn state(&self, s: u8, c: u16, b: BlockAddr) -> MesiState {
        self.lines
            .get(&(s, c, b.0))
            .copied()
            .unwrap_or(MesiState::Invalid)
    }

    fn set(&mut self, s: u8, c: u16, b: BlockAddr, st: MesiState) {
        if st == MesiState::Invalid {
            self.lines.remove(&(s, c, b.0));
        } else {
            self.lines.insert((s, c, b.0), st);
        }
    }

    fn apply(&mut self, invals: Vec<Invalidation>, downs: Vec<Downgrade>) {
        for d in downs {
            if self.state(d.socket.0, d.core.0, d.block) == MesiState::Modified {
                self.sys.sharing_writeback(Cycle(0), d.socket, d.block);
            }
            self.set(d.socket.0, d.core.0, d.block, MesiState::Shared);
        }
        let mut pending = invals;
        while let Some(inv) = pending.pop() {
            if self.state(inv.socket.0, inv.core.0, inv.block) == MesiState::Modified {
                match inv.reason {
                    InvalReason::Dev => {
                        pending.extend(self.sys.dev_dirty_recall(Cycle(0), inv.socket, inv.block));
                    }
                    InvalReason::Inclusion => {
                        self.sys
                            .inclusion_dirty_writeback(Cycle(0), inv.socket, inv.block);
                    }
                    InvalReason::Coherence => {}
                }
            }
            self.set(inv.socket.0, inv.core.0, inv.block, MesiState::Invalid);
        }
    }

    fn step(&mut self, rng: &mut Prng, blocks: &[BlockAddr]) {
        let s = (rng.below(self.sys.config().sockets as u64)) as u8;
        let c = (rng.below(self.sys.config().cores as u64)) as u16;
        let b = blocks[rng.below(blocks.len() as u64) as usize];
        let st = self.state(s, c, b);
        match rng.below(10) {
            0..=1 if st.is_valid() => {
                let kind = match st {
                    MesiState::Modified => EvictKind::Dirty,
                    MesiState::Exclusive => EvictKind::CleanExclusive,
                    MesiState::Shared => EvictKind::CleanShared,
                    MesiState::Invalid => unreachable!(),
                };
                let invals = self.sys.evict(Cycle(0), SocketId(s), CoreId(c), b, kind);
                self.set(s, c, b, MesiState::Invalid);
                self.apply(invals, Vec::new());
            }
            2..=4 => match st {
                MesiState::Modified => {}
                MesiState::Exclusive => self.set(s, c, b, MesiState::Modified),
                MesiState::Shared => {
                    let r = self
                        .sys
                        .access(Cycle(0), SocketId(s), CoreId(c), b, Op::Upgrade);
                    self.apply(r.invalidations, r.downgrades);
                    self.set(s, c, b, MesiState::Modified);
                }
                MesiState::Invalid => {
                    let r = self
                        .sys
                        .access(Cycle(0), SocketId(s), CoreId(c), b, Op::ReadExclusive);
                    let grant = r.grant;
                    self.apply(r.invalidations, r.downgrades);
                    self.set(s, c, b, grant);
                }
            },
            _ => {
                if st.is_valid() {
                    return;
                }
                let r = self
                    .sys
                    .access(Cycle(0), SocketId(s), CoreId(c), b, Op::Read);
                let grant = r.grant;
                self.apply(r.invalidations, r.downgrades);
                self.set(s, c, b, grant);
            }
        }
    }
}

fn snap_bytes(sys: &System) -> Vec<u8> {
    let mut w = SnapWriter::new(MAGIC, VERSION);
    sys.snap(&mut w);
    w.finish()
}

fn restore(cfg: SystemConfig, bytes: &[u8]) -> System {
    let mut sys = System::new(cfg).expect("valid config");
    let mut r = SnapReader::open(bytes, MAGIC, VERSION).expect("container valid");
    sys.unsnap(&mut r).expect("restore succeeds");
    r.expect_end().expect("image fully consumed");
    sys
}

fn round_trip(cfg: SystemConfig, seed: u64) {
    let blocks: Vec<BlockAddr> = (0..96u64).map(|i| BlockAddr(0x1000 + i * 3)).collect();
    let mut rng = Prng::seeded(seed);
    let mut sys = System::new(cfg.clone()).expect("valid config");
    sys.enable_audit();
    let mut m = Model::new(sys);
    for _ in 0..2_500 {
        m.step(&mut rng, &blocks);
    }

    // Re-serializing a restored machine must reproduce the image exactly.
    let image = snap_bytes(&m.sys);
    let restored = restore(cfg, &image);
    assert!(restored.audit_enabled(), "audit flag restored");
    assert_eq!(
        image,
        snap_bytes(&restored),
        "restored machine re-serializes differently (seed {seed:#x})"
    );

    // And the restored machine must behave identically from here on.
    let mut rng2 = rng.clone();
    let mut m2 = Model {
        sys: restored,
        lines: m.lines.clone(),
    };
    for _ in 0..1_500 {
        m.step(&mut rng, &blocks);
        m2.step(&mut rng2, &blocks);
    }
    m.sys.audit_sweep();
    m2.sys.audit_sweep();
    assert_eq!(
        snap_bytes(&m.sys),
        snap_bytes(&m2.sys),
        "restored machine diverged after resume (seed {seed:#x})"
    );
}

fn tiny(
    policy: Option<SpillPolicy>,
    design: LlcDesign,
    dir: Option<DirectoryKind>,
    sockets: usize,
) -> SystemConfig {
    let mut cfg = SystemConfig::baseline_8core();
    cfg.cores = 4;
    cfg.sockets = sockets;
    cfg.l1i = CacheGeometry::new(2 << 10, 2);
    cfg.l1d = CacheGeometry::new(2 << 10, 2);
    cfg.l2 = CacheGeometry::new(4 << 10, 4);
    cfg.llc = CacheGeometry::new(8 << 10, 4);
    cfg.llc_banks = 2;
    cfg.llc_design = design;
    if let Some(p) = policy {
        cfg = cfg.with_zerodev(
            ZeroDevConfig {
                policy: p,
                llc_replacement: LlcReplacement::DataLru,
                ..Default::default()
            },
            dir.unwrap_or(DirectoryKind::None),
        );
    } else if let Some(d) = dir {
        cfg.directory = d;
    }
    cfg
}

fn sparse() -> DirectoryKind {
    DirectoryKind::Sparse {
        ratio: Ratio::new(1, 64),
        ways: 2,
        replacement_disabled: false,
    }
}

#[test]
fn round_trip_baseline_sparse() {
    round_trip(tiny(None, LlcDesign::NonInclusive, Some(sparse()), 1), 0x51);
}

#[test]
fn round_trip_baseline_unbounded() {
    round_trip(
        tiny(
            None,
            LlcDesign::NonInclusive,
            Some(DirectoryKind::Unbounded),
            1,
        ),
        0x52,
    );
}

#[test]
fn round_trip_secdir() {
    round_trip(
        tiny(
            None,
            LlcDesign::NonInclusive,
            Some(DirectoryKind::SecDir(
                zerodev_core::DirStore::secdir_geometry(4, true),
            )),
            1,
        ),
        0x53,
    );
}

#[test]
fn round_trip_multigrain() {
    round_trip(
        tiny(
            None,
            LlcDesign::NonInclusive,
            Some(DirectoryKind::MultiGrain {
                ratio: Ratio::new(1, 64),
                ways: 2,
            }),
            1,
        ),
        0x54,
    );
}

#[test]
fn round_trip_zerodev_fpss() {
    round_trip(
        tiny(
            Some(SpillPolicy::FusePrivateSpillShared),
            LlcDesign::NonInclusive,
            None,
            1,
        ),
        0x55,
    );
}

#[test]
fn round_trip_zerodev_multisocket() {
    round_trip(
        tiny(
            Some(SpillPolicy::FusePrivateSpillShared),
            LlcDesign::NonInclusive,
            None,
            2,
        ),
        0x56,
    );
}

#[test]
fn fingerprint_mismatch_is_rejected() {
    let cfg = tiny(None, LlcDesign::NonInclusive, Some(sparse()), 1);
    let sys = System::new(cfg).expect("valid config");
    let image = snap_bytes(&sys);
    let other = tiny(None, LlcDesign::NonInclusive, Some(sparse()), 2);
    let mut wrong = System::new(other).expect("valid config");
    let mut r = SnapReader::open(&image, MAGIC, VERSION).expect("container valid");
    assert!(wrong.unsnap(&mut r).is_err(), "fingerprint must not match");
}
