//! Directed multi-socket protocol tests (Figures 13–16 of the paper),
//! driving [`zerodev_core::System`] transaction by transaction.

use zerodev_common::config::{
    CacheGeometry, DirectoryKind, Ratio, SocketDirBacking, SystemConfig, ZeroDevConfig,
};
use zerodev_common::{BlockAddr, CoreId, Cycle, MesiState, SocketId};
use zerodev_core::{EvictKind, Op, System};

fn small_cfg(sockets: usize) -> SystemConfig {
    let mut cfg = SystemConfig::baseline_8core();
    cfg.sockets = sockets;
    cfg.cores = 4;
    cfg.l1i = CacheGeometry::new(4 << 10, 2);
    cfg.l1d = CacheGeometry::new(4 << 10, 2);
    cfg.l2 = CacheGeometry::new(8 << 10, 4);
    cfg.llc = CacheGeometry::new(64 << 10, 4);
    cfg.llc_banks = 2;
    cfg
}

fn zd_cfg(sockets: usize) -> SystemConfig {
    small_cfg(sockets).with_zerodev(ZeroDevConfig::default(), DirectoryKind::None)
}

const S0: SocketId = SocketId(0);
const S1: SocketId = SocketId(1);
const S2: SocketId = SocketId(2);
const C0: CoreId = CoreId(0);
const C1: CoreId = CoreId(1);

#[test]
fn exclusive_grant_tracks_socket_ownership() {
    let mut sys = System::new(small_cfg(4)).unwrap();
    let b = BlockAddr(0x40);
    let r = sys.access(Cycle(0), S1, C0, b, Op::Read);
    assert_eq!(r.grant, MesiState::Exclusive);
    assert!(r.latency > 0);
    // A remote write must find and invalidate the socket-1 copy.
    let r2 = sys.access(Cycle(0), S2, C0, b, Op::ReadExclusive);
    assert_eq!(r2.grant, MesiState::Modified);
    assert!(
        r2.invalidations
            .iter()
            .any(|i| i.socket == S1 && i.core == C0 && i.block == b),
        "remote copy must be invalidated: {:?}",
        r2.invalidations
    );
    assert!(sys.entry_of(S1, b).is_none(), "socket 1 entry freed");
    assert_eq!(sys.entry_of(S2, b).unwrap().owner(), Some(C0));
}

#[test]
fn remote_read_downgrades_owner_socket() {
    let mut sys = System::new(small_cfg(4)).unwrap();
    let b = BlockAddr(0x80);
    sys.access(Cycle(0), S0, C0, b, Op::Read);
    let r = sys.access(Cycle(0), S2, C1, b, Op::Read);
    assert_eq!(r.grant, MesiState::Shared);
    assert!(
        r.downgrades
            .iter()
            .any(|d| d.socket == S0 && d.core == C0 && d.block == b),
        "owner core must be downgraded"
    );
    // Both sockets now track the block in S.
    assert!(!sys.entry_of(S0, b).unwrap().state.is_owned());
    assert!(!sys.entry_of(S2, b).unwrap().state.is_owned());
}

#[test]
fn remote_latency_exceeds_local() {
    let mut sys = System::new(small_cfg(4)).unwrap();
    // Find one block homed at socket 0 and one at socket 2.
    let local = (0..4096u64)
        .map(BlockAddr)
        .find(|&b| sys.config().home_socket(b) == S0)
        .unwrap();
    let remote = (0..4096u64)
        .map(BlockAddr)
        .find(|&b| sys.config().home_socket(b) == S2)
        .unwrap();
    let l = sys.access(Cycle(0), S0, C0, local, Op::Read).latency;
    let r = sys.access(Cycle(0), S0, C0, remote, Op::Read).latency;
    assert!(
        r >= l + sys.config().inter_socket_cycles,
        "remote fetch {r} must pay the socket hop over local {l}"
    );
}

#[test]
fn socket_departure_clears_socket_directory() {
    let mut sys = System::new(small_cfg(2)).unwrap();
    let b = BlockAddr(0x40);
    sys.access(Cycle(0), S1, C0, b, Op::Read);
    // Evict the private copy; the LLC still holds the line (non-inclusive),
    // so socket 1 stays a sharer.
    let _ = sys.evict(Cycle(0), S1, C0, b, EvictKind::CleanExclusive);
    let r = sys.access(Cycle(0), S0, C0, b, Op::ReadExclusive);
    // No private copies to invalidate, but socket 1's LLC line must not
    // serve stale data afterwards: the write claimed system ownership.
    assert_eq!(r.grant, MesiState::Modified);
    assert!(sys.llc_line_of(S1, b).is_none(), "remote LLC copy dropped");
}

#[test]
fn wbde_to_remote_home_merges_segments() {
    // Two sockets spill entries for blocks of the same home: exercise the
    // read-modify-write merge (Figure 14 steps (i)-(iii)).
    let mut sys = System::new(zd_cfg(2)).unwrap();
    let cfg = sys.config().clone();
    let sets = cfg.llc_sets_per_bank() as u64;
    let banks = cfg.llc_banks as u64;
    // Blocks in one LLC set, shared within each socket so entries spill.
    let blocks: Vec<BlockAddr> = (0..8).map(|i| BlockAddr(banks * (7 + i * sets))).collect();
    for &b in &blocks {
        sys.access(Cycle(0), S0, C0, b, Op::Read);
        sys.access(Cycle(0), S0, C1, b, Op::Read);
        sys.access(Cycle(0), S1, C0, b, Op::Read);
        sys.access(Cycle(0), S1, C1, b, Op::Read);
    }
    assert!(sys.stats.dir_llc_evictions > 0, "spills must overflow");
    // At least one block should have collected segments from both sockets.
    let both = blocks.iter().any(|&b| {
        sys.memory()
            .corrupted_block(b)
            .is_some_and(|cb| cb.sockets().count() == 2)
    });
    if both {
        assert!(sys.stats.dram_reads_dir > 0, "merging needs a memory read");
    }
    assert_eq!(sys.stats.dev_invalidations, 0);
    sys.check_invariants();
}

#[test]
fn sharer_socket_recovers_entry_from_corrupted_block() {
    let mut sys = System::new(zd_cfg(2)).unwrap();
    let cfg = sys.config().clone();
    let sets = cfg.llc_sets_per_bank() as u64;
    let banks = cfg.llc_banks as u64;
    let blocks: Vec<BlockAddr> = (0..10).map(|i| BlockAddr(banks * (9 + i * sets))).collect();
    for &b in &blocks {
        sys.access(Cycle(0), S1, C0, b, Op::Read);
        sys.access(Cycle(0), S1, C1, b, Op::Read);
    }
    let Some(&b) = blocks.iter().find(|&&b| {
        sys.memory_corrupted(b) && sys.entry_of(S1, b).is_none() && sys.llc_line_of(S1, b).is_none()
    }) else {
        assert!(sys.stats.dir_llc_evictions > 0);
        return;
    };
    // A third core of the SAME socket reads: step 3 of Figure 15 — the
    // corrupted block is read, the entry extracted and reinstalled.
    let before = sys.stats.llc_read_misses_corrupted;
    let r = sys.access(Cycle(0), S1, CoreId(2), b, Op::Read);
    assert_eq!(r.grant, MesiState::Shared);
    assert_eq!(sys.stats.llc_read_misses_corrupted, before + 1);
    assert!(sys.entry_of(S1, b).is_some(), "entry recovered in-socket");
    assert_eq!(sys.entry_of(S1, b).unwrap().sharers.count(), 3);
}

#[test]
fn upgrade_recovers_entry_housed_at_home() {
    let mut sys = System::new(zd_cfg(2)).unwrap();
    let cfg = sys.config().clone();
    let sets = cfg.llc_sets_per_bank() as u64;
    let banks = cfg.llc_banks as u64;
    let blocks: Vec<BlockAddr> = (0..10)
        .map(|i| BlockAddr(banks * (11 + i * sets)))
        .collect();
    for &b in &blocks {
        sys.access(Cycle(0), S0, C0, b, Op::Read);
        sys.access(Cycle(0), S0, C1, b, Op::Read);
    }
    let Some(&b) = blocks.iter().find(|&&b| {
        sys.memory_corrupted(b) && sys.entry_of(S0, b).is_none() && sys.llc_line_of(S0, b).is_none()
    }) else {
        return;
    };
    // Core 0 still holds an S copy; its upgrade must recover the entry and
    // invalidate core 1.
    let r = sys.access(Cycle(0), S0, C0, b, Op::Upgrade);
    assert!(r.invalidations.iter().any(|i| i.core == C1 && i.block == b));
    assert_eq!(sys.entry_of(S0, b).unwrap().owner(), Some(C0));
    sys.check_invariants();
}

#[test]
fn last_copy_eviction_restores_corrupted_memory() {
    let mut sys = System::new(zd_cfg(2)).unwrap();
    let cfg = sys.config().clone();
    let sets = cfg.llc_sets_per_bank() as u64;
    let banks = cfg.llc_banks as u64;
    let blocks: Vec<BlockAddr> = (0..10)
        .map(|i| BlockAddr(banks * (13 + i * sets)))
        .collect();
    for &b in &blocks {
        sys.access(Cycle(0), S0, C0, b, Op::Read);
        sys.access(Cycle(0), S0, C1, b, Op::Read);
    }
    let corrupted: Vec<BlockAddr> = blocks
        .iter()
        .copied()
        .filter(|&b| sys.memory_corrupted(b) && sys.entry_of(S0, b).is_none())
        .collect();
    for b in corrupted {
        let _ = sys.evict(Cycle(0), S0, C0, b, EvictKind::CleanShared);
        let _ = sys.evict(Cycle(0), S0, C1, b, EvictKind::CleanShared);
        // All copies gone (the LLC line may keep the block in-socket; if it
        // is also absent, memory must have been restored).
        if sys.llc_line_of(S0, b).is_none() {
            assert!(!sys.memory_corrupted(b), "memory restored at {b:?}");
        }
    }
    sys.check_invariants();
}

#[test]
fn direvict_bit_backing_variant_works() {
    let mut cfg = small_cfg(4);
    cfg.socket_dir = SocketDirBacking::DirEvictBit;
    let mut sys = System::new(cfg).unwrap();
    let b = BlockAddr(0x40);
    sys.access(Cycle(0), S0, C0, b, Op::Read);
    let r = sys.access(Cycle(0), S1, C0, b, Op::Read);
    assert_eq!(r.grant, MesiState::Shared);
    // The DirEvict-bit scheme never charges an extra memory read for a
    // directory-cache miss.
    assert!(!sys.memory().miss_needs_memory_read());
}

#[test]
fn baseline_multisocket_devs_stay_within_socket() {
    let mut cfg = small_cfg(2);
    cfg.directory = DirectoryKind::Sparse {
        ratio: Ratio::new(1, 64),
        ways: 2,
        replacement_disabled: false,
    };
    let mut sys = System::new(cfg).unwrap();
    // Socket 0 thrashes its tiny directory; socket 1's copies must be
    // untouched (DEVs are an intra-socket phenomenon).
    let remote_block = BlockAddr(0x9000);
    sys.access(Cycle(0), S1, C0, remote_block, Op::Read);
    for i in 0..64u64 {
        let r = sys.access(Cycle(0), S0, C0, BlockAddr(0x1000 + i), Op::Read);
        for inv in r.invalidations {
            assert_eq!(inv.socket, S0, "DEV leaked across sockets");
        }
    }
    assert!(sys.stats.dev_invalidations > 0);
    assert!(sys.entry_of(S1, remote_block).is_some());
}

#[test]
fn code_blocks_shared_across_sockets() {
    let mut sys = System::new(small_cfg(4)).unwrap();
    let b = BlockAddr(0x140);
    for s in 0..4u8 {
        let r = sys.access(Cycle(0), SocketId(s), C0, b, Op::CodeRead);
        assert_eq!(r.grant, MesiState::Shared);
        assert!(r.downgrades.is_empty());
    }
    for s in 0..4u8 {
        assert!(sys.entry_of(SocketId(s), b).is_some());
    }
}
