//! Randomised protocol stress: thousands of random reads/writes/evictions
//! on a tiny machine, cross-checking the directory view against a model of
//! the private caches after every operation. Shakes out entry-loss and
//! tracking bugs that directed tests miss.

use std::collections::HashMap;
use zerodev_common::config::{
    CacheGeometry, DirectoryKind, LlcDesign, LlcReplacement, Ratio, SpillPolicy, SystemConfig,
    ZeroDevConfig,
};
use zerodev_common::{BlockAddr, CoreId, Cycle, MesiState, Prng, SocketId};
use zerodev_core::{system::Downgrade, EvictKind, InvalReason, Invalidation, Op, System};

struct Model {
    sys: System,
    lines: HashMap<(u8, u16, u64), MesiState>,
}

impl Model {
    fn new(cfg: SystemConfig) -> Self {
        Model {
            sys: System::new(cfg).expect("valid"),
            lines: HashMap::new(),
        }
    }

    fn state(&self, s: u8, c: u16, b: BlockAddr) -> MesiState {
        self.lines
            .get(&(s, c, b.0))
            .copied()
            .unwrap_or(MesiState::Invalid)
    }

    fn set(&mut self, s: u8, c: u16, b: BlockAddr, st: MesiState) {
        if st == MesiState::Invalid {
            self.lines.remove(&(s, c, b.0));
        } else {
            self.lines.insert((s, c, b.0), st);
        }
    }

    fn apply(&mut self, invals: Vec<Invalidation>, downs: Vec<Downgrade>) {
        for d in downs {
            let st = self.state(d.socket.0, d.core.0, d.block);
            assert!(st.is_owned(), "downgrade of {st} line at {:?}", d.block);
            if st == MesiState::Modified {
                self.sys.sharing_writeback(Cycle(0), d.socket, d.block);
            }
            self.set(d.socket.0, d.core.0, d.block, MesiState::Shared);
        }
        let mut pending = invals;
        while let Some(inv) = pending.pop() {
            let st = self.state(inv.socket.0, inv.core.0, inv.block);
            if st == MesiState::Modified {
                match inv.reason {
                    InvalReason::Dev => {
                        pending.extend(self.sys.dev_dirty_recall(Cycle(0), inv.socket, inv.block));
                    }
                    InvalReason::Inclusion => {
                        self.sys
                            .inclusion_dirty_writeback(Cycle(0), inv.socket, inv.block);
                    }
                    InvalReason::Coherence => {}
                }
            }
            self.set(inv.socket.0, inv.core.0, inv.block, MesiState::Invalid);
        }
    }

    fn check_block(&self, b: BlockAddr) {
        for s in 0..self.sys.config().sockets as u8 {
            let mut holders = Vec::new();
            for c in 0..self.sys.config().cores as u16 {
                let st = self.state(s, c, b);
                if st.is_valid() {
                    holders.push((c, st));
                }
            }
            let owners = holders.iter().filter(|(_, st)| st.is_owned()).count();
            assert!(owners <= 1, "SWMR violated at {b:?}: {holders:?}");
            if owners == 1 {
                assert_eq!(holders.len(), 1, "owner+sharers at {b:?}: {holders:?}");
            }
            if holders.is_empty() {
                continue;
            }
            let entry = self.sys.entry_of(SocketId(s), b);
            assert!(
                entry.is_some() || self.sys.memory_corrupted(b),
                "socket {s}: untracked private copies of {b:?}: {holders:?}"
            );
            if let Some(e) = entry {
                for (c, _) in &holders {
                    assert!(
                        e.sharers.contains(CoreId(*c)),
                        "socket {s}: directory lost sharer c{c} of {b:?} (entry {e:?})"
                    );
                }
            }
        }
    }

    fn step(&mut self, rng: &mut Prng, blocks: &[BlockAddr]) {
        let s = (rng.below(self.sys.config().sockets as u64)) as u8;
        let c = (rng.below(self.sys.config().cores as u64)) as u16;
        let b = blocks[rng.below(blocks.len() as u64) as usize];
        let st = self.state(s, c, b);
        match rng.below(10) {
            // Evict (if present)
            0..=1 if st.is_valid() => {
                let kind = match st {
                    MesiState::Modified => EvictKind::Dirty,
                    MesiState::Exclusive => EvictKind::CleanExclusive,
                    MesiState::Shared => EvictKind::CleanShared,
                    MesiState::Invalid => unreachable!(),
                };
                let invals = self.sys.evict(Cycle(0), SocketId(s), CoreId(c), b, kind);
                self.set(s, c, b, MesiState::Invalid);
                self.apply(invals, Vec::new());
            }
            // Write
            2..=4 => match st {
                MesiState::Modified => {}
                MesiState::Exclusive => self.set(s, c, b, MesiState::Modified),
                MesiState::Shared => {
                    let r = self
                        .sys
                        .access(Cycle(0), SocketId(s), CoreId(c), b, Op::Upgrade);
                    self.apply(r.invalidations, r.downgrades);
                    self.set(s, c, b, MesiState::Modified);
                }
                MesiState::Invalid => {
                    let r = self
                        .sys
                        .access(Cycle(0), SocketId(s), CoreId(c), b, Op::ReadExclusive);
                    let grant = r.grant;
                    self.apply(r.invalidations, r.downgrades);
                    self.set(s, c, b, grant);
                }
            },
            // Read (and occasionally code read)
            _ => {
                if st.is_valid() {
                    return;
                }
                let op = if rng.chance(0.1) {
                    Op::CodeRead
                } else {
                    Op::Read
                };
                let r = self.sys.access(Cycle(0), SocketId(s), CoreId(c), b, op);
                let grant = r.grant;
                self.apply(r.invalidations, r.downgrades);
                self.set(s, c, b, grant);
            }
        }
        self.sys.check_invariants();
        self.check_block(b);
    }
}

fn tiny(
    policy: Option<SpillPolicy>,
    design: LlcDesign,
    dir: Option<DirectoryKind>,
) -> SystemConfig {
    let mut cfg = SystemConfig::baseline_8core();
    cfg.cores = 4;
    cfg.l1i = CacheGeometry::new(2 << 10, 2);
    cfg.l1d = CacheGeometry::new(2 << 10, 2);
    cfg.l2 = CacheGeometry::new(4 << 10, 4);
    cfg.llc = CacheGeometry::new(8 << 10, 4); // 128 lines: heavy pressure
    cfg.llc_banks = 2;
    cfg.llc_design = design;
    if let Some(p) = policy {
        cfg = cfg.with_zerodev(
            ZeroDevConfig {
                policy: p,
                llc_replacement: LlcReplacement::DataLru,
                ..Default::default()
            },
            dir.unwrap_or(DirectoryKind::None),
        );
    } else if let Some(d) = dir {
        cfg.directory = d;
    }
    cfg
}

fn stress(cfg: SystemConfig, steps: u64, seed: u64) {
    let mut rng = Prng::seeded(seed);
    // A small pool of blocks that heavily conflicts in the tiny LLC.
    let blocks: Vec<BlockAddr> = (0..96u64).map(|i| BlockAddr(0x1000 + i * 3)).collect();
    let mut m = Model::new(cfg);
    for _ in 0..steps {
        m.step(&mut rng, &blocks);
    }
}

#[test]
fn stress_baseline() {
    stress(tiny(None, LlcDesign::NonInclusive, None), 6000, 1);
}

#[test]
fn stress_baseline_tiny_dir() {
    stress(
        tiny(
            None,
            LlcDesign::NonInclusive,
            Some(DirectoryKind::Sparse {
                ratio: Ratio::new(1, 64),
                ways: 2,
                replacement_disabled: false,
            }),
        ),
        6000,
        2,
    );
}

#[test]
fn stress_zerodev_fpss() {
    stress(
        tiny(
            Some(SpillPolicy::FusePrivateSpillShared),
            LlcDesign::NonInclusive,
            None,
        ),
        8000,
        3,
    );
}

#[test]
fn stress_zerodev_spillall() {
    stress(
        tiny(Some(SpillPolicy::SpillAll), LlcDesign::NonInclusive, None),
        8000,
        4,
    );
}

#[test]
fn stress_zerodev_fuseall() {
    stress(
        tiny(Some(SpillPolicy::FuseAll), LlcDesign::NonInclusive, None),
        8000,
        5,
    );
}

#[test]
fn stress_zerodev_epd() {
    stress(
        tiny(
            Some(SpillPolicy::FusePrivateSpillShared),
            LlcDesign::Epd,
            Some(DirectoryKind::Sparse {
                ratio: Ratio::new(1, 8),
                ways: 4,
                replacement_disabled: true,
            }),
        ),
        8000,
        6,
    );
}

#[test]
fn stress_zerodev_inclusive() {
    stress(
        tiny(
            Some(SpillPolicy::FusePrivateSpillShared),
            LlcDesign::Inclusive,
            None,
        ),
        8000,
        7,
    );
}

#[test]
fn stress_secdir() {
    let geom = zerodev_common::config::SecDirGeometry {
        shared_sets: 2,
        shared_ways: 2,
        private_sets: 1,
        private_ways: 2,
    };
    stress(
        tiny(
            None,
            LlcDesign::NonInclusive,
            Some(DirectoryKind::SecDir(geom)),
        ),
        6000,
        8,
    );
}

#[test]
fn stress_mgd() {
    stress(
        tiny(
            None,
            LlcDesign::NonInclusive,
            Some(DirectoryKind::MultiGrain {
                ratio: Ratio::new(1, 16),
                ways: 2,
            }),
        ),
        6000,
        9,
    );
}

#[test]
fn stress_multisocket_zerodev() {
    let mut cfg = tiny(
        Some(SpillPolicy::FusePrivateSpillShared),
        LlcDesign::NonInclusive,
        None,
    );
    cfg.sockets = 2;
    stress(cfg, 8000, 10);
}

#[test]
fn stress_multisocket_baseline() {
    let mut cfg = tiny(None, LlcDesign::NonInclusive, None);
    cfg.sockets = 4;
    stress(cfg, 6000, 11);
}

#[test]
fn stress_zerodev_hybrid_segments() {
    // The limited-pointer/coarse-vector segment format decodes to sharer
    // supersets; the protocol must stay coherent (spurious invalidations
    // are harmless).
    let mut cfg = tiny(
        Some(SpillPolicy::FusePrivateSpillShared),
        LlcDesign::NonInclusive,
        None,
    );
    if let Some(zd) = cfg.zerodev.as_mut() {
        zd.segment_format = zerodev_common::config::SegmentFormat::Hybrid {
            max_pointers: 1,
            coarse_bits: 2,
        };
    }
    stress(cfg, 8000, 12);
}

#[test]
fn stress_zerodev_hybrid_segments_multisocket() {
    let mut cfg = tiny(
        Some(SpillPolicy::FusePrivateSpillShared),
        LlcDesign::NonInclusive,
        None,
    );
    cfg.sockets = 2;
    if let Some(zd) = cfg.zerodev.as_mut() {
        zd.segment_format = zerodev_common::config::SegmentFormat::Hybrid {
            max_pointers: 2,
            coarse_bits: 2,
        };
    }
    stress(cfg, 8000, 13);
}
