//! LLC banks with ZeroDEV line states.
//!
//! Besides ordinary valid/dirty data lines, a ZeroDEV LLC line can be a
//! *spilled* directory entry occupying a full line in the same set as its
//! block (state V=0, D=1, b0=1 in the paper's encoding) or a *fused* line
//! carrying both the block and its directory entry (V=0, D=1, b0=0), §III-C.
//!
//! The bank exposes victim selection with a *protected* predicate so the
//! `dataLRU` policy (§III-D1) can victimise every ordinary data/code line
//! before any spilled or fused entry.

use crate::directory::DirEntry;
use zerodev_cache::{Replacement, SetAssoc};
use zerodev_common::config::LlcReplacement;
use zerodev_common::{BlockAddr, Cycle};

/// One LLC line.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LlcLine {
    /// An ordinary cached block (V=1; D = `dirty`).
    Data {
        /// Block modified relative to memory.
        dirty: bool,
    },
    /// A spilled directory entry occupying a full line (V=0, D=1, b0=1).
    Spilled {
        /// The directory entry stored in the data array.
        entry: DirEntry,
    },
    /// A block line whose low bits hold its own directory entry
    /// (V=0, D=1, b0=0). `block_dirty` is the preserved D bit (b1).
    Fused {
        /// The fused directory entry.
        entry: DirEntry,
        /// Whether the block bits are dirty relative to memory.
        block_dirty: bool,
    },
}

impl LlcLine {
    /// True for lines that carry the block itself (data or fused).
    pub fn holds_block(&self) -> bool {
        matches!(self, LlcLine::Data { .. } | LlcLine::Fused { .. })
    }

    /// True for lines holding a directory entry (spilled or fused).
    pub fn holds_entry(&self) -> bool {
        matches!(self, LlcLine::Spilled { .. } | LlcLine::Fused { .. })
    }

    /// The directory entry, if this line holds one.
    pub fn entry(&self) -> Option<DirEntry> {
        match self {
            LlcLine::Spilled { entry } | LlcLine::Fused { entry, .. } => Some(*entry),
            LlcLine::Data { .. } => None,
        }
    }

    /// Serializes the line for checkpointing.
    pub fn snap(&self, w: &mut zerodev_common::snap::SnapWriter) {
        match self {
            LlcLine::Data { dirty } => {
                w.u8(0);
                w.bool(*dirty);
            }
            LlcLine::Spilled { entry } => {
                w.u8(1);
                entry.snap(w);
            }
            LlcLine::Fused { entry, block_dirty } => {
                w.u8(2);
                entry.snap(w);
                w.bool(*block_dirty);
            }
        }
    }

    /// Decodes a [`LlcLine::snap`] image.
    ///
    /// # Errors
    /// Fails with a decode [`zerodev_common::snap::SnapError`] on a bad
    /// line tag or truncated input.
    pub fn unsnap(
        r: &mut zerodev_common::snap::SnapReader<'_>,
    ) -> Result<LlcLine, zerodev_common::snap::SnapError> {
        match r.u8("llc line tag")? {
            0 => Ok(LlcLine::Data {
                dirty: r.bool("llc line dirty")?,
            }),
            1 => Ok(LlcLine::Spilled {
                entry: DirEntry::unsnap(r)?,
            }),
            2 => Ok(LlcLine::Fused {
                entry: DirEntry::unsnap(r)?,
                block_dirty: r.bool("llc fused block_dirty")?,
            }),
            _ => Err(zerodev_common::snap::SnapError::Corrupt {
                context: "llc line tag",
            }),
        }
    }
}

/// A line evicted from an LLC bank.
pub type LlcVictim = (BlockAddr, LlcLine);

/// Outcome of [`LlcBank::spill_entry`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SpillOutcome {
    /// An existing spilled line was rewritten in place.
    Updated,
    /// A new line was allocated (possibly displacing a victim).
    Inserted(Option<LlcVictim>),
    /// The set had no line the spill may displace — the only resident
    /// candidate was the entry's own block data line, which a spill must
    /// never victimise. The entry comes back to the caller, who sends it
    /// home via WB_DE instead (reachable only in degenerate, e.g. 1-way,
    /// geometries).
    Refused(DirEntry),
}

impl SpillOutcome {
    /// The displaced victim, if a new line evicted one.
    pub fn victim(self) -> Option<LlcVictim> {
        match self {
            SpillOutcome::Updated | SpillOutcome::Refused(_) => None,
            SpillOutcome::Inserted(v) => v,
        }
    }
}

/// One LLC bank: a set-associative array of [`LlcLine`]s plus a port
/// busy-time used for bank-contention modelling.
#[derive(Clone, Debug)]
pub struct LlcBank {
    array: SetAssoc<LlcLine>,
    banks: u64,
    bank_index: u64,
    /// Earliest time the bank's tag/data port is free again.
    pub port_free: Cycle,
}

impl LlcBank {
    /// Creates a bank of `sets × ways` lines. `banks`/`bank_index` describe
    /// the bank interleaving so block addresses can be converted to
    /// bank-local keys and back.
    pub fn new(sets: usize, ways: usize, banks: usize, bank_index: usize) -> Self {
        LlcBank {
            array: SetAssoc::new(sets, ways, Replacement::Lru),
            banks: banks as u64,
            bank_index: bank_index as u64,
            port_free: Cycle::ZERO,
        }
    }

    #[inline]
    fn key(&self, block: BlockAddr) -> u64 {
        debug_assert_eq!(block.0 % self.banks, self.bank_index, "block homed here");
        block.0 / self.banks
    }

    #[inline]
    fn block_of(&self, key: u64) -> BlockAddr {
        BlockAddr(key * self.banks + self.bank_index)
    }

    /// The protection predicate for a replacement policy: under `dataLRU`
    /// spilled and fused lines are protected; under plain LRU and `spLRU`
    /// nothing is (spLRU protects by recency ordering instead).
    fn protected(policy: LlcReplacement) -> impl Fn(&LlcLine) -> bool {
        move |line: &LlcLine| policy == LlcReplacement::DataLru && line.holds_entry()
    }

    /// The block-holding line (data or fused) for `block`, if present.
    pub fn block_line(&self, block: BlockAddr) -> Option<LlcLine> {
        self.array
            .peek(self.key(block), LlcLine::holds_block)
            .copied()
    }

    /// The spilled entry for `block`, if present.
    pub fn spilled_entry(&self, block: BlockAddr) -> Option<DirEntry> {
        self.array
            .peek(self.key(block), |l| matches!(l, LlcLine::Spilled { .. }))
            .and_then(|l| l.entry())
    }

    /// The directory entry held anywhere in this bank for `block`
    /// (fused or spilled).
    pub fn entry_for(&self, block: BlockAddr) -> Option<DirEntry> {
        if let Some(LlcLine::Fused { entry, .. }) = self.block_line(block) {
            return Some(entry);
        }
        self.spilled_entry(block)
    }

    /// Promotes the block's line; under `spLRU` the spilled entry (if any)
    /// is promoted *after* the block so the entry ends up more recent — the
    /// paper's update rule guaranteeing the block is evicted first.
    pub fn touch_block(&mut self, block: BlockAddr, policy: LlcReplacement) {
        let key = self.key(block);
        let _ = self.array.touch(key, LlcLine::holds_block);
        if policy == LlcReplacement::SpLru {
            let _ = self
                .array
                .touch(key, |l| matches!(l, LlcLine::Spilled { .. }));
        }
    }

    /// Promotes only the spilled/fused entry line for `block`.
    pub fn touch_entry(&mut self, block: BlockAddr) {
        let key = self.key(block);
        if self
            .array
            .touch(key, |l| matches!(l, LlcLine::Spilled { .. }))
            .is_none()
        {
            let _ = self
                .array
                .touch(key, |l| matches!(l, LlcLine::Fused { .. }));
        }
    }

    /// Inserts (or overwrites) the data line for `block`. Returns the
    /// evicted victim, if the insertion displaced one.
    pub fn fill_data(
        &mut self,
        block: BlockAddr,
        dirty: bool,
        policy: LlcReplacement,
    ) -> Option<LlcVictim> {
        let key = self.key(block);
        if let Some(line) = self.array.peek_mut(key, LlcLine::holds_block) {
            match line {
                LlcLine::Data { dirty: d } => *d = *d || dirty,
                LlcLine::Fused { block_dirty, .. } => *block_dirty = *block_dirty || dirty,
                LlcLine::Spilled { .. } => unreachable!("holds_block excludes spilled"),
            }
            let _ = self.array.touch(key, LlcLine::holds_block);
            return None;
        }
        self.array
            .insert(key, LlcLine::Data { dirty }, Self::protected(policy))
            .map(|(k, line)| (self.block_of(k), line))
    }

    /// Inserts a spilled directory entry for `block` (or updates it in
    /// place). Reports whether a new line was allocated and which victim it
    /// displaced, so callers can keep exact occupancy accounting.
    pub fn spill_entry(
        &mut self,
        block: BlockAddr,
        entry: DirEntry,
        policy: LlcReplacement,
    ) -> SpillOutcome {
        let key = self.key(block);
        if let Some(LlcLine::Spilled { entry: e }) = self
            .array
            .peek_mut(key, |l| matches!(l, LlcLine::Spilled { .. }))
        {
            *e = entry;
            return SpillOutcome::Updated;
        }
        // The spill must never displace its own block's data line: under an
        // inclusive LLC that would back-invalidate the private copies (one
        // of which may be a requester whose grant is still in flight) and
        // free the very entry being installed.
        match self.array.insert_excluding(
            key,
            LlcLine::Spilled { entry },
            Self::protected(policy),
            |k, line| k == key && line.holds_block(),
        ) {
            Ok(evicted) => {
                SpillOutcome::Inserted(evicted.map(|(k, line)| (self.block_of(k), line)))
            }
            Err(line) => match line {
                LlcLine::Spilled { entry } => SpillOutcome::Refused(entry),
                _ => unreachable!("the refused payload is the spill we submitted"),
            },
        }
    }

    /// Fuses `entry` into the existing block line for `block`.
    ///
    /// # Panics
    /// Panics when the block line is absent (callers check
    /// [`Self::block_line`] first).
    pub fn fuse_entry(&mut self, block: BlockAddr, entry: DirEntry) {
        let key = self.key(block);
        let line = self
            .array
            .peek_mut(key, LlcLine::holds_block)
            .expect("fuse requires a resident block line");
        *line = match *line {
            LlcLine::Data { dirty } => LlcLine::Fused {
                entry,
                block_dirty: dirty,
            },
            LlcLine::Fused { block_dirty, .. } => LlcLine::Fused { entry, block_dirty },
            LlcLine::Spilled { .. } => unreachable!("holds_block excludes spilled"),
        };
    }

    /// Reverts a fused line to a plain data line (the entry was freed and
    /// the block bits were reconstructed from the evicting core's low bits).
    /// Returns the entry that was fused.
    ///
    /// # Panics
    /// Panics when the line is not fused.
    pub fn unfuse(&mut self, block: BlockAddr) -> DirEntry {
        let key = self.key(block);
        let line = self
            .array
            .peek_mut(key, |l| matches!(l, LlcLine::Fused { .. }))
            .expect("unfuse requires a fused line");
        let LlcLine::Fused { entry, block_dirty } = *line else {
            unreachable!("predicate matched fused");
        };
        *line = LlcLine::Data { dirty: block_dirty };
        entry
    }

    /// Removes the spilled entry line for `block`, returning its entry.
    pub fn remove_spilled(&mut self, block: BlockAddr) -> Option<DirEntry> {
        let key = self.key(block);
        self.array
            .remove(key, |l| matches!(l, LlcLine::Spilled { .. }))
            .and_then(|l| l.entry())
    }

    /// Removes the block-holding line for `block` (EPD deallocation on a
    /// block turning private, or explicit invalidation).
    pub fn remove_block(&mut self, block: BlockAddr) -> Option<LlcLine> {
        let key = self.key(block);
        self.array.remove(key, LlcLine::holds_block)
    }

    /// Iterates over all valid lines as `(block, line)` (diagnostics and
    /// invariant checks).
    pub fn iter(&self) -> impl Iterator<Item = (BlockAddr, &LlcLine)> + '_ {
        self.array.iter().map(|(k, l)| (self.block_of(k), l))
    }

    /// The contents of the set `block` maps to, in MRU→LRU order (the model
    /// checker's canonical state encoding includes replacement order).
    pub fn set_contents_mru(&self, block: BlockAddr) -> Vec<(BlockAddr, LlcLine)> {
        self.array
            .iter_set(self.key(block))
            .map(|(k, l)| (self.block_of(k), *l))
            .collect()
    }

    /// Number of valid lines.
    pub fn len(&self) -> usize {
        self.array.len()
    }

    /// True when the bank holds no valid line.
    pub fn is_empty(&self) -> bool {
        self.array.is_empty()
    }

    /// Number of lines currently holding directory entries (spilled lines
    /// count fully; fused lines cost no extra space so they are not counted)
    /// — feeds the Figure 5 style occupancy measurements.
    pub fn spilled_line_count(&self) -> usize {
        self.array
            .iter()
            .filter(|(_, l)| matches!(l, LlcLine::Spilled { .. }))
            .count()
    }

    /// Serializes the bank contents and port horizon for checkpointing.
    // lint:allow(snapshot_complete(banks, bank_index), interleaving geometry is config-derived; restore targets a bank freshly built from the same configuration)
    pub fn snap(&self, w: &mut zerodev_common::snap::SnapWriter) {
        self.array.snapshot_with(w, |w, line| line.snap(w));
        w.u64(self.port_free.0);
    }

    /// Restores a [`LlcBank::snap`] image into this bank, which must have
    /// the same geometry (freshly built from the same configuration).
    ///
    /// # Errors
    /// Fails with a structural [`zerodev_common::snap::SnapError`] on
    /// geometry mismatch or decode error.
    // lint:allow(snapshot_complete(banks, bank_index), interleaving geometry is config-derived; restore targets a bank freshly built from the same configuration)
    pub fn unsnap(
        &mut self,
        r: &mut zerodev_common::snap::SnapReader<'_>,
    ) -> Result<(), zerodev_common::snap::SnapError> {
        self.array.restore_with(r, LlcLine::unsnap)?;
        self.port_free = Cycle(r.u64("llc port_free")?);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zerodev_common::CoreId;

    fn bank(sets: usize, ways: usize) -> LlcBank {
        LlcBank::new(sets, ways, 8, 3)
    }

    fn blk(i: u64) -> BlockAddr {
        // Blocks homed at bank 3 of 8.
        BlockAddr(i * 8 + 3)
    }

    #[test]
    fn fill_and_lookup() {
        let mut b = bank(4, 2);
        assert!(b.fill_data(blk(0), false, LlcReplacement::Lru).is_none());
        assert_eq!(b.block_line(blk(0)), Some(LlcLine::Data { dirty: false }));
        assert_eq!(b.block_line(blk(1)), None);
        // Refill marks dirty, does not duplicate.
        assert!(b.fill_data(blk(0), true, LlcReplacement::Lru).is_none());
        assert_eq!(b.block_line(blk(0)), Some(LlcLine::Data { dirty: true }));
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn lru_eviction_returns_victim_block() {
        let mut b = bank(1, 2);
        b.fill_data(blk(0), true, LlcReplacement::Lru);
        b.fill_data(blk(1), false, LlcReplacement::Lru);
        let victim = b.fill_data(blk(2), false, LlcReplacement::Lru).unwrap();
        assert_eq!(victim, (blk(0), LlcLine::Data { dirty: true }));
    }

    #[test]
    fn spill_and_block_coexist() {
        let mut b = bank(4, 4);
        let e = DirEntry::shared(CoreId(1));
        b.fill_data(blk(0), false, LlcReplacement::DataLru);
        assert!(b
            .spill_entry(blk(0), e, LlcReplacement::DataLru)
            .victim()
            .is_none());
        assert!(b.block_line(blk(0)).is_some());
        assert_eq!(b.spilled_entry(blk(0)), Some(e));
        assert_eq!(b.entry_for(blk(0)), Some(e));
        assert_eq!(b.spilled_line_count(), 1);
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn spill_update_in_place() {
        let mut b = bank(4, 4);
        let mut e = DirEntry::shared(CoreId(1));
        b.spill_entry(blk(0), e, LlcReplacement::DataLru);
        e.sharers.insert(CoreId(2));
        assert!(b
            .spill_entry(blk(0), e, LlcReplacement::DataLru)
            .victim()
            .is_none());
        assert_eq!(b.spilled_entry(blk(0)).unwrap().sharers.count(), 2);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn spill_refused_when_only_candidate_is_own_block_line() {
        // 1-way degenerate set: the only resident line is the entry's own
        // block data line, which a spill must never displace. The entry
        // comes back for the caller to WB_DE home.
        let mut b = bank(1, 1);
        b.fill_data(blk(0), true, LlcReplacement::Lru);
        let e = DirEntry::owned(CoreId(0));
        match b.spill_entry(blk(0), e, LlcReplacement::Lru) {
            SpillOutcome::Refused(got) => assert_eq!(got, e),
            other => panic!("expected refusal, got {other:?}"),
        }
        assert_eq!(b.block_line(blk(0)), Some(LlcLine::Data { dirty: true }));
        assert_eq!(b.spilled_entry(blk(0)), None);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn spill_displaces_other_blocks_line_in_one_way_set() {
        // Same 1-way geometry, but the resident line belongs to a different
        // block: it is fair game and the spill lands.
        let mut b = bank(1, 1);
        b.fill_data(blk(1), false, LlcReplacement::Lru);
        let e = DirEntry::owned(CoreId(0));
        match b.spill_entry(blk(0), e, LlcReplacement::Lru) {
            SpillOutcome::Inserted(victim) => {
                assert_eq!(victim, Some((blk(1), LlcLine::Data { dirty: false })));
            }
            other => panic!("expected insertion, got {other:?}"),
        }
        assert_eq!(b.spilled_entry(blk(0)), Some(e));
    }

    #[test]
    fn data_lru_protects_entries() {
        let mut b = bank(1, 2);
        let e = DirEntry::owned(CoreId(0));
        b.spill_entry(blk(0), e, LlcReplacement::DataLru);
        b.fill_data(blk(1), false, LlcReplacement::DataLru);
        // The spilled entry is LRU-most but protected: the data line goes.
        let victim = b.fill_data(blk(2), false, LlcReplacement::DataLru).unwrap();
        assert_eq!(victim.0, blk(1));
        // Another spill still finds the remaining data line to victimise.
        let e2 = DirEntry::owned(CoreId(1));
        let victim = b
            .spill_entry(blk(3), e2, LlcReplacement::DataLru)
            .victim()
            .unwrap();
        assert_eq!(victim.0, blk(2));
        assert!(victim.1.holds_block());
        // Now the set holds only spilled entries: the next insert must
        // finally sacrifice one (the WB_DE case).
        let e3 = DirEntry::owned(CoreId(2));
        let victim = b
            .spill_entry(blk(4), e3, LlcReplacement::DataLru)
            .victim()
            .unwrap();
        assert!(victim.1.holds_entry());
    }

    #[test]
    fn sp_lru_orders_entry_above_block() {
        let mut b = bank(1, 3);
        let e = DirEntry::shared(CoreId(0));
        b.spill_entry(blk(0), e, LlcReplacement::SpLru);
        b.fill_data(blk(0), false, LlcReplacement::SpLru);
        b.fill_data(blk(1), false, LlcReplacement::SpLru);
        // Touch block 0: under spLRU the spilled entry is bumped above it.
        b.touch_block(blk(0), LlcReplacement::SpLru);
        // Evict twice: block 1 (LRU-most), then block 0 — never the entry.
        let v1 = b.fill_data(blk(2), false, LlcReplacement::SpLru).unwrap();
        assert_eq!(v1.0, blk(1));
        let v2 = b.fill_data(blk(3), false, LlcReplacement::SpLru).unwrap();
        assert_eq!(v2.0, blk(0));
        assert!(v2.1.holds_block());
        assert_eq!(b.spilled_entry(blk(0)), Some(e));
    }

    #[test]
    fn plain_lru_can_evict_entry_before_block() {
        let mut b = bank(1, 2);
        let e = DirEntry::shared(CoreId(0));
        b.spill_entry(blk(0), e, LlcReplacement::Lru);
        b.fill_data(blk(0), false, LlcReplacement::Lru);
        // Under plain LRU the entry is LRU-most and unprotected.
        let victim = b.fill_data(blk(1), false, LlcReplacement::Lru).unwrap();
        assert!(victim.1.holds_entry(), "plain LRU sacrifices the entry");
    }

    #[test]
    fn fuse_and_unfuse() {
        let mut b = bank(4, 2);
        b.fill_data(blk(0), true, LlcReplacement::DataLru);
        let e = DirEntry::owned(CoreId(5));
        b.fuse_entry(blk(0), e);
        match b.block_line(blk(0)) {
            Some(LlcLine::Fused { entry, block_dirty }) => {
                assert_eq!(entry, e);
                assert!(block_dirty);
            }
            other => panic!("expected fused, got {other:?}"),
        }
        assert_eq!(b.entry_for(blk(0)), Some(e));
        assert_eq!(b.spilled_line_count(), 0, "fusion costs no extra line");
        let back = b.unfuse(blk(0));
        assert_eq!(back, e);
        assert_eq!(b.block_line(blk(0)), Some(LlcLine::Data { dirty: true }));
    }

    #[test]
    #[should_panic(expected = "fuse requires")]
    fn fuse_without_block_panics() {
        let mut b = bank(4, 2);
        b.fuse_entry(blk(0), DirEntry::owned(CoreId(0)));
    }

    #[test]
    fn remove_operations() {
        let mut b = bank(4, 4);
        let e = DirEntry::shared(CoreId(0));
        b.fill_data(blk(0), false, LlcReplacement::DataLru);
        b.spill_entry(blk(0), e, LlcReplacement::DataLru);
        assert_eq!(b.remove_spilled(blk(0)), Some(e));
        assert_eq!(b.remove_spilled(blk(0)), None);
        assert!(b.remove_block(blk(0)).is_some());
        assert!(b.is_empty());
    }

    #[test]
    fn line_predicates() {
        let d = LlcLine::Data { dirty: false };
        let s = LlcLine::Spilled {
            entry: DirEntry::owned(CoreId(0)),
        };
        let f = LlcLine::Fused {
            entry: DirEntry::owned(CoreId(0)),
            block_dirty: false,
        };
        assert!(d.holds_block() && !d.holds_entry());
        assert!(!s.holds_block() && s.holds_entry());
        assert!(f.holds_block() && f.holds_entry());
        assert!(d.entry().is_none());
        assert!(s.entry().is_some());
    }

    #[test]
    fn iter_reports_block_addresses() {
        let mut b = bank(4, 2);
        b.fill_data(blk(0), false, LlcReplacement::Lru);
        b.fill_data(blk(5), true, LlcReplacement::Lru);
        let mut blocks: Vec<u64> = b.iter().map(|(a, _)| a.0).collect();
        blocks.sort_unstable();
        assert_eq!(blocks, vec![blk(0).0, blk(5).0]);
    }
}

#[cfg(test)]
mod recency_tests {
    use super::*;
    use zerodev_common::CoreId;

    fn blk(i: u64) -> BlockAddr {
        BlockAddr(i * 8 + 3)
    }

    #[test]
    fn touch_entry_protects_spilled_line_under_plain_lru() {
        let mut b = LlcBank::new(1, 3, 8, 3);
        let e = DirEntry::shared(CoreId(0));
        b.spill_entry(blk(0), e, LlcReplacement::Lru);
        b.fill_data(blk(1), false, LlcReplacement::Lru);
        b.fill_data(blk(2), false, LlcReplacement::Lru);
        // The spilled entry is LRU-most; touching it promotes it.
        b.touch_entry(blk(0));
        let victim = b.fill_data(blk(4), false, LlcReplacement::Lru).unwrap();
        assert_eq!(victim.0, blk(1), "touched entry outlives older data");
        assert_eq!(b.spilled_entry(blk(0)), Some(e));
    }

    #[test]
    fn touch_entry_promotes_fused_line() {
        let mut b = LlcBank::new(1, 2, 8, 3);
        b.fill_data(blk(0), false, LlcReplacement::Lru);
        b.fuse_entry(blk(0), DirEntry::owned(CoreId(1)));
        b.fill_data(blk(1), false, LlcReplacement::Lru);
        b.touch_entry(blk(0)); // falls through to the fused line
        let victim = b.fill_data(blk(2), false, LlcReplacement::Lru).unwrap();
        assert_eq!(victim.0, blk(1));
        assert!(b.entry_for(blk(0)).is_some());
    }

    #[test]
    fn port_free_field_tracks_occupancy() {
        let mut b = LlcBank::new(4, 2, 8, 3);
        assert_eq!(b.port_free, Cycle::ZERO);
        b.port_free = Cycle(100);
        assert_eq!(b.port_free, Cycle(100));
    }
}
