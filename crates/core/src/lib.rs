//! The ZeroDEV coherence protocol and every directory design it is compared
//! against.
//!
//! This crate is the paper's primary contribution plus its baselines:
//!
//! * [`directory`] — the sparse directory (NRU, any `R×` size, optionally
//!   replacement-disabled), the unbounded directory, and the *no directory*
//!   configuration.
//! * [`secdir`] — the SecDir baseline (Yan et al., ISCA 2019): per-core
//!   private partitions plus a shared partition.
//! * [`mgd`] — the Multi-grain Directory baseline (Zebchuk et al., MICRO
//!   2013): one entry can track a private 1 KB region.
//! * [`llc`] — LLC banks whose lines can be ordinary data, *spilled*
//!   directory entries, or *fused* block+entry lines (§III-C of the paper),
//!   with the `spLRU`/`dataLRU` replacement extensions (§III-D1).
//! * [`memdir`] — the memory-side state: corrupted home blocks housing
//!   evicted directory entries (§III-D) and the socket-level directory
//!   (§III-D5).
//! * [`system`] — the protocol engine: a home-serialised MESI
//!   write-invalidate protocol with the full ZeroDEV extension set
//!   (spill/fuse policies, invariant maintenance, WB_DE / GET_DE /
//!   DENF_NACK flows, EPD and inclusive LLC designs, multi-socket
//!   coherence).
//!
//! The engine is driven through [`System::access`] and [`System::evict`];
//! the trace-driven cores live in the `zerodev-sim` crate.
//!
//! # Example
//!
//! ```
//! use zerodev_core::{Op, System};
//! use zerodev_common::{BlockAddr, CoreId, Cycle, SocketId, SystemConfig};
//!
//! let mut sys = System::new(SystemConfig::baseline_8core()).unwrap();
//! let r = sys.access(Cycle(0), SocketId(0), CoreId(0), BlockAddr(0x100), Op::Read);
//! assert!(r.latency > 0);
//! assert!(r.grant.is_owned()); // sole reader gets E
//! ```

pub mod compress;
pub mod directory;
pub mod llc;
pub mod memdir;
pub mod mgd;
pub mod oracle;
pub mod secdir;
pub mod step;
pub mod system;

pub use compress::{CompressedEntry, SegmentFormatExt};
pub use directory::{DirEntry, DirStore};
pub use llc::{LlcBank, LlcLine};
pub use oracle::{AuditEvent, EventLog, Oracle};
pub use step::{ProtocolEvent, ProtocolHarness, StepViolation};
pub use system::{AccessResult, EvictKind, InvalReason, Invalidation, Op, StateFault, System};
