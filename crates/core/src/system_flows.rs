// Continuation of the System protocol engine (included from system.rs):
// untracked reads/RFOs, the memory and multi-socket paths, evictions, and
// the caller-reported dirty-data hooks.

impl System {
    /// Read (or code read) of a block with no directory entry in the socket.
    #[allow(clippy::too_many_arguments)]
    // lint:consumes(Request)
    fn untracked_read(
        &mut self,
        now: Cycle,
        t: &mut Cycle,
        s: usize,
        core: CoreId,
        block: BlockAddr,
        code: bool,
        invals: &mut Vec<Invalidation>,
        downgrades: &mut Vec<Downgrade>,
    ) -> MesiState {
        let bank = self.bank_of(block);
        if matches!(
            self.sockets[s].banks[bank].block_line(block),
            Some(LlcLine::Data { .. })
        ) {
            // The entry may be housed at home (WB_DE) while private copies
            // and this data line survive in the socket: retrieve it
            // (GET_DE) and conclude as a directory hit — the untracked
            // grant below would break SWMR against those copies.
            if let Some(entry) = self.recall_housed_entry(t, s, block) {
                self.install_entry(now, s, block, entry, invals);
                self.track_live(-1); // re-installed, not newly live
                return self.serve_from_private(
                    now, t, s, core, block, entry, false, invals, downgrades,
                );
            }
            // Case (iii): LLC hit, no private copies anywhere in the socket
            // (guaranteed — §III-D2, housed segment ruled out above).
            self.stats.llc_hits += 1;
            *t = self.bank_port(s, bank, *t, self.cfg.llc_data_cycles) + self.cfg.llc_data_cycles;
            self.stats.llc_data_accesses += 1;
            *t += self.sockets[s]
                .topo
                .bank_core_latency(bank, core.0 as usize, MsgClass::Data.bytes());
            self.stats.msg(MsgClass::Data);
            self.stats.two_hop_reads += 1;
            let policy = self.policy();
            self.sockets[s].banks[bank].touch_block(block, policy);
            let grant = if !code && self.cfg.sockets > 1 {
                // A local LLC data line rules out a remote *owner* (a
                // remote write would have invalidated it), but remote
                // sockets may still hold S copies: the home socket-level
                // directory must be consulted before granting E.
                self.untracked_read_socket_grant(t, s, block)
            } else {
                protocol::untracked_fill_grant(
                    if code { Op::CodeRead } else { Op::Read },
                    false,
                )
            };
            let entry = if grant == MesiState::Exclusive {
                DirEntry::owned(core)
            } else {
                DirEntry::shared(core)
            };
            if grant == MesiState::Exclusive {
                // EPD deallocates first so the new entry cannot fuse
                // (fusion is impossible in an EPD LLC, §III-E).
                self.epd_on_private_transition(now, s, block);
            }
            self.install_entry(now, s, block, entry, invals);
            grant
        } else {
            self.memory_fetch(now, t, s, core, block, false, code, invals, downgrades)
        }
    }

    /// GET_DE retrieval for an access that found an LLC data line but no
    /// in-socket entry while the home block is corrupted: an earlier WB_DE
    /// may have housed this socket's segment at home while the cores it
    /// names still hold private copies, so §III-D2's "no private copies"
    /// guarantee only holds once a live housed segment is ruled out.
    /// Returns the retrieved entry (extracted from the home block) and
    /// charges the memory round-trip, or `None` when nothing is housed.
    // lint:consumes(Request)
    fn recall_housed_entry(
        &mut self,
        t: &mut Cycle,
        s: usize,
        block: BlockAddr,
    ) -> Option<DirEntry> {
        if !protocol::must_recall_housed(self.mem.is_corrupted(block)) {
            return None;
        }
        let me = SocketId(s as u8);
        if self.mem.peek_entry(block, me)?.sharers.count() == 0 {
            return None; // dead segment tracks nothing
        }
        let home = self.cfg.home_socket(block);
        let bank = self.bank_of(block);
        self.stats.msg(MsgClass::MemRead);
        *t += self.sockets[s]
            .topo
            .bank_mc_latency(bank, 0, MsgClass::MemRead.bytes());
        // lint:context(MemRead)
        self.stats.dram_reads += 1;
        let tm = self.mem.dram_read(*t, home, block);
        self.stats.msg(MsgClass::MemReadData);
        *t = tm
            + self.sockets[s]
                .topo
                .bank_mc_latency(bank, 0, MsgClass::MemReadData.bytes())
            + 1;
        self.mem.extract_entry(block, me)
    }

    /// Decides the grant for an untracked-read LLC data hit on a
    /// multi-socket machine: E only when no *other* socket shares the
    /// block, S otherwise. Keeps the socket-level directory in step with
    /// the decision.
    // lint:consumes(Request)
    fn untracked_read_socket_grant(&mut self, t: &mut Cycle, s: usize, block: BlockAddr) -> MesiState {
        let home = self.cfg.home_socket(block);
        let me = SocketId(s as u8);
        if home != me {
            // Query + response on the socket interconnect.
            *t += 2 * self.cfg.inter_socket_cycles;
            self.stats.msg(MsgClass::SocketCtrl);
            self.stats.msg(MsgClass::SocketCtrl);
        }
        let lookup = self.mem.socket_dir_lookup(home, block);
        if !lookup.cached && self.mem.miss_needs_memory_read() {
            self.stats.dram_reads += 1;
            *t = self.mem.dram_read(*t, home, block);
        }
        let remote_sharers = lookup
            .entry
            .is_some_and(|e| e.sharers.iter().any(|x| x != me));
        if remote_sharers {
            let mut se = lookup.entry.expect("checked above");
            se.owned = false;
            se.sharers.insert(me);
            self.mem.socket_dir_update(home, block, se);
            MesiState::Shared
        } else {
            self.mem
                .socket_dir_update(home, block, SocketDirEntry::owned_by(me));
            MesiState::Exclusive
        }
    }

    /// Read-exclusive of a block with no directory entry in the socket.
    #[allow(clippy::too_many_arguments)]
    // lint:consumes(Request)
    fn untracked_rfo(
        &mut self,
        now: Cycle,
        t: &mut Cycle,
        s: usize,
        core: CoreId,
        block: BlockAddr,
        invals: &mut Vec<Invalidation>,
        downgrades: &mut Vec<Downgrade>,
    ) -> MesiState {
        let bank = self.bank_of(block);
        if matches!(
            self.sockets[s].banks[bank].block_line(block),
            Some(LlcLine::Data { .. })
        ) {
            // Same WB_DE hazard as the untracked read: a housed segment
            // still tracks private S copies that must be invalidated, not
            // silently overwritten by a fresh owned entry.
            if let Some(entry) = self.recall_housed_entry(t, s, block) {
                self.install_entry(now, s, block, entry, invals);
                self.track_live(-1); // re-installed, not newly live
                return self.serve_from_private(
                    now, t, s, core, block, entry, true, invals, downgrades,
                );
            }
            self.stats.llc_hits += 1;
            *t = self.bank_port(s, bank, *t, self.cfg.llc_data_cycles) + self.cfg.llc_data_cycles;
            self.stats.llc_data_accesses += 1;
            *t += self.sockets[s]
                .topo
                .bank_core_latency(bank, core.0 as usize, MsgClass::Data.bytes());
            self.stats.msg(MsgClass::Data);
            self.epd_on_private_transition(now, s, block);
            self.install_entry(now, s, block, DirEntry::owned(core), invals);
            // Unlike the untracked *read*, granting M here without first
            // consulting the socket-level directory is safe: the local data
            // line rules out a remote owner, and `socket_level_invalidate`
            // below invalidates every remote S copy and claims socket-level
            // ownership before the write is granted.
            let lat = self.socket_level_invalidate(now, s, block, invals);
            *t += lat;
            MesiState::Modified
        } else {
            self.memory_fetch(now, t, s, core, block, true, false, invals, downgrades)
        }
    }

    /// Case (iv): the block is neither in the LLC nor tracked in the socket
    /// — fetch through the home memory, handling corrupted blocks and (for
    /// multi-socket machines) the full Figure 15 flow.
    #[allow(clippy::too_many_arguments)]
    // lint:consumes(Request)
    fn memory_fetch(
        &mut self,
        now: Cycle,
        t: &mut Cycle,
        s: usize,
        core: CoreId,
        block: BlockAddr,
        exclusive: bool,
        code: bool,
        invals: &mut Vec<Invalidation>,
        downgrades: &mut Vec<Downgrade>,
    ) -> MesiState {
        self.stats.llc_misses += 1;
        let home = self.cfg.home_socket(block);
        if self.cfg.sockets > 1 {
            self.stats.socket_misses += 1;
            return self.socket_miss_flow(
                now, t, s, core, block, exclusive, code, invals, downgrades,
            );
        }
        // Single socket: home memory is local.
        let bank = self.bank_of(block);
        self.stats.msg(MsgClass::MemRead);
        // lint:context(MemRead)
        *t += self.sockets[s]
            .topo
            .bank_mc_latency(bank, 0, MsgClass::MemRead.bytes());
        if protocol::must_recall_housed(self.mem.is_corrupted(block)) {
            // The socket's own entry is housed in the home block (§III-D3
            // step 3, degenerate single-socket form): read the corrupted
            // block, extract the entry (one extra cycle), then conclude as
            // a directory hit with the block absent from the LLC.
            if !exclusive {
                self.stats.llc_read_misses_corrupted += 1;
            }
            self.stats.dram_reads += 1;
            let tm = self.mem.dram_read(*t, home, block);
            self.stats.msg(MsgClass::MemReadData);
            *t = tm
                + self.sockets[s]
                    .topo
                    .bank_mc_latency(bank, 0, MsgClass::MemReadData.bytes())
                + 1;
            let entry = self
                .mem
                .extract_entry(block, SocketId(s as u8))
                .expect("corrupted single-socket block houses our segment");
            self.install_entry(now, s, block, entry, invals);
            self.track_live(-1); // re-installed, not newly live
            return self.serve_from_private(
                now, t, s, core, block, entry, exclusive, invals, downgrades,
            );
        }
        self.stats.dram_reads += 1;
        let tm = self.mem.dram_read(*t, home, block);
        self.stats.msg(MsgClass::MemReadData);
        *t = tm
            + self.sockets[s]
                .topo
                .bank_mc_latency(bank, 0, MsgClass::MemReadData.bytes());
        *t += self.sockets[s]
            .topo
            .bank_core_latency(bank, core.0 as usize, MsgClass::Data.bytes());
        self.stats.msg(MsgClass::Data);
        self.finish_memory_fill(now, s, core, block, exclusive, code, invals)
    }

    /// Installs the entry and (per LLC design) the line for a block fetched
    /// from memory, returning the granted state.
    #[allow(clippy::too_many_arguments)]
    fn finish_memory_fill(
        &mut self,
        now: Cycle,
        s: usize,
        core: CoreId,
        block: BlockAddr,
        exclusive: bool,
        code: bool,
        invals: &mut Vec<Invalidation>,
    ) -> MesiState {
        let grant = protocol::untracked_fill_grant(
            match (exclusive, code) {
                (true, _) => Op::ReadExclusive,
                (false, true) => Op::CodeRead,
                (false, false) => Op::Read,
            },
            false,
        );
        // EPD does not allocate demand fills that land privately (M/E);
        // shared (code) fills do allocate. Other designs always fill.
        let fill = self.cfg.llc_design != LlcDesign::Epd || grant == MesiState::Shared;
        if fill {
            self.fill_llc(now, s, block, false, invals);
        }
        let entry = if grant == MesiState::Shared {
            DirEntry::shared(core)
        } else {
            DirEntry::owned(core)
        };
        self.install_entry(now, s, block, entry, invals);
        grant
    }

    /// Concludes a request whose directory entry was just recovered but
    /// whose data is not in the LLC: forward to the owner or a sharer core
    /// within the socket.
    #[allow(clippy::too_many_arguments)]
    fn serve_from_private(
        &mut self,
        now: Cycle,
        t: &mut Cycle,
        s: usize,
        core: CoreId,
        block: BlockAddr,
        entry: DirEntry,
        exclusive: bool,
        invals: &mut Vec<Invalidation>,
        downgrades: &mut Vec<Downgrade>,
    ) -> MesiState {
        let bank = self.bank_of(block);
        if exclusive {
            let inv_path = self.invalidate_sharers(
                s,
                bank,
                block,
                &entry,
                Some(core),
                InvalReason::Coherence,
                invals,
            );
            let source = entry
                .sharers
                .iter()
                .find(|&c| c != core)
                .expect("live entry has another holder");
            let data_path = self.forward_to_core(s, bank, source, core);
            *t += data_path.max(inv_path);
            self.epd_on_private_transition(now, s, block);
            self.write_entry_anywhere(now, s, block, DirEntry::owned(core), invals);
            let lat = self.socket_level_invalidate(now, s, block, invals);
            *t += lat;
            MesiState::Modified
        } else if entry.state.is_owned() {
            let owner = entry.owner().expect("owned entry has an owner");
            *t += self.forward_to_core(s, bank, owner, core);
            self.stats.three_hop_reads += 1;
            downgrades.push(Downgrade {
                socket: SocketId(s as u8),
                core: owner,
                block,
            });
            self.fill_llc(now, s, block, false, invals);
            let mut e = entry;
            e.state = DirState::Shared;
            e.sharers.insert(core);
            self.write_entry_anywhere(now, s, block, e, invals);
            MesiState::Shared
        } else {
            let sharer = entry.sharers.any().expect("live entry has sharers");
            *t += self.forward_to_core(s, bank, sharer, core);
            self.stats.three_hop_reads += 1;
            let mut e = entry;
            e.sharers.insert(core);
            // The just-installed entry can already have bounced back home
            // (degenerate LLC refusing the spill), so relocate rather than
            // assuming an on-socket location.
            self.write_entry_anywhere(now, s, block, e, invals);
            MesiState::Shared
        }
    }

    // ---------------------------------------------------------------------
    // Multi-socket coherence (Figure 15)
    // ---------------------------------------------------------------------

    /// Handles a miss that leaves the socket: the home socket's directory
    /// decides among the baseline, corrupted-block, and forwarding flows.
    #[allow(clippy::too_many_arguments)]
    // lint:consumes(Request)
    fn socket_miss_flow(
        &mut self,
        now: Cycle,
        t: &mut Cycle,
        s: usize,
        core: CoreId,
        block: BlockAddr,
        exclusive: bool,
        code: bool,
        invals: &mut Vec<Invalidation>,
        downgrades: &mut Vec<Downgrade>,
    ) -> MesiState {
        let home = self.cfg.home_socket(block);
        let h = home.0 as usize;
        if h != s {
            *t += self.cfg.inter_socket_cycles;
            self.stats.msg(MsgClass::SocketCtrl);
        }
        // Everything below happens at (or is relayed through) the home
        // socket, serving the inter-socket control message above.
        // lint:context(SocketCtrl)
        let lookup = self.mem.socket_dir_lookup(home, block);
        if !lookup.cached && self.mem.miss_needs_memory_read() {
            // Memory-backed socket directory: the entry read costs a DRAM
            // access (step 1 of Figure 15 on a directory-cache miss).
            self.stats.dram_reads += 1;
            *t = self.mem.dram_read(*t, home, block);
        }
        let corrupted = self.mem.is_corrupted(block);
        match lookup.entry {
            None => {
                // Invalid: exclusive grant from home memory (step 2).
                debug_assert!(!corrupted, "untracked blocks cannot be corrupted");
                self.stats.dram_reads += 1;
                let tm = self.mem.dram_read(*t, home, block);
                *t = tm;
                if h != s {
                    *t += self.cfg.inter_socket_cycles;
                    self.stats.msg(MsgClass::SocketData);
                }
                self.stats.msg(MsgClass::Data);
                let grant = self.finish_memory_fill(now, s, core, block, exclusive, code, invals);
                let e = SocketDirEntry {
                    owned: grant != MesiState::Shared,
                    sharers: SocketSet::only(SocketId(s as u8)),
                };
                self.mem.socket_dir_update(home, block, e);
                grant
            }
            Some(e) if corrupted && e.sharers.contains(SocketId(s as u8)) => {
                // Step 3: requester is a sharer/owner of a corrupted block;
                // baseline flow with a special (corrupted) response. One
                // extra cycle to extract the entry.
                if !exclusive {
                    self.stats.llc_read_misses_corrupted += 1;
                }
                self.stats.dram_reads += 1;
                let tm = self.mem.dram_read(*t, home, block);
                *t = tm + 1;
                if h != s {
                    *t += self.cfg.inter_socket_cycles;
                    self.stats.msg(MsgClass::SocketData);
                }
                let entry = self
                    .mem
                    .extract_entry(block, SocketId(s as u8))
                    .expect("sharing socket without in-socket entry has a segment");
                self.install_entry(now, s, block, entry, invals);
                self.track_live(-1);
                self.serve_from_private(now, t, s, core, block, entry, exclusive, invals, downgrades)
            }
            Some(e) => {
                // Forward to a sharer or the owner socket (steps 2/4).
                let f_socket = e
                    .owner()
                    .or_else(|| e.sharers.iter().find(|&x| x != SocketId(s as u8)))
                    .expect("tracked block has a holder");
                if !corrupted && !e.owned && !exclusive {
                    // Socket-Shared, clean memory: serve from home DRAM.
                    self.stats.dram_reads += 1;
                    let tm = self.mem.dram_read(*t, home, block);
                    *t = tm;
                    if h != s {
                        *t += self.cfg.inter_socket_cycles;
                        self.stats.msg(MsgClass::SocketData);
                    }
                    self.stats.msg(MsgClass::Data);
                    // E is only legal when no *other* socket shares the
                    // block; a remote S copy forces a Shared grant (SWMR).
                    let me = SocketId(s as u8);
                    let remote = e.sharers.iter().any(|x| x != me);
                    let grant =
                        self.finish_memory_fill(now, s, core, block, false, code || remote, invals);
                    if grant == MesiState::Shared {
                        let mut se = e;
                        se.owned = false;
                        se.sharers.insert(me);
                        self.mem.socket_dir_update(home, block, se);
                    } else {
                        self.mem
                            .socket_dir_update(home, block, SocketDirEntry::owned_by(me));
                    }
                    return grant;
                }
                // Need data from socket F (owner, or corrupted sharer).
                debug_assert_ne!(f_socket, SocketId(s as u8), "requester lost in socket dir");
                *t += self.cfg.inter_socket_cycles; // H → F forward
                self.stats.msg(MsgClass::SocketCtrl);
                *t += self.remote_retrieve(now, s, h, f_socket, block, exclusive, invals, downgrades);
                *t += self.cfg.inter_socket_cycles; // F → S data
                self.stats.msg(MsgClass::SocketData);
                if exclusive {
                    // Invalidate every other sharer socket.
                    for other in e.sharers.iter() {
                        if other == SocketId(s as u8) || other == f_socket {
                            continue;
                        }
                        self.stats.msg(MsgClass::SocketCtrl);
                        self.invalidate_socket_copies(now, other.0 as usize, block, invals);
                    }
                    let entry = DirEntry::owned(core);
                    self.epd_on_private_transition(now, s, block);
                    if self.cfg.llc_design == LlcDesign::Inclusive {
                        // Inclusion: a privately held block must keep an
                        // LLC line even when the data came from socket F.
                        self.fill_llc(now, s, block, false, invals);
                    }
                    self.install_entry(now, s, block, entry, invals);
                    // Claim socket-level ownership only after the fill and
                    // install settle: their victim churn can run a nested
                    // departure_check on this block, which must not see the
                    // requester in the socket directory while its entry is
                    // still in flight.
                    self.mem
                        .socket_dir_update(home, block, SocketDirEntry::owned_by(SocketId(s as u8)));
                    MesiState::Modified
                } else {
                    // Another socket holds the block too: S either way.
                    let _ = code;
                    let grant = MesiState::Shared;
                    let fill = self.cfg.llc_design != LlcDesign::Epd || grant == MesiState::Shared;
                    if fill {
                        self.fill_llc(now, s, block, false, invals);
                    }
                    let entry = DirEntry::shared(core);
                    self.install_entry(now, s, block, entry, invals);
                    // Publish sharing only now (see the exclusive arm), and
                    // from the *current* backing state — the churn above may
                    // have legitimately dropped other sockets.
                    let mut se = self
                        .mem
                        .socket_dir_peek(home, block)
                        .unwrap_or(SocketDirEntry {
                            owned: false,
                            sharers: SocketSet::default(),
                        });
                    se.owned = false;
                    se.sharers.insert(SocketId(s as u8));
                    self.mem.socket_dir_update(home, block, se);
                    grant
                }
            }
        }
    }

    /// Retrieves the block from socket `f` on behalf of requester socket
    /// `s` (steps 5–11 of Figure 15). Returns the latency spent inside (and
    /// re-reaching) socket `f`, including any DENF_NACK round trip.
    #[allow(clippy::too_many_arguments)]
    // lint:consumes(Request)
    fn remote_retrieve(
        &mut self,
        now: Cycle,
        _s: usize,
        h: usize,
        f_socket: SocketId,
        block: BlockAddr,
        exclusive: bool,
        invals: &mut Vec<Invalidation>,
        downgrades: &mut Vec<Downgrade>,
    ) -> u64 {
        let f = f_socket.0 as usize;
        let bank = self.bank_of(block);
        let mut lat = self.cfg.llc_tag_cycles; // F looks up LLC + directory
        self.stats.llc_tag_lookups += 1;
        self.stats.dir_lookups += 1;

        let mut entry_opt = self.find_entry(f, block);
        if entry_opt.is_none() {
            // A housed segment still naming sharers means F's cores hold
            // private copies (the entry went home via WB_DE) — possibly an
            // owner in M whose value the LLC line predates. That case must
            // take the DENF recovery below, not the LLC-only serve.
            let tracked_segment = self
                .mem
                .peek_entry(block, f_socket)
                .is_some_and(|e| e.sharers.count() > 0);
            if !tracked_segment && self.sockets[f].banks[bank].block_line(block).is_some() {
                // F serves from its LLC (socket-level owner with an
                // LLC-only copy after its cores evicted).
                lat += self.cfg.llc_data_cycles;
                self.stats.llc_data_accesses += 1;
                if exclusive {
                    self.invalidate_socket_copies(now, f, block, invals);
                } else {
                    self.remote_downgrade_writeback(now, f, block);
                }
                return lat;
            }
            // Step 7: F has copies but its entry went home — DENF_NACK.
            self.stats.denf_nacks += 1;
            self.stats.msg(MsgClass::DenfNack);
            lat += self.cfg.inter_socket_cycles; // F → H nack
            let seg = self.mem.extract_entry(block, f_socket);
            match seg {
                Some(entry) => {
                    // Steps 8–11: H reads the corrupted block, extracts F's
                    // entry, and resends the request with it.
                    self.stats.dram_reads += 1;
                    let _ = self
                        .mem
                        .dram_read(Cycle(now.0 + lat), SocketId(h as u8), block);
                    self.stats.msg(MsgClass::SocketData); // resend with entry
                    lat += self.cfg.inter_socket_cycles;
                    self.install_entry(now, f, block, entry, invals);
                    self.track_live(-1);
                    // The placement can bounce the entry straight back home
                    // (degenerate LLC); the location is not consulted below,
                    // only the entry contents.
                    entry_opt =
                        Some(self.find_entry(f, block).unwrap_or((entry, EntryLoc::Dedicated)));
                }
                None => {
                    // Synchronous model keeps the socket directory exact, so
                    // a forward without entry, line, or segment cannot
                    // happen; fall back to home memory defensively.
                    debug_assert!(false, "forwarded socket has no trace of {block:?}");
                    return lat;
                }
            }
        }

        let (entry, _loc) = entry_opt.expect("entry present or recovered");
        // Conclude within F (step 6): pull the block from an owner/sharer
        // core of F.
        let source = entry.sharers.any().expect("live entry has holders");
        lat += self.sockets[f]
            .topo
            .bank_core_latency(bank, source.0 as usize, MsgClass::Forward.bytes())
            + self.cfg.l2_hit_cycles;
        self.stats.msg(MsgClass::Forward);
        self.stats.msg(MsgClass::Data);
        if exclusive {
            self.invalidate_socket_copies(now, f, block, invals);
        } else {
            // Downgrade F's owner (if any) and write dirty data back to
            // home so that socket-Shared implies clean memory.
            if entry.state.is_owned() {
                downgrades.push(Downgrade {
                    socket: f_socket,
                    core: source,
                    block,
                });
                let mut e = entry;
                e.state = DirState::Shared;
                // The DENF recovery above may have re-installed the entry
                // into a degenerate LLC that bounced it straight back home;
                // write it wherever it now lives.
                self.write_entry_anywhere(now, f, block, e, invals);
                self.remote_downgrade_writeback(now, f, block);
            }
        }
        lat
    }

    /// On an inter-socket downgrade the owning socket writes the block back
    /// to home memory so that a socket-Shared block always has clean memory
    /// (conservative: charged whether or not the owner was dirty; the E
    /// case would only have sent an acknowledgement).
    // lint:consumes(Request)
    fn remote_downgrade_writeback(&mut self, now: Cycle, f: usize, block: BlockAddr) {
        self.stats.msg(MsgClass::SocketData);
        // Restores a corrupted home block if needed (pulling F's own housed
        // segment back in first).
        self.writeback_to_memory(now, f, block);
        // F's LLC copy (if any) is now clean.
        let bank = self.bank_of(block);
        if let Some(LlcLine::Data { dirty: true }) = self.sockets[f].banks[bank].block_line(block)
        {
            let _ = self.sockets[f].banks[bank].remove_block(block);
            let policy = self.policy();
            let _ = self.sockets[f].banks[bank].fill_data(block, false, policy);
        }
    }

    /// Invalidates every trace of `block` in socket `f` (a remote write is
    /// claiming exclusivity). Private copies go to the caller's
    /// invalidation list; the LLC line and any housed segment are dropped.
    // lint:consumes(Request)
    fn invalidate_socket_copies(
        &mut self,
        _now: Cycle,
        f: usize,
        block: BlockAddr,
        invals: &mut Vec<Invalidation>,
    ) {
        if let Some((entry, loc)) = self.find_entry(f, block) {
            let n = entry.sharers.count() as u64;
            self.stats.coherence_invalidations += n;
            self.stats.msg_n(MsgClass::Invalidation, n);
            // lint:context(Invalidation)
            self.stats.msg_n(MsgClass::Ack, n);
            for core in entry.sharers.iter() {
                invals.push(Invalidation {
                    socket: SocketId(f as u8),
                    core,
                    block,
                    reason: InvalReason::Coherence,
                });
            }
            self.free_entry(f, block, loc, false);
        }
        if let Some(entry) = self.mem.extract_entry(block, SocketId(f as u8)) {
            self.track_live(-1);
            // The housed segment still tracks this socket's private copies
            // (the entry went home via WB_DE); they must be invalidated
            // too, or a stale sharer survives the remote write.
            let n = entry.sharers.count() as u64;
            self.stats.coherence_invalidations += n;
            self.stats.msg_n(MsgClass::Invalidation, n);
            // lint:context(Invalidation)
            self.stats.msg_n(MsgClass::Ack, n);
            for core in entry.sharers.iter() {
                invals.push(Invalidation {
                    socket: SocketId(f as u8),
                    core,
                    block,
                    reason: InvalReason::Coherence,
                });
            }
        }
        let bank = self.bank_of(block);
        let _ = self.sockets[f].banks[bank].remove_block(block);
    }

    /// On an upgrade/RFO that concluded within socket `s`, other sockets
    /// may still share the block: invalidate them through the home socket.
    /// Returns the added critical-path latency.
    // lint:consumes(Request)
    fn socket_level_invalidate(
        &mut self,
        now: Cycle,
        s: usize,
        block: BlockAddr,
        invals: &mut Vec<Invalidation>,
    ) -> u64 {
        if self.cfg.sockets == 1 {
            return 0;
        }
        let home = self.cfg.home_socket(block);
        let lookup = self.mem.socket_dir_lookup(home, block);
        let Some(e) = lookup.entry else {
            return 0;
        };
        let me = SocketId(s as u8);
        // `e` is a copied entry, so the sharer set can be walked directly —
        // no scratch list of "other" sockets is materialised.
        if !e.sharers.iter().any(|x| x != me) {
            if e.owner() != Some(me) {
                self.mem
                    .socket_dir_update(home, block, SocketDirEntry::owned_by(me));
            }
            return 0;
        }
        let mut lat = if home.0 as usize == s {
            0
        } else {
            self.cfg.inter_socket_cycles
        };
        self.stats.msg(MsgClass::SocketCtrl);
        for other in e.sharers.iter().filter(|&x| x != me) {
            self.stats.msg(MsgClass::SocketCtrl); // invalidation
            self.stats.msg(MsgClass::SocketCtrl); // acknowledgement
            self.invalidate_socket_copies(now, other.0 as usize, block, invals);
        }
        lat += 2 * self.cfg.inter_socket_cycles; // worst-case inv + ack
        self.mem
            .socket_dir_update(home, block, SocketDirEntry::owned_by(me));
        lat
    }

    // ---------------------------------------------------------------------
    // Private-cache evictions (Figure 16)
    // ---------------------------------------------------------------------

    /// Notifies the uncore that `core` evicted its copy of `block`.
    /// Evictions are off the critical path, so no latency is returned; any
    /// back-invalidations produced by LLC churn are returned for the caller
    /// to apply.
    pub fn evict(
        &mut self,
        now: Cycle,
        socket: SocketId,
        core: CoreId,
        block: BlockAddr,
        kind: EvictKind,
    ) -> Vec<Invalidation> {
        let mut invals = Vec::new();
        self.evict_into(now, socket, core, block, kind, &mut invals);
        invals
    }

    /// Allocation-free form of [`Self::evict`]: any back-invalidations are
    /// appended to the caller-owned buffer (the sim engine reuses one buffer
    /// across every eviction). The oracle hook sees exactly the entries this
    /// call appended.
    // lint:consumes(EvictNotice)
    pub fn evict_into(
        &mut self,
        now: Cycle,
        socket: SocketId,
        core: CoreId,
        block: BlockAddr,
        kind: EvictKind,
        invals: &mut Vec<Invalidation>,
    ) {
        let s = socket.0 as usize;
        let bank = self.bank_of(block);
        let inv_start = invals.len();
        // The notice payload follows the message class that will be sent:
        // dirty writebacks and EPD clean-exclusive victim transfers carry
        // the data block (§III-E); every other notice is control-sized.
        let payload = match kind {
            EvictKind::Dirty => MsgClass::Writeback.bytes(),
            EvictKind::CleanExclusive if self.cfg.llc_design == LlcDesign::Epd => {
                MsgClass::Writeback.bytes()
            }
            _ => MsgClass::EvictNotice.bytes(),
        };
        let t = now
            + self
                .sockets[s]
                .topo
                .core_bank_latency(core.0 as usize, bank, payload);
        let _ = self.bank_port(s, bank, t, self.cfg.llc_tag_cycles);
        self.stats.llc_tag_lookups += 1;
        self.stats.dir_lookups += 1;

        match self.find_entry(s, block) {
            Some((entry, _)) if !entry.sharers.contains(core) => {
                // Stale notice: the line was concurrently invalidated (e.g.
                // a DEV raced this eviction) and the entry re-allocated by
                // other cores. Real protocols NACK this; drop it. The notice
                // message itself was still sent and must be accounted.
                self.stats.msg(match kind {
                    EvictKind::Dirty => MsgClass::Writeback,
                    EvictKind::CleanExclusive if self.cfg.llc_design == LlcDesign::Epd => {
                        MsgClass::Writeback
                    }
                    _ => MsgClass::EvictNotice,
                });
            }
            Some((entry, loc)) => {
                // EPD moves every owner-evicted block into the LLC (the
                // victim transfer carries data even when clean, §III-E).
                let epd_victim_transfer = self.cfg.llc_design == LlcDesign::Epd
                    && kind == EvictKind::CleanExclusive;
                match kind {
                    EvictKind::Dirty => self.stats.msg(MsgClass::Writeback),
                    EvictKind::CleanExclusive if epd_victim_transfer => {
                        self.stats.msg(MsgClass::Writeback);
                    }
                    EvictKind::CleanExclusive if loc == EntryLoc::Fused => {
                        // Carries the low reconstruction bits (§III-C2).
                        self.stats.msg(MsgClass::EvictNoticeBits);
                    }
                    _ => self.stats.msg(MsgClass::EvictNotice),
                }
                if kind == EvictKind::Dirty {
                    // The writeback allocates/updates the LLC line (this is
                    // also EPD's allocation-on-owner-eviction rule).
                    self.fill_llc(now, s, block, true, invals);
                } else if epd_victim_transfer {
                    self.fill_llc(now, s, block, false, invals);
                }
                let mut e = entry;
                e.sharers.remove(core);
                match self.relocate(s, block) {
                    Some(cur_loc) => {
                        if e.is_dead() {
                            // FuseAll's last S sharer did not carry the bits
                            // in its notice; the home retrieves them with a
                            // special acknowledgement.
                            let retrieval =
                                loc == EntryLoc::Fused && kind == EvictKind::CleanShared;
                            self.free_entry(s, block, cur_loc, retrieval);
                            if self.sockets[s].banks[bank].block_line(block).is_none() {
                                // The evicting core held the last in-socket
                                // copy; if home memory is corrupted it must
                                // be restored from this copy.
                                self.restore_if_last_copy(now, s, block);
                            }
                            self.departure_check(now, s, block);
                        } else {
                            self.update_entry(now, s, block, e, cur_loc, invals);
                        }
                    }
                    None => {
                        // The dirty-writeback fill above pushed this block's
                        // own entry home (WB_DE); conclude via Figure 16.
                        self.evict_with_entry_at_home(now, s, core, block, kind, invals);
                    }
                }
            }
            None => {
                // ZeroDEV: the entry lives in home memory (corrupted block).
                // The notice reaching the home bank is accounted here; the
                // GET_DE / writeback traffic inside.
                self.stats.msg(match kind {
                    EvictKind::Dirty => MsgClass::Writeback,
                    EvictKind::CleanExclusive if self.cfg.llc_design == LlcDesign::Epd => {
                        MsgClass::Writeback
                    }
                    _ => MsgClass::EvictNotice,
                });
                if kind == EvictKind::Dirty {
                    // The evictor held the block in M, so any LLC data line
                    // predates that write and is stale. Drop it before the
                    // writeback concludes at home (Figure 16 step 2), or a
                    // later untracked read would hit the stale line.
                    let _ = self.sockets[s].banks[bank].remove_block(block);
                }
                self.evict_with_entry_at_home(now, s, core, block, kind, invals);
            }
        }
        if self.oracle.is_some() {
            let mut o = self.oracle.take().expect("checked above");
            o.after_evict(self, socket, core, block, kind, &invals[inv_start..]);
            self.oracle = Some(o);
        }
    }

    /// Figure 16: the eviction could not find the sparse directory entry
    /// within the socket.
    // lint:consumes(EvictNotice)
    fn evict_with_entry_at_home(
        &mut self,
        now: Cycle,
        s: usize,
        core: CoreId,
        block: BlockAddr,
        kind: EvictKind,
        _invals: &mut Vec<Invalidation>,
    ) {
        let home = self.cfg.home_socket(block);
        let me = SocketId(s as u8);
        if kind == EvictKind::Dirty {
            // Step 2: a full-block writeback means the evictor was the
            // system-wide owner; forward to home as a normal writeback (the
            // notice/writeback message itself was recorded by the caller).
            debug_assert!(
                self.mem
                    .corrupted_block(block)
                    .is_none_or(|cb| cb.sockets().count() <= 1),
                "sole owner implies at most our own segment"
            );
            let _ = self.mem.extract_entry(block, me);
            self.track_live(-1);
            self.mem.restore(block);
            self.stats.msg(MsgClass::MemWrite);
            if home != me {
                self.stats.msg(MsgClass::SocketData);
            }
            self.mem.dram_write(now, home, block);
            self.stats.dram_writes += 1;
            self.departure_check(now, s, block);
            return;
        }
        // Steps 3–6: GET_DE — read the corrupted block from home, extract
        // our entry, update it, and write it back (or conclude the block).
        self.stats.get_de_requests += 1;
        self.stats.msg(MsgClass::GetDirEntry);
        if home != me {
            self.stats.msg(MsgClass::SocketCtrl);
        }
        // lint:context(GetDirEntry)
        self.stats.dram_reads += 1;
        let tr = self.mem.dram_read(now, home, block);
        self.stats.msg(MsgClass::MemReadData);
        // lint:context(end)
        let Some(entry) = self.mem.peek_entry(block, me) else {
            // Stale notice: the line was invalidated concurrently and no
            // entry survives anywhere. Drop it.
            return;
        };
        if !entry.sharers.contains(core) {
            return; // stale notice raced an invalidation
        }
        let mut e = entry;
        e.sharers.remove(core);
        if e.is_dead() {
            let _ = self.mem.extract_entry(block, me);
            self.track_live(-1);
            let bank = self.bank_of(block);
            let llc_has = self.sockets[s].banks[bank].block_line(block).is_some();
            // Is this the system-wide last copy?
            let lookup = self.mem.socket_dir_lookup(home, block);
            let sys_last = lookup
                .entry
                .is_none_or(|se| se.sharers.count() == 1 && se.sharers.contains(me));
            if !llc_has && sys_last {
                // Retrieve the block from the evicting core to overwrite
                // the corrupted memory block (§III-D4, last paragraph).
                self.stats.msg(MsgClass::Writeback);
                if home != me {
                    self.stats.msg(MsgClass::SocketData);
                }
                self.mem.restore(block);
                self.mem.dram_write(tr, home, block);
                self.stats.dram_writes += 1;
            }
            self.departure_check(now, s, block);
        } else {
            // Step 6: send the updated entry back for writing.
            self.mem.rewrite_entry(block, me, e);
            self.mem.dram_write(tr, home, block);
            self.stats.dram_writes += 1;
        }
    }

    // ---------------------------------------------------------------------
    // Caller-reported dirty data
    // ---------------------------------------------------------------------

    /// The owner downgraded by a read held the block in M: its sharing
    /// writeback carries the dirty data to the home LLC (and, on
    /// multi-socket machines, home memory).
    // lint:consumes(Request)
    pub fn sharing_writeback(&mut self, now: Cycle, socket: SocketId, block: BlockAddr) {
        let s = socket.0 as usize;
        self.stats.msg(MsgClass::Writeback);
        let bank = self.bank_of(block);
        if let Some(line) = self.sockets[s].banks[bank].block_line(block) {
            match line {
                LlcLine::Data { .. } => {
                    let policy = self.policy();
                    let _ = self.sockets[s].banks[bank].fill_data(block, true, policy);
                }
                LlcLine::Fused { .. } => {
                    // Keep the fused entry; remember the dirty block bits.
                    let entry = self.sockets[s].banks[bank].unfuse(block);
                    let policy = self.policy();
                    let _ = self.sockets[s].banks[bank].fill_data(block, true, policy);
                    self.sockets[s].banks[bank].fuse_entry(block, entry);
                }
                LlcLine::Spilled { .. } => unreachable!("block_line excludes spilled"),
            }
        } else if self.cfg.sockets == 1 {
            // No line survived this transaction's set churn (e.g. an FPSS
            // M→S un-fuse whose spill victimized the block's own data
            // line): the dirty data falls through to home memory.
            self.writeback_to_memory(now, s, block);
        }
        if self.cfg.sockets > 1 {
            self.writeback_to_memory(now, s, block);
        }
        if self.oracle.is_some() {
            let mut o = self.oracle.take().expect("checked above");
            o.after_sharing_writeback(self, socket, block);
            self.oracle = Some(o);
        }
    }

    /// A DEV-invalidated owner held the block in M: the dirty block is
    /// retrieved into the LLC (the paper's observation explaining
    /// freqmine's behaviour, §I-A1). Returns back-invalidations caused by
    /// the fill.
    pub fn dev_dirty_recall(&mut self, now: Cycle, socket: SocketId, block: BlockAddr) -> Vec<Invalidation> {
        let mut invals = Vec::new();
        self.dev_dirty_recall_into(now, socket, block, &mut invals);
        invals
    }

    /// Allocation-free form of [`Self::dev_dirty_recall`]: back-invalidations
    /// caused by the fill are appended to the caller-owned buffer.
    // The recall is triggered by a DEV while the directory allocates on
    // behalf of a request; the synchronous model folds it into that
    // transaction, so the dirty writeback is request-caused (rank 0 -> 0).
    // lint:consumes(Request)
    pub fn dev_dirty_recall_into(
        &mut self,
        now: Cycle,
        socket: SocketId,
        block: BlockAddr,
        invals: &mut Vec<Invalidation>,
    ) {
        let s = socket.0 as usize;
        self.stats.dev_dirty_recalls += 1;
        self.stats.msg(MsgClass::Writeback);
        let inv_start = invals.len();
        self.fill_llc(now, s, block, true, invals);
        if self.oracle.is_some() {
            let mut o = self.oracle.take().expect("checked above");
            o.after_dev_recall(self, socket, block, &invals[inv_start..]);
            self.oracle = Some(o);
        }
    }

    /// An inclusion-invalidated owner held the block in M: the dirty data
    /// goes to home memory (its LLC line is being evicted).
    // lint:consumes(Request, EvictNotice)
    pub fn inclusion_dirty_writeback(&mut self, now: Cycle, socket: SocketId, block: BlockAddr) {
        let s = socket.0 as usize;
        self.stats.msg(MsgClass::Writeback);
        self.writeback_to_memory(now, s, block);
        if self.oracle.is_some() {
            let mut o = self.oracle.take().expect("checked above");
            o.after_inclusion_writeback(self, socket, block);
            self.oracle = Some(o);
        }
    }

    // ---------------------------------------------------------------------
    // Diagnostics
    // ---------------------------------------------------------------------

    /// Total LLC lines currently occupied by spilled directory entries
    /// across one socket (Figure 5 / §III-B occupancy measurements).
    pub fn spilled_lines(&self, socket: SocketId) -> usize {
        self.sockets[socket.0 as usize]
            .banks
            .iter()
            .map(LlcBank::spilled_line_count)
            .sum()
    }

    /// The directory entry currently tracking `block` in `socket`, wherever
    /// it lives (tests and invariant checks).
    pub fn entry_of(&self, socket: SocketId, block: BlockAddr) -> Option<DirEntry> {
        self.find_entry(socket.0 as usize, block).map(|(e, _)| e)
    }

    /// The LLC line for `block` in `socket` (tests and invariant checks).
    pub fn llc_line_of(&self, socket: SocketId, block: BlockAddr) -> Option<LlcLine> {
        self.sockets[socket.0 as usize].banks[self.bank_of(block)].block_line(block)
    }

    /// True when the home-memory copy of `block` is corrupted.
    pub fn memory_corrupted(&self, block: BlockAddr) -> bool {
        self.mem.is_corrupted(block)
    }

    /// The entry for `block` in `socket`'s *dedicated* directory structure
    /// only — recency-neutral (model-checker canonicalisation).
    pub fn dedicated_entry_of(&self, socket: SocketId, block: BlockAddr) -> Option<DirEntry> {
        self.sockets[socket.0 as usize].dir.peek(block)
    }

    /// The full contents of the LLC set `block` maps to in `socket`,
    /// MRU→LRU — replacement order is protocol-visible state, so the model
    /// checker folds it into its canonical state encoding.
    pub fn llc_set_of(&self, socket: SocketId, block: BlockAddr) -> Vec<(BlockAddr, LlcLine)> {
        self.sockets[socket.0 as usize].banks[self.bank_of(block)].set_contents_mru(block)
    }

    /// Walks every socket and checks structural protocol invariants:
    /// FPSS's fused⇒M/E and spilled⇒S (§III-C2), single-owner consistency,
    /// and that corrupted memory blocks are still reachable. Panics on
    /// violation (used by tests and the property harness).
    pub fn check_invariants(&self) {
        let fpss = self.zd().map(|z| z.policy) == Some(SpillPolicy::FusePrivateSpillShared);
        for (si, socket) in self.sockets.iter().enumerate() {
            for bank in &socket.banks {
                for (block, line) in bank.iter() {
                    match line {
                        LlcLine::Fused { entry, .. } => {
                            assert!(!entry.is_dead(), "live fused entry at {block:?}");
                            if fpss {
                                assert!(
                                    entry.state.is_owned(),
                                    "FPSS invariant: fused ⇒ M/E at {block:?}"
                                );
                            }
                            assert!(
                                socket.dir.peek(block).is_none(),
                                "entry duplicated in dedicated dir at {block:?}"
                            );
                        }
                        LlcLine::Spilled { entry } => {
                            assert!(!entry.is_dead(), "live spilled entry at {block:?}");
                            if fpss {
                                // A spilled M/E entry is only legal when the
                                // block is absent from the LLC.
                                if entry.state.is_owned() {
                                    assert!(
                                        bank.block_line(block).is_none(),
                                        "FPSS invariant: spilled M/E with resident block at {block:?}"
                                    );
                                }
                            }
                            assert!(
                                socket.dir.peek(block).is_none(),
                                "entry duplicated in dedicated dir at {block:?}"
                            );
                        }
                        LlcLine::Data { .. } => {}
                    }
                }
            }
            let _ = si;
        }
    }
}
