//! Directory entries and the dedicated directory structures.
//!
//! [`DirStore`] is the *dedicated* (SRAM) directory structure of one socket:
//! the traditional sparse directory, the idealised unbounded directory, the
//! SecDir and Multi-grain baselines, or nothing at all. ZeroDEV's LLC-resident
//! entries are *not* stored here — they live in [`crate::llc::LlcBank`] lines;
//! the lookup across both happens in [`crate::system::System`].

use crate::mgd::MultiGrainDir;
use crate::secdir::SecDir;
use zerodev_cache::{Replacement, SetAssoc};
use zerodev_common::config::{DirectoryKind, SecDirGeometry, SystemConfig};
use zerodev_common::ids::SharerSet;
use zerodev_common::FlatMap;
use zerodev_common::{BlockAddr, CoreId, DirState};

/// One coherence-directory entry: the state and location(s) of a block that
/// is privately cached by at least one core of the socket.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DirEntry {
    /// M/E (single owner) or S (one or more sharers).
    pub state: DirState,
    /// Full-map sharer vector (the owner for M/E entries).
    pub sharers: SharerSet,
}

impl DirEntry {
    /// A fresh entry for a block just granted to `core` in M or E.
    pub fn owned(core: CoreId) -> Self {
        DirEntry {
            state: DirState::OwnedME,
            sharers: SharerSet::only(core),
        }
    }

    /// A fresh entry for a block granted to `core` in S.
    pub fn shared(core: CoreId) -> Self {
        DirEntry {
            state: DirState::Shared,
            sharers: SharerSet::only(core),
        }
    }

    /// The owning core, when the entry is in the M/E state.
    pub fn owner(&self) -> Option<CoreId> {
        if self.state.is_owned() {
            self.sharers.any()
        } else {
            None
        }
    }

    /// True when no core holds a copy any more (the entry can be freed).
    pub fn is_dead(&self) -> bool {
        self.sharers.is_empty()
    }

    /// Serializes the entry for checkpointing.
    pub fn snap(&self, w: &mut zerodev_common::snap::SnapWriter) {
        w.u8(match self.state {
            DirState::OwnedME => 0,
            DirState::Shared => 1,
        });
        w.u128(self.sharers.0);
    }

    /// Decodes a [`DirEntry::snap`] image.
    ///
    /// # Errors
    /// Fails with a decode [`zerodev_common::snap::SnapError`] on a bad
    /// state tag or truncated input.
    pub fn unsnap(
        r: &mut zerodev_common::snap::SnapReader<'_>,
    ) -> Result<DirEntry, zerodev_common::snap::SnapError> {
        let state = match r.u8("dir entry state")? {
            0 => DirState::OwnedME,
            1 => DirState::Shared,
            _ => {
                return Err(zerodev_common::snap::SnapError::Corrupt {
                    context: "dir entry state",
                })
            }
        };
        Ok(DirEntry {
            state,
            sharers: SharerSet(r.u128("dir entry sharers")?),
        })
    }
}

/// A directory entry forcibly evicted from a dedicated structure, together
/// with the block it was tracking. In the baseline protocol every private
/// copy it tracked must be invalidated — these invalidations are the DEVs.
pub type EvictedEntry = (BlockAddr, DirEntry);

/// Result of trying to place a new entry in the dedicated directory.
#[derive(Debug, PartialEq, Eq)]
pub enum AllocOutcome {
    /// Entry stored in the dedicated structure without casualties.
    Stored,
    /// Entry stored, but one or more victim entries were evicted to make
    /// room (baseline behaviour; SecDir migrations and Multi-grain region
    /// breakups can evict several at once).
    Evicted(Vec<EvictedEntry>),
    /// The structure refused the entry (replacement-disabled and full, or a
    /// directory-less configuration); ZeroDEV must accommodate it in the LLC.
    Overflow,
}

/// The dedicated directory structure of one socket.
#[derive(Clone, Debug)]
pub enum DirStore {
    /// Traditional set-associative sparse directory (1-bit NRU).
    Sparse {
        /// Monolithic array (equivalent to the per-bank slices of the paper;
        /// same index bits, same conflict behaviour).
        array: SetAssoc<DirEntry>,
        /// ZeroDEV option: overflow instead of evicting (§III-C4).
        replacement_disabled: bool,
    },
    /// Idealised unlimited-capacity directory.
    Unbounded(FlatMap<DirEntry>),
    /// No dedicated structure (ZeroDEV "No Dir"): every allocation overflows.
    None,
    /// SecDir baseline.
    SecDir(SecDir),
    /// Multi-grain Directory baseline.
    MultiGrain(MultiGrainDir),
}

impl DirStore {
    /// Builds the directory configured in `cfg` for one socket.
    pub fn build(cfg: &SystemConfig) -> Self {
        match &cfg.directory {
            DirectoryKind::Sparse {
                ratio,
                ways,
                replacement_disabled,
            } => {
                let entries = cfg.dir_entries(*ratio);
                let sets = (entries / ways).next_power_of_two().max(1);
                DirStore::Sparse {
                    array: SetAssoc::new(sets, *ways, Replacement::Nru),
                    replacement_disabled: *replacement_disabled,
                }
            }
            DirectoryKind::Unbounded => DirStore::Unbounded(FlatMap::new()),
            DirectoryKind::None => DirStore::None,
            DirectoryKind::SecDir(geom) => DirStore::SecDir(SecDir::new(*geom, cfg.cores)),
            DirectoryKind::MultiGrain { ratio, ways } => {
                let entries = cfg.dir_entries(*ratio);
                DirStore::MultiGrain(MultiGrainDir::new(entries, *ways))
            }
        }
    }

    /// Picks the SecDir geometry for a machine/ratio pair (the paper's
    /// iso-storage configurations).
    pub fn secdir_geometry(cores: usize, eighth: bool) -> SecDirGeometry {
        match (cores >= 128, eighth) {
            (false, false) => SecDirGeometry::eight_core_1x(),
            (false, true) => SecDirGeometry::eight_core_eighth(),
            (true, false) => SecDirGeometry::server_1x(),
            (true, true) => SecDirGeometry::server_eighth(),
        }
    }

    /// Looks up the entry for `block` without touching replacement state.
    pub fn peek(&self, block: BlockAddr) -> Option<DirEntry> {
        match self {
            DirStore::Sparse { array, .. } => array.peek(block.0, |_| true).copied(),
            DirStore::Unbounded(map) => map.get(block.0).copied(),
            DirStore::None => None,
            DirStore::SecDir(sd) => sd.peek(block),
            DirStore::MultiGrain(mgd) => mgd.peek(block),
        }
    }

    /// Looks up and touches (promotes) the entry for `block`.
    pub fn lookup(&mut self, block: BlockAddr) -> Option<DirEntry> {
        match self {
            DirStore::Sparse { array, .. } => array.touch(block.0, |_| true).map(|e| *e),
            DirStore::Unbounded(map) => map.get(block.0).copied(),
            DirStore::None => None,
            DirStore::SecDir(sd) => sd.lookup(block),
            DirStore::MultiGrain(mgd) => mgd.lookup(block),
        }
    }

    /// Overwrites the entry for `block` with the new sharer set / state.
    /// The entry must already be present.
    ///
    /// Returns any victim entries the reshaping evicted (SecDir may have to
    /// re-consolidate a partition-split entry into its shared partition;
    /// Multi-grain may have to break a block out of a region entry).
    ///
    /// # Panics
    /// Panics when the entry is absent (protocol invariant violation) or
    /// `entry` is dead.
    pub fn update(&mut self, block: BlockAddr, entry: DirEntry) -> Vec<EvictedEntry> {
        assert!(
            !entry.is_dead(),
            "dead entries must be removed, not updated"
        );
        match self {
            DirStore::Sparse { array, .. } => {
                let e = array
                    .peek_mut(block.0, |_| true)
                    .expect("updated entry present in sparse directory");
                *e = entry;
                Vec::new()
            }
            DirStore::Unbounded(map) => {
                let e = map.get_mut(block.0).expect("updated entry present");
                *e = entry;
                Vec::new()
            }
            DirStore::None => panic!("no dedicated directory to update"),
            DirStore::SecDir(sd) => sd.update(block, entry),
            DirStore::MultiGrain(mgd) => mgd.update(block, entry),
        }
    }

    /// Removes and returns the entry for `block` (all private copies gone).
    pub fn remove(&mut self, block: BlockAddr) -> Option<DirEntry> {
        match self {
            DirStore::Sparse { array, .. } => array.remove(block.0, |_| true),
            DirStore::Unbounded(map) => map.remove(block.0),
            DirStore::None => None,
            DirStore::SecDir(sd) => sd.remove(block),
            DirStore::MultiGrain(mgd) => mgd.remove(block),
        }
    }

    /// Allocates a new entry for a previously untracked block.
    pub fn allocate(&mut self, block: BlockAddr, entry: DirEntry) -> AllocOutcome {
        debug_assert!(self.peek(block).is_none(), "allocate over live entry");
        match self {
            DirStore::Sparse {
                array,
                replacement_disabled,
            } => {
                if *replacement_disabled {
                    match array.insert_no_evict(block.0, entry) {
                        Ok(()) => AllocOutcome::Stored,
                        Err(_) => AllocOutcome::Overflow,
                    }
                } else {
                    match array.insert(block.0, entry, |_| false) {
                        None => AllocOutcome::Stored,
                        Some((key, victim)) => {
                            AllocOutcome::Evicted(vec![(BlockAddr(key), victim)])
                        }
                    }
                }
            }
            DirStore::Unbounded(map) => {
                map.insert(block.0, entry);
                AllocOutcome::Stored
            }
            DirStore::None => AllocOutcome::Overflow,
            DirStore::SecDir(sd) => sd.allocate(block, entry),
            DirStore::MultiGrain(mgd) => mgd.allocate(block, entry),
        }
    }

    /// Current number of live dedicated-structure entries (diagnostics).
    pub fn live_entries(&self) -> usize {
        match self {
            DirStore::Sparse { array, .. } => array.len(),
            DirStore::Unbounded(map) => map.len(),
            DirStore::None => 0,
            DirStore::SecDir(sd) => sd.live_entries(),
            DirStore::MultiGrain(mgd) => mgd.live_entries(),
        }
    }

    /// Serializes the directory contents for checkpointing. Geometry is
    /// rebuilt from configuration on restore; only occupancy is written.
    pub fn snap(&self, w: &mut zerodev_common::snap::SnapWriter) {
        match self {
            DirStore::Sparse {
                array,
                replacement_disabled,
            } => {
                w.u8(0);
                w.bool(*replacement_disabled);
                array.snapshot_with(w, |w, e| e.snap(w));
            }
            DirStore::Unbounded(map) => {
                w.u8(1);
                map.snapshot_with(w, |w, e| e.snap(w));
            }
            DirStore::None => w.u8(2),
            DirStore::SecDir(sd) => {
                w.u8(3);
                sd.snap(w);
            }
            DirStore::MultiGrain(mgd) => {
                w.u8(4);
                mgd.snap(w);
            }
        }
    }

    /// Restores a [`DirStore::snap`] image into this store, which must have
    /// been freshly built from the same configuration ([`DirStore::build`]).
    ///
    /// # Errors
    /// Fails with a structural [`zerodev_common::snap::SnapError`] when the
    /// image's directory kind or geometry disagrees with this store.
    pub fn unsnap(
        &mut self,
        r: &mut zerodev_common::snap::SnapReader<'_>,
    ) -> Result<(), zerodev_common::snap::SnapError> {
        use zerodev_common::snap::SnapError;
        let tag = r.u8("dirstore kind")?;
        match (tag, self) {
            (
                0,
                DirStore::Sparse {
                    array,
                    replacement_disabled,
                },
            ) => {
                if r.bool("dirstore replacement_disabled")? != *replacement_disabled {
                    return Err(SnapError::Corrupt {
                        context: "dirstore replacement_disabled",
                    });
                }
                array.restore_with(r, DirEntry::unsnap)
            }
            (1, DirStore::Unbounded(map)) => {
                *map = FlatMap::restore_with(r, DirEntry::unsnap)?;
                Ok(())
            }
            (2, DirStore::None) => Ok(()),
            (3, DirStore::SecDir(sd)) => sd.unsnap(r),
            (4, DirStore::MultiGrain(mgd)) => mgd.unsnap(r),
            _ => Err(SnapError::Corrupt {
                context: "dirstore kind",
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zerodev_common::config::Ratio;

    fn cfg() -> SystemConfig {
        SystemConfig::baseline_8core()
    }

    fn small_sparse(ways: usize, replacement_disabled: bool) -> (DirStore, usize) {
        let mut c = cfg();
        c.directory = DirectoryKind::Sparse {
            ratio: Ratio::new(1, 1024),
            ways,
            replacement_disabled,
        };
        let d = DirStore::build(&c);
        let sets = match &d {
            DirStore::Sparse { array, .. } => array.sets(),
            _ => unreachable!(),
        };
        (d, sets)
    }

    #[test]
    fn entry_constructors() {
        let e = DirEntry::owned(CoreId(3));
        assert_eq!(e.owner(), Some(CoreId(3)));
        assert!(!e.is_dead());
        let s = DirEntry::shared(CoreId(1));
        assert_eq!(s.owner(), None);
        assert_eq!(s.state, DirState::Shared);
    }

    #[test]
    fn sparse_store_roundtrip() {
        let mut d = DirStore::build(&cfg());
        let b = BlockAddr(0x42);
        assert_eq!(d.peek(b), None);
        assert_eq!(
            d.allocate(b, DirEntry::owned(CoreId(1))),
            AllocOutcome::Stored
        );
        assert_eq!(d.lookup(b).unwrap().owner(), Some(CoreId(1)));
        let mut e = d.peek(b).unwrap();
        e.sharers.insert(CoreId(2));
        e.state = DirState::Shared;
        assert!(d.update(b, e).is_empty());
        assert_eq!(d.peek(b).unwrap().sharers.count(), 2);
        assert!(d.remove(b).is_some());
        assert_eq!(d.peek(b), None);
        assert_eq!(d.live_entries(), 0);
    }

    #[test]
    fn sparse_conflict_evicts() {
        let (mut d, sets) = small_sparse(2, false);
        let blocks: Vec<BlockAddr> = (0..3).map(|i| BlockAddr(i * sets as u64)).collect();
        assert_eq!(
            d.allocate(blocks[0], DirEntry::owned(CoreId(0))),
            AllocOutcome::Stored
        );
        assert_eq!(
            d.allocate(blocks[1], DirEntry::owned(CoreId(1))),
            AllocOutcome::Stored
        );
        match d.allocate(blocks[2], DirEntry::owned(CoreId(2))) {
            AllocOutcome::Evicted(victims) => {
                assert_eq!(victims.len(), 1);
                let (block, entry) = victims[0];
                assert!(block == blocks[0] || block == blocks[1]);
                assert!(entry.owner().is_some());
            }
            other => panic!("expected eviction, got {other:?}"),
        }
        assert_eq!(d.live_entries(), 2);
    }

    #[test]
    fn replacement_disabled_overflows() {
        let (mut d, sets) = small_sparse(2, true);
        for i in 0..2 {
            assert_eq!(
                d.allocate(BlockAddr(i * sets as u64), DirEntry::owned(CoreId(0))),
                AllocOutcome::Stored
            );
        }
        assert_eq!(
            d.allocate(BlockAddr(2 * sets as u64), DirEntry::owned(CoreId(0))),
            AllocOutcome::Overflow
        );
        assert_eq!(d.live_entries(), 2);
    }

    #[test]
    fn none_always_overflows() {
        let mut d = DirStore::None;
        assert_eq!(
            d.allocate(BlockAddr(1), DirEntry::owned(CoreId(0))),
            AllocOutcome::Overflow
        );
        assert_eq!(d.live_entries(), 0);
        assert_eq!(d.peek(BlockAddr(1)), None);
        assert_eq!(d.remove(BlockAddr(1)), None);
    }

    #[test]
    fn unbounded_never_evicts() {
        let mut d = DirStore::Unbounded(FlatMap::new());
        for i in 0..10_000u64 {
            assert_eq!(
                d.allocate(BlockAddr(i), DirEntry::shared(CoreId(0))),
                AllocOutcome::Stored
            );
        }
        assert_eq!(d.live_entries(), 10_000);
    }

    #[test]
    #[should_panic(expected = "dead entries")]
    fn update_rejects_dead_entry() {
        let mut d = DirStore::build(&cfg());
        let b = BlockAddr(7);
        d.allocate(b, DirEntry::owned(CoreId(0)));
        let mut e = d.peek(b).unwrap();
        e.sharers.remove(CoreId(0));
        let _ = d.update(b, e);
    }

    #[test]
    fn secdir_geometry_selection() {
        let g = DirStore::secdir_geometry(8, false);
        assert_eq!(g.shared_ways, 5);
        let g = DirStore::secdir_geometry(128, true);
        assert_eq!(g.shared_sets, 32);
    }
}
