//! Multi-grain Directory (Zebchuk et al., MICRO 2013) — the space-efficiency
//! baseline the paper compares against in Figure 26.
//!
//! MgD stores two entry grains in one array: a *region* entry tracks an
//! entire 1 KB region (16 blocks) privately cached by a single core, while a
//! *block* entry tracks one (potentially shared) block with a full sharer
//! vector. Private-heavy workloads need roughly 1/16th the entries of a
//! conventional sparse directory; shared data degrades to block grain.
//! Evicting a region entry invalidates every tracked block of the region at
//! its owner — MgD therefore still produces DEVs, which is exactly what
//! Figure 26 shows at small directory sizes.

use crate::directory::{AllocOutcome, DirEntry, EvictedEntry};
use zerodev_cache::{Replacement, SetAssoc};
use zerodev_common::{BlockAddr, CoreId};

/// Key-space offset separating region keys from block keys. Any physical
/// block address stays far below this.
const REGION_KEY_OFFSET: u64 = 1 << 52;

fn region_key(block: BlockAddr) -> u64 {
    block.region().0 + REGION_KEY_OFFSET
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum MgdEntry {
    Block(DirEntry),
    Region { owner: CoreId, presence: u16 },
}

impl MgdEntry {
    fn is_block(&self) -> bool {
        matches!(self, MgdEntry::Block(_))
    }
    fn is_region(&self) -> bool {
        matches!(self, MgdEntry::Region { .. })
    }
}

/// The dual-grain directory of one socket.
#[derive(Clone, Debug)]
pub struct MultiGrainDir {
    array: SetAssoc<MgdEntry>,
    /// Region entries allocated (diagnostics).
    pub region_allocs: u64,
    /// Blocks broken out of a region because of sharing.
    pub region_breakouts: u64,
}

impl MultiGrainDir {
    /// Builds an MgD with `entries` total entries at the given associativity.
    pub fn new(entries: usize, ways: usize) -> Self {
        let sets = (entries / ways).next_power_of_two().max(1);
        MultiGrainDir {
            array: SetAssoc::new(sets, ways, Replacement::Nru),
            region_allocs: 0,
            region_breakouts: 0,
        }
    }

    fn expand_victim(key: u64, entry: MgdEntry, out: &mut Vec<EvictedEntry>) {
        match entry {
            MgdEntry::Block(e) => out.push((BlockAddr(key), e)),
            MgdEntry::Region { owner, presence } => {
                let region = zerodev_common::ids::RegionAddr(key - REGION_KEY_OFFSET);
                for (i, block) in region.blocks().enumerate() {
                    if presence & (1 << i) != 0 {
                        out.push((block, DirEntry::owned(owner)));
                    }
                }
            }
        }
    }

    /// Looks up the tracking information for `block` without promotion.
    pub fn peek(&self, block: BlockAddr) -> Option<DirEntry> {
        if let Some(MgdEntry::Block(e)) = self.array.peek(block.0, MgdEntry::is_block) {
            return Some(*e);
        }
        if let Some(MgdEntry::Region { owner, presence }) =
            self.array.peek(region_key(block), MgdEntry::is_region)
        {
            if presence & (1 << block.region_offset()) != 0 {
                return Some(DirEntry::owned(*owner));
            }
        }
        None
    }

    /// Looks up and promotes.
    pub fn lookup(&mut self, block: BlockAddr) -> Option<DirEntry> {
        let result = self.peek(block)?;
        if self.array.touch(block.0, MgdEntry::is_block).is_none() {
            let _ = self.array.touch(region_key(block), MgdEntry::is_region);
        }
        Some(result)
    }

    fn insert_raw(&mut self, key: u64, entry: MgdEntry, victims: &mut Vec<EvictedEntry>) {
        if let Some((vkey, ventry)) = self.array.insert(key, entry, |_| false) {
            Self::expand_victim(vkey, ventry, victims);
        }
    }

    /// Allocates tracking for a previously untracked block.
    ///
    /// Single-core owned (M/E) blocks prefer region-grain tracking: they
    /// join an existing region entry of the same owner for free, or allocate
    /// a new region entry. Shared or S-state blocks get block-grain entries.
    pub fn allocate(&mut self, block: BlockAddr, entry: DirEntry) -> AllocOutcome {
        debug_assert!(self.peek(block).is_none(), "allocate over live entry");
        let mut victims = Vec::new();
        let single_owner = entry.owner();
        match single_owner {
            Some(core) => {
                let rkey = region_key(block);
                match self.array.touch(rkey, MgdEntry::is_region) {
                    Some(MgdEntry::Region { owner, presence }) if *owner == core => {
                        *presence |= 1 << block.region_offset();
                    }
                    Some(MgdEntry::Region { .. }) => {
                        // Region owned by someone else: block grain.
                        self.insert_raw(block.0, MgdEntry::Block(entry), &mut victims);
                    }
                    _ => {
                        self.region_allocs += 1;
                        self.insert_raw(
                            rkey,
                            MgdEntry::Region {
                                owner: core,
                                presence: 1 << block.region_offset(),
                            },
                            &mut victims,
                        );
                    }
                }
            }
            None => {
                self.insert_raw(block.0, MgdEntry::Block(entry), &mut victims);
            }
        }
        if victims.is_empty() {
            AllocOutcome::Stored
        } else {
            AllocOutcome::Evicted(victims)
        }
    }

    /// Rewrites the tracking for a live block. A region-covered block whose
    /// sharer set changes is broken out into a block-grain entry.
    pub fn update(&mut self, block: BlockAddr, entry: DirEntry) -> Vec<EvictedEntry> {
        let mut victims = Vec::new();
        if let Some(MgdEntry::Block(e)) = self.array.peek_mut(block.0, MgdEntry::is_block) {
            *e = entry;
            return victims;
        }
        let rkey = region_key(block);
        let still_region_private = {
            match self.array.peek(rkey, MgdEntry::is_region) {
                Some(MgdEntry::Region { owner, presence }) => {
                    assert!(
                        presence & (1 << block.region_offset()) != 0,
                        "update of untracked block {block:?}"
                    );
                    entry.owner() == Some(*owner)
                }
                _ => panic!("update of untracked block {block:?}"),
            }
        };
        if still_region_private {
            // Same single owner, state change only: region covers it.
            return victims;
        }
        // Break the block out of the region.
        self.region_breakouts += 1;
        self.clear_region_bit(block);
        self.insert_raw(block.0, MgdEntry::Block(entry), &mut victims);
        victims
    }

    fn clear_region_bit(&mut self, block: BlockAddr) {
        let rkey = region_key(block);
        let empty = match self.array.peek_mut(rkey, MgdEntry::is_region) {
            Some(MgdEntry::Region { presence, .. }) => {
                *presence &= !(1 << block.region_offset());
                *presence == 0
            }
            _ => return,
        };
        if empty {
            let _ = self.array.remove(rkey, MgdEntry::is_region);
        }
    }

    /// Removes the tracking for `block` (all private copies gone).
    pub fn remove(&mut self, block: BlockAddr) -> Option<DirEntry> {
        if let Some(MgdEntry::Block(e)) = self.array.remove(block.0, MgdEntry::is_block) {
            return Some(e);
        }
        let view = self.peek(block)?;
        self.clear_region_bit(block);
        Some(view)
    }

    /// Live entries in the array (regions count once).
    pub fn live_entries(&self) -> usize {
        self.array.len()
    }

    /// Serializes the array and region counters for checkpointing.
    pub fn snap(&self, w: &mut zerodev_common::snap::SnapWriter) {
        self.array.snapshot_with(w, |w, e| match e {
            MgdEntry::Block(entry) => {
                w.u8(0);
                entry.snap(w);
            }
            MgdEntry::Region { owner, presence } => {
                w.u8(1);
                w.u16(owner.0);
                w.u16(*presence);
            }
        });
        w.u64(self.region_allocs);
        w.u64(self.region_breakouts);
    }

    /// Restores a [`MultiGrainDir::snap`] image into this directory, which
    /// must have the same geometry (freshly built from the same
    /// configuration).
    ///
    /// # Errors
    /// Fails with a structural [`zerodev_common::snap::SnapError`] on
    /// geometry mismatch or decode error.
    pub fn unsnap(
        &mut self,
        r: &mut zerodev_common::snap::SnapReader<'_>,
    ) -> Result<(), zerodev_common::snap::SnapError> {
        use zerodev_common::snap::SnapError;
        self.array
            .restore_with(r, |r| match r.u8("mgd entry tag")? {
                0 => Ok(MgdEntry::Block(DirEntry::unsnap(r)?)),
                1 => Ok(MgdEntry::Region {
                    owner: CoreId(r.u16("mgd region owner")?),
                    presence: r.u16("mgd region presence")?,
                }),
                _ => Err(SnapError::Corrupt {
                    context: "mgd entry tag",
                }),
            })?;
        self.region_allocs = r.u64("mgd region_allocs")?;
        self.region_breakouts = r.u64("mgd region_breakouts")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zerodev_common::ids::SharerSet;
    use zerodev_common::DirState;

    fn mgd() -> MultiGrainDir {
        MultiGrainDir::new(64, 4)
    }

    #[test]
    fn private_blocks_share_one_region_entry() {
        let mut d = mgd();
        for i in 0..16u64 {
            assert_eq!(
                d.allocate(BlockAddr(0x100 + i), DirEntry::owned(CoreId(2))),
                AllocOutcome::Stored
            );
        }
        assert_eq!(d.live_entries(), 1, "16 blocks, one region entry");
        assert_eq!(d.region_allocs, 1);
        let e = d.peek(BlockAddr(0x105)).unwrap();
        assert_eq!(e.owner(), Some(CoreId(2)));
    }

    #[test]
    fn shared_blocks_use_block_grain() {
        let mut d = mgd();
        let e = DirEntry {
            state: DirState::Shared,
            sharers: [CoreId(0), CoreId(1)].into_iter().collect(),
        };
        assert_eq!(d.allocate(BlockAddr(7), e), AllocOutcome::Stored);
        assert_eq!(d.peek(BlockAddr(7)).unwrap().sharers.count(), 2);
        assert_eq!(d.region_allocs, 0);
    }

    #[test]
    fn foreign_owner_in_region_uses_block_grain() {
        let mut d = mgd();
        d.allocate(BlockAddr(0x100), DirEntry::owned(CoreId(0)));
        // Another core owns a different block of the same region.
        d.allocate(BlockAddr(0x101), DirEntry::owned(CoreId(1)));
        assert_eq!(d.live_entries(), 2);
        assert_eq!(d.peek(BlockAddr(0x101)).unwrap().owner(), Some(CoreId(1)));
        assert_eq!(d.peek(BlockAddr(0x100)).unwrap().owner(), Some(CoreId(0)));
    }

    #[test]
    fn sharing_breaks_block_out_of_region() {
        let mut d = mgd();
        d.allocate(BlockAddr(0x100), DirEntry::owned(CoreId(0)));
        d.allocate(BlockAddr(0x101), DirEntry::owned(CoreId(0)));
        let mut e = d.peek(BlockAddr(0x100)).unwrap();
        e.state = DirState::Shared;
        e.sharers.insert(CoreId(3));
        let victims = d.update(BlockAddr(0x100), e);
        assert!(victims.is_empty());
        assert_eq!(d.region_breakouts, 1);
        assert_eq!(d.peek(BlockAddr(0x100)).unwrap().sharers.count(), 2);
        // The other region block is still region-tracked.
        assert_eq!(d.peek(BlockAddr(0x101)).unwrap().owner(), Some(CoreId(0)));
        assert_eq!(d.live_entries(), 2);
    }

    #[test]
    fn same_owner_state_change_stays_in_region() {
        let mut d = mgd();
        d.allocate(BlockAddr(0x100), DirEntry::owned(CoreId(0)));
        // E→M is invisible to the directory; updating with the same owner
        // keeps region tracking.
        let victims = d.update(BlockAddr(0x100), DirEntry::owned(CoreId(0)));
        assert!(victims.is_empty());
        assert_eq!(d.region_breakouts, 0);
    }

    #[test]
    fn region_eviction_expands_to_block_victims() {
        // 1 set × 1 way: every allocation conflicts.
        let mut d = MultiGrainDir::new(1, 1);
        d.allocate(BlockAddr(0x100), DirEntry::owned(CoreId(0)));
        d.allocate(BlockAddr(0x103), DirEntry::owned(CoreId(0)));
        assert_eq!(d.live_entries(), 1);
        // A shared block evicts the region entry → 2 block victims (DEVs).
        let e = DirEntry {
            state: DirState::Shared,
            sharers: SharerSet::only(CoreId(1)),
        };
        match d.allocate(BlockAddr(0x900), e) {
            AllocOutcome::Evicted(victims) => {
                assert_eq!(victims.len(), 2);
                let blocks: Vec<u64> = victims.iter().map(|(b, _)| b.0).collect();
                assert!(blocks.contains(&0x100) && blocks.contains(&0x103));
                assert!(victims.iter().all(|(_, e)| e.owner() == Some(CoreId(0))));
            }
            other => panic!("expected region expansion, got {other:?}"),
        }
    }

    #[test]
    fn remove_clears_region_bits_and_entry() {
        let mut d = mgd();
        d.allocate(BlockAddr(0x100), DirEntry::owned(CoreId(0)));
        d.allocate(BlockAddr(0x101), DirEntry::owned(CoreId(0)));
        assert!(d.remove(BlockAddr(0x100)).is_some());
        assert_eq!(d.peek(BlockAddr(0x100)), None);
        assert_eq!(d.live_entries(), 1);
        assert!(d.remove(BlockAddr(0x101)).is_some());
        assert_eq!(d.live_entries(), 0, "empty region entry freed");
        assert!(d.remove(BlockAddr(0x101)).is_none());
    }

    #[test]
    fn remove_block_grain() {
        let mut d = mgd();
        d.allocate(BlockAddr(5), DirEntry::shared(CoreId(0)));
        assert!(d.remove(BlockAddr(5)).is_some());
        assert_eq!(d.live_entries(), 0);
    }

    #[test]
    fn lookup_promotes() {
        let mut d = mgd();
        d.allocate(BlockAddr(0x100), DirEntry::owned(CoreId(0)));
        assert!(d.lookup(BlockAddr(0x100)).is_some());
        assert!(d.lookup(BlockAddr(0x900)).is_none());
    }
}
