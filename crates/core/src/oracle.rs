//! The coherence invariant oracle: a shadow reference model plus invariant
//! checker that runs alongside [`System`] when auditing is enabled.
//!
//! The paper's central claims are *safety* claims: directory-entry eviction
//! never invalidates a private copy (zero DEVs, §III-C), and overwriting a
//! home-memory block with directory segments is only sound because "at least
//! one private copy exists" whenever the block is corrupted (§III-D). The
//! protocol engine encodes those claims across ~2k lines of MESI transitions
//! with no transient states; this module re-derives the machine state from
//! the *observable* transaction stream — the same grants, invalidations,
//! downgrades, and eviction notices the private caches see — and asserts
//! after every uncore transaction that the engine's directory, LLC, and
//! home-memory bookkeeping agree with it.
//!
//! The shadow model is deliberately the dumbest possible structure: a flat
//! `BlockAddr → {per-socket holder set, owning core}` map with no capacity,
//! no banking, and no latency. Anything the real engine gets wrong — a lost
//! sharer, a stale owner, a corrupted block with no live copy — shows up as
//! a divergence from this map.
//!
//! Invariants checked (with their paper anchors):
//!
//! * **SWMR** (§III-A): at most one M/E owner, and no other copy coexists
//!   with an owner.
//! * **Directory precision** (§III-C): every tracking entry — dedicated,
//!   spilled, fused, or memory-housed — covers a superset of the true
//!   holders; under precise formats (full-map segments, non-region
//!   directories) the sharer set and owner are exact.
//! * **Zero DEV** (§III-C): a ZeroDEV configuration never emits an
//!   [`InvalReason::Dev`] invalidation.
//! * **Corrupted-block safety** (§III-D): whenever the home copy is
//!   corrupted, at least one valid copy exists (a private holder or an LLC
//!   data line), and every housed segment matches the per-socket tracking.
//! * **Design-structural** (§III-E/F): inclusive LLCs contain every
//!   privately held block; an EPD LLC holds no data line for an owner-tracked
//!   block.
//! * **Stats conservation**: per-transaction counter deltas and per-class
//!   message-byte totals stay consistent.
//!
//! On violation the oracle panics with the offending block's full state and
//! the last [`EventLog::capacity`] protocol events from a bounded ring
//! buffer, which is also usable standalone for debugging.

use std::fmt;
use std::fmt::Write as _;

use crate::llc::LlcLine;
use crate::system::{Downgrade, EvictKind, InvalReason, Invalidation, Op, System};
use zerodev_common::config::{DirectoryKind, LlcDesign, SegmentFormat, SystemConfig};
use zerodev_common::ids::SharerSet;
use zerodev_common::msg::ALL_CLASSES;
use zerodev_common::FlatMap;
use zerodev_common::{BlockAddr, CoreId, MesiState, SocketId, Stats};

// ---------------------------------------------------------------------------
// Event log
// ---------------------------------------------------------------------------

/// One observable protocol event, as recorded by the oracle's ring buffer.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AuditEvent {
    /// An uncore transaction completed with this grant.
    Access {
        /// Requesting socket.
        socket: SocketId,
        /// Requesting core.
        core: CoreId,
        /// The block.
        block: BlockAddr,
        /// The request kind.
        op: Op,
        /// The MESI state granted.
        grant: MesiState,
    },
    /// A private cache notified the uncore of an eviction.
    Evict {
        /// Evicting socket.
        socket: SocketId,
        /// Evicting core.
        core: CoreId,
        /// The block.
        block: BlockAddr,
        /// The notice kind.
        kind: EvictKind,
        /// True when the directory no longer tracked the evictor (the
        /// notice raced an invalidation and was dropped).
        stale: bool,
    },
    /// The uncore asked a private cache to invalidate a copy.
    Invalidate(Invalidation),
    /// The uncore asked a private cache to downgrade M/E → S.
    Downgrade(Downgrade),
    /// The caller reported dirty data for a downgraded copy.
    SharingWriteback {
        /// Socket of the downgraded owner.
        socket: SocketId,
        /// The block.
        block: BlockAddr,
    },
    /// The caller reported dirty data for a DEV-invalidated copy.
    DevRecall {
        /// Socket of the invalidated owner.
        socket: SocketId,
        /// The block.
        block: BlockAddr,
    },
    /// The caller reported dirty data for an inclusion-invalidated copy.
    InclusionWriteback {
        /// Socket of the invalidated owner.
        socket: SocketId,
        /// The block.
        block: BlockAddr,
    },
}

impl fmt::Display for AuditEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditEvent::Access {
                socket,
                core,
                block,
                op,
                grant,
            } => write!(
                f,
                "access  s{}/c{} {:?} {:?} -> {:?}",
                socket.0, core.0, block, op, grant
            ),
            AuditEvent::Evict {
                socket,
                core,
                block,
                kind,
                stale,
            } => write!(
                f,
                "evict   s{}/c{} {:?} {:?}{}",
                socket.0,
                core.0,
                block,
                kind,
                if *stale { " (stale, dropped)" } else { "" }
            ),
            AuditEvent::Invalidate(i) => write!(
                f,
                "inval   s{}/c{} {:?} ({:?})",
                i.socket.0, i.core.0, i.block, i.reason
            ),
            AuditEvent::Downgrade(d) => {
                write!(f, "downgr  s{}/c{} {:?}", d.socket.0, d.core.0, d.block)
            }
            AuditEvent::SharingWriteback { socket, block } => {
                write!(f, "sh-wb   s{} {:?}", socket.0, block)
            }
            AuditEvent::DevRecall { socket, block } => {
                write!(f, "dev-wb  s{} {:?}", socket.0, block)
            }
            AuditEvent::InclusionWriteback { socket, block } => {
                write!(f, "inc-wb  s{} {:?}", socket.0, block)
            }
        }
    }
}

/// A bounded ring buffer of the most recent protocol events. The oracle
/// dumps it on every violation; it is also usable standalone as a cheap
/// protocol tracer.
#[derive(Clone, Debug, Default)]
pub struct EventLog {
    buf: std::collections::VecDeque<AuditEvent>,
    cap: usize,
}

impl EventLog {
    /// Creates a log keeping the most recent `cap` events.
    pub fn new(cap: usize) -> Self {
        EventLog {
            buf: std::collections::VecDeque::with_capacity(cap.max(1)),
            cap: cap.max(1),
        }
    }

    /// Maximum number of events retained.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no events have been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Records an event, dropping the oldest once full.
    pub fn push(&mut self, e: AuditEvent) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
        }
        self.buf.push_back(e);
    }

    /// Iterates the retained events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &AuditEvent> {
        self.buf.iter()
    }

    /// Renders the retained events, oldest first, one per line.
    pub fn dump(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "last {} protocol events (oldest first):", self.len());
        for e in self.iter() {
            let _ = writeln!(s, "  {e}");
        }
        s
    }
}

// ---------------------------------------------------------------------------
// Shadow model
// ---------------------------------------------------------------------------

/// The shadow view of one block: which cores hold it, per socket, and which
/// single core (if any) was granted E or M. A silent E→M upgrade is
/// invisible on the wire, so the owner slot means "E-or-M"; the eviction
/// notice kind reveals the final state and is cross-checked on the way out.
#[derive(Clone, PartialEq, Eq, Debug)]
struct ShadowBlock {
    holders: Vec<SharerSet>,
    owner: Option<(SocketId, CoreId)>,
}

impl ShadowBlock {
    fn new(sockets: usize) -> Self {
        ShadowBlock {
            holders: vec![SharerSet::default(); sockets],
            owner: None,
        }
    }

    fn total_holders(&self) -> u32 {
        self.holders.iter().map(|h| h.count()).sum()
    }
}

/// Per-transaction counter snapshot, taken at the top of `System::access`
/// so the delta checks survive the post-warmup stats reset.
#[derive(Clone, Copy, Default, Debug)]
struct StatsSnap {
    core_cache_misses: u64,
    upgrades: u64,
    llc_hits: u64,
    llc_misses: u64,
}

impl StatsSnap {
    fn of(stats: &Stats) -> Self {
        StatsSnap {
            core_cache_misses: stats.core_cache_misses,
            upgrades: stats.upgrades,
            llc_hits: stats.llc_hits,
            llc_misses: stats.llc_misses,
        }
    }
}

/// How many transactions pass between full shadow-map sweeps. Per-block
/// checks run on every transaction; the sweep re-verifies blocks the
/// transaction did not touch (e.g. victims of unrelated LLC churn).
const SWEEP_EVERY: u64 = 4096;

/// Default event-log depth.
const LOG_DEPTH: usize = 64;

/// The invariant checker. One instance lives inside [`System`] when
/// auditing is enabled (see [`System::enable_audit`]); it observes the
/// transaction stream through crate-internal hooks and panics on the first
/// violation. All of its reads go through recency-neutral peek accessors,
/// so an audited run produces byte-identical statistics to an unaudited
/// one.
#[derive(Clone, Debug)]
pub struct Oracle {
    sockets: usize,
    zerodev: bool,
    llc_design: LlcDesign,
    /// Sharer sets are exact: full-map segments and a non-region directory.
    exact: bool,
    /// Per-block directory tracking is checked at all (MgD region entries
    /// are synthesised at a coarser grain and are audited only as
    /// supersets).
    precise_dir: bool,
    shadow: FlatMap<ShadowBlock>,
    log: EventLog,
    txns: u64,
    snap: StatsSnap,
}

impl Oracle {
    /// Builds an oracle for the machine in `cfg`.
    pub fn new(cfg: &SystemConfig) -> Self {
        let precise_dir = !matches!(cfg.directory, DirectoryKind::MultiGrain { .. });
        let fullmap = cfg
            .zerodev
            .map(|z| z.segment_format == SegmentFormat::FullMap)
            .unwrap_or(true);
        Oracle {
            sockets: cfg.sockets,
            zerodev: cfg.zerodev.is_some(),
            llc_design: cfg.llc_design,
            exact: precise_dir && fullmap,
            precise_dir,
            shadow: FlatMap::new(),
            log: EventLog::new(LOG_DEPTH),
            txns: 0,
            snap: StatsSnap::default(),
        }
    }

    /// Transactions observed so far.
    pub fn transactions(&self) -> u64 {
        self.txns
    }

    /// The event ring buffer (diagnostics).
    pub fn event_log(&self) -> &EventLog {
        &self.log
    }

    /// Serializes the audit state that affects behaviour: the transaction
    /// count (sweep cadence) and the shadow map, in sorted block order so
    /// the image is deterministic. The event ring buffer is diagnostics
    /// only and restores empty; the per-transaction stats snapshot is never
    /// live between transactions and restores to its default.
    // lint:allow(snapshot_complete(sockets, zerodev, llc_design, exact, precise_dir), audit mode flags are config-derived; restore targets an oracle freshly built from the same configuration)
    // lint:allow(snapshot_complete(log, snap), the event ring is diagnostics-only and restores empty; the per-transaction stats snapshot is never live between transactions)
    pub fn snap(&self, w: &mut zerodev_common::snap::SnapWriter) {
        w.u64(self.txns);
        let mut blocks: Vec<BlockAddr> = self.shadow.iter().map(|(k, _)| BlockAddr(k)).collect();
        blocks.sort_unstable();
        w.usize(blocks.len());
        for b in blocks {
            w.u64(b.0);
            let sb = self.shadow.get(b.0).expect("listed key");
            w.usize(sb.holders.len());
            for h in &sb.holders {
                w.u128(h.0);
            }
            match sb.owner {
                Some((s, c)) => {
                    w.bool(true);
                    w.u8(s.0);
                    w.u16(c.0);
                }
                None => w.bool(false),
            }
        }
    }

    /// Restores an [`Oracle::snap`] image into this oracle, which must have
    /// been freshly built for the same configuration ([`Oracle::new`]).
    ///
    /// # Errors
    /// Fails with a structural [`zerodev_common::snap::SnapError`] on
    /// decode error or a holder vector sized for a different socket count.
    pub fn unsnap(
        &mut self,
        r: &mut zerodev_common::snap::SnapReader<'_>,
    ) -> Result<(), zerodev_common::snap::SnapError> {
        use zerodev_common::snap::SnapError;
        self.txns = r.u64("oracle txns")?;
        let n = r.usize("oracle shadow len")?;
        let mut shadow = FlatMap::with_capacity(n);
        for _ in 0..n {
            let block = BlockAddr(r.u64("oracle shadow block")?);
            let holders_len = r.usize("oracle holders len")?;
            if holders_len != self.sockets {
                return Err(SnapError::Corrupt {
                    context: "oracle holders len",
                });
            }
            let mut holders = Vec::with_capacity(holders_len);
            for _ in 0..holders_len {
                holders.push(SharerSet(r.u128("oracle holder set")?));
            }
            let owner = if r.bool("oracle owner flag")? {
                Some((
                    SocketId(r.u8("oracle owner socket")?),
                    CoreId(r.u16("oracle owner core")?),
                ))
            } else {
                None
            };
            shadow.insert(block.0, ShadowBlock { holders, owner });
        }
        self.shadow = shadow;
        self.log = EventLog::new(LOG_DEPTH);
        self.snap = StatsSnap::default();
        Ok(())
    }

    // -- hooks ------------------------------------------------------------

    /// Called at the top of `System::access`, before any counter moves.
    pub(crate) fn begin_access(&mut self, stats: &Stats) {
        self.snap = StatsSnap::of(stats);
    }

    /// Called at the end of `System::access` with the transaction outcome.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn after_access(
        &mut self,
        sys: &System,
        socket: SocketId,
        core: CoreId,
        block: BlockAddr,
        op: Op,
        grant: MesiState,
        invals: &[Invalidation],
        downgrades: &[Downgrade],
    ) {
        self.txns += 1;
        // Apply the transaction to the shadow map in the same order the
        // engine's synchronous directory applied it: downgrades, then
        // invalidations, then the grant.
        for d in downgrades {
            self.log.push(AuditEvent::Downgrade(*d));
            let sb = self.entry(d.block);
            if sb.owner == Some((d.socket, d.core)) {
                sb.owner = None;
            }
        }
        for i in invals {
            self.apply_inval(sys, i);
        }
        if op == Op::Upgrade {
            let sb = self.entry(block);
            if !sb.holders[socket.0 as usize].contains(core) {
                self.fail(sys, block, "upgrade issued by a core that holds no S copy");
            }
        }
        let sb = self.entry(block);
        sb.holders[socket.0 as usize].insert(core);
        match grant {
            MesiState::Modified | MesiState::Exclusive => sb.owner = Some((socket, core)),
            MesiState::Shared => {}
            MesiState::Invalid => self.fail(sys, block, "access granted Invalid"),
        }
        self.log.push(AuditEvent::Access {
            socket,
            core,
            block,
            op,
            grant,
        });

        self.check_access_stat_deltas(sys, block, op);
        self.check_block(sys, block);
        for i in invals {
            if i.block != block {
                self.check_block(sys, i.block);
            }
        }
        if self.txns.is_multiple_of(SWEEP_EVERY) {
            self.full_sweep(sys);
        }
    }

    /// Called at the end of `System::evict` with the churn it caused.
    pub(crate) fn after_evict(
        &mut self,
        sys: &System,
        socket: SocketId,
        core: CoreId,
        block: BlockAddr,
        kind: EvictKind,
        invals: &[Invalidation],
    ) {
        let sb = self.entry(block);
        let held = sb.holders[socket.0 as usize].contains(core);
        let was_owner = sb.owner == Some((socket, core));
        self.log.push(AuditEvent::Evict {
            socket,
            core,
            block,
            kind,
            stale: !held,
        });
        if held {
            // The notice kind reveals the private state at eviction and
            // must agree with the grant history (silent E→M upgrades stay
            // within the owner slot).
            match kind {
                EvictKind::Dirty | EvictKind::CleanExclusive if !was_owner => {
                    self.fail(sys, block, "M/E eviction notice from a non-owner")
                }
                EvictKind::CleanShared if was_owner => {
                    self.fail(sys, block, "owner sent a shared-clean eviction notice")
                }
                _ => {}
            }
            let sb = self.entry(block);
            sb.holders[socket.0 as usize].remove(core);
            if was_owner {
                sb.owner = None;
            }
        }
        for i in invals {
            self.apply_inval(sys, i);
        }
        self.check_block(sys, block);
        for i in invals {
            if i.block != block {
                self.check_block(sys, i.block);
            }
        }
    }

    /// Called after `System::dev_dirty_recall` (baseline configurations).
    pub(crate) fn after_dev_recall(
        &mut self,
        sys: &System,
        socket: SocketId,
        block: BlockAddr,
        invals: &[Invalidation],
    ) {
        self.log.push(AuditEvent::DevRecall { socket, block });
        for i in invals {
            self.apply_inval(sys, i);
        }
        self.check_block(sys, block);
    }

    /// Called after `System::sharing_writeback`.
    pub(crate) fn after_sharing_writeback(
        &mut self,
        sys: &System,
        socket: SocketId,
        block: BlockAddr,
    ) {
        self.log
            .push(AuditEvent::SharingWriteback { socket, block });
        self.check_block(sys, block);
    }

    /// Called after `System::inclusion_dirty_writeback`.
    pub(crate) fn after_inclusion_writeback(
        &mut self,
        sys: &System,
        socket: SocketId,
        block: BlockAddr,
    ) {
        self.log
            .push(AuditEvent::InclusionWriteback { socket, block });
        self.check_block(sys, block);
    }

    // -- shadow updates ---------------------------------------------------

    fn entry(&mut self, block: BlockAddr) -> &mut ShadowBlock {
        let sockets = self.sockets;
        if !self.shadow.contains_key(block.0) {
            self.shadow.insert(block.0, ShadowBlock::new(sockets));
        }
        self.shadow.get_mut(block.0).expect("just inserted")
    }

    fn apply_inval(&mut self, sys: &System, i: &Invalidation) {
        self.log.push(AuditEvent::Invalidate(*i));
        if self.zerodev && i.reason == InvalReason::Dev {
            self.fail(
                sys,
                i.block,
                "a ZeroDEV configuration emitted a directory-eviction victim (DEV)",
            );
        }
        let exact = self.exact;
        let sb = self.entry(i.block);
        let s = i.socket.0 as usize;
        if !sb.holders[s].contains(i.core) {
            // Imprecise formats (coarse segments, region entries) legally
            // over-invalidate; the spurious message is acknowledged and
            // ignored. Under precise tracking it is a protocol bug.
            if exact {
                self.fail(sys, i.block, "invalidation sent to a core holding no copy");
            }
            return;
        }
        sb.holders[s].remove(i.core);
        if sb.owner == Some((i.socket, i.core)) {
            sb.owner = None;
        }
    }

    // -- checks -----------------------------------------------------------

    fn check_access_stat_deltas(&mut self, sys: &System, block: BlockAddr, op: Op) {
        let stats = &sys.stats;
        let d_miss = stats.core_cache_misses - self.snap.core_cache_misses;
        let d_upg = stats.upgrades - self.snap.upgrades;
        if d_miss + d_upg != 1 {
            self.fail(
                sys,
                block,
                "one access must count exactly one core-cache miss or upgrade",
            );
        }
        if (op == Op::Upgrade) != (d_upg == 1) {
            self.fail(sys, block, "access counted under the wrong class");
        }
        let d_llc =
            (stats.llc_hits - self.snap.llc_hits) + (stats.llc_misses - self.snap.llc_misses);
        if d_llc > 1 {
            self.fail(sys, block, "one access counted more than one LLC hit/miss");
        }
        self.check_stats(sys, block);
    }

    /// Message-byte totals must equal per-class counts times the class
    /// size, and a ZeroDEV machine must never have counted a DEV.
    fn check_stats(&self, sys: &System, block: BlockAddr) {
        let stats = &sys.stats;
        for (i, c) in ALL_CLASSES.iter().enumerate() {
            if stats.msg_bytes[i] != stats.msg_counts[i] * c.bytes() {
                self.fail(
                    sys,
                    block,
                    &format!(
                        "message-byte conservation broken for {:?}: {} bytes from {} messages of {} bytes",
                        c, stats.msg_bytes[i], stats.msg_counts[i], c.bytes()
                    ),
                );
            }
        }
        if self.zerodev && stats.dev_invalidations != 0 {
            self.fail(sys, block, "ZeroDEV machine counted DEV invalidations");
        }
        if stats.dram_writes_dir != stats.dir_llc_evictions {
            self.fail(
                sys,
                block,
                "every directory LLC eviction must write home memory exactly once (WB_DE)",
            );
        }
    }

    /// Checks every invariant that can be stated about a single block.
    /// Exposed within the crate so [`System::audit_check_block`] can verify
    /// a freshly fault-injected block without waiting for the next sweep.
    pub(crate) fn check_block(&self, sys: &System, block: BlockAddr) {
        let fallback;
        let sb = match self.shadow.get(block.0) {
            Some(sb) => sb,
            None => {
                fallback = ShadowBlock::new(self.sockets);
                &fallback
            }
        };
        let mem = sys.memory();
        let corrupted = mem.is_corrupted(block);
        let home = sys.config().home_socket(block);
        let mut llc_data_somewhere = false;

        for s in 0..self.sockets {
            let sid = SocketId(s as u8);
            let holders = sb.holders[s];
            let entry = sys.entry_of(sid, block);
            let segment = mem.peek_entry(block, sid);
            let line = sys.llc_line_of(sid, block);
            if matches!(line, Some(LlcLine::Data { .. })) {
                llc_data_somewhere = true;
            }

            if entry.is_some() && segment.is_some() {
                self.fail(
                    sys,
                    block,
                    &format!("socket {s}: entry lives both in the socket and housed at home"),
                );
            }
            let tracked = entry.or(segment);
            match tracked {
                Some(e) => {
                    if e.is_dead() {
                        self.fail(sys, block, &format!("socket {s}: dead entry kept live"));
                    }
                    for c in holders.iter() {
                        if !e.sharers.contains(c) {
                            self.fail(
                                sys,
                                block,
                                &format!(
                                    "socket {s}: directory lost true holder c{} (precision ⊇ broken)",
                                    c.0
                                ),
                            );
                        }
                    }
                    if self.exact {
                        if e.sharers != holders {
                            self.fail(
                                sys,
                                block,
                                &format!("socket {s}: sharer set not exact under a precise format"),
                            );
                        }
                        match sb.owner {
                            Some((os, oc)) if os == sid => {
                                if !e.state.is_owned() || e.owner() != Some(oc) {
                                    self.fail(
                                        sys,
                                        block,
                                        &format!("socket {s}: directory owner differs from true owner c{}", oc.0),
                                    );
                                }
                            }
                            _ => {
                                if e.state.is_owned() {
                                    self.fail(
                                        sys,
                                        block,
                                        &format!("socket {s}: directory claims M/E but no core owns the block"),
                                    );
                                }
                            }
                        }
                    }
                }
                None => {
                    if self.precise_dir && !holders.is_empty() {
                        self.fail(
                            sys,
                            block,
                            &format!("socket {s}: private holders with no tracking entry anywhere"),
                        );
                    }
                }
            }

            match self.llc_design {
                LlcDesign::Inclusive => {
                    if !holders.is_empty() && !line.as_ref().is_some_and(LlcLine::holds_block) {
                        self.fail(
                            sys,
                            block,
                            &format!("socket {s}: inclusive LLC lost a privately held block"),
                        );
                    }
                }
                LlcDesign::Epd => {
                    if sb.owner.is_some_and(|(os, _)| os == sid)
                        && line.as_ref().is_some_and(LlcLine::holds_block)
                    {
                        self.fail(
                            sys,
                            block,
                            &format!("socket {s}: EPD LLC holds an owner-tracked block"),
                        );
                    }
                }
                LlcDesign::NonInclusive => {}
            }

            if self.sockets > 1 {
                let sd = mem.socket_dir_peek(home, block);
                let trace =
                    !holders.is_empty() || entry.is_some() || segment.is_some() || line.is_some();
                if trace && !sd.is_some_and(|e| e.sharers.contains(sid)) {
                    self.fail(
                        sys,
                        block,
                        &format!("socket-level directory lost sharing socket {s}"),
                    );
                }
            }
        }

        // SWMR: an owner tolerates no second copy anywhere.
        if let Some((os, oc)) = sb.owner {
            if sb.total_holders() != 1 {
                self.fail(
                    sys,
                    block,
                    &format!(
                        "SWMR broken: s{}/c{} owns the block but {} copies exist",
                        os.0,
                        oc.0,
                        sb.total_holders()
                    ),
                );
            }
            if !sb.holders[os.0 as usize].contains(oc) {
                self.fail(sys, block, "owner lost its own copy");
            }
        }

        // Socket-level ownership must cover any core-level owner, and an
        // owned socket entry is exclusive by construction.
        if self.sockets > 1 {
            let sd = mem.socket_dir_peek(home, block);
            if let Some((os, _)) = sb.owner {
                if !sd.is_some_and(|e| e.owned && e.owner() == Some(os)) {
                    self.fail(
                        sys,
                        block,
                        &format!(
                            "socket-level directory does not record owning socket s{}",
                            os.0
                        ),
                    );
                }
            }
            if let Some(e) = sd {
                if e.owned && e.sharers.count() != 1 {
                    self.fail(
                        sys,
                        block,
                        "socket-level entry is owned but lists multiple sharer sockets",
                    );
                }
            }
        }

        // Corrupted-block safety (§III-D): the data must live on somewhere.
        if corrupted && sb.total_holders() == 0 && !llc_data_somewhere {
            self.fail(
                sys,
                block,
                "home copy corrupted with no private holder and no LLC data line",
            );
        }
        if let Some(cb) = mem.corrupted_block(block) {
            for sid in cb.sockets().iter() {
                let seg = cb.segment(sid).expect("listed socket has a segment");
                if seg.is_dead() {
                    self.fail(
                        sys,
                        block,
                        &format!("housed segment of socket {} tracks nobody", sid.0),
                    );
                }
            }
        }
    }

    /// Walks the whole shadow map plus global counters. Called
    /// periodically from the access hook and once at the end of an audited
    /// run (see [`System::audit_sweep`]).
    pub fn full_sweep(&self, sys: &System) {
        let mut blocks: Vec<BlockAddr> = self.shadow.iter().map(|(k, _)| BlockAddr(k)).collect();
        blocks.sort_unstable_by_key(|b| b.0);
        for b in blocks {
            self.check_block(sys, b);
        }
        // Every corrupted home block must be known to the shadow map (it
        // became corrupted through an observed transaction).
        for (b, _) in sys.memory().corrupted_blocks() {
            if !self.shadow.contains_key(b.0) {
                self.fail(sys, b, "corrupted block never seen in the access stream");
            }
        }
        // Gauge conservation: the spilled-lines gauge tracks the real LLC.
        let actual: usize = (0..self.sockets)
            .map(|s| sys.spilled_lines(SocketId(s as u8)))
            .sum();
        if sys.stats.spilled_lines_current != actual as u64 {
            panic!(
                "coherence oracle violation: spilled-lines gauge ({}) diverged from the LLC ({})\n{}",
                sys.stats.spilled_lines_current,
                actual,
                self.log.dump()
            );
        }
        self.check_stats(sys, BlockAddr(0));
        // Structural walker shared with the property tests.
        sys.check_invariants();
    }

    // -- violation reporting ----------------------------------------------

    /// Renders everything known about `block` (shadow and engine state).
    fn describe_block(&self, sys: &System, block: BlockAddr) -> String {
        let mut out = String::new();
        let mem = sys.memory();
        match self.shadow.get(block.0) {
            Some(sb) => {
                let _ = writeln!(out, "  shadow owner: {:?}", sb.owner);
                for (s, h) in sb.holders.iter().enumerate() {
                    if !h.is_empty() {
                        let _ = writeln!(out, "  shadow holders s{s}: {h:?}");
                    }
                }
            }
            None => {
                let _ = writeln!(out, "  shadow: block never accessed");
            }
        }
        for s in 0..self.sockets {
            let sid = SocketId(s as u8);
            let _ = writeln!(
                out,
                "  s{s}: entry={:?} segment={:?} llc={:?}",
                sys.entry_of(sid, block),
                mem.peek_entry(block, sid),
                sys.llc_line_of(sid, block),
            );
        }
        if self.sockets > 1 {
            let _ = writeln!(
                out,
                "  socket dir: {:?}",
                mem.socket_dir_peek(sys.config().home_socket(block), block)
            );
        }
        let _ = writeln!(out, "  memory corrupted: {}", mem.is_corrupted(block));
        out
    }

    fn fail(&self, sys: &System, block: BlockAddr, why: &str) -> ! {
        panic!(
            "coherence oracle violation: {why}\nblock {:?} state after {} transactions:\n{}{}",
            block,
            self.txns,
            self.describe_block(sys, block),
            self.log.dump()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_log_is_bounded_and_ordered() {
        let mut log = EventLog::new(4);
        for i in 0..10u64 {
            log.push(AuditEvent::SharingWriteback {
                socket: SocketId(0),
                block: BlockAddr(i),
            });
        }
        assert_eq!(log.len(), 4);
        assert_eq!(log.capacity(), 4);
        let blocks: Vec<u64> = log
            .iter()
            .map(|e| match e {
                AuditEvent::SharingWriteback { block, .. } => block.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(blocks, vec![6, 7, 8, 9]);
        assert!(log.dump().contains("sh-wb"));
    }

    #[test]
    fn event_display_is_compact() {
        let e = AuditEvent::Invalidate(Invalidation {
            socket: SocketId(1),
            core: CoreId(3),
            block: BlockAddr(0x40),
            reason: InvalReason::Coherence,
        });
        let s = format!("{e}");
        assert!(s.contains("s1/c3"), "{s}");
        assert!(s.contains("Coherence"), "{s}");
    }
}
