//! SecDir (Yan et al., ISCA 2019) — the side-channel-mitigation baseline the
//! paper compares against in Figure 27.
//!
//! SecDir divides the sparse directory into a *shared* partition plus one
//! *private* partition per core. A new entry starts in the shared partition;
//! an entry evicted from the shared partition migrates into the private
//! partitions of the cores caching the block. Cross-core conflicts therefore
//! never directly invalidate another core's blocks — but migrations can
//! *self-conflict* inside a private partition, and those private-partition
//! evictions still produce DEVs (the weakness §I-A2 of the ZeroDEV paper
//! points out).

use crate::directory::{AllocOutcome, DirEntry, EvictedEntry};
use zerodev_cache::{Replacement, SetAssoc};
use zerodev_common::config::SecDirGeometry;
use zerodev_common::ids::SharerSet;
use zerodev_common::FlatMap;
use zerodev_common::{BlockAddr, CoreId, DirState};

/// A private-partition entry: tracks that the partition's core caches the
/// block, plus whether it is the owner. No sharer list is needed, which is
/// how SecDir saves bits (and why its iso-storage entry count is higher).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct PrivEntry {
    owned: bool,
}

/// Where a block's tracking currently resides.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Residency {
    Shared,
    Private,
}

/// The SecDir structure of one socket.
#[derive(Clone, Debug)]
pub struct SecDir {
    shared: SetAssoc<DirEntry>,
    private: Vec<SetAssoc<PrivEntry>>,
    /// Fast residency index (performance only; the arrays are authoritative
    /// for conflicts).
    index: FlatMap<Residency>,
    /// Private-partition evictions observed (self-conflict DEV events).
    pub private_evictions: u64,
    /// Shared-partition evictions observed (migrations).
    pub migrations: u64,
}

impl SecDir {
    /// Builds SecDir from per-slice geometry, scaled to a monolithic array
    /// (set count × LLC bank count is handled by the caller passing totals;
    /// here we scale by 8 slices per the paper's 8-bank arrangement when the
    /// geometry is per-slice).
    ///
    /// The geometry fields are per-slice; we multiply sets by the number of
    /// slices, which equals the number of LLC banks. For simplicity the
    /// slice count is inferred from the core count (8 banks for ≤8 cores,
    /// 32 banks for the 128-core server), matching `SystemConfig`.
    pub fn new(geom: SecDirGeometry, cores: usize) -> Self {
        let slices = if cores >= 128 { 32 } else { 8 };
        let shared_sets = (geom.shared_sets * slices).next_power_of_two();
        let private_sets = (geom.private_sets * slices).next_power_of_two();
        SecDir {
            shared: SetAssoc::new(shared_sets, geom.shared_ways, Replacement::Nru),
            private: (0..cores)
                .map(|_| SetAssoc::new(private_sets, geom.private_ways, Replacement::Nru))
                .collect(),
            index: FlatMap::new(),
            private_evictions: 0,
            migrations: 0,
        }
    }

    fn merged_private_view(&self, block: BlockAddr) -> Option<DirEntry> {
        let mut sharers = SharerSet::EMPTY;
        let mut owned = false;
        for (c, part) in self.private.iter().enumerate() {
            if let Some(pe) = part.peek(block.0, |_| true) {
                sharers.insert(CoreId(c as u16));
                owned |= pe.owned;
            }
        }
        if sharers.is_empty() {
            None
        } else {
            Some(DirEntry {
                state: if owned {
                    DirState::OwnedME
                } else {
                    DirState::Shared
                },
                sharers,
            })
        }
    }

    /// Looks up without touching replacement state.
    pub fn peek(&self, block: BlockAddr) -> Option<DirEntry> {
        match self.index.get(block.0)? {
            Residency::Shared => self.shared.peek(block.0, |_| true).copied(),
            Residency::Private => self.merged_private_view(block),
        }
    }

    /// Looks up and promotes.
    pub fn lookup(&mut self, block: BlockAddr) -> Option<DirEntry> {
        match self.index.get(block.0)? {
            Residency::Shared => self.shared.touch(block.0, |_| true).map(|e| *e),
            Residency::Private => {
                let view = self.merged_private_view(block);
                if view.is_some() {
                    for part in &mut self.private {
                        let _ = part.touch(block.0, |_| true);
                    }
                }
                view
            }
        }
    }

    /// Migrates a shared-partition victim into the private partitions of its
    /// sharers, collecting any private-partition victims as evicted entries.
    fn migrate(&mut self, block: BlockAddr, entry: DirEntry, victims: &mut Vec<EvictedEntry>) {
        self.migrations += 1;
        self.index.insert(block.0, Residency::Private);
        let owned = entry.state.is_owned();
        for core in entry.sharers.iter() {
            let part = &mut self.private[core.0 as usize];
            if let Some((vkey, vpe)) = part.insert(block.0, PrivEntry { owned }, |_| false) {
                // Self-conflict: this core loses its copy of the victim block.
                self.private_evictions += 1;
                let vblock = BlockAddr(vkey);
                victims.push((
                    vblock,
                    DirEntry {
                        state: if vpe.owned {
                            DirState::OwnedME
                        } else {
                            DirState::Shared
                        },
                        sharers: SharerSet::only(core),
                    },
                ));
                // If that was the block's last private trace, drop the index.
                if self.merged_private_view(vblock).is_none() {
                    self.index.remove(vblock.0);
                }
            }
        }
        // All sharers may have failed to land (victim chains); if nothing
        // landed the block is untracked now.
        if self.merged_private_view(block).is_none() {
            self.index.remove(block.0);
        }
    }

    /// Allocates a fresh entry in the shared partition.
    pub fn allocate(&mut self, block: BlockAddr, entry: DirEntry) -> AllocOutcome {
        debug_assert!(self.peek(block).is_none(), "allocate over live entry");
        let mut victims = Vec::new();
        self.index.insert(block.0, Residency::Shared);
        if let Some((vkey, ventry)) = self.shared.insert(block.0, entry, |_| false) {
            let vblock = BlockAddr(vkey);
            self.index.remove(vblock.0);
            self.migrate(vblock, ventry, &mut victims);
        }
        if victims.is_empty() {
            AllocOutcome::Stored
        } else {
            AllocOutcome::Evicted(victims)
        }
    }

    /// Rewrites the entry for a live block.
    ///
    /// A shared-resident entry is updated in place. A partition-split entry
    /// that gains a new sharer must be re-consolidated into the shared
    /// partition (private entries cannot grow sharer lists), which may evict
    /// a shared victim and trigger migrations.
    pub fn update(&mut self, block: BlockAddr, entry: DirEntry) -> Vec<EvictedEntry> {
        let mut victims = Vec::new();
        match self.index.get(block.0).copied() {
            Some(Residency::Shared) => {
                let e = self
                    .shared
                    .peek_mut(block.0, |_| true)
                    .expect("index says shared");
                *e = entry;
            }
            Some(Residency::Private) => {
                let current = self.merged_private_view(block).expect("index says private");
                let grew = entry.sharers.iter().any(|c| !current.sharers.contains(c));
                if grew {
                    // Consolidate: pull private traces, re-allocate shared.
                    for part in &mut self.private {
                        let _ = part.remove(block.0, |_| true);
                    }
                    self.index.remove(block.0);
                    match self.allocate(block, entry) {
                        AllocOutcome::Evicted(mut v) => victims.append(&mut v),
                        AllocOutcome::Stored => {}
                        AllocOutcome::Overflow => unreachable!("SecDir never overflows"),
                    }
                } else {
                    // Shrink / state change: adjust private entries in place.
                    let owned = entry.state.is_owned();
                    for (c, part) in self.private.iter_mut().enumerate() {
                        let core = CoreId(c as u16);
                        if entry.sharers.contains(core) {
                            if let Some(pe) = part.peek_mut(block.0, |_| true) {
                                pe.owned = owned && entry.owner() == Some(core);
                            }
                        } else {
                            let _ = part.remove(block.0, |_| true);
                        }
                    }
                    if self.merged_private_view(block).is_none() {
                        self.index.remove(block.0);
                    }
                }
            }
            None => panic!("update of untracked block {block:?}"),
        }
        victims
    }

    /// Removes every trace of `block`.
    pub fn remove(&mut self, block: BlockAddr) -> Option<DirEntry> {
        match self.index.remove(block.0)? {
            Residency::Shared => self.shared.remove(block.0, |_| true),
            Residency::Private => {
                let view = self.merged_private_view(block);
                for part in &mut self.private {
                    let _ = part.remove(block.0, |_| true);
                }
                view
            }
        }
    }

    /// Live entries across all partitions.
    pub fn live_entries(&self) -> usize {
        self.shared.len() + self.private.iter().map(|p| p.len()).sum::<usize>()
    }

    /// Serializes all partitions, the residency index, and the eviction
    /// counters for checkpointing.
    pub fn snap(&self, w: &mut zerodev_common::snap::SnapWriter) {
        self.shared.snapshot_with(w, |w, e| e.snap(w));
        w.usize(self.private.len());
        for part in &self.private {
            part.snapshot_with(w, |w, p| w.bool(p.owned));
        }
        self.index.snapshot_with(w, |w, res| {
            w.u8(match res {
                Residency::Shared => 0,
                Residency::Private => 1,
            });
        });
        w.u64(self.private_evictions);
        w.u64(self.migrations);
    }

    /// Restores a [`SecDir::snap`] image into this structure, which must
    /// have the same geometry (freshly built from the same configuration).
    ///
    /// # Errors
    /// Fails with a structural [`zerodev_common::snap::SnapError`] on
    /// geometry mismatch or decode error.
    pub fn unsnap(
        &mut self,
        r: &mut zerodev_common::snap::SnapReader<'_>,
    ) -> Result<(), zerodev_common::snap::SnapError> {
        use zerodev_common::snap::SnapError;
        self.shared.restore_with(r, DirEntry::unsnap)?;
        if r.usize("secdir partition count")? != self.private.len() {
            return Err(SnapError::Corrupt {
                context: "secdir partition count",
            });
        }
        for part in self.private.iter_mut() {
            part.restore_with(r, |r| {
                Ok(PrivEntry {
                    owned: r.bool("secdir priv owned")?,
                })
            })?;
        }
        self.index = FlatMap::restore_with(r, |r| match r.u8("secdir residency")? {
            0 => Ok(Residency::Shared),
            1 => Ok(Residency::Private),
            _ => Err(SnapError::Corrupt {
                context: "secdir residency",
            }),
        })?;
        self.private_evictions = r.u64("secdir private_evictions")?;
        self.migrations = r.u64("secdir migrations")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SecDir {
        // 8 cores, per-slice 1-set/1-way shared, 1-set/1-way private → after
        // the ×8 slice scaling: 8-set/1-way shared, 8-set/1-way private.
        SecDir::new(
            SecDirGeometry {
                shared_sets: 1,
                shared_ways: 1,
                private_sets: 1,
                private_ways: 1,
            },
            8,
        )
    }

    #[test]
    fn allocate_and_lookup() {
        let mut sd = tiny();
        let b = BlockAddr(3);
        assert_eq!(
            sd.allocate(b, DirEntry::owned(CoreId(2))),
            AllocOutcome::Stored
        );
        assert_eq!(sd.peek(b).unwrap().owner(), Some(CoreId(2)));
        assert_eq!(sd.lookup(b).unwrap().owner(), Some(CoreId(2)));
        assert_eq!(sd.live_entries(), 1);
    }

    #[test]
    fn shared_conflict_migrates_not_evicts() {
        let mut sd = tiny();
        // Same shared set (8 sets): blocks 1 and 9 collide.
        let b1 = BlockAddr(1);
        let b2 = BlockAddr(9);
        sd.allocate(b1, DirEntry::owned(CoreId(0)));
        let out = sd.allocate(b2, DirEntry::owned(CoreId(1)));
        // b1 migrated to core 0's private partition: no DEV.
        assert_eq!(out, AllocOutcome::Stored);
        assert_eq!(sd.migrations, 1);
        assert_eq!(sd.peek(b1).unwrap().sharers.count(), 1);
        assert!(sd.peek(b1).unwrap().state.is_owned());
        assert_eq!(sd.peek(b2).unwrap().owner(), Some(CoreId(1)));
    }

    #[test]
    fn private_self_conflict_produces_victim() {
        let mut sd = tiny();
        // Private partitions have 8 sets × 1 way. Force two migrations of
        // same-core blocks that collide in the private partition.
        let a = BlockAddr(1); // shared set 1, private set 1
        let b = BlockAddr(17); // shared set 1, private set 1
        let c = BlockAddr(9); // shared set 1, private set 1
        sd.allocate(a, DirEntry::owned(CoreId(0)));
        // a migrates to core0 private set 1.
        sd.allocate(c, DirEntry::owned(CoreId(0)));
        // c migrates too → self-conflict with a → DEV victim (a, core0).
        let out = sd.allocate(b, DirEntry::owned(CoreId(0)));
        match out {
            AllocOutcome::Evicted(victims) => {
                assert_eq!(victims.len(), 1);
                assert_eq!(victims[0].0, a);
                assert_eq!(victims[0].1.sharers.any(), Some(CoreId(0)));
            }
            other => panic!("expected private victim, got {other:?}"),
        }
        assert_eq!(sd.private_evictions, 1);
        assert_eq!(sd.peek(a), None, "victim untracked now");
    }

    #[test]
    fn update_in_shared_partition() {
        let mut sd = tiny();
        let b = BlockAddr(5);
        sd.allocate(b, DirEntry::owned(CoreId(1)));
        let mut e = sd.peek(b).unwrap();
        e.state = DirState::Shared;
        e.sharers.insert(CoreId(3));
        assert!(sd.update(b, e).is_empty());
        assert_eq!(sd.peek(b).unwrap().sharers.count(), 2);
    }

    #[test]
    fn split_entry_grows_by_consolidation() {
        let mut sd = tiny();
        let b1 = BlockAddr(1);
        let b2 = BlockAddr(9);
        sd.allocate(b1, DirEntry::owned(CoreId(0)));
        sd.allocate(b2, DirEntry::owned(CoreId(1))); // b1 now private-split
                                                     // A new core reads b1: sharers grow → consolidation back to shared.
        let mut e = sd.peek(b1).unwrap();
        e.state = DirState::Shared;
        e.sharers.insert(CoreId(4));
        let _victims = sd.update(b1, e);
        let view = sd.peek(b1).unwrap();
        assert_eq!(view.sharers.count(), 2);
        assert!(view.sharers.contains(CoreId(4)));
    }

    #[test]
    fn split_entry_shrinks_in_place() {
        let mut sd = tiny();
        let b1 = BlockAddr(1);
        let b2 = BlockAddr(9);
        sd.allocate(
            b1,
            DirEntry {
                state: DirState::Shared,
                sharers: [CoreId(0), CoreId(1)].into_iter().collect(),
            },
        );
        sd.allocate(b2, DirEntry::owned(CoreId(2))); // b1 splits to 2 privates
        let mut e = sd.peek(b1).unwrap();
        e.sharers.remove(CoreId(0));
        assert!(sd.update(b1, e).is_empty());
        assert_eq!(
            sd.peek(b1).unwrap().sharers.iter().collect::<Vec<_>>(),
            vec![CoreId(1)]
        );
        // Removing the last sharer goes through remove().
        assert!(sd.remove(b1).is_some());
        assert_eq!(sd.peek(b1), None);
    }

    #[test]
    fn remove_shared_resident() {
        let mut sd = tiny();
        let b = BlockAddr(2);
        sd.allocate(b, DirEntry::shared(CoreId(0)));
        assert!(sd.remove(b).is_some());
        assert_eq!(sd.live_entries(), 0);
        assert!(sd.remove(b).is_none());
    }
}
