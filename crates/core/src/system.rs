//! The protocol engine: a home-serialised MESI write-invalidate directory
//! protocol with the complete ZeroDEV extension set.
//!
//! # Modelling approach
//!
//! Each request is resolved *atomically at the home bank* at its arrival
//! time: the full critical-path latency (NoC hops, tag/data array accesses,
//! bank port queueing, DRAM timing, forwarding hops, invalidation round
//! trips) is computed and charged before the response, and all coherence
//! state is updated synchronously. Every message the transaction puts on
//! the wire is recorded for traffic accounting. This avoids the transient-
//! state explosion of a message-level protocol while preserving the paper's
//! performance effects — extra hops, extra LLC data-array lookups,
//! DEV-induced misses, and DRAM traffic. The race-prone flow the paper
//! singles out (a racing directory-entry eviction in a forwarded socket,
//! §III-D6) depends on *stable* state — the entry having been written back
//! to home memory — so the `DENF_NACK` path is exercised faithfully.
//!
//! The private L1/L2 caches live in the `zerodev-sim` crate; they call
//! [`System::access`] on a private-hierarchy miss and [`System::evict`] on
//! every L2 victim (the paper's protocol notifies the directory of all
//! evictions, with clean notices carrying no data). Invalidations and
//! downgrades that the transaction produced are returned to the caller,
//! which applies them to the private arrays and reports back dirty data
//! through [`System::dev_dirty_recall`], [`System::sharing_writeback`] and
//! [`System::inclusion_dirty_writeback`] (the directory cannot distinguish
//! M from E, so only the core knows whether an invalidated or downgraded
//! line carried dirty data).

use crate::directory::{AllocOutcome, DirEntry, DirStore, EvictedEntry};
use crate::llc::{LlcBank, LlcLine, SpillOutcome};
use crate::memdir::{MemorySide, SocketDirEntry};
use zerodev_common::config::{
    ConfigError, LlcDesign, LlcReplacement, SpillPolicy, SystemConfig, ZeroDevConfig,
};
use zerodev_common::ids::{SharerSet, SocketSet};
use zerodev_common::protocol::{self, EntryPlacement};
use zerodev_common::{
    BlockAddr, CoreId, Cycle, DirState, MesiState, MsgClass, Prng, SocketId, Stats,
};
use zerodev_noc::SocketTopology;

// The request/eviction/invalidation vocabulary is shared with the model
// checker and lives in `zerodev_common::protocol`; re-exported here so the
// engine's callers keep their historical import paths.
pub use zerodev_common::protocol::{Downgrade, EvictKind, InvalReason, Invalidation, Op};

/// The outcome of one uncore transaction.
#[derive(Clone, Debug)]
pub struct AccessResult {
    /// Critical-path latency in core cycles, from issue to response.
    pub latency: u64,
    /// The MESI state granted to the requester.
    pub grant: MesiState,
    /// Private copies to invalidate.
    pub invalidations: Vec<Invalidation>,
    /// Private copies to downgrade to S.
    pub downgrades: Vec<Downgrade>,
}

/// A state-corruption fault class injectable via
/// [`System::inject_state_fault`]. Message-level faults (NACK storms,
/// delayed/duplicated completions) live in the sim engine and must be
/// harmless; these three silently corrupt protocol *state* and exist so the
/// fault campaign can prove the coherence oracle detects each of them.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum StateFault {
    /// Drops one sharer bit from a live directory entry with at least two
    /// sharers (a lost-invalidation bug), wherever the entry lives.
    SharerFlip,
    /// Clears the whole sharer set of an LLC-resident (spilled or fused)
    /// directory entry, leaving a dead entry occupying the line.
    LlcEntryCorrupt,
    /// Drops a sharer bit from a directory segment housed in the corrupted
    /// home-memory copy of a block (§III-D home-segment corruption).
    HomeSegmentFlip,
}

/// Where a directory entry currently lives within a socket.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum EntryLoc {
    /// In the dedicated directory structure.
    Dedicated,
    /// Spilled into a full LLC line.
    Spilled,
    /// Fused into the block's own LLC line.
    Fused,
}

/// Per-socket uncore state.
#[derive(Clone, Debug)]
struct Socket {
    banks: Vec<LlcBank>,
    dir: DirStore,
    topo: SocketTopology,
}

/// The complete coherent machine: all sockets plus the memory side.
/// `Clone` deep-copies the entire machine state — the model checker snapshots
/// systems this way while exploring the reachable-state graph.
#[derive(Clone, Debug)]
pub struct System {
    cfg: SystemConfig,
    sockets: Vec<Socket>,
    mem: MemorySide,
    /// All event counters.
    pub stats: Stats,
    /// Invariant checker, present only when auditing is enabled
    /// ([`Self::enable_audit`]); release sweeps pay one branch per hook.
    oracle: Option<Box<crate::oracle::Oracle>>,
}

impl System {
    /// Builds the machine described by `cfg`.
    ///
    /// # Errors
    /// Returns the underlying [`ConfigError`] when `cfg` is inconsistent.
    pub fn new(cfg: SystemConfig) -> Result<Self, ConfigError> {
        cfg.validate()?;
        let sets = cfg.llc_sets_per_bank();
        let sockets = (0..cfg.sockets)
            .map(|_| Socket {
                banks: (0..cfg.llc_banks)
                    .map(|b| LlcBank::new(sets, cfg.llc.ways, cfg.llc_banks, b))
                    .collect(),
                dir: DirStore::build(&cfg),
                topo: SocketTopology::new(cfg.cores, cfg.llc_banks, cfg.dram.channels, cfg.noc),
            })
            .collect();
        let mem = MemorySide::new(&cfg);
        Ok(System {
            cfg,
            sockets,
            mem,
            stats: Stats::new(),
            oracle: None,
        })
    }

    /// Attaches the coherence invariant oracle (shadow model + checker,
    /// [`crate::oracle`]). Must be enabled before the first transaction so
    /// the shadow map sees the whole stream; every subsequent transaction
    /// is checked and the first violation panics with an event-log dump.
    /// The oracle only reads through recency-neutral accessors, so stats
    /// stay byte-identical to an unaudited run.
    pub fn enable_audit(&mut self) {
        self.oracle = Some(Box::new(crate::oracle::Oracle::new(&self.cfg)));
    }

    /// True when the invariant oracle is attached.
    pub fn audit_enabled(&self) -> bool {
        self.oracle.is_some()
    }

    /// Runs a full shadow-map sweep now (no-op without [`Self::enable_audit`]).
    /// The engine calls this once at the end of an audited run.
    pub fn audit_sweep(&self) {
        if let Some(o) = &self.oracle {
            o.full_sweep(self);
        }
    }

    /// FNV-1a fingerprint of the machine configuration's canonical `Debug`
    /// rendering. A checkpoint stores this instead of the configuration
    /// itself; restore verifies the caller rebuilt the same machine.
    pub fn config_fingerprint(cfg: &SystemConfig) -> u64 {
        zerodev_common::snap::fnv1a(format!("{cfg:?}").as_bytes())
    }

    /// Serializes the complete machine state — stats, every socket's LLC
    /// banks, directory, and mesh counters, the memory side, and the audit
    /// oracle when attached — for checkpointing. Structure geometry is not
    /// written; restore rebuilds it from the configuration (whose
    /// fingerprint is embedded and verified). All array contents are
    /// written lane-exact so deterministic state-fault victim selection
    /// ([`System::inject_state_fault`]) iterates identically after restore.
    pub fn snap(&self, w: &mut zerodev_common::snap::SnapWriter) {
        w.u64(Self::config_fingerprint(&self.cfg));
        self.stats.snap(w);
        w.usize(self.sockets.len());
        for s in &self.sockets {
            w.usize(s.banks.len());
            for b in &s.banks {
                b.snap(w);
            }
            s.dir.snap(w);
            s.topo.mesh().snap(w);
        }
        self.mem.snap(w);
        match &self.oracle {
            Some(o) => {
                w.bool(true);
                o.snap(w);
            }
            None => w.bool(false),
        }
    }

    /// Restores a [`System::snap`] image into this machine, which must have
    /// been freshly built ([`System::new`]) from the same configuration.
    /// The audit oracle is attached or detached to match the image.
    ///
    /// # Errors
    /// Fails with a structural [`zerodev_common::snap::SnapError`] when the
    /// configuration fingerprint disagrees or the image is corrupt.
    pub fn unsnap(
        &mut self,
        r: &mut zerodev_common::snap::SnapReader<'_>,
    ) -> Result<(), zerodev_common::snap::SnapError> {
        use zerodev_common::snap::SnapError;
        if r.u64("system config fingerprint")? != Self::config_fingerprint(&self.cfg) {
            return Err(SnapError::Corrupt {
                context: "system config fingerprint",
            });
        }
        self.stats = Stats::unsnap(r)?;
        if r.usize("system socket count")? != self.sockets.len() {
            return Err(SnapError::Corrupt {
                context: "system socket count",
            });
        }
        for s in self.sockets.iter_mut() {
            if r.usize("system bank count")? != s.banks.len() {
                return Err(SnapError::Corrupt {
                    context: "system bank count",
                });
            }
            for b in s.banks.iter_mut() {
                b.unsnap(r)?;
            }
            s.dir.unsnap(r)?;
            s.topo.mesh_mut().unsnap(r)?;
        }
        self.mem.unsnap(r)?;
        if r.bool("system audit flag")? {
            if self.oracle.is_none() {
                self.enable_audit();
            }
            self.oracle
                .as_mut()
                .expect("audit just enabled")
                .unsnap(r)?;
        } else {
            self.oracle = None;
        }
        Ok(())
    }

    /// Test-only fault injection: silently drops one sharer from the
    /// directory entry tracking `block` in `socket`, wherever the entry
    /// lives, modelling a lost-sharer protocol bug. Returns false when no
    /// entry with at least two sharers tracks the block. The next audit
    /// check over the block must flag the precision violation.
    #[doc(hidden)]
    pub fn debug_inject_lost_sharer(&mut self, socket: SocketId, block: BlockAddr) -> bool {
        let s = socket.0 as usize;
        let Some((mut e, loc)) = self.find_entry(s, block) else {
            return false;
        };
        let Some(victim) = e.sharers.any() else {
            return false;
        };
        if e.sharers.count() < 2 {
            return false;
        }
        e.sharers.remove(victim);
        self.write_entry_back(s, block, e, loc);
        true
    }

    /// Writes a (possibly corrupted) entry back to wherever it lives,
    /// without charging latency or statistics — fault-injection plumbing.
    fn write_entry_back(&mut self, s: usize, block: BlockAddr, e: DirEntry, loc: EntryLoc) {
        let bank = self.bank_of(block);
        match loc {
            EntryLoc::Dedicated => {
                let _ = self.sockets[s].dir.update(block, e);
            }
            EntryLoc::Spilled => {
                let policy = self.policy();
                let _ = self.sockets[s].banks[bank].spill_entry(block, e, policy);
            }
            EntryLoc::Fused => {
                self.sockets[s].banks[bank].fuse_entry(block, e);
            }
        }
    }

    /// Every LLC-resident directory entry (spilled or fused) across all
    /// sockets, as `(socket, block, entry)` — the fault planner's victim
    /// candidate list. Recency-neutral.
    fn llc_resident_entries(&self) -> Vec<(usize, BlockAddr, DirEntry)> {
        let mut out = Vec::new();
        for (s, sk) in self.sockets.iter().enumerate() {
            for bank in &sk.banks {
                for (block, line) in bank.iter() {
                    if let Some(e) = line.entry() {
                        out.push((s, block, e));
                    }
                }
            }
        }
        out
    }

    /// Fault-injection hook: silently corrupts one piece of live directory
    /// state of class `kind`, choosing the victim deterministically with
    /// `rng`. Returns the corrupted block and a description of what was
    /// done, or `None` when no candidate state exists yet (the campaign
    /// re-arms and retries on a later access). The corruption itself makes
    /// no noise — [`Self::audit_check_block`] immediately afterwards is
    /// what must flag it.
    pub fn inject_state_fault(
        &mut self,
        kind: StateFault,
        rng: &mut Prng,
    ) -> Option<(BlockAddr, String)> {
        match kind {
            StateFault::SharerFlip => {
                let cands: Vec<(usize, BlockAddr, DirEntry)> = self
                    .llc_resident_entries()
                    .into_iter()
                    .filter(|(_, _, e)| e.sharers.count() >= 2)
                    .collect();
                if cands.is_empty() {
                    return None;
                }
                let (s, block, _) = cands[rng.below(cands.len() as u64) as usize];
                let (mut e, loc) = self.find_entry(s, block)?;
                let holders: Vec<CoreId> = e.sharers.iter().collect();
                let victim = holders[rng.below(holders.len() as u64) as usize];
                e.sharers.remove(victim);
                self.write_entry_back(s, block, e, loc);
                Some((
                    block,
                    format!("dropped sharer c{} of {block:?} in socket {s}", victim.0),
                ))
            }
            StateFault::LlcEntryCorrupt => {
                let cands = self.llc_resident_entries();
                if cands.is_empty() {
                    return None;
                }
                let (s, block, _) = cands[rng.below(cands.len() as u64) as usize];
                let (mut e, loc) = self.find_entry(s, block)?;
                e.sharers = SharerSet(0);
                self.write_entry_back(s, block, e, loc);
                Some((
                    block,
                    format!("cleared sharer set of LLC-resident entry for {block:?} (socket {s}, {loc:?})"),
                ))
            }
            StateFault::HomeSegmentFlip => {
                let cands: Vec<(BlockAddr, SocketId)> = self
                    .mem
                    .corrupted_blocks()
                    .flat_map(|(b, cb)| cb.sockets().iter().map(move |s| (b, s)))
                    .filter(|&(b, s)| {
                        self.mem
                            .peek_entry(b, s)
                            .is_some_and(|e| e.sharers.count() > 0)
                    })
                    .collect();
                if cands.is_empty() {
                    return None;
                }
                let (block, sid) = cands[rng.below(cands.len() as u64) as usize];
                let mut seg = self.mem.peek_entry(block, sid)?;
                let holders: Vec<CoreId> = seg.sharers.iter().collect();
                let victim = holders[rng.below(holders.len() as u64) as usize];
                seg.sharers.remove(victim);
                self.mem.rewrite_entry(block, sid, seg);
                Some((
                    block,
                    format!(
                        "dropped sharer c{} from the segment of socket {} housed at {block:?}",
                        victim.0, sid.0
                    ),
                ))
            }
        }
    }

    /// Runs the oracle's single-block invariant check over `block` now
    /// (no-op without [`Self::enable_audit`]). The fault campaign calls
    /// this right after [`Self::inject_state_fault`] so detection latency
    /// is zero rather than "whenever the next sweep happens".
    pub fn audit_check_block(&self, block: BlockAddr) {
        if let Some(o) = &self.oracle {
            o.check_block(self, block);
        }
    }

    /// Fault-injection hook: a duplicated completion for `core`'s earlier
    /// grant of `block` arrives again. Returns true when the directory
    /// still tracks the core for the block — the private cache holds the
    /// line and drops the duplicate as idempotent — and false when the
    /// duplicate raced a later invalidation and is dropped as stale.
    /// Read-only: duplicates never mutate protocol state.
    pub fn duplicate_completion_is_current(
        &self,
        socket: SocketId,
        core: CoreId,
        block: BlockAddr,
    ) -> bool {
        self.find_entry(socket.0 as usize, block)
            .is_some_and(|(e, _)| e.sharers.contains(core))
    }

    /// Fault-injection hook: routes a phantom core→home-bank message of
    /// `bytes` through the socket's mesh and returns its one-way latency.
    /// Only the NoC load diagnostics move — protocol state, statistics and
    /// timing are untouched, which is what keeps message-level faults
    /// byte-identical on the final stats.
    pub fn fault_route(
        &mut self,
        socket: SocketId,
        core: CoreId,
        block: BlockAddr,
        bytes: u64,
    ) -> u64 {
        let bank = self.bank_of(block);
        self.sockets[socket.0 as usize]
            .topo
            .route_core_bank(core.0 as usize, bank, bytes)
    }

    /// Aggregate NoC load diagnostics (byte-hops, messages) summed over
    /// every socket's mesh.
    pub fn noc_load(&self) -> (u64, u64) {
        self.sockets.iter().fold((0, 0), |(bh, m), sk| {
            let mesh = sk.topo.mesh();
            (
                bh.saturating_add(mesh.byte_hops()),
                m.saturating_add(mesh.messages()),
            )
        })
    }

    /// The machine configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// The memory side (diagnostics: corrupted blocks, DRAM counters).
    pub fn memory(&self) -> &MemorySide {
        &self.mem
    }

    fn zd(&self) -> Option<ZeroDevConfig> {
        self.cfg.zerodev
    }

    fn policy(&self) -> LlcReplacement {
        self.zd().map_or(LlcReplacement::Lru, |z| z.llc_replacement)
    }

    #[inline]
    fn bank_of(&self, block: BlockAddr) -> usize {
        self.cfg.home_bank(block).0 as usize
    }

    /// Finds the directory entry for `block` within socket `s`, wherever it
    /// lives (dedicated structure, spilled line, or fused line). The lookup
    /// itself costs no extra latency: the dedicated directory is probed in
    /// parallel with the LLC tags, and LLC-resident entries are discovered
    /// by the same tag lookup.
    fn find_entry(&self, s: usize, block: BlockAddr) -> Option<(DirEntry, EntryLoc)> {
        if let Some(e) = self.sockets[s].dir.peek(block) {
            return Some((e, EntryLoc::Dedicated));
        }
        let bank = &self.sockets[s].banks[self.bank_of(block)];
        if let Some(LlcLine::Fused { entry, .. }) = bank.block_line(block) {
            return Some((entry, EntryLoc::Fused));
        }
        bank.spilled_entry(block).map(|e| (e, EntryLoc::Spilled))
    }

    /// Charges bank-port occupancy: the transaction uses the port at `t` for
    /// `busy` cycles; returns the (possibly queued) service start time.
    fn bank_port(&mut self, s: usize, bank: usize, t: Cycle, busy: u64) -> Cycle {
        let port = &mut self.sockets[s].banks[bank].port_free;
        let start = t.max(*port);
        *port = start + busy;
        start
    }

    /// Recovers a directory entry housed in the home-memory copy of
    /// `block` (§III-D3 step 3): reads the corrupted block, extracts this
    /// socket's segment (one extra cycle), and reinstalls it in the socket.
    // lint:consumes(Request)
    fn recover_housed_entry(
        &mut self,
        t: &mut Cycle,
        s: usize,
        now: Cycle,
        block: BlockAddr,
        invals: &mut Vec<Invalidation>,
    ) -> Option<(DirEntry, Option<EntryLoc>)> {
        let home = self.cfg.home_socket(block);
        self.stats.msg(MsgClass::MemRead);
        if home.0 as usize != s {
            *t += self.cfg.inter_socket_cycles;
            self.stats.msg(MsgClass::SocketCtrl);
        }
        // lint:context(MemRead)
        self.stats.dram_reads += 1;
        let tm = self.mem.dram_read(*t, home, block);
        self.stats.msg(MsgClass::MemReadData);
        *t = tm + 1;
        if home.0 as usize != s {
            *t += self.cfg.inter_socket_cycles;
            self.stats.msg(MsgClass::SocketData);
        }
        let entry = self.mem.extract_entry(block, SocketId(s as u8))?;
        self.install_entry(now, s, block, entry, invals);
        self.track_live(-1); // re-installed, not newly live
                             // A degenerate LLC can refuse the placement and bounce the entry
                             // straight back home (WB_DE); `None` then means "still housed".
        Some((entry, self.relocate(s, block)))
    }

    // ---------------------------------------------------------------------
    // Entry placement and maintenance
    // ---------------------------------------------------------------------

    /// Places a brand-new entry: dedicated structure first, LLC on overflow.
    /// Baseline victims become DEV invalidations appended to `invals`.
    fn install_entry(
        &mut self,
        now: Cycle,
        s: usize,
        block: BlockAddr,
        entry: DirEntry,
        invals: &mut Vec<Invalidation>,
    ) {
        self.stats.dir_allocs += 1;
        let outcome = self.sockets[s].dir.allocate(block, entry);
        self.track_live(1);
        match outcome {
            AllocOutcome::Stored => {}
            AllocOutcome::Evicted(victims) => {
                self.stats.dir_evictions += victims.len() as u64;
                self.track_live(-(victims.len() as i64));
                self.apply_dev_victims(now, s, &victims, invals);
            }
            AllocOutcome::Overflow => {
                self.accommodate_in_llc(now, s, block, entry, invals);
            }
        }
    }

    /// Gauge upkeep for Figure 5 (exact for Sparse/Unbounded/None stores).
    fn track_live(&mut self, delta: i64) {
        if delta < 0 && self.stats.dir_live_entries < (-delta) as u64 {
            // SecDir/MgD partial victims can make the simple gauge drift;
            // clamp rather than panic (the gauge is only read in
            // unbounded-directory experiments, where it is exact).
            self.stats.dir_live_entries = 0;
            return;
        }
        self.stats.adjust_dir_live(delta);
    }

    /// Baseline directory eviction: every tracked private copy becomes a
    /// DEV. Dirty owners are detected by the caller (only the core knows)
    /// and reported through [`System::dev_dirty_recall`].
    // lint:consumes(Request)
    fn apply_dev_victims(
        &mut self,
        _now: Cycle,
        s: usize,
        victims: &[EvictedEntry],
        invals: &mut Vec<Invalidation>,
    ) {
        for (vblock, ventry) in victims {
            let n = ventry.sharers.count() as u64;
            self.stats.dev_invalidations += n;
            self.stats.msg_n(MsgClass::Invalidation, n);
            // lint:context(Invalidation)
            self.stats.msg_n(MsgClass::Ack, n);
            for core in ventry.sharers.iter() {
                invals.push(Invalidation {
                    socket: SocketId(s as u8),
                    core,
                    block: *vblock,
                    reason: InvalReason::Dev,
                });
            }
        }
    }

    /// Accommodates an overflowing entry in the LLC per the configured
    /// ZeroDEV policy (§III-C).
    fn accommodate_in_llc(
        &mut self,
        now: Cycle,
        s: usize,
        block: BlockAddr,
        entry: DirEntry,
        invals: &mut Vec<Invalidation>,
    ) {
        let zd = self.zd().expect("overflow only occurs under ZeroDEV");
        let bank = self.bank_of(block);
        let has_block = self.sockets[s].banks[bank].block_line(block).is_some();
        let placement = protocol::overflow_placement(zd.policy, has_block, entry.state.is_owned());
        self.stats.llc_dir_accesses += 1;
        if placement == EntryPlacement::Fuse {
            // Fusing rides along with the block's own fill/update — no
            // separate data-array access (the FPSS design point, §III-C2).
            self.stats.dir_fuses += 1;
            self.sockets[s].banks[bank].fuse_entry(block, entry);
        } else {
            self.stats.dir_spills += 1;
            self.stats.llc_data_accesses += 1;
            let policy = self.policy();
            match self.sockets[s].banks[bank].spill_entry(block, entry, policy) {
                SpillOutcome::Updated => {}
                SpillOutcome::Inserted(victim) => {
                    self.stats.adjust_spilled_lines(1);
                    if let Some(v) = victim {
                        self.handle_llc_victim(now, s, v, invals);
                    }
                }
                SpillOutcome::Refused(e) => {
                    // Degenerate set: the only displaceable line is the
                    // entry's own block data line. The entry goes straight
                    // home (WB_DE) instead; GET_DE recalls it later.
                    self.wbde(now, s, block, e);
                }
            }
        }
    }

    /// Rewrites a live entry in place, maintaining the FPSS invariants
    /// (fused ⇒ M/E when the block is resident; spilled ⇒ S), §III-C2.
    // lint:consumes(Request, EvictNotice)
    fn update_entry(
        &mut self,
        now: Cycle,
        s: usize,
        block: BlockAddr,
        entry: DirEntry,
        loc: EntryLoc,
        invals: &mut Vec<Invalidation>,
    ) {
        debug_assert!(!entry.is_dead());
        let bank = self.bank_of(block);
        let spill_policy = self.zd().map(|z| z.policy);
        match loc {
            EntryLoc::Dedicated => {
                let victims = self.sockets[s].dir.update(block, entry);
                if !victims.is_empty() {
                    self.stats.dir_evictions += victims.len() as u64;
                    self.apply_dev_victims(now, s, &victims, invals);
                }
            }
            EntryLoc::Spilled => {
                self.stats.llc_dir_accesses += 1;
                self.stats.llc_data_accesses += 1;
                let has_block = self.sockets[s].banks[bank].block_line(block).is_some();
                if spill_policy.is_some_and(|p| {
                    protocol::refuse_on_update(p, entry.state.is_owned(), has_block)
                }) {
                    // S→M/E with the block resident: fuse, free the spill.
                    if self.sockets[s].banks[bank].remove_spilled(block).is_some() {
                        self.stats.adjust_spilled_lines(-1);
                    }
                    self.stats.dir_fuses += 1;
                    self.sockets[s].banks[bank].fuse_entry(block, entry);
                } else {
                    let policy = self.policy();
                    match self.sockets[s].banks[bank].spill_entry(block, entry, policy) {
                        SpillOutcome::Updated => {}
                        SpillOutcome::Inserted(victim) => {
                            // The spilled line vanished mid-transaction (a
                            // fill pushed it home via WB_DE); re-created
                            // here, so pull the housed segment back.
                            let _ = self.mem.extract_entry(block, SocketId(s as u8));
                            self.stats.adjust_spilled_lines(1);
                            if let Some(v) = victim {
                                self.handle_llc_victim(now, s, v, invals);
                            }
                        }
                        SpillOutcome::Refused(e) => {
                            // Vanished mid-transaction and the set cannot
                            // take it back: replace the housed segment with
                            // the updated entry.
                            let _ = self.mem.extract_entry(block, SocketId(s as u8));
                            self.wbde(now, s, block, e);
                        }
                    }
                }
            }
            EntryLoc::Fused => {
                self.stats.llc_dir_accesses += 1;
                if spill_policy
                    .is_some_and(|p| protocol::unfuse_on_update(p, entry.state.is_owned()))
                {
                    self.stats.llc_data_accesses += 1; // the new spill write
                                                       // M/E→S: spill the entry and reconstruct the block from
                                                       // the owner's low bits sent with the busy-clear message.
                    let _ = self.sockets[s].banks[bank].unfuse(block);
                    // lint:context(EvictNoticeBits)
                    self.stats.msg(MsgClass::EvictNoticeBits);
                    self.stats.dir_spills += 1;
                    let policy = self.policy();
                    match self.sockets[s].banks[bank].spill_entry(block, entry, policy) {
                        SpillOutcome::Updated => {}
                        SpillOutcome::Inserted(victim) => {
                            self.stats.adjust_spilled_lines(1);
                            if let Some(v) = victim {
                                self.handle_llc_victim(now, s, v, invals);
                            }
                        }
                        SpillOutcome::Refused(e) => {
                            // M/E→S un-fuse freed the block's line in this
                            // set, so a full set means every line belongs to
                            // other blocks — only a same-key data line can
                            // be refused. Unreachable, but route home for
                            // robustness rather than panic.
                            self.wbde(now, s, block, e);
                        }
                    }
                } else {
                    self.sockets[s].banks[bank].fuse_entry(block, entry);
                }
            }
        }
    }

    /// Frees a live entry (all private copies gone). A fused line reverts to
    /// a plain data line, reconstructed from the bits carried by the final
    /// eviction notice (`retrieval` charges the FuseAll special-ack round
    /// trip when the notice did not carry them). Robust against the entry
    /// having left for home memory mid-transaction (WB_DE by an LLC fill of
    /// the same transaction): the housed segment is discarded instead.
    // lint:consumes(Request, EvictNotice)
    fn free_entry(&mut self, s: usize, block: BlockAddr, loc: EntryLoc, retrieval: bool) {
        let bank = self.bank_of(block);
        match loc {
            EntryLoc::Dedicated => {
                let _ = self.sockets[s].dir.remove(block);
            }
            EntryLoc::Spilled => {
                if self.sockets[s].banks[bank].remove_spilled(block).is_some() {
                    self.stats.adjust_spilled_lines(-1);
                }
                self.stats.llc_dir_accesses += 1;
                self.stats.llc_data_accesses += 1;
            }
            EntryLoc::Fused => {
                if retrieval {
                    // §III-C3: retrieve the corrupted low bits from the last
                    // sharer's eviction buffer with a special acknowledgement.
                    self.stats.msg(MsgClass::Ack);
                    // lint:context(EvictNoticeBits)
                    self.stats.msg(MsgClass::EvictNoticeBits);
                }
                if matches!(
                    self.sockets[s].banks[bank].block_line(block),
                    Some(LlcLine::Fused { .. })
                ) {
                    let _ = self.sockets[s].banks[bank].unfuse(block);
                }
                self.stats.llc_dir_accesses += 1;
            }
        }
        self.track_live(-1);
    }

    /// After the last trace of `block` left socket `s`, restore the home
    /// memory copy if it was corrupted: the departing data (from the
    /// evicting core or the LLC line) overwrites the housed segments
    /// (§III-D4, last paragraph). Charges the full-block retrieval.
    // lint:consumes(Request, EvictNotice)
    fn restore_if_last_copy(&mut self, now: Cycle, s: usize, block: BlockAddr) {
        if !self.mem.is_corrupted(block) {
            return;
        }
        let me = SocketId(s as u8);
        // Our own housed segment naming sharers is live tracking: those
        // cores' private copies remain data sources, so the last trace has
        // NOT left the socket (e.g. a clean LLC data line departing while
        // the entry sits at home after a WB_DE). The block stays corrupted.
        if self
            .mem
            .peek_entry(block, me)
            .is_some_and(|e| e.sharers.count() > 0)
        {
            return;
        }
        let _ = self.mem.extract_entry(block, me);
        // Another socket may still hold copies (its segment or entry lives
        // on); only the system-wide last copy restores.
        let others_have_segments = self
            .mem
            .corrupted_block(block)
            .is_some_and(|cb| !cb.sockets().is_empty());
        if others_have_segments {
            return;
        }
        if self.cfg.sockets > 1 {
            let home = self.cfg.home_socket(block);
            let lookup = self.mem.socket_dir_lookup(home, block);
            if let Some(se) = lookup.entry {
                let other_sockets = se.sharers.iter().any(|x| x != me);
                if other_sockets {
                    return;
                }
            }
        }
        let home = self.cfg.home_socket(block);
        self.stats.msg(MsgClass::Writeback);
        if home.0 as usize != s {
            self.stats.msg(MsgClass::SocketData);
        }
        self.mem.restore(block);
        self.mem.dram_write(now, home, block);
        self.stats.dram_writes += 1;
    }

    /// Rewrites a live entry wherever it now lives: in the socket (the
    /// common case) or — when an LLC fill earlier in this transaction pushed
    /// it home via WB_DE — in its home-memory segment.
    fn write_entry_anywhere(
        &mut self,
        now: Cycle,
        s: usize,
        block: BlockAddr,
        entry: DirEntry,
        invals: &mut Vec<Invalidation>,
    ) {
        match self.relocate(s, block) {
            Some(loc) => self.update_entry(now, s, block, entry, loc, invals),
            None => {
                let home = self.cfg.home_socket(block);
                self.mem.rewrite_entry(block, SocketId(s as u8), entry);
                self.mem.dram_write(now, home, block);
                self.stats.dram_writes += 1;
            }
        }
    }

    // ---------------------------------------------------------------------
    // LLC fills and victims
    // ---------------------------------------------------------------------

    /// Fills (or updates) the data line for `block` in socket `s`,
    /// processing any victim.
    fn fill_llc(
        &mut self,
        now: Cycle,
        s: usize,
        block: BlockAddr,
        dirty: bool,
        invals: &mut Vec<Invalidation>,
    ) {
        let bank = self.bank_of(block);
        let policy = self.policy();
        self.stats.llc_data_accesses += 1;
        let victim = self.sockets[s].banks[bank].fill_data(block, dirty, policy);
        if let Some(v) = victim {
            self.handle_llc_victim(now, s, v, invals);
        }
    }

    /// Processes a line evicted from an LLC set: dirty data goes to home
    /// memory, spilled/fused entries trigger the WB_DE flow (§III-D), and
    /// inclusive designs back-invalidate private copies.
    // lint:consumes(Request, EvictNotice)
    fn handle_llc_victim(
        &mut self,
        now: Cycle,
        s: usize,
        victim: (BlockAddr, LlcLine),
        invals: &mut Vec<Invalidation>,
    ) {
        let (vblock, line) = victim;
        match line {
            LlcLine::Data { dirty } => {
                if self.cfg.llc_design == LlcDesign::Inclusive {
                    // Back-invalidate every private copy; the freed entry is
                    // an inclusion casualty, not a DEV.
                    if let Some((entry, loc)) = self.find_entry(s, vblock) {
                        let n = entry.sharers.count() as u64;
                        self.stats.inclusion_invalidations += n;
                        self.stats.msg_n(MsgClass::Invalidation, n);
                        // lint:context(Invalidation)
                        self.stats.msg_n(MsgClass::Ack, n);
                        for core in entry.sharers.iter() {
                            invals.push(Invalidation {
                                socket: SocketId(s as u8),
                                core,
                                block: vblock,
                                reason: InvalReason::Inclusion,
                            });
                        }
                        // The block line is gone already; a spilled entry in
                        // the same set is freed; `loc` cannot be Fused (the
                        // victim was a plain data line).
                        self.free_entry(s, vblock, loc, false);
                        if !dirty {
                            self.restore_if_last_copy(now, s, vblock);
                        }
                    }
                }
                if dirty {
                    self.writeback_to_memory(now, s, vblock);
                } else if self.mem.is_corrupted(vblock) && self.find_entry(s, vblock).is_none() {
                    // Clean data leaving the socket while home memory is
                    // corrupted and no private copies remain: this line was
                    // the last data source — restore memory from it.
                    self.restore_if_last_copy(now, s, vblock);
                }
                self.departure_check(now, s, vblock);
            }
            LlcLine::Spilled { entry } => {
                self.stats.adjust_spilled_lines(-1);
                self.wbde(now, s, vblock, entry);
            }
            LlcLine::Fused { entry, block_dirty } => {
                if self.cfg.llc_design == LlcDesign::Inclusive {
                    // Inclusion: evicting the line invalidates the private
                    // copies, which frees the entry — no directory entry is
                    // ever evicted from an inclusive LLC (§III-F).
                    let n = entry.sharers.count() as u64;
                    self.stats.inclusion_invalidations += n;
                    self.stats.msg_n(MsgClass::Invalidation, n);
                    // lint:context(Invalidation)
                    self.stats.msg_n(MsgClass::Ack, n);
                    for core in entry.sharers.iter() {
                        invals.push(Invalidation {
                            socket: SocketId(s as u8),
                            core,
                            block: vblock,
                            reason: InvalReason::Inclusion,
                        });
                    }
                    self.track_live(-1);
                    if block_dirty {
                        self.writeback_to_memory(now, s, vblock);
                    } else {
                        self.restore_if_last_copy(now, s, vblock);
                    }
                } else {
                    // The entry goes home; the block bits need no writeback
                    // — the owner (FPSS) or the sharers (FuseAll) hold the
                    // block, and a last-copy eviction of a corrupted block
                    // retrieves it.
                    self.wbde(now, s, vblock, entry);
                }
                self.departure_check(now, s, vblock);
            }
        }
    }

    /// The WB_DE flow: a fused or spilled entry evicted from the LLC
    /// overwrites the home-memory copy of the block it tracks (Figure 14).
    // lint:consumes(Request, EvictNotice)
    fn wbde(&mut self, now: Cycle, s: usize, block: BlockAddr, entry: DirEntry) {
        self.stats.dir_llc_evictions += 1;
        let home = self.cfg.home_socket(block);
        self.stats.msg(MsgClass::WbDirEntry);
        if home.0 as usize != s {
            self.stats.msg(MsgClass::SocketData);
        }
        let rmw = self.mem.house_entry(block, SocketId(s as u8), entry);
        if rmw {
            // Another socket's segment is housed: read-modify-write.
            self.stats.dram_reads_dir += 1;
            self.stats.dram_reads += 1;
            let t = self.mem.dram_read(now, home, block);
            self.mem.dram_write(t, home, block);
        } else {
            self.mem.dram_write(now, home, block);
        }
        self.stats.dram_writes += 1;
        self.stats.dram_writes_dir += 1;
    }

    /// Writes dirty data back to home memory, restoring a corrupted block
    /// if necessary (the socket's own housed segment is pulled back in
    /// first so no tracking is lost).
    // lint:consumes(Writeback)
    fn writeback_to_memory(&mut self, now: Cycle, s: usize, block: BlockAddr) {
        let home = self.cfg.home_socket(block);
        self.stats.msg(MsgClass::MemWrite);
        if home.0 as usize != s {
            self.stats.msg(MsgClass::SocketData);
        }
        if self.mem.is_corrupted(block) {
            if let Some(entry) = self.mem.extract_entry(block, SocketId(s as u8)) {
                // Plain-LRU ZeroDEV corner: the data line outlived its
                // entry. Pull the entry back in before the data overwrite.
                let mut dummy = Vec::new();
                self.install_entry(now, s, block, entry, &mut dummy);
                self.track_live(-1); // re-install, not a new live entry
                debug_assert!(dummy.is_empty(), "reinstall under ZeroDEV cannot DEV");
            }
            if self
                .mem
                .corrupted_block(block)
                .is_none_or(|cb| cb.sockets().is_empty())
            {
                self.mem.restore(block);
            }
        }
        self.mem.dram_write(now, home, block);
        self.stats.dram_writes += 1;
    }

    /// After a socket may have lost its last trace of `block`, update the
    /// socket-level directory (multi-socket machines only).
    // lint:consumes(Request, EvictNotice)
    fn departure_check(&mut self, _now: Cycle, s: usize, block: BlockAddr) {
        if self.cfg.sockets == 1 {
            return;
        }
        let has_entry = self.find_entry(s, block).is_some();
        let has_line = self.sockets[s].banks[self.bank_of(block)]
            .block_line(block)
            .is_some();
        let has_segment = self.mem.peek_entry(block, SocketId(s as u8)).is_some();
        if has_entry || has_line || has_segment {
            return;
        }
        let home = self.cfg.home_socket(block);
        let lookup = self.mem.socket_dir_lookup(home, block);
        if let Some(mut e) = lookup.entry {
            if e.sharers.contains(SocketId(s as u8)) {
                self.stats.msg(MsgClass::SocketCtrl);
                e.sharers.remove(SocketId(s as u8));
                if e.sharers.is_empty() {
                    self.mem.socket_dir_remove(home, block);
                } else {
                    if e.owner() == Some(SocketId(s as u8)) {
                        e.owned = false;
                    }
                    self.mem.socket_dir_update(home, block, e);
                }
            }
        }
    }

    // ---------------------------------------------------------------------
    // The request path
    // ---------------------------------------------------------------------

    /// Processes a private-hierarchy miss (or upgrade) from `core` in socket
    /// `socket` at time `now`.
    ///
    /// # Panics
    /// Panics (debug) when the caller violates the request contract, e.g.
    /// issues an `Upgrade` for an untracked block.
    pub fn access(
        &mut self,
        now: Cycle,
        socket: SocketId,
        core: CoreId,
        block: BlockAddr,
        op: Op,
    ) -> AccessResult {
        let mut invalidations = Vec::new();
        let mut downgrades = Vec::new();
        let (latency, grant) = self.access_into(
            now,
            socket,
            core,
            block,
            op,
            &mut invalidations,
            &mut downgrades,
        );
        AccessResult {
            latency,
            grant,
            invalidations,
            downgrades,
        }
    }

    /// Allocation-free form of [`Self::access`]: appends this transaction's
    /// invalidations and downgrades to caller-owned buffers (the sim engine
    /// reuses one pair of buffers across every reference) and returns
    /// `(latency, grant)`. The oracle hook sees exactly the entries this
    /// call appended.
    #[allow(clippy::too_many_arguments)]
    // lint:consumes(Request)
    pub fn access_into(
        &mut self,
        now: Cycle,
        socket: SocketId,
        core: CoreId,
        block: BlockAddr,
        op: Op,
        invals: &mut Vec<Invalidation>,
        downgrades: &mut Vec<Downgrade>,
    ) -> (u64, MesiState) {
        let s = socket.0 as usize;
        let bank = self.bank_of(block);
        if let Some(o) = self.oracle.as_mut() {
            o.begin_access(&self.stats);
        }
        if op == Op::Upgrade {
            self.stats.upgrades += 1;
        } else {
            self.stats.core_cache_misses += 1;
        }
        self.stats.msg(MsgClass::Request);
        let mut t = now
            + self.sockets[s].topo.core_bank_latency(
                core.0 as usize,
                bank,
                MsgClass::Request.bytes(),
            );
        // Tag array + dedicated directory probed in parallel.
        t = self.bank_port(s, bank, t, self.cfg.llc_tag_cycles) + self.cfg.llc_tag_cycles;
        self.stats.llc_tag_lookups += 1;
        self.stats.dir_lookups += 1;

        let inv_start = invals.len();
        let dg_start = downgrades.len();
        let found = self.find_entry(s, block);
        let grant;

        match op {
            Op::Upgrade => {
                // Under ZeroDEV the entry of an S block can be housed in
                // home memory while sharers still hold copies; recover it
                // first (read the corrupted block, extract, reinstall).
                let (entry, loc) = match found {
                    Some((e, l)) => (e, Some(l)),
                    None => self
                        .recover_housed_entry(&mut t, s, now, block, invals)
                        .expect("upgrade requires a tracked block"),
                };
                debug_assert!(entry.sharers.contains(core), "upgrader holds an S copy");
                debug_assert_eq!(entry.state, DirState::Shared);
                if loc != Some(EntryLoc::Dedicated) {
                    // The entry must be read from the LLC data array before
                    // the invalidation count can be returned.
                    t += self.cfg.llc_data_cycles;
                    self.stats.llc_dir_accesses += 1;
                    self.stats.llc_data_accesses += 1;
                }
                let inv_path = self.invalidate_sharers(
                    s,
                    bank,
                    block,
                    &entry,
                    Some(core),
                    InvalReason::Coherence,
                    invals,
                );
                // Dataless response with the expected-ack count.
                let resp = self.sockets[s].topo.bank_core_latency(
                    bank,
                    core.0 as usize,
                    MsgClass::Ack.bytes(),
                );
                self.stats.msg(MsgClass::Ack);
                t += resp.max(inv_path);
                let new_entry = DirEntry::owned(core);
                self.epd_on_private_transition(now, s, block);
                let _ = loc;
                self.write_entry_anywhere(now, s, block, new_entry, invals);
                // Remote sockets sharing the block must be invalidated too.
                t += self.socket_level_invalidate(now, s, block, invals);
                grant = MesiState::Modified;
            }
            Op::Read | Op::CodeRead => {
                let code = op == Op::CodeRead;
                match found {
                    Some((entry, loc)) if entry.state.is_owned() => {
                        let owner = entry.owner().expect("owned entry has an owner");
                        debug_assert_ne!(owner, core, "owner cannot miss on its own block");
                        if loc != EntryLoc::Dedicated {
                            t += self.cfg.llc_data_cycles;
                            self.stats.llc_dir_accesses += 1;
                            self.stats.llc_data_accesses += 1;
                        }
                        t += self.forward_to_core(s, bank, owner, core);
                        self.stats.three_hop_reads += 1;
                        downgrades.push(Downgrade {
                            socket,
                            core: owner,
                            block,
                        });
                        // Sharing writeback lands the block in the LLC (EPD
                        // allocates shared blocks; the caller marks it dirty
                        // if the owner was in M).
                        self.fill_llc(now, s, block, false, invals);
                        let mut e = entry;
                        e.state = DirState::Shared;
                        e.sharers.insert(core);
                        // Re-locate: the fill may have moved or even
                        // evicted the entry (WB_DE) within this transaction.
                        let _ = loc;
                        self.write_entry_anywhere(now, s, block, e, invals);
                        grant = MesiState::Shared;
                    }
                    Some((entry, loc)) => {
                        // Shared entry.
                        let has_data = {
                            let line = self.sockets[s].banks[bank].block_line(block);
                            matches!(line, Some(LlcLine::Data { .. }))
                        };
                        let fused_no_data = matches!(loc, EntryLoc::Fused);
                        if has_data {
                            // Served from the LLC.
                            let zd_policy = self.zd().map(|z| z.policy);
                            if zd_policy == Some(SpillPolicy::SpillAll) && loc == EntryLoc::Spilled
                            {
                                // SpillAll reads the entry first (§III-C1).
                                t += self.cfg.llc_data_cycles;
                                self.stats.llc_dir_accesses += 1;
                                self.stats.llc_data_accesses += 1;
                            }
                            t = self.bank_port(s, bank, t, self.cfg.llc_data_cycles)
                                + self.cfg.llc_data_cycles;
                            self.stats.llc_data_accesses += 1;
                            t += self.sockets[s].topo.bank_core_latency(
                                bank,
                                core.0 as usize,
                                MsgClass::Data.bytes(),
                            );
                            self.stats.msg(MsgClass::Data);
                            self.stats.two_hop_reads += 1;
                            if loc == EntryLoc::Spilled {
                                // FPSS: entry updated off the critical path.
                                self.stats.llc_dir_accesses += 1;
                                self.stats.llc_data_accesses += 1;
                            }
                            let policy = self.policy();
                            self.sockets[s].banks[bank].touch_block(block, policy);
                        } else if fused_no_data {
                            // FuseAll: the line's data bits are corrupted —
                            // forward to an elected sharer (§III-C3).
                            t += self.cfg.llc_data_cycles; // read the fused entry
                            self.stats.llc_dir_accesses += 1;
                            self.stats.llc_data_accesses += 1;
                            let sharer = entry.sharers.any().expect("live entry has sharers");
                            t += self.forward_to_core(s, bank, sharer, core);
                            self.stats.fused_read_forwards += 1;
                            self.stats.three_hop_reads += 1;
                        } else {
                            // Directory hit, LLC data miss: forward to a
                            // sharer (baseline behaviour, §III-C2).
                            if loc == EntryLoc::Spilled {
                                t += self.cfg.llc_data_cycles;
                                self.stats.llc_dir_accesses += 1;
                                self.stats.llc_data_accesses += 1;
                            }
                            let sharer = entry.sharers.any().expect("live entry has sharers");
                            t += self.forward_to_core(s, bank, sharer, core);
                            self.stats.three_hop_reads += 1;
                        }
                        let mut e = entry;
                        e.sharers.insert(core);
                        self.update_entry(now, s, block, e, loc, invals);
                        grant = MesiState::Shared;
                    }
                    None => {
                        grant = self
                            .untracked_read(now, &mut t, s, core, block, code, invals, downgrades);
                    }
                }
            }
            Op::ReadExclusive => {
                match found {
                    Some((entry, loc)) if entry.state.is_owned() => {
                        let owner = entry.owner().expect("owned entry has an owner");
                        debug_assert_ne!(owner, core);
                        if loc != EntryLoc::Dedicated {
                            t += self.cfg.llc_data_cycles;
                            self.stats.llc_dir_accesses += 1;
                            self.stats.llc_data_accesses += 1;
                        }
                        // Forward with ownership transfer: the old owner
                        // sends the block and invalidates itself.
                        t += self.forward_to_core(s, bank, owner, core);
                        invals.push(Invalidation {
                            socket,
                            core: owner,
                            block,
                            reason: InvalReason::Coherence,
                        });
                        self.stats.coherence_invalidations += 1;
                        let new_entry = DirEntry::owned(core);
                        self.epd_on_private_transition(now, s, block);
                        let _ = loc;
                        self.write_entry_anywhere(now, s, block, new_entry, invals);
                        grant = MesiState::Modified;
                    }
                    Some((entry, loc)) => {
                        // Shared: invalidate all sharers, source the data.
                        let has_data = {
                            let line = self.sockets[s].banks[bank].block_line(block);
                            matches!(line, Some(LlcLine::Data { .. }))
                        };
                        if loc != EntryLoc::Dedicated {
                            t += self.cfg.llc_data_cycles;
                            self.stats.llc_dir_accesses += 1;
                            self.stats.llc_data_accesses += 1;
                        }
                        let inv_path = self.invalidate_sharers(
                            s,
                            bank,
                            block,
                            &entry,
                            Some(core),
                            InvalReason::Coherence,
                            invals,
                        );
                        let data_path = if has_data {
                            self.stats.llc_data_accesses += 1;
                            self.stats.msg(MsgClass::Data);
                            self.cfg.llc_data_cycles
                                + self.sockets[s].topo.bank_core_latency(
                                    bank,
                                    core.0 as usize,
                                    MsgClass::Data.bytes(),
                                )
                        } else {
                            // Forward to one sharer, combined with its
                            // invalidation (baseline critical path).
                            let sharer = entry
                                .sharers
                                .iter()
                                .find(|&c| c != core)
                                .expect("another sharer exists");
                            self.forward_to_core(s, bank, sharer, core)
                        };
                        t += data_path.max(inv_path);
                        let new_entry = DirEntry::owned(core);
                        self.epd_on_private_transition(now, s, block);
                        let _ = loc;
                        self.write_entry_anywhere(now, s, block, new_entry, invals);
                        t += self.socket_level_invalidate(now, s, block, invals);
                        grant = MesiState::Modified;
                    }
                    None => {
                        grant = self.untracked_rfo(now, &mut t, s, core, block, invals, downgrades);
                    }
                }
            }
        }

        if self.oracle.is_some() {
            // Take/put-back so the oracle can read the whole system state.
            let mut o = self.oracle.take().expect("checked above");
            o.after_access(
                self,
                socket,
                core,
                block,
                op,
                grant,
                &invals[inv_start..],
                &downgrades[dg_start..],
            );
            self.oracle = Some(o);
        }

        (t.since(now), grant)
    }

    /// Re-finds the location of a live entry after LLC churn.
    fn relocate(&self, s: usize, block: BlockAddr) -> Option<EntryLoc> {
        self.find_entry(s, block).map(|(_, loc)| loc)
    }

    /// Latency of forwarding a request from the home bank to `owner`, which
    /// responds directly to `requester` (three-hop path, §III-A), plus the
    /// off-critical-path busy-clear to the home.
    // lint:consumes(Request)
    fn forward_to_core(&mut self, s: usize, bank: usize, owner: CoreId, requester: CoreId) -> u64 {
        self.stats.msg(MsgClass::Forward);
        // lint:context(Forward)
        self.stats.msg(MsgClass::Data);
        self.stats.msg(MsgClass::Ack); // busy-clear
        self.sockets[s]
            .topo
            .bank_core_latency(bank, owner.0 as usize, MsgClass::Forward.bytes())
            + self.cfg.l2_hit_cycles
            + self.sockets[s].topo.core_core_latency(
                owner.0 as usize,
                requester.0 as usize,
                MsgClass::Data.bytes(),
            )
    }

    /// Sends invalidations to every sharer except `keep`; returns the
    /// worst-case invalidate→ack critical-path latency (acks are collected
    /// by the requester).
    #[allow(clippy::too_many_arguments)] // protocol context is irreducible
                                         // lint:consumes(Request)
    fn invalidate_sharers(
        &mut self,
        s: usize,
        bank: usize,
        block: BlockAddr,
        entry: &DirEntry,
        keep: Option<CoreId>,
        reason: InvalReason,
        invals: &mut Vec<Invalidation>,
    ) -> u64 {
        let mut worst = 0;
        for sharer in protocol::invalidation_targets(entry.sharers, keep) {
            self.stats.msg(MsgClass::Invalidation);
            // lint:context(Invalidation)
            self.stats.msg(MsgClass::Ack);
            self.stats.coherence_invalidations += u64::from(reason == InvalReason::Coherence);
            invals.push(Invalidation {
                socket: SocketId(s as u8),
                core: sharer,
                block,
                reason,
            });
            let path = self.sockets[s].topo.bank_core_latency(
                bank,
                sharer.0 as usize,
                MsgClass::Invalidation.bytes(),
            ) + match keep {
                Some(req) => self.sockets[s].topo.core_core_latency(
                    sharer.0 as usize,
                    req.0 as usize,
                    MsgClass::Ack.bytes(),
                ),
                None => self.sockets[s].topo.bank_core_latency(
                    bank,
                    sharer.0 as usize,
                    MsgClass::Ack.bytes(),
                ),
            };
            worst = worst.max(path);
        }
        worst
    }

    /// EPD design: a block that became privately owned (M/E) is deallocated
    /// from the LLC (§III-E). A fused line converts to a spilled entry (the
    /// block bits leave; fusion is impossible in an EPD LLC).
    fn epd_on_private_transition(&mut self, now: Cycle, s: usize, block: BlockAddr) {
        if self.cfg.llc_design != LlcDesign::Epd {
            return;
        }
        let bank = self.bank_of(block);
        match self.sockets[s].banks[bank].block_line(block) {
            Some(LlcLine::Data { .. }) => {
                // The owner holds the latest data; dirty LLC bits are stale
                // relative to the owner's copy and can be dropped.
                let _ = self.sockets[s].banks[bank].remove_block(block);
            }
            Some(LlcLine::Fused { .. }) => {
                let entry = self.sockets[s].banks[bank].unfuse(block);
                let _ = self.sockets[s].banks[bank].remove_block(block);
                self.stats.dir_spills += 1;
                self.stats.llc_data_accesses += 1;
                let policy = self.policy();
                let mut invals = Vec::new();
                match self.sockets[s].banks[bank].spill_entry(block, entry, policy) {
                    SpillOutcome::Updated => {}
                    SpillOutcome::Inserted(victim) => {
                        self.stats.adjust_spilled_lines(1);
                        if let Some(v) = victim {
                            self.handle_llc_victim(now, s, v, &mut invals);
                        }
                    }
                    SpillOutcome::Refused(_) => {
                        unreachable!("spill after removing the block line cannot be refused")
                    }
                }
                debug_assert!(
                    invals.is_empty(),
                    "EPD respill cannot back-invalidate (non-inclusive)"
                );
            }
            _ => {}
        }
    }

    // (continued in system_flows.rs: untracked reads/RFOs, the memory and
    //  multi-socket paths, evictions, and the caller-reported dirty-data
    //  hooks)
}

include!("system_flows.rs");
