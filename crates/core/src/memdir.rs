//! Memory-side coherence state.
//!
//! Two pieces live behind the LLC:
//!
//! * **Corrupted home blocks** (§III-D): when ZeroDEV evicts a directory
//!   entry from the LLC, the entry overwrites the home-memory copy of the
//!   block it tracks. The 64-byte block is partitioned into fixed per-socket
//!   segments, so entries from several sockets can be housed at once. The
//!   data bits are destroyed until a full-block writeback restores them.
//! * **The socket-level directory** (§III-D5): a bounded directory cache
//!   whose entries are backed either in home memory (first solution) or in a
//!   reserved per-block partition guarded by a DirEvict bit (second
//!   solution). Neither backing generates DEVs.

use crate::compress::SegmentFormatExt;
use crate::directory::DirEntry;
use zerodev_cache::{Replacement, SetAssoc};
use zerodev_common::config::{SegmentFormat, SocketDirBacking, SystemConfig};
use zerodev_common::ids::SocketSet;
use zerodev_common::{BlockAddr, Cycle, FlatMap, SocketId};
use zerodev_dram::DramModel;

/// A corrupted home-memory block: per-socket segments holding evicted
/// intra-socket directory entries. With 64-byte blocks and full-map vectors
/// this supports ⌊512/(N+1)⌋ sockets (§III-D) — far more than the 32 the
/// simulator allows.
#[derive(Clone, Debug, Default)]
pub struct CorruptedBlock {
    segments: Vec<(SocketId, DirEntry)>,
}

impl CorruptedBlock {
    /// Sockets with a housed segment.
    pub fn sockets(&self) -> SocketSet {
        let mut s = SocketSet::default();
        for (sk, _) in &self.segments {
            s.insert(*sk);
        }
        s
    }

    /// The segment housed for `socket`.
    pub fn segment(&self, socket: SocketId) -> Option<DirEntry> {
        self.segments
            .iter()
            .find(|(sk, _)| *sk == socket)
            .map(|(_, e)| *e)
    }

    fn set_segment(&mut self, socket: SocketId, entry: DirEntry) {
        if let Some(slot) = self.segments.iter_mut().find(|(sk, _)| *sk == socket) {
            slot.1 = entry;
        } else {
            self.segments.push((socket, entry));
        }
    }

    fn take_segment(&mut self, socket: SocketId) -> Option<DirEntry> {
        let pos = self.segments.iter().position(|(sk, _)| *sk == socket)?;
        Some(self.segments.remove(pos).1)
    }
}

/// Socket-level directory entry (coarse, per-socket sharer tracking).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SocketDirEntry {
    /// One socket owns the block in M/E.
    pub owned: bool,
    /// Sockets holding copies.
    pub sharers: SocketSet,
}

impl SocketDirEntry {
    /// Entry for a block just granted exclusively to `socket`.
    pub fn owned_by(socket: SocketId) -> Self {
        SocketDirEntry {
            owned: true,
            sharers: SocketSet::only(socket),
        }
    }

    /// The owning socket, when owned.
    pub fn owner(&self) -> Option<SocketId> {
        if self.owned {
            self.sharers.any()
        } else {
            None
        }
    }
}

/// Result of a socket-level directory lookup.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SocketDirLookup {
    /// The entry, if the block is tracked.
    pub entry: Option<SocketDirEntry>,
    /// Whether the lookup hit the directory cache (a miss costs a home
    /// memory access under the memory-backed scheme).
    pub cached: bool,
}

/// Ways in the socket-level directory cache (per home socket); the set
/// count comes from `SystemConfig::socket_dir_cache_sets`.
const SOCKET_DIR_CACHE_WAYS: usize = 8;

/// The memory side of one machine: per-socket DRAM plus corrupted-block
/// bookkeeping and the socket-level directory for every home socket.
#[derive(Clone, Debug)]
pub struct MemorySide {
    drams: Vec<DramModel>,
    corrupted: FlatMap<CorruptedBlock>,
    /// Per home socket: the bounded socket-directory cache.
    dir_caches: Vec<SetAssoc<SocketDirEntry>>,
    /// Per home socket: the complete backing store (memory or DirEvict
    /// partitions — semantically identical at this level).
    dir_backing: Vec<FlatMap<SocketDirEntry>>,
    backing: SocketDirBacking,
    sockets: usize,
    cores: usize,
    seg_format: SegmentFormat,
    /// Dir-cache misses that needed the backing store.
    pub dir_cache_misses: u64,
    /// Dir-cache hits.
    pub dir_cache_hits: u64,
}

impl MemorySide {
    /// Builds the memory side for `cfg`.
    pub fn new(cfg: &SystemConfig) -> Self {
        MemorySide {
            drams: (0..cfg.sockets).map(|_| DramModel::new(cfg.dram)).collect(),
            corrupted: FlatMap::new(),
            // Single-socket machines never consult the socket directory, so
            // they carry a token 1-set cache: cloning a machine snapshot (the
            // model checker does this per explored state) must not pay for
            // 64K unused lines per socket.
            dir_caches: (0..cfg.sockets)
                .map(|_| {
                    let sets = if cfg.sockets == 1 {
                        1
                    } else {
                        cfg.socket_dir_cache_sets
                    };
                    SetAssoc::new(sets, SOCKET_DIR_CACHE_WAYS, Replacement::Lru)
                })
                .collect(),
            dir_backing: (0..cfg.sockets).map(|_| FlatMap::new()).collect(),
            backing: cfg.socket_dir,
            sockets: cfg.sockets,
            cores: cfg.cores,
            seg_format: cfg
                .zerodev
                .map_or(SegmentFormat::FullMap, |z| z.segment_format),
            dir_cache_misses: 0,
            dir_cache_hits: 0,
        }
    }

    /// Reads a block from the home socket's DRAM; returns completion time.
    // lint:consumes(MemRead, GetDirEntry)
    pub fn dram_read(&mut self, now: Cycle, home: SocketId, block: BlockAddr) -> Cycle {
        self.drams[home.0 as usize].read(now, block)
    }

    /// Writes a block to the home socket's DRAM; returns completion time.
    // lint:consumes(MemWrite)
    pub fn dram_write(&mut self, now: Cycle, home: SocketId, block: BlockAddr) -> Cycle {
        self.drams[home.0 as usize].write(now, block)
    }

    /// DRAM (reads, writes) across all sockets.
    pub fn dram_counts(&self) -> (u64, u64) {
        self.drams
            .iter()
            .map(DramModel::rw_counts)
            .fold((0, 0), |(r, w), (r2, w2)| (r + r2, w + w2))
    }

    // ---- corrupted home blocks -------------------------------------------

    /// True when the home-memory copy of `block` is corrupted (houses at
    /// least one evicted directory entry, so its data bits are invalid).
    pub fn is_corrupted(&self, block: BlockAddr) -> bool {
        self.corrupted.contains_key(block.0)
    }

    /// The corrupted-block record, if any.
    pub fn corrupted_block(&self, block: BlockAddr) -> Option<&CorruptedBlock> {
        self.corrupted.get(block.0)
    }

    /// Houses `entry` in `socket`'s segment of the home block. Returns true
    /// when the block already housed a segment of *another* socket — the
    /// case where the home must read-modify-write the memory block
    /// (§III-D, Figure 14 steps (i)–(iii)).
    // lint:consumes(WbDirEntry)
    pub fn house_entry(&mut self, block: BlockAddr, socket: SocketId, entry: DirEntry) -> bool {
        // The segment stores the configured encoding; imprecise formats
        // surface as a sharer superset when the entry is read back.
        let stored = self
            .seg_format
            .encode(&entry, self.cores)
            .decode(self.cores);
        let cb = self.corrupted.get_or_default(block.0);
        let others = cb.sockets().iter().any(|s| s != socket);
        cb.set_segment(socket, stored);
        others
    }

    /// Extracts (removes) `socket`'s segment from the corrupted block; the
    /// entry returns to living inside the socket. The block stays corrupted
    /// (its data bits remain invalid) even when no segments remain, until a
    /// full-block writeback restores it.
    pub fn extract_entry(&mut self, block: BlockAddr, socket: SocketId) -> Option<DirEntry> {
        self.corrupted.get_mut(block.0)?.take_segment(socket)
    }

    /// Reads `socket`'s segment without removing it (GET_DE read phase).
    pub fn peek_entry(&self, block: BlockAddr, socket: SocketId) -> Option<DirEntry> {
        self.corrupted.get(block.0)?.segment(socket)
    }

    /// Overwrites `socket`'s segment in place (GET_DE write-back phase).
    ///
    /// # Panics
    /// Panics if the block is not corrupted.
    pub fn rewrite_entry(&mut self, block: BlockAddr, socket: SocketId, entry: DirEntry) {
        self.corrupted
            .get_mut(block.0)
            .expect("rewrite requires corrupted block")
            .set_segment(socket, entry);
    }

    /// Restores the block to clean data (a full-block writeback arrived),
    /// dropping every housed segment.
    pub fn restore(&mut self, block: BlockAddr) {
        self.corrupted.remove(block.0);
    }

    /// Number of currently corrupted home blocks (diagnostics).
    pub fn corrupted_count(&self) -> usize {
        self.corrupted.len()
    }

    /// Iterates every corrupted home block and its record (diagnostics; the
    /// audit oracle's full sweep walks this to check segment bookkeeping).
    pub fn corrupted_blocks(&self) -> impl Iterator<Item = (BlockAddr, &CorruptedBlock)> {
        self.corrupted.iter().map(|(b, cb)| (BlockAddr(b), cb))
    }

    // ---- socket-level directory ------------------------------------------

    /// Looks up the socket-level entry for `block` at its home socket.
    pub fn socket_dir_lookup(&mut self, home: SocketId, block: BlockAddr) -> SocketDirLookup {
        if self.sockets == 1 {
            // Single-socket machines do not instantiate socket coherence.
            return SocketDirLookup {
                entry: None,
                cached: true,
            };
        }
        let h = home.0 as usize;
        if let Some(e) = self.dir_caches[h].touch(block.0, |_| true) {
            self.dir_cache_hits += 1;
            return SocketDirLookup {
                entry: Some(*e),
                cached: true,
            };
        }
        let backed = self.dir_backing[h].get(block.0).copied();
        if let Some(e) = backed {
            self.dir_cache_misses += 1;
            // Refill the cache; evicted victims stay in the backing store.
            let _ = self.dir_caches[h].insert(block.0, e, |_| false);
            SocketDirLookup {
                entry: Some(e),
                cached: false,
            }
        } else {
            // Untracked block: memory-resident state "Invalid".
            SocketDirLookup {
                entry: None,
                cached: false,
            }
        }
    }

    /// Reads the socket-level entry for `block` without touching the
    /// directory cache's recency state or the hit/miss counters. The audit
    /// oracle uses this so audited runs stay byte-identical to unaudited
    /// ones; the protocol itself must go through [`Self::socket_dir_lookup`].
    pub fn socket_dir_peek(&self, home: SocketId, block: BlockAddr) -> Option<SocketDirEntry> {
        if self.sockets == 1 {
            return None;
        }
        self.dir_backing[home.0 as usize].get(block.0).copied()
    }

    /// Installs or updates the socket-level entry for `block`.
    pub fn socket_dir_update(&mut self, home: SocketId, block: BlockAddr, entry: SocketDirEntry) {
        if self.sockets == 1 {
            return;
        }
        let h = home.0 as usize;
        self.dir_backing[h].insert(block.0, entry);
        if let Some(e) = self.dir_caches[h].peek_mut(block.0, |_| true) {
            *e = entry;
        } else {
            let _ = self.dir_caches[h].insert(block.0, entry, |_| false);
        }
    }

    /// Removes the socket-level entry (no socket holds a copy).
    pub fn socket_dir_remove(&mut self, home: SocketId, block: BlockAddr) {
        if self.sockets == 1 {
            return;
        }
        let h = home.0 as usize;
        self.dir_backing[h].remove(block.0);
        let _ = self.dir_caches[h].remove(block.0, |_| true);
    }

    /// Whether a directory-cache miss costs an extra home-memory read. Under
    /// the DirEvict-bit scheme the entry rides along with the (parallel)
    /// block read, so no extra access is charged.
    pub fn miss_needs_memory_read(&self) -> bool {
        self.backing == SocketDirBacking::MemoryBacked
    }

    /// Serializes the memory side — DRAM timing state, corrupted-block map,
    /// socket-directory caches and backing stores, and the cache counters —
    /// for checkpointing.
    // lint:allow(snapshot_complete(backing, sockets, cores, seg_format), machine shape and backing/segment policy come from SystemConfig; restore targets a memory side freshly built from it)
    pub fn snap(&self, w: &mut zerodev_common::snap::SnapWriter) {
        w.usize(self.drams.len());
        for d in &self.drams {
            d.snap(w);
        }
        self.corrupted.snapshot_with(w, |w, cb| {
            w.usize(cb.segments.len());
            for (sk, e) in &cb.segments {
                w.u8(sk.0);
                e.snap(w);
            }
        });
        w.usize(self.dir_caches.len());
        for c in &self.dir_caches {
            c.snapshot_with(w, |w, e| {
                w.bool(e.owned);
                w.u32(e.sharers.0);
            });
        }
        for b in &self.dir_backing {
            b.snapshot_with(w, |w, e| {
                w.bool(e.owned);
                w.u32(e.sharers.0);
            });
        }
        w.u64(self.dir_cache_misses);
        w.u64(self.dir_cache_hits);
    }

    /// Restores a [`MemorySide::snap`] image into this memory side, which
    /// must have been freshly built from the same configuration.
    ///
    /// # Errors
    /// Fails with a structural [`zerodev_common::snap::SnapError`] on
    /// geometry mismatch or decode error.
    // lint:allow(snapshot_complete(backing, sockets, cores, seg_format), machine shape and backing/segment policy come from SystemConfig; restore targets a memory side freshly built from it)
    pub fn unsnap(
        &mut self,
        r: &mut zerodev_common::snap::SnapReader<'_>,
    ) -> Result<(), zerodev_common::snap::SnapError> {
        use zerodev_common::snap::SnapError;
        fn socket_entry(
            r: &mut zerodev_common::snap::SnapReader<'_>,
        ) -> Result<SocketDirEntry, SnapError> {
            Ok(SocketDirEntry {
                owned: r.bool("socket dir owned")?,
                sharers: SocketSet(r.u32("socket dir sharers")?),
            })
        }
        if r.usize("memdir dram count")? != self.drams.len() {
            return Err(SnapError::Corrupt {
                context: "memdir dram count",
            });
        }
        for d in self.drams.iter_mut() {
            d.unsnap(r)?;
        }
        self.corrupted = FlatMap::restore_with(r, |r| {
            let n = r.usize("corrupted segment count")?;
            let mut cb = CorruptedBlock::default();
            for _ in 0..n {
                let sk = SocketId(r.u8("corrupted segment socket")?);
                cb.segments.push((sk, DirEntry::unsnap(r)?));
            }
            Ok(cb)
        })?;
        if r.usize("memdir dir cache count")? != self.dir_caches.len() {
            return Err(SnapError::Corrupt {
                context: "memdir dir cache count",
            });
        }
        for c in self.dir_caches.iter_mut() {
            c.restore_with(r, socket_entry)?;
        }
        for b in self.dir_backing.iter_mut() {
            *b = FlatMap::restore_with(r, socket_entry)?;
        }
        self.dir_cache_misses = r.u64("memdir dir_cache_misses")?;
        self.dir_cache_hits = r.u64("memdir dir_cache_hits")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zerodev_common::CoreId;
    use zerodev_common::SystemConfig;

    fn mem(sockets: usize) -> MemorySide {
        let mut cfg = SystemConfig::baseline_8core();
        cfg.sockets = sockets;
        MemorySide::new(&cfg)
    }

    #[test]
    fn corrupted_block_lifecycle() {
        let mut m = mem(4);
        let b = BlockAddr(0x99);
        assert!(!m.is_corrupted(b));
        let e0 = DirEntry::owned(CoreId(1));
        // First housing: no other socket's segment present.
        assert!(!m.house_entry(b, SocketId(0), e0));
        assert!(m.is_corrupted(b));
        // Second socket: read-modify-write needed.
        let e1 = DirEntry::shared(CoreId(3));
        assert!(m.house_entry(b, SocketId(1), e1));
        assert_eq!(m.peek_entry(b, SocketId(0)), Some(e0));
        assert_eq!(m.corrupted_block(b).unwrap().sockets().count(), 2);
        // Extraction removes one segment; block stays corrupted.
        assert_eq!(m.extract_entry(b, SocketId(0)), Some(e0));
        assert!(m.is_corrupted(b));
        assert_eq!(m.peek_entry(b, SocketId(0)), None);
        // Restore on full writeback.
        m.restore(b);
        assert!(!m.is_corrupted(b));
        assert_eq!(m.corrupted_count(), 0);
    }

    #[test]
    fn rehousing_same_socket_is_not_rmw() {
        let mut m = mem(4);
        let b = BlockAddr(0x7);
        assert!(!m.house_entry(b, SocketId(2), DirEntry::owned(CoreId(0))));
        // Same socket rewrites its own segment: no other-socket conflict.
        assert!(!m.house_entry(b, SocketId(2), DirEntry::shared(CoreId(0))));
    }

    #[test]
    fn rewrite_entry_in_place() {
        let mut m = mem(2);
        let b = BlockAddr(0x11);
        m.house_entry(b, SocketId(0), DirEntry::owned(CoreId(0)));
        let mut e = m.peek_entry(b, SocketId(0)).unwrap();
        e.sharers.insert(CoreId(5));
        m.rewrite_entry(b, SocketId(0), e);
        assert_eq!(m.peek_entry(b, SocketId(0)).unwrap().sharers.count(), 2);
    }

    #[test]
    #[should_panic(expected = "corrupted")]
    fn rewrite_clean_block_panics() {
        let mut m = mem(2);
        m.rewrite_entry(BlockAddr(1), SocketId(0), DirEntry::owned(CoreId(0)));
    }

    #[test]
    fn socket_dir_roundtrip() {
        let mut m = mem(4);
        let b = BlockAddr(0x123);
        let home = SocketId(1);
        assert_eq!(m.socket_dir_lookup(home, b).entry, None);
        m.socket_dir_update(home, b, SocketDirEntry::owned_by(SocketId(3)));
        let l = m.socket_dir_lookup(home, b);
        assert!(l.cached);
        assert_eq!(l.entry.unwrap().owner(), Some(SocketId(3)));
        m.socket_dir_remove(home, b);
        assert_eq!(m.socket_dir_lookup(home, b).entry, None);
    }

    #[test]
    fn socket_dir_survives_cache_eviction() {
        let mut cfg = SystemConfig::baseline_8core();
        cfg.sockets = 2;
        let stride = cfg.socket_dir_cache_sets as u64;
        let mut m = MemorySide::new(&cfg);
        let home = SocketId(0);
        // Overflow one cache set: same set index, distinct tags.
        for i in 0..(SOCKET_DIR_CACHE_WAYS as u64 + 4) {
            m.socket_dir_update(
                home,
                BlockAddr(i * stride),
                SocketDirEntry::owned_by(SocketId(1)),
            );
        }
        // The earliest entry was evicted from the cache but is recovered
        // from the backing store (a dir-cache miss).
        let l = m.socket_dir_lookup(home, BlockAddr(0));
        assert_eq!(l.entry.unwrap().owner(), Some(SocketId(1)));
        assert!(!l.cached);
        assert!(m.dir_cache_misses >= 1);
        assert!(m.miss_needs_memory_read());
    }

    #[test]
    fn single_socket_skips_socket_dir() {
        let mut m = mem(1);
        let l = m.socket_dir_lookup(SocketId(0), BlockAddr(5));
        assert_eq!(l.entry, None);
        assert!(l.cached);
        m.socket_dir_update(
            SocketId(0),
            BlockAddr(5),
            SocketDirEntry::owned_by(SocketId(0)),
        );
        assert_eq!(m.socket_dir_lookup(SocketId(0), BlockAddr(5)).entry, None);
    }

    #[test]
    fn dram_passthrough() {
        let mut m = mem(2);
        let t = m.dram_read(Cycle(0), SocketId(1), BlockAddr(4));
        assert!(t > Cycle(0));
        m.dram_write(Cycle(0), SocketId(0), BlockAddr(8));
        let (r, w) = m.dram_counts();
        assert_eq!((r, w), (1, 1));
    }

    #[test]
    fn socket_entry_helpers() {
        let e = SocketDirEntry::owned_by(SocketId(2));
        assert_eq!(e.owner(), Some(SocketId(2)));
        let s = SocketDirEntry {
            owned: false,
            sharers: SocketSet::only(SocketId(1)),
        };
        assert_eq!(s.owner(), None);
    }
}
