//! The model checker's transition surface over the concrete [`System`].
//!
//! The exhaustive checker (`zerodev_model`) and the cycle-accurate simulator
//! (`zerodev-sim`) must exercise *one* set of protocol rules. The pure rules
//! live in [`zerodev_common::protocol`]; this module packages the concrete
//! [`System`] plus the engine's effect-application contract (downgrades
//! first, then the invalidation stack with dirty-data reporting — the exact
//! loop in `zerodev-sim`'s `apply_effects`) behind a deterministic
//! `(state, event) -> state'` interface with no timing, no workloads and no
//! private-cache geometry.
//!
//! Cores are abstracted to unbounded shadow caches: a core holds each block
//! in a MESI state and never self-evicts — evictions are explicit
//! [`ProtocolEvent::Evict`] transitions, so the checker enumerates every
//! interleaving of accesses and evictions the finite core caches could
//! produce.
//!
//! Data values are symbolic *write tokens*: the harness tracks, per block,
//! which locations (core copies, per-socket LLC lines, home memory) hold the
//! value of the most recent store. A protocol that serves a stale source,
//! loses a dirty writeback, or reads a corrupted home block trips a
//! [`StepViolation`] without the state space ever growing with the number of
//! writes.

#![deny(clippy::unwrap_used, clippy::indexing_slicing)]

use crate::llc::LlcLine;
use crate::system::System;
use std::fmt;
use zerodev_common::config::{ConfigError, SpillPolicy, SystemConfig};
use zerodev_common::protocol::{EvictKind, InvalReason, Op};
use zerodev_common::{BlockAddr, CoreId, Cycle, DirState, MesiState, SocketId};

/// One atomic transition of the abstracted system.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ProtocolEvent {
    /// A private-hierarchy miss (or upgrade) reaching the uncore.
    Access {
        /// Requesting socket.
        socket: SocketId,
        /// Requesting core.
        core: CoreId,
        /// Requested block.
        block: BlockAddr,
        /// Request flavour.
        op: Op,
    },
    /// A silent E→M upgrade: no uncore traffic, the directory still sees an
    /// owned line (the store that makes "clean-exclusive" copies dirty).
    SilentWrite {
        /// Writing socket.
        socket: SocketId,
        /// Writing core.
        core: CoreId,
        /// Written block.
        block: BlockAddr,
    },
    /// A private-cache eviction notice.
    Evict {
        /// Evicting socket.
        socket: SocketId,
        /// Evicting core.
        core: CoreId,
        /// Evicted block.
        block: BlockAddr,
        /// Notice kind (must match the copy's MESI state).
        kind: EvictKind,
    },
}

impl fmt::Display for ProtocolEvent {
    /// Same vocabulary as the audit oracle's event-log dump, so a checker
    /// counterexample reads like an oracle trace.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolEvent::Access {
                socket,
                core,
                block,
                op,
            } => write!(f, "access  s{}/c{} {block:?} {op:?}", socket.0, core.0),
            ProtocolEvent::SilentWrite {
                socket,
                core,
                block,
            } => write!(
                f,
                "write   s{}/c{} {block:?} (silent E->M)",
                socket.0, core.0
            ),
            ProtocolEvent::Evict {
                socket,
                core,
                block,
                kind,
            } => write!(f, "evict   s{}/c{} {block:?} {kind:?}", socket.0, core.0),
        }
    }
}

/// A checked invariant failing after a transition. The concrete [`System`]
/// and the audit oracle additionally panic on their own invariants; the
/// explorer catches those separately.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct StepViolation {
    /// Which invariant failed.
    pub invariant: &'static str,
    /// Human-readable detail in the oracle's describe vocabulary.
    pub detail: String,
}

impl fmt::Display for StepViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.invariant, self.detail)
    }
}

/// Where the symbolic latest value of one block currently lives.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, Debug)]
pub struct WriteToken {
    /// Global core indices (socket × cores + core) holding the latest value.
    pub cores: u128,
    /// Sockets whose LLC block line holds the latest value.
    pub llc: u32,
    /// Home memory holds the latest value (meaningful only while the home
    /// copy is not corrupted).
    pub mem: bool,
}

/// The concrete machine plus the abstract per-core shadow states and the
/// symbolic value model — everything one reachable state consists of.
#[derive(Clone, Debug)]
pub struct ProtocolHarness {
    sys: System,
    blocks: Vec<BlockAddr>,
    sockets: usize,
    cores: usize,
    /// `shadow[global_core * blocks + block_index]`.
    shadow: Vec<MesiState>,
    /// Per block: locations holding the symbolic latest value.
    tokens: Vec<WriteToken>,
}

impl ProtocolHarness {
    /// Builds a quiescent machine over `blocks` (all shadow copies Invalid,
    /// home memory fresh). `audit` attaches the coherence oracle so every
    /// transition is cross-checked against its shadow MESI model.
    ///
    /// # Errors
    /// Propagates configuration validation failures.
    pub fn new(
        cfg: SystemConfig,
        blocks: Vec<BlockAddr>,
        audit: bool,
    ) -> Result<Self, ConfigError> {
        let sockets = cfg.sockets;
        let cores = cfg.cores;
        let mut sys = System::new(cfg)?;
        if audit {
            sys.enable_audit();
        }
        let n = blocks.len();
        Ok(ProtocolHarness {
            sys,
            blocks,
            sockets,
            cores,
            shadow: vec![MesiState::Invalid; sockets * cores * n],
            tokens: vec![
                WriteToken {
                    cores: 0,
                    llc: 0,
                    mem: true,
                };
                n
            ],
        })
    }

    /// The concrete machine (canonical-state extraction, diagnostics).
    pub fn system(&self) -> &System {
        &self.sys
    }

    /// The tracked block set.
    pub fn blocks(&self) -> &[BlockAddr] {
        &self.blocks
    }

    /// Socket count.
    pub fn sockets(&self) -> usize {
        self.sockets
    }

    /// Cores per socket.
    pub fn cores(&self) -> usize {
        self.cores
    }

    fn gidx(&self, socket: SocketId, core: CoreId) -> usize {
        socket.0 as usize * self.cores + core.0 as usize
    }

    fn bidx(&self, block: BlockAddr) -> usize {
        self.blocks
            .iter()
            .position(|b| *b == block)
            .expect("event references a tracked block")
    }

    /// Shadow MESI state of one core's copy.
    pub fn shadow_state(&self, socket: SocketId, core: CoreId, block: BlockAddr) -> MesiState {
        let i = self.gidx(socket, core) * self.blocks.len() + self.bidx(block);
        *self.shadow.get(i).expect("shadow index in range")
    }

    fn set_shadow(&mut self, socket: SocketId, core: CoreId, block: BlockAddr, s: MesiState) {
        let i = self.gidx(socket, core) * self.blocks.len() + self.bidx(block);
        *self.shadow.get_mut(i).expect("shadow index in range") = s;
    }

    /// The write token of one block (canonical-state extraction).
    pub fn token(&self, block: BlockAddr) -> WriteToken {
        *self.tokens.get(self.bidx(block)).expect("token in range")
    }

    /// True when every shadow copy is Invalid — the drain target for the
    /// livelock check.
    pub fn is_quiescent(&self) -> bool {
        self.shadow.iter().all(|s| *s == MesiState::Invalid)
    }

    /// Every transition enabled in the current state. Re-accesses of held
    /// blocks and repeated stores to an M copy are private-hierarchy hits
    /// that never reach the uncore, so they are not enumerated.
    pub fn enabled_events(&self) -> Vec<ProtocolEvent> {
        let mut evs = Vec::new();
        for s in 0..self.sockets {
            for c in 0..self.cores {
                let socket = SocketId(s as u8);
                let core = CoreId(c as u16);
                for &block in &self.blocks {
                    match self.shadow_state(socket, core, block) {
                        MesiState::Invalid => {
                            for op in [Op::Read, Op::CodeRead, Op::ReadExclusive] {
                                evs.push(ProtocolEvent::Access {
                                    socket,
                                    core,
                                    block,
                                    op,
                                });
                            }
                        }
                        MesiState::Shared => {
                            evs.push(ProtocolEvent::Access {
                                socket,
                                core,
                                block,
                                op: Op::Upgrade,
                            });
                            evs.push(ProtocolEvent::Evict {
                                socket,
                                core,
                                block,
                                kind: EvictKind::CleanShared,
                            });
                        }
                        MesiState::Exclusive => {
                            evs.push(ProtocolEvent::SilentWrite {
                                socket,
                                core,
                                block,
                            });
                            evs.push(ProtocolEvent::Evict {
                                socket,
                                core,
                                block,
                                kind: EvictKind::CleanExclusive,
                            });
                        }
                        MesiState::Modified => {
                            evs.push(ProtocolEvent::Evict {
                                socket,
                                core,
                                block,
                                kind: EvictKind::Dirty,
                            });
                        }
                    }
                }
            }
        }
        evs
    }

    fn token_mut(&mut self, block: BlockAddr) -> &mut WriteToken {
        let i = self.bidx(block);
        self.tokens.get_mut(i).expect("token in range")
    }

    /// Snapshot of every tracked block's home-LLC line and corruption flag,
    /// taken before an event so data movement can be attributed afterwards.
    fn observe(&self) -> Vec<(Vec<Option<LlcLine>>, bool)> {
        self.blocks
            .iter()
            .map(|&b| {
                let lines = (0..self.sockets)
                    .map(|s| self.sys.llc_line_of(SocketId(s as u8), b))
                    .collect();
                (lines, self.sys.memory_corrupted(b))
            })
            .collect()
    }

    /// Post-event reconciliation of value locations against observable
    /// machine state: LLC lines that left a socket drop their latest bit
    /// (dirty departures restore home memory), and a freshly corrupted home
    /// copy loses its memory bit (WB_DE destroyed the data bits).
    fn reconcile(&mut self, before: &[(Vec<Option<LlcLine>>, bool)]) {
        for (i, &block) in self.blocks.clone().iter().enumerate() {
            let (lines_before, corrupted_before) = before.get(i).expect("observation per block");
            let corrupted_after = self.sys.memory_corrupted(block);
            for s in 0..self.sockets {
                let was = lines_before.get(s).copied().flatten();
                let now = self.sys.llc_line_of(SocketId(s as u8), block);
                let was_dirty = matches!(
                    was,
                    Some(
                        LlcLine::Data { dirty: true }
                            | LlcLine::Fused {
                                block_dirty: true,
                                ..
                            }
                    )
                );
                match now {
                    None => {
                        if let Some(_line) = was {
                            let tok = self.token_mut(block);
                            if tok.llc & (1 << s) != 0 {
                                tok.llc &= !(1 << s);
                                if was_dirty {
                                    // The departing dirty line was written
                                    // home.
                                    tok.mem = true;
                                }
                            }
                        }
                    }
                    Some(
                        LlcLine::Data { dirty: false }
                        | LlcLine::Fused {
                            block_dirty: false, ..
                        },
                    ) if was_dirty => {
                        // The line was cleaned in place: the only flow that
                        // clears a dirty bit is a writeback to home (e.g. a
                        // remote-read downgrade), so home now holds what the
                        // line holds.
                        let tok = self.token_mut(block);
                        if tok.llc & (1 << s) != 0 {
                            tok.mem = true;
                        }
                    }
                    Some(_) => {}
                }
            }
            if corrupted_after {
                // Directory-entry bits live where the data bits were: a
                // corrupted home copy holds no value at all.
                self.token_mut(block).mem = false;
            } else if *corrupted_before {
                // A restore always sources a live valid copy, which holds
                // the latest value by the value-coherence invariant, so an
                // uncorrupted home copy is a latest copy.
                self.token_mut(block).mem = true;
            }
        }
    }

    /// Applies the engine's effect contract: downgrades first (M owners
    /// report a sharing writeback), then the invalidation stack, where a
    /// Modified victim reports its dirty data per the invalidation reason
    /// and DEV recalls may push further invalidations. Mirrors
    /// `Simulation::apply_effects` exactly.
    fn apply_effects(
        &mut self,
        downgrades: Vec<zerodev_common::protocol::Downgrade>,
        invalidations: Vec<zerodev_common::protocol::Invalidation>,
    ) {
        for d in downgrades {
            let g = self.gidx(d.socket, d.core);
            let was_m = self.shadow_state(d.socket, d.core, d.block) == MesiState::Modified;
            self.set_shadow(d.socket, d.core, d.block, MesiState::Shared);
            if was_m {
                self.sys.sharing_writeback(Cycle::ZERO, d.socket, d.block);
                // Mirror where the writeback landed: the LLC line when one
                // survives the transaction's set churn, home memory when
                // none does (and always on multi-socket machines).
                let has_line = self
                    .sys
                    .llc_line_of(d.socket, d.block)
                    .is_some_and(|l| l.holds_block());
                let multisocket = self.sockets > 1;
                let tok = self.token_mut(d.block);
                if tok.cores & (1 << g) != 0 {
                    if has_line {
                        tok.llc |= 1 << d.socket.0;
                    }
                    if multisocket || !has_line {
                        tok.mem = true;
                    }
                }
            }
        }
        let mut stack = invalidations;
        while let Some(inv) = stack.pop() {
            let g = self.gidx(inv.socket, inv.core);
            let prior = self.shadow_state(inv.socket, inv.core, inv.block);
            self.set_shadow(inv.socket, inv.core, inv.block, MesiState::Invalid);
            let was_latest = {
                let tok = self.token_mut(inv.block);
                let was = tok.cores & (1 << g) != 0;
                tok.cores &= !(1 << g);
                was
            };
            if prior == MesiState::Modified {
                match inv.reason {
                    InvalReason::Dev => {
                        let more = self
                            .sys
                            .dev_dirty_recall(Cycle::ZERO, inv.socket, inv.block);
                        if was_latest {
                            self.token_mut(inv.block).llc |= 1 << inv.socket.0;
                        }
                        stack.extend(more);
                    }
                    InvalReason::Inclusion => {
                        self.sys
                            .inclusion_dirty_writeback(Cycle::ZERO, inv.socket, inv.block);
                        if was_latest {
                            self.token_mut(inv.block).mem = true;
                        }
                    }
                    InvalReason::Coherence => {
                        // Dirty data travelled with the ownership transfer;
                        // the requester's token was already set by the
                        // access rule.
                    }
                }
            }
        }
    }

    /// The symbolic source the protocol is expected to serve a read from,
    /// in the protocol's own priority order: a private owner forward, the
    /// home-socket LLC line, a recalled sharer (corrupted home copy), then
    /// clean home memory. Returns whether that source held the latest value
    /// and a label for violation messages.
    fn read_source_latest(
        &self,
        requester: usize,
        block: BlockAddr,
        before: &[(Vec<Option<LlcLine>>, bool)],
    ) -> (bool, &'static str) {
        let bi = self.bidx(block);
        let tok = *self.tokens.get(bi).expect("token in range");
        let (lines_before, corrupted_before) = before.get(bi).expect("observation per block");
        // A private owner (M or E) forwards the data three-hop.
        for s in 0..self.sockets {
            for c in 0..self.cores {
                let g = s * self.cores + c;
                if g == requester {
                    continue;
                }
                if matches!(
                    self.shadow
                        .get(g * self.blocks.len() + bi)
                        .copied()
                        .expect("shadow in range"),
                    MesiState::Modified | MesiState::Exclusive
                ) {
                    return (tok.cores & (1 << g) != 0, "owner forward");
                }
            }
        }
        // An LLC block line serves the data (home first, then any socket —
        // the remote-retrieve path).
        let home = self.sys.config().home_socket(block).0 as usize;
        if lines_before
            .get(home)
            .copied()
            .flatten()
            .is_some_and(|l| l.holds_block())
        {
            return (tok.llc & (1 << home) != 0, "home LLC line");
        }
        for s in 0..self.sockets {
            if lines_before
                .get(s)
                .copied()
                .flatten()
                .is_some_and(|l| l.holds_block())
            {
                return (tok.llc & (1 << s) != 0, "remote LLC line");
            }
        }
        if *corrupted_before {
            // The home copy is corrupted: the data must come from a live
            // sharer after the housed entry is recalled via GET_DE. Serving
            // memory here is the corrupted-block-safety bug.
            for g in 0..self.sockets * self.cores {
                if g == requester {
                    continue;
                }
                if self
                    .shadow
                    .get(g * self.blocks.len() + bi)
                    .copied()
                    .expect("shadow in range")
                    .is_valid()
                {
                    return (tok.cores & (1 << g) != 0, "recalled sharer");
                }
            }
            return (false, "corrupted home memory with no live copy");
        }
        // A tracked sharer in the requester's socket forwards three-hop
        // (directory hit, LLC data miss).
        let rs = requester / self.cores;
        for c in 0..self.cores {
            let g = rs * self.cores + c;
            if g == requester {
                continue;
            }
            if self
                .shadow
                .get(g * self.blocks.len() + bi)
                .copied()
                .expect("shadow in range")
                .is_valid()
            {
                return (tok.cores & (1 << g) != 0, "sharer forward");
            }
        }
        // Remote sharers: socket-Shared blocks are served from clean home
        // memory; a socket-level owner forwards from one of its cores.
        // Either source must be latest under the shipped protocol.
        for g in 0..self.sockets * self.cores {
            if g == requester {
                continue;
            }
            if self
                .shadow
                .get(g * self.blocks.len() + bi)
                .copied()
                .expect("shadow in range")
                .is_valid()
            {
                return (
                    tok.cores & (1 << g) != 0 || tok.mem,
                    "remote sharer or clean home memory",
                );
            }
        }
        (tok.mem, "home memory")
    }

    /// Applies one transition: drives the concrete [`System`], replicates
    /// the engine's effect-application contract, updates the shadow states
    /// and write tokens, and checks every per-state invariant.
    ///
    /// # Errors
    /// Returns the first violated invariant. The concrete machine may
    /// additionally panic (its own `debug_assert`s, or the audit oracle);
    /// callers exploring mutated or buggy protocols should wrap the call in
    /// `catch_unwind` and discard the harness afterwards.
    pub fn apply(&mut self, ev: ProtocolEvent) -> Result<(), StepViolation> {
        let before = self.observe();
        match ev {
            ProtocolEvent::Access {
                socket,
                core,
                block,
                op,
            } => {
                let g = self.gidx(socket, core);
                let prior = self.shadow_state(socket, core, block);
                let legal = match op {
                    Op::Read | Op::CodeRead | Op::ReadExclusive => prior == MesiState::Invalid,
                    Op::Upgrade => prior == MesiState::Shared,
                };
                if !legal {
                    return Err(StepViolation {
                        invariant: "event contract",
                        detail: format!("{ev} issued from shadow state {prior}"),
                    });
                }
                let is_write = matches!(op, Op::ReadExclusive | Op::Upgrade);
                let source = if is_write {
                    None
                } else {
                    Some(self.read_source_latest(g, block, &before))
                };
                let res = self.sys.access(Cycle::ZERO, socket, core, block, op);
                self.set_shadow(socket, core, block, res.grant);
                if is_write {
                    // A store mints a fresh token: the writer's copy is the
                    // unique latest value.
                    *self.token_mut(block) = WriteToken {
                        cores: 1 << g,
                        llc: 0,
                        mem: false,
                    };
                } else {
                    let (fresh, label) = source.expect("read computed a source");
                    if !fresh {
                        return Err(StepViolation {
                            invariant: "data-value coherence",
                            detail: format!("{ev} served stale data from {label}"),
                        });
                    }
                    let bi = self.bidx(block);
                    // Any LLC block line that appeared during this access
                    // (requester-socket fill, home-socket fill, EPD sharing
                    // allocation) was filled with the just-served latest
                    // data.
                    let mut appeared = 0u32;
                    for s in 0..self.sockets {
                        let had = before
                            .get(bi)
                            .and_then(|(lines, _)| lines.get(s))
                            .copied()
                            .flatten()
                            .is_some_and(|l| l.holds_block());
                        let has = self
                            .sys
                            .llc_line_of(SocketId(s as u8), block)
                            .is_some_and(|l| l.holds_block());
                        if !had && has {
                            appeared |= 1 << s;
                        }
                    }
                    let tok = self.token_mut(block);
                    tok.cores |= 1 << g;
                    tok.llc |= appeared;
                }
                self.apply_effects(res.downgrades, res.invalidations);
            }
            ProtocolEvent::SilentWrite {
                socket,
                core,
                block,
            } => {
                let g = self.gidx(socket, core);
                if self.shadow_state(socket, core, block) != MesiState::Exclusive {
                    return Err(StepViolation {
                        invariant: "event contract",
                        detail: format!("{ev} without an E copy"),
                    });
                }
                self.set_shadow(socket, core, block, MesiState::Modified);
                *self.token_mut(block) = WriteToken {
                    cores: 1 << g,
                    llc: 0,
                    mem: false,
                };
            }
            ProtocolEvent::Evict {
                socket,
                core,
                block,
                kind,
            } => {
                let prior = self.shadow_state(socket, core, block);
                if EvictKind::for_state(prior) != Some(kind) {
                    return Err(StepViolation {
                        invariant: "event contract",
                        detail: format!("{ev} from shadow state {prior}"),
                    });
                }
                let g = self.gidx(socket, core);
                self.set_shadow(socket, core, block, MesiState::Invalid);
                let was_latest = {
                    let tok = self.token_mut(block);
                    let was = tok.cores & (1 << g) != 0;
                    tok.cores &= !(1 << g);
                    was
                };
                let dw_data_before = self.sys.stats.dram_writes - self.sys.stats.dram_writes_dir;
                let invals = self.sys.evict(Cycle::ZERO, socket, core, block, kind);
                if was_latest {
                    // Attribute where the departing copy's data landed.
                    let bi = self.bidx(block);
                    let had_line = before
                        .get(bi)
                        .and_then(|(lines, _)| lines.get(socket.0 as usize))
                        .copied()
                        .flatten()
                        .is_some_and(|l| l.holds_block());
                    let has_line = self
                        .sys
                        .llc_line_of(socket, block)
                        .is_some_and(|l| l.holds_block());
                    let dw_data_delta = (self.sys.stats.dram_writes
                        - self.sys.stats.dram_writes_dir)
                        .saturating_sub(dw_data_before);
                    if has_line && (kind != EvictKind::CleanShared || had_line) {
                        // Dirty writebacks and EPD victim transfers carry
                        // the data into the LLC.
                        if kind != EvictKind::CleanShared {
                            self.token_mut(block).llc |= 1 << socket.0;
                        }
                    } else if kind == EvictKind::Dirty && dw_data_delta > 0 {
                        self.token_mut(block).mem = true;
                    } else if dw_data_delta > 0
                        && before.get(bi).is_some_and(|(_, corrupted)| *corrupted)
                        && !self.sys.memory_corrupted(block)
                    {
                        // Clean eviction of the last copy of a corrupted
                        // block: home retrieved the block from the evictor
                        // to overwrite the corrupted memory copy (§III-D4).
                        self.token_mut(block).mem = true;
                    }
                }
                self.apply_effects(Vec::new(), invals);
            }
        }
        self.reconcile(&before);
        self.check()
    }

    /// Per-state invariants over the abstract view: SWMR, value coherence
    /// (every valid copy holds the latest value), recoverability of the
    /// latest value, and shadow↔directory conformance. Structural machine
    /// invariants (precision, inclusion, corrupted-block bookkeeping) are
    /// the audit oracle's and `System::check_invariants`' job.
    ///
    /// # Errors
    /// Returns the first violated invariant.
    pub fn check(&self) -> Result<(), StepViolation> {
        let n = self.blocks.len();
        for (bi, &block) in self.blocks.iter().enumerate() {
            let mut owned = 0u32;
            let mut valid = 0u32;
            let tok = self.tokens.get(bi).expect("token in range");
            for g in 0..self.sockets * self.cores {
                let st = self
                    .shadow
                    .get(g * n + bi)
                    .copied()
                    .expect("shadow in range");
                if st.is_valid() {
                    valid += 1;
                    if tok.cores & (1 << g) == 0 {
                        return Err(StepViolation {
                            invariant: "data-value coherence",
                            detail: format!(
                                "s{}/c{} holds {block:?} in {st} with a stale value",
                                g / self.cores,
                                g % self.cores
                            ),
                        });
                    }
                }
                if matches!(st, MesiState::Modified | MesiState::Exclusive) {
                    owned += 1;
                }
            }
            if owned > 1 || (owned == 1 && valid > 1) {
                return Err(StepViolation {
                    invariant: "SWMR",
                    detail: format!("{block:?} has {owned} owned and {valid} valid private copies"),
                });
            }
            // The latest value must be recoverable from somewhere the
            // protocol can reach: a live core copy, a resident LLC line, or
            // clean home memory.
            let llc_live = (0..self.sockets).any(|s| {
                tok.llc & (1 << s) != 0
                    && self
                        .sys
                        .llc_line_of(SocketId(s as u8), block)
                        .is_some_and(|l| l.holds_block())
            });
            let mem_live = tok.mem && !self.sys.memory_corrupted(block);
            let core_live = tok.cores != 0;
            if !core_live && !llc_live && !mem_live {
                return Err(StepViolation {
                    invariant: "latest value recoverable",
                    detail: format!("the latest write to {block:?} is held nowhere"),
                });
            }
            // §III-C2 structural placement: SpillAll never fuses, and FPSS
            // fuses only private (M/E-owned) entries — a fused Shared entry
            // would tie sharing-read latency to the block line's residency.
            for s in 0..self.sockets {
                let Some(LlcLine::Fused { entry, .. }) =
                    self.sys.llc_line_of(SocketId(s as u8), block)
                else {
                    continue;
                };
                let Some(zd) = self.sys.config().zerodev else {
                    continue;
                };
                let bad = match zd.policy {
                    SpillPolicy::SpillAll => true,
                    SpillPolicy::FusePrivateSpillShared => entry.state != DirState::OwnedME,
                    SpillPolicy::FuseAll => false,
                };
                if bad {
                    return Err(StepViolation {
                        invariant: "entry placement",
                        detail: format!(
                            "s{s} fused a {:?} entry for {block:?} under {}",
                            entry.state, zd.policy
                        ),
                    });
                }
            }
            // Shadow↔directory conformance: every valid private copy must be
            // tracked by its socket's directory entry.
            for s in 0..self.sockets {
                for c in 0..self.cores {
                    let g = s * self.cores + c;
                    let st = self
                        .shadow
                        .get(g * n + bi)
                        .copied()
                        .expect("shadow in range");
                    if !st.is_valid() {
                        continue;
                    }
                    // The entry may live in the dedicated directory, an LLC
                    // line (spilled/fused), or — after WB_DE — a housed
                    // segment in home memory; all three track sharers.
                    let tracked = self
                        .sys
                        .entry_of(SocketId(s as u8), block)
                        .or_else(|| self.sys.memory().peek_entry(block, SocketId(s as u8)))
                        .is_some_and(|e| e.sharers.contains(CoreId(c as u16)));
                    if !tracked {
                        return Err(StepViolation {
                            invariant: "directory conformance",
                            detail: format!(
                                "s{s}/c{c} holds {block:?} in {st} but no directory entry \
                                 tracks it"
                            ),
                        });
                    }
                }
            }
        }
        Ok(())
    }
}
