//! Compressed directory-entry representations for memory-housed segments.
//!
//! A full-map segment needs `N + 1` bits for an `N`-core socket, which caps
//! a 64-byte home block at `⌊512 / (N+1)⌋` sockets (§III-D of the paper).
//! To scale beyond that, the paper suggests "a hybrid of limited-pointer
//! and coarse-vector formats \[that\] can dynamically choose between precise
//! and imprecise representations depending on the sharer count". This
//! module implements that hybrid:
//!
//! * up to `P` sharers: exact pointers (`P × ⌈log2 N⌉` bits);
//! * more sharers: a coarse bit-vector where each bit covers a group of
//!   `⌈N / V⌉` cores — decoding yields a *superset* of the true sharers,
//!   which is always safe for a write-invalidate protocol (spurious
//!   invalidations are acknowledged and ignored).

use crate::directory::DirEntry;
use zerodev_common::ids::SharerSet;
use zerodev_common::{CoreId, DirState};

pub use zerodev_common::config::SegmentFormat;

/// A directory entry encoded into a fixed bit budget.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CompressedEntry {
    /// Exact sharer pointers (precise).
    Pointers {
        /// M/E or S.
        state: DirState,
        /// The sharer core ids.
        ptrs: Vec<CoreId>,
    },
    /// Coarse-vector (imprecise superset).
    Coarse {
        /// M/E or S.
        state: DirState,
        /// One bit per core group.
        mask: u64,
        /// Cores per group.
        group: u16,
    },
}

/// Encoding/decoding operations for [`SegmentFormat`] (the format enum
/// itself lives in `zerodev_common::config` so machine descriptions can
/// select it).
pub trait SegmentFormatExt {
    /// Segment size in bits for an `N`-core socket (excluding the shared
    /// valid/corrupted bookkeeping).
    fn segment_bits(self, cores: usize) -> u32;
    /// How many sockets' segments fit in a 64-byte (512-bit) home block.
    fn sockets_per_block(self, cores: usize) -> usize;
    /// Encodes an entry for an `N`-core socket.
    fn encode(self, entry: &DirEntry, cores: usize) -> CompressedEntry;
}

impl SegmentFormatExt for SegmentFormat {
    // The bit-budget arithmetic lives on `SegmentFormat` itself (in
    // `zerodev_common::config`) so `SystemConfig::validate` can reject
    // machines whose socket count exceeds the home-block capacity.
    fn segment_bits(self, cores: usize) -> u32 {
        SegmentFormat::segment_bits(self, cores)
    }

    fn sockets_per_block(self, cores: usize) -> usize {
        SegmentFormat::sockets_per_block(self, cores)
    }

    /// # Panics
    /// Panics when the entry is dead or `cores` is zero.
    fn encode(self, entry: &DirEntry, cores: usize) -> CompressedEntry {
        assert!(cores > 0, "need at least one core");
        assert!(!entry.is_dead(), "cannot encode a dead entry");
        match self {
            SegmentFormat::FullMap => CompressedEntry::Pointers {
                state: entry.state,
                ptrs: entry.sharers.iter().collect(),
            },
            SegmentFormat::Hybrid {
                max_pointers,
                coarse_bits,
            } => {
                let sharers: Vec<CoreId> = entry.sharers.iter().collect();
                if sharers.len() <= usize::from(max_pointers) {
                    CompressedEntry::Pointers {
                        state: entry.state,
                        ptrs: sharers,
                    }
                } else {
                    let groups = u64::from(coarse_bits).max(1);
                    let group = (cores as u64).div_ceil(groups).max(1) as u16;
                    let mut mask = 0u64;
                    for c in &sharers {
                        mask |= 1 << (u64::from(c.0) / u64::from(group));
                    }
                    CompressedEntry::Coarse {
                        state: entry.state,
                        mask,
                        group,
                    }
                }
            }
        }
    }
}

impl CompressedEntry {
    /// Decodes back to a [`DirEntry`]. Coarse entries yield a *superset* of
    /// the true sharers, clipped to the socket's core count.
    pub fn decode(&self, cores: usize) -> DirEntry {
        match self {
            CompressedEntry::Pointers { state, ptrs } => DirEntry {
                state: *state,
                sharers: ptrs.iter().copied().collect(),
            },
            CompressedEntry::Coarse { state, mask, group } => {
                let mut sharers = SharerSet::default();
                for g in 0..64u64 {
                    if mask & (1 << g) != 0 {
                        for c in 0..u64::from(*group) {
                            let core = g * u64::from(*group) + c;
                            if core < cores as u64 {
                                sharers.insert(CoreId(core as u16));
                            }
                        }
                    }
                }
                DirEntry {
                    state: *state,
                    sharers,
                }
            }
        }
    }

    /// True when decoding loses precision.
    pub fn is_imprecise(&self) -> bool {
        matches!(self, CompressedEntry::Coarse { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zerodev_common::Prng;

    fn entry_of(cores: &[u16], owned: bool) -> DirEntry {
        DirEntry {
            state: if owned {
                DirState::OwnedME
            } else {
                DirState::Shared
            },
            sharers: cores.iter().map(|&c| CoreId(c)).collect(),
        }
    }

    #[test]
    fn full_map_round_trips_exactly() {
        let e = entry_of(&[0, 5, 127], false);
        let c = SegmentFormat::FullMap.encode(&e, 128);
        assert!(!c.is_imprecise());
        assert_eq!(c.decode(128), e);
    }

    #[test]
    fn hybrid_pointers_are_exact_for_few_sharers() {
        let f = SegmentFormat::Hybrid {
            max_pointers: 3,
            coarse_bits: 16,
        };
        let e = entry_of(&[2, 9, 77], false);
        let c = f.encode(&e, 128);
        assert!(!c.is_imprecise());
        assert_eq!(c.decode(128), e);
    }

    #[test]
    fn hybrid_coarse_yields_superset() {
        let f = SegmentFormat::Hybrid {
            max_pointers: 2,
            coarse_bits: 8,
        };
        let e = entry_of(&[0, 17, 34, 99], false);
        let c = f.encode(&e, 128);
        assert!(c.is_imprecise());
        let d = c.decode(128);
        assert_eq!(d.state, e.state);
        for s in e.sharers.iter() {
            assert!(d.sharers.contains(s), "lost true sharer {s}");
        }
        assert!(d.sharers.count() >= e.sharers.count());
        // Never invents cores beyond the socket.
        assert!(d.sharers.iter().all(|c2| c2.0 < 128));
    }

    #[test]
    fn owner_state_survives_encoding() {
        let f = SegmentFormat::Hybrid {
            max_pointers: 1,
            coarse_bits: 8,
        };
        let e = entry_of(&[42], true);
        let c = f.encode(&e, 128);
        let d = c.decode(128);
        assert_eq!(d.owner(), Some(CoreId(42)));
    }

    #[test]
    fn segment_bits_and_socket_capacity() {
        // Full map, 8 cores: 9 bits → 56 sockets per 512-bit block.
        assert_eq!(SegmentFormat::FullMap.segment_bits(8), 9);
        assert_eq!(SegmentFormat::FullMap.sockets_per_block(8), 56);
        // Full map, 128 cores: 129 bits → only 3 sockets.
        assert_eq!(SegmentFormat::FullMap.sockets_per_block(128), 3);
        // Hybrid with 4 pointers of 7 bits for 128 cores: 2 + 28 = 30 bits
        // → 17 sockets; the paper's scaling motivation.
        let f = SegmentFormat::Hybrid {
            max_pointers: 4,
            coarse_bits: 16,
        };
        assert_eq!(f.segment_bits(128), 30);
        assert_eq!(f.sockets_per_block(128), 17);
        assert!(f.sockets_per_block(128) > SegmentFormat::FullMap.sockets_per_block(128));
    }

    #[test]
    fn random_entries_never_lose_sharers() {
        let f = SegmentFormat::Hybrid {
            max_pointers: 4,
            coarse_bits: 32,
        };
        let mut rng = Prng::seeded(21);
        for _ in 0..500 {
            let n = 1 + rng.below(12);
            let mut e = DirEntry {
                state: DirState::Shared,
                sharers: SharerSet::default(),
            };
            for _ in 0..n {
                e.sharers.insert(CoreId(rng.below(128) as u16));
            }
            let d = f.encode(&e, 128).decode(128);
            for s in e.sharers.iter() {
                assert!(d.sharers.contains(s));
            }
        }
    }

    #[test]
    #[should_panic(expected = "dead entry")]
    fn encoding_dead_entry_panics() {
        let e = DirEntry {
            state: DirState::Shared,
            sharers: SharerSet::default(),
        };
        let _ = SegmentFormat::FullMap.encode(&e, 8);
    }
}
