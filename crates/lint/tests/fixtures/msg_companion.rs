//! Mini message-class enum shared by the protocol-pass fixtures: three
//! classes, one per virtual-network rank.
pub enum MsgClass {
    Req,
    Fwd,
    Dat,
}

impl MsgClass {
    pub const fn vnet(self) -> u8 {
        match self {
            MsgClass::Req => 0,
            MsgClass::Fwd => 1,
            MsgClass::Dat => 2,
        }
    }
}
