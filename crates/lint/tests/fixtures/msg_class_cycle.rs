//! Fires `msg_class_cycle` exactly once: serving the top-rank response
//! class emits a bottom-rank request — an un-audited descent of the
//! virtual-network order.
impl Sys {
    // lint:consumes(Req)
    fn serve(&mut self, st: &mut Stats) {
        st.msg(MsgClass::Fwd, 8);
    }

    // lint:consumes(Fwd)
    fn forward(&mut self, st: &mut Stats) {
        st.msg(MsgClass::Dat, 8);
    }

    // lint:consumes(Dat)
    fn retry(&mut self, st: &mut Stats) {
        st.msg(MsgClass::Req, 8);
    }
}
