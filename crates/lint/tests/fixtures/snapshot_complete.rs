//! Fires `snapshot_complete` exactly once: `Gadget::snap` serializes
//! field `a` but never references field `b`.
pub struct Gadget {
    a: u64,
    b: u64,
}

impl Gadget {
    pub fn snap(&self, w: &mut SnapWriter) {
        w.u64(self.a);
    }
}
