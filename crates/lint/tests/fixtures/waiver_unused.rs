//! Fires `waiver_unused` exactly once: a fully-justified waiver that
//! suppresses nothing.
pub fn quiet() -> u64 {
    // lint:allow(thread_spawn, nothing here spawns; stale after a refactor)
    7
}
