//! Fires `ambient_randomness` exactly once: one OS-entropy draw in a
//! deterministic crate (both denied idents sit on one line — findings
//! are deduplicated per line).
pub fn seed() -> u64 {
    rand::thread_rng().next_u64()
}
