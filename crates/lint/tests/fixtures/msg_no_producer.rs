//! Fires `msg_no_producer` exactly once: `Fwd` (vnet 1, not
//! core-originated) is consumed but never emitted by any flow.
impl Sys {
    // lint:consumes(Req)
    fn serve(&mut self, st: &mut Stats) {
        st.msg(MsgClass::Dat, 8);
    }

    // lint:consumes(Fwd)
    fn forward(&mut self) {}

    // lint:consumes(Dat)
    fn complete(&mut self) {}
}
