//! Fires `wall_clock` exactly once: one wall-clock read in a
//! deterministic crate.
pub fn elapsed() -> u64 {
    let t = std::time::Instant::now();
    t.elapsed().as_nanos() as u64
}
