//! Fires `nondeterministic_map` exactly once: one hash-randomized
//! container mention in a deterministic crate.
use std::collections::HashMap;

pub fn build() -> usize {
    0
}
