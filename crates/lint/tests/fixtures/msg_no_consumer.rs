//! Fires `msg_no_consumer` exactly once: `Dat` is produced but no flow
//! declares consuming it.
impl Sys {
    // lint:consumes(Req)
    fn serve(&mut self, st: &mut Stats) {
        st.msg(MsgClass::Fwd, 8);
    }

    // lint:consumes(Fwd)
    fn forward(&mut self, st: &mut Stats) {
        st.msg(MsgClass::Dat, 8);
    }
}
