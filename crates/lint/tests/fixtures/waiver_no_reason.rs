//! Fires `waiver_no_reason` exactly once: the waiver suppresses the
//! wall-clock finding below it but carries no justification.
pub fn elapsed() -> u64 {
    // lint:allow(wall_clock)
    let t = std::time::Instant::now();
    t.elapsed().as_nanos() as u64
}
