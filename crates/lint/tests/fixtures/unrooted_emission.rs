//! Fires `unrooted_emission` exactly once: an emission inside a fn with
//! neither a `lint:consumes` declaration nor an active `lint:context`.
impl Sys {
    fn mystery(&mut self, st: &mut Stats) {
        st.msg(MsgClass::Dat, 8);
    }
}
