//! Fires `thread_spawn` exactly once: one raw thread spawn in a
//! deterministic crate.
pub fn background() {
    std::thread::spawn(|| {});
}
