//! Fixture suite: every lint rule has a minimal source file under
//! `tests/fixtures/` on which it fires exactly once. This pins each
//! rule's trigger condition — a pass refactor that stops (or
//! double-)firing a rule fails here, not in CI noise on the real tree.

use zerodev_lint::{analyze, Report, SourceFile, Workspace};

const MSG_COMPANION: &str = include_str!("fixtures/msg_companion.rs");

/// Runs the analyzer over one fixture file. Protocol fixtures get the
/// mini `MsgClass` companion so the graph pass has classes to check
/// against.
fn run_fixture(krate: &str, text: &str, protocol: bool) -> Report {
    let mut files = vec![SourceFile {
        krate: krate.into(),
        path: format!("crates/{krate}/src/fixture.rs"),
        text: text.into(),
    }];
    if protocol {
        files.push(SourceFile {
            krate: "common".into(),
            path: "crates/common/src/msg.rs".into(),
            text: MSG_COMPANION.into(),
        });
    }
    analyze(&Workspace { files })
}

fn count(r: &Report, rule: &str) -> usize {
    r.findings.iter().filter(|f| f.rule == rule).count()
}

#[test]
fn nondeterministic_map_fires_once() {
    let r = run_fixture(
        "core",
        include_str!("fixtures/nondeterministic_map.rs"),
        false,
    );
    assert_eq!(count(&r, "nondeterministic_map"), 1, "{:?}", r.findings);
}

#[test]
fn wall_clock_fires_once() {
    let r = run_fixture("core", include_str!("fixtures/wall_clock.rs"), false);
    assert_eq!(count(&r, "wall_clock"), 1, "{:?}", r.findings);
}

#[test]
fn thread_spawn_fires_once() {
    let r = run_fixture("core", include_str!("fixtures/thread_spawn.rs"), false);
    assert_eq!(count(&r, "thread_spawn"), 1, "{:?}", r.findings);
}

#[test]
fn ambient_randomness_fires_once() {
    let r = run_fixture(
        "core",
        include_str!("fixtures/ambient_randomness.rs"),
        false,
    );
    assert_eq!(count(&r, "ambient_randomness"), 1, "{:?}", r.findings);
}

#[test]
fn determinism_rules_ignore_non_deterministic_crates() {
    // The same sources in a crate outside the deterministic set are clean.
    for fixture in [
        include_str!("fixtures/nondeterministic_map.rs"),
        include_str!("fixtures/wall_clock.rs"),
        include_str!("fixtures/thread_spawn.rs"),
        include_str!("fixtures/ambient_randomness.rs"),
    ] {
        let r = run_fixture("bench", fixture, false);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }
}

#[test]
fn snapshot_complete_fires_once() {
    let r = run_fixture("core", include_str!("fixtures/snapshot_complete.rs"), false);
    assert_eq!(count(&r, "snapshot_complete"), 1, "{:?}", r.findings);
    let f = r
        .findings
        .iter()
        .find(|f| f.rule == "snapshot_complete")
        .unwrap();
    assert!(f.message.contains("`b`"), "wrong field: {}", f.message);
}

#[test]
fn msg_class_cycle_fires_once() {
    let r = run_fixture("core", include_str!("fixtures/msg_class_cycle.rs"), true);
    assert_eq!(count(&r, "msg_class_cycle"), 1, "{:?}", r.findings);
}

#[test]
fn msg_no_producer_fires_once() {
    let r = run_fixture("core", include_str!("fixtures/msg_no_producer.rs"), true);
    assert_eq!(count(&r, "msg_no_producer"), 1, "{:?}", r.findings);
    let f = r
        .findings
        .iter()
        .find(|f| f.rule == "msg_no_producer")
        .unwrap();
    assert!(f.message.contains("Fwd"), "wrong class: {}", f.message);
}

#[test]
fn msg_no_consumer_fires_once() {
    let r = run_fixture("core", include_str!("fixtures/msg_no_consumer.rs"), true);
    assert_eq!(count(&r, "msg_no_consumer"), 1, "{:?}", r.findings);
    let f = r
        .findings
        .iter()
        .find(|f| f.rule == "msg_no_consumer")
        .unwrap();
    assert!(f.message.contains("Dat"), "wrong class: {}", f.message);
}

#[test]
fn unrooted_emission_fires_once() {
    let r = run_fixture("core", include_str!("fixtures/unrooted_emission.rs"), true);
    assert_eq!(count(&r, "unrooted_emission"), 1, "{:?}", r.findings);
}

#[test]
fn waiver_no_reason_fires_once_and_still_suppresses() {
    let r = run_fixture("core", include_str!("fixtures/waiver_no_reason.rs"), false);
    assert_eq!(count(&r, "waiver_no_reason"), 1, "{:?}", r.findings);
    // The reasonless waiver still suppresses its target — the missing
    // justification is its own finding, not a reason to double-report.
    let wc = r.findings.iter().find(|f| f.rule == "wall_clock").unwrap();
    assert!(wc.waived_by.is_some());
}

#[test]
fn waiver_unused_fires_once() {
    let r = run_fixture("core", include_str!("fixtures/waiver_unused.rs"), false);
    assert_eq!(count(&r, "waiver_unused"), 1, "{:?}", r.findings);
}
