//! Mutation test against the real tree: deleting one serialized field
//! write from a shipping `snap` implementation must trip the
//! snapshot-completeness pass. This is the end-to-end guarantee the pass
//! exists for — a new field that never reaches the checkpoint image
//! fails CI instead of breaking kill-and-resume byte-identity at soak
//! time.

use zerodev_lint::{analyze, SourceFile, Workspace};

/// The real engine source, compiled into the test so the mutation stays
/// in memory and the tree on disk is untouched.
const ENGINE_SRC: &str = include_str!("../../sim/src/engine.rs");

fn ws(text: &str) -> Workspace {
    Workspace {
        files: vec![SourceFile {
            krate: "sim".into(),
            path: "crates/sim/src/engine.rs".into(),
            text: text.into(),
        }],
    }
}

#[test]
fn baseline_engine_is_snapshot_clean() {
    let r = analyze(&ws(ENGINE_SRC));
    let leftovers: Vec<_> = r
        .findings
        .iter()
        .filter(|f| f.rule == "snapshot_complete" && f.waived_by.is_none())
        .collect();
    assert!(leftovers.is_empty(), "{leftovers:?}");
}

#[test]
fn deleting_a_field_write_fails_snapshot_completeness() {
    let anchor = "        w.u64(self.pops);\n";
    let mutated = ENGINE_SRC.replacen(anchor, "", 1);
    assert_ne!(
        mutated, ENGINE_SRC,
        "EngineState::snap no longer writes `pops` — update the anchor"
    );
    let r = analyze(&ws(&mutated));
    let hits: Vec<_> = r
        .findings
        .iter()
        .filter(|f| f.rule == "snapshot_complete" && f.message.contains("`pops`"))
        .collect();
    assert!(
        !hits.is_empty(),
        "dropping a field write went undetected: {:?}",
        r.findings
    );
    assert!(
        hits.iter().all(|f| f.waived_by.is_none()),
        "the injected omission must not be waivable by existing waivers: {hits:?}"
    );
}
