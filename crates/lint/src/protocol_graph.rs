//! Pass 3: protocol message-dependency (deadlock) analysis.
//!
//! Phase-priority directory coherence (PAPERS.md) reduces deadlock freedom
//! to acyclicity of the message-*class* dependency graph: if serving a
//! class-A message can generate a class-B message, edge A→B exists, and a
//! cycle means a full network can stall forever. This pass extracts that
//! graph from the annotated flow code and verifies it against the declared
//! class ordering (`MsgClass::vnet` in `crates/common/src/msg.rs`).
//!
//! # Annotation grammar
//!
//! Flows in this simulator are synchronous functions, not queued
//! handlers, so the consumes side is declared rather than inferred:
//!
//! ```text
//! // lint:consumes(Request)          ← above a fn: serving this class
//! // lint:context(EvictNotice)      ← inside a body: messages below this
//! //                                   point are caused by this class,
//! //                                   until the enclosing block closes
//! // lint:context(end)              ← explicit early pop
//! // lint:emits(DenfNack)           ← emission not visible as st.msg(…)
//! ```
//!
//! Emissions are auto-detected at `msg(MsgClass::X, …)` / `msg_n(MsgClass::X, …)`
//! accounting calls; `lint:emits` covers the rest. An emission inside a fn
//! with neither a context nor a `consumes` declaration is an
//! `unrooted_emission` finding.
//!
//! # Checks
//!
//! * every non-self edge A→B must satisfy `vnet(B) ≥ vnet(A)` — a
//!   response may never generate traffic on a lower (more congested)
//!   virtual network. Violations are `msg_class_cycle` findings, waivable
//!   per audited edge (the `DenfNack → Request` retry is the one waiver).
//! * edges within one vnet rank must be acyclic (DFS over the rank's
//!   subgraph). Self-edges (same-VN hop / ingress accounting) are exempt.
//! * every non-origin class (vnet > 0) needs a producer (`msg_no_producer`)
//!   and every class needs a consumer (`msg_no_consumer`).

use crate::lexer::Tok;
use crate::model::{Finding, Parsed};

/// Crates scanned for flow annotations and emissions.
const FLOW_CRATES: [&str; 3] = ["common", "core", "sim"];

#[derive(Clone, Debug)]
pub struct ClassInfo {
    pub name: String,
    pub vnet: u8,
    pub line: u32,
}

#[derive(Clone, Debug)]
pub struct Edge {
    pub from: usize,
    pub to: usize,
    pub file: String,
    pub line: u32,
    /// Carries a `msg_class_cycle` waiver (the audited retry edge).
    pub audited: bool,
}

/// The extracted consumes→emits graph, embedded in `lint_report.json` and
/// rendered to DOT.
#[derive(Clone, Debug, Default)]
pub struct Graph {
    pub classes: Vec<ClassInfo>,
    pub edges: Vec<Edge>,
}

impl Graph {
    fn class(&self, name: &str) -> Option<usize> {
        self.classes.iter().position(|c| c.name == name)
    }
}

pub fn run(p: &Parsed, used: &mut [bool], out: &mut Vec<Finding>) -> Graph {
    let Some(msg_file) = p
        .files
        .iter()
        .position(|f| f.src.krate == "common" && f.src.path.ends_with("msg.rs"))
    else {
        return Graph::default(); // fixture workspaces without the enum
    };
    let mut g = parse_classes(p, msg_file);
    if g.classes.is_empty() {
        return g;
    }
    let consumed = extract_edges(p, used, out, &mut g);
    check_ordering(p, used, out, &mut g);
    check_rank_cycles(p, out, &g);
    check_endpoints(p, used, out, &g, msg_file, &consumed);
    g
}

/// Parses the `MsgClass` enum variants and their `vnet()` ranks. The rank
/// values come from a raw-text scan of the `vnet` body (the lexer drops
/// numeric literals).
fn parse_classes(p: &Parsed, msg_file: usize) -> Graph {
    let toks = &p.files[msg_file].toks;
    let mut g = Graph::default();
    for i in 0..toks.len() {
        if toks[i].tok != Tok::Ident("enum".into())
            || toks.get(i + 1).map(|s| &s.tok) != Some(&Tok::Ident("MsgClass".into()))
        {
            continue;
        }
        let Some(open_rel) = toks[i..].iter().position(|s| s.tok == Tok::Punct('{')) else {
            break;
        };
        let open = i + open_rel;
        let close = crate::lexer::matching_brace(toks, open);
        let mut depth = 0i32;
        for s in &toks[open..close] {
            match &s.tok {
                Tok::Punct('{') | Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('<') => depth += 1,
                Tok::Punct('}') | Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('>') => depth -= 1,
                Tok::Ident(v) if depth == 1 => g.classes.push(ClassInfo {
                    name: v.clone(),
                    vnet: u8::MAX,
                    line: s.line,
                }),
                _ => {}
            }
        }
        break;
    }
    // Rank assignment from the vnet() match arms.
    if let Some(f) = p
        .fns
        .iter()
        .find(|f| f.file == msg_file && f.name == "vnet" && f.self_ty == "MsgClass")
    {
        let text = &p.files[msg_file].src.text;
        let body: String = text
            .lines()
            .skip(f.line.saturating_sub(1) as usize)
            .take((f.end_line - f.line + 1) as usize)
            .collect::<Vec<_>>()
            .join("\n");
        for (names, rank) in scan_vnet_arms(&body) {
            for n in names {
                if let Some(ci) = g.class(&n) {
                    g.classes[ci].vnet = rank;
                }
            }
        }
    }
    g
}

/// Scans `MsgClass::A | MsgClass::B => 0,` arms out of raw text.
fn scan_vnet_arms(body: &str) -> Vec<(Vec<String>, u8)> {
    let mut arms = Vec::new();
    let mut pending: Vec<String> = Vec::new();
    let mut rest = body;
    loop {
        let next_class = rest.find("MsgClass::");
        let next_arrow = rest.find("=>");
        match (next_class, next_arrow) {
            (Some(c), a) if a.is_none_or(|a| c < a) => {
                let after = &rest[c + "MsgClass::".len()..];
                let name: String = after
                    .chars()
                    .take_while(|ch| ch.is_alphanumeric() || *ch == '_')
                    .collect();
                pending.push(name);
                rest = &rest[c + "MsgClass::".len()..];
            }
            (_, Some(a)) => {
                let after = rest[a + 2..].trim_start();
                let digits: String = after.chars().take_while(|ch| ch.is_ascii_digit()).collect();
                if let Ok(rank) = digits.parse::<u8>() {
                    if !pending.is_empty() {
                        arms.push((std::mem::take(&mut pending), rank));
                    }
                } else {
                    pending.clear(); // `_ => unreachable!()` style arm
                }
                rest = &rest[a + 2..];
            }
            (_, None) => break,
        }
    }
    arms
}

/// A consumes/context/emits annotation parsed from a comment.
fn parse_annotation(text: &str) -> Option<(&'static str, Vec<String>)> {
    for (prefix, kind) in [
        ("lint:consumes(", "consumes"),
        ("lint:context(", "context"),
        ("lint:emits(", "emits"),
    ] {
        if let Some(rest) = text.strip_prefix(prefix) {
            let inner = rest.split(')').next().unwrap_or("");
            let names = inner
                .split(',')
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
                .collect();
            return Some((kind, names));
        }
    }
    None
}

/// Walks every annotated fn, building edges. Returns the set of consumed
/// class indices (for the `msg_no_consumer` check).
fn extract_edges(
    p: &Parsed,
    used: &mut [bool],
    out: &mut Vec<Finding>,
    g: &mut Graph,
) -> Vec<bool> {
    let mut consumed = vec![false; g.classes.len()];
    for (fi, pf) in p.files.iter().enumerate() {
        if !FLOW_CRATES.contains(&pf.src.krate.as_str()) {
            continue;
        }
        // consumes-annotations attach to the first fn that starts after
        // them (token order).
        let mut fn_consumes: Vec<(usize, Vec<String>)> = Vec::new(); // (fn idx in p.fns, classes)
        for (ti, s) in pf.toks.iter().enumerate() {
            let Tok::Comment(c) = &s.tok else { continue };
            let Some(("consumes", names)) = parse_annotation(c) else {
                continue;
            };
            let target = p
                .fns
                .iter()
                .enumerate()
                .filter(|(_, f)| f.file == fi && f.body.0 > ti)
                .min_by_key(|(_, f)| f.body.0);
            if let Some((fidx, _)) = target {
                match fn_consumes.iter_mut().find(|(i, _)| *i == fidx) {
                    Some((_, v)) => v.extend(names),
                    None => fn_consumes.push((fidx, names)),
                }
            }
        }
        for (fidx, f) in p.fns.iter().enumerate() {
            if f.file != fi {
                continue;
            }
            let consumes: &[String] = fn_consumes
                .iter()
                .find(|(i, _)| *i == fidx)
                .map(|(_, v)| v.as_slice())
                .unwrap_or(&[]);
            for c in consumes {
                match g.class(c) {
                    Some(ci) => consumed[ci] = true,
                    None => out.push(unknown_class(pf, f.line, c)),
                }
            }
            walk_body(p, used, out, g, &mut consumed, fi, f, consumes);
        }
    }
    consumed
}

#[expect(clippy::too_many_arguments)] // internal walker, plumbing over a tuple struct buys nothing
fn walk_body(
    p: &Parsed,
    used: &mut [bool],
    out: &mut Vec<Finding>,
    g: &mut Graph,
    consumed: &mut [bool],
    fi: usize,
    f: &crate::model::FnDef,
    consumes: &[String],
) {
    let pf = &p.files[fi];
    let toks = &pf.toks;
    let mut ctx: Vec<(usize, i32)> = Vec::new(); // (class idx, depth pushed at)
    let mut depth = 0i32;
    let mut k = f.body.0;
    while k < f.body.1 {
        match &toks[k].tok {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth -= 1;
                while ctx.last().is_some_and(|(_, d)| *d > depth) {
                    ctx.pop();
                }
            }
            Tok::Comment(c) => {
                if let Some((kind, names)) = parse_annotation(c) {
                    match kind {
                        "context" if names.first().map(String::as_str) == Some("end") => {
                            ctx.pop();
                        }
                        "context" => {
                            for n in &names {
                                match g.class(n) {
                                    Some(ci) => {
                                        consumed[ci] = true;
                                        ctx.push((ci, depth));
                                    }
                                    None => out.push(unknown_class(pf, toks[k].line, n)),
                                }
                            }
                        }
                        "emits" => {
                            for n in &names {
                                emit(used, out, g, p, fi, f, consumes, &ctx, n, toks[k].line);
                            }
                        }
                        _ => {}
                    }
                }
            }
            // msg(MsgClass::X …) / msg_n(MsgClass::X …)
            Tok::Ident(id) if (id == "msg" || id == "msg_n") && k + 5 < f.body.1 => {
                let t = |off: usize| &toks[k + off].tok;
                if *t(1) == Tok::Punct('(')
                    && *t(2) == Tok::Ident("MsgClass".into())
                    && *t(3) == Tok::Punct(':')
                    && *t(4) == Tok::Punct(':')
                {
                    if let Tok::Ident(class) = t(5) {
                        let class = class.clone();
                        emit(used, out, g, p, fi, f, consumes, &ctx, &class, toks[k].line);
                    }
                }
            }
            _ => {}
        }
        k += 1;
    }
}

/// Records an emission of `class` from the active context (or the fn's
/// consumes set), or flags it unrooted.
#[expect(clippy::too_many_arguments)] // internal walker, plumbing over a tuple struct buys nothing
fn emit(
    used: &mut [bool],
    out: &mut Vec<Finding>,
    g: &mut Graph,
    p: &Parsed,
    fi: usize,
    f: &crate::model::FnDef,
    consumes: &[String],
    ctx: &[(usize, i32)],
    class: &str,
    line: u32,
) {
    let pf = &p.files[fi];
    let Some(to) = g.class(class) else {
        out.push(unknown_class(pf, line, class));
        return;
    };
    let sources: Vec<usize> = if let Some((ci, _)) = ctx.last() {
        vec![*ci]
    } else {
        consumes.iter().filter_map(|c| g.class(c)).collect()
    };
    if sources.is_empty() {
        let waived_by = p.match_waiver(
            used,
            fi,
            "unrooted_emission",
            line,
            Some((f.line, f.end_line)),
            None,
        );
        out.push(Finding {
            rule: "unrooted_emission",
            file: pf.src.path.clone(),
            line,
            message: format!(
                "`{}::{}` emits MsgClass::{class} but declares no lint:consumes/context — edge source unknown",
                f.self_ty, f.name
            ),
            waived_by,
        });
        return;
    }
    for from in sources {
        g.edges.push(Edge {
            from,
            to,
            file: pf.src.path.clone(),
            line,
            audited: false,
        });
    }
}

fn unknown_class(pf: &crate::model::ParsedFile, line: u32, name: &str) -> Finding {
    Finding {
        rule: "msg_class_cycle",
        file: pf.src.path.clone(),
        line,
        message: format!("annotation names unknown MsgClass `{name}`"),
        waived_by: None,
    }
}

/// Non-self edges must be vnet-monotone; violations need a per-edge waiver.
fn check_ordering(p: &Parsed, used: &mut [bool], out: &mut Vec<Finding>, g: &mut Graph) {
    for e in &mut g.edges {
        if e.from == e.to {
            continue;
        }
        let (a, b) = (&g.classes[e.from], &g.classes[e.to]);
        if a.vnet == u8::MAX || b.vnet == u8::MAX {
            out.push(Finding {
                rule: "msg_class_cycle",
                file: e.file.clone(),
                line: e.line,
                message: format!(
                    "edge {} -> {} touches a class with no vnet() rank",
                    a.name, b.name
                ),
                waived_by: None,
            });
            continue;
        }
        if b.vnet >= a.vnet {
            continue;
        }
        let fi = p
            .files
            .iter()
            .position(|f| f.src.path == e.file)
            .unwrap_or(usize::MAX);
        let waived_by = p.match_waiver(used, fi, "msg_class_cycle", e.line, None, None);
        e.audited = waived_by.is_some();
        out.push(Finding {
            rule: "msg_class_cycle",
            file: e.file.clone(),
            line: e.line,
            message: format!(
                "edge {} (vnet {}) -> {} (vnet {}) descends the virtual-network order",
                a.name, a.vnet, b.name, b.vnet
            ),
            waived_by,
        });
    }
}

/// Within one vnet rank the (non-self, non-audited) edges must be acyclic.
fn check_rank_cycles(p: &Parsed, out: &mut Vec<Finding>, g: &Graph) {
    let n = g.classes.len();
    let mut adj = vec![Vec::new(); n];
    for e in &g.edges {
        if e.from != e.to
            && !e.audited
            && g.classes[e.from].vnet == g.classes[e.to].vnet
            && !adj[e.from].contains(&e.to)
        {
            adj[e.from].push(e.to);
        }
    }
    // Colored DFS; a back edge closes a cycle.
    let mut color = vec![0u8; n]; // 0 white, 1 gray, 2 black
    let mut stack_path: Vec<usize> = Vec::new();
    fn dfs(
        v: usize,
        adj: &[Vec<usize>],
        color: &mut [u8],
        path: &mut Vec<usize>,
        cycles: &mut Vec<Vec<usize>>,
    ) {
        color[v] = 1;
        path.push(v);
        for &w in &adj[v] {
            if color[w] == 1 {
                let start = path.iter().position(|&x| x == w).unwrap_or(0);
                cycles.push(path[start..].to_vec());
            } else if color[w] == 0 {
                dfs(w, adj, color, path, cycles);
            }
        }
        path.pop();
        color[v] = 2;
    }
    let mut cycles = Vec::new();
    for v in 0..n {
        if color[v] == 0 {
            dfs(v, &adj, &mut color, &mut stack_path, &mut cycles);
        }
    }
    let msg_path = p
        .files
        .iter()
        .find(|f| f.src.path.ends_with("msg.rs"))
        .map(|f| f.src.path.clone())
        .unwrap_or_default();
    for cy in cycles {
        let names: Vec<&str> = cy.iter().map(|&i| g.classes[i].name.as_str()).collect();
        out.push(Finding {
            rule: "msg_class_cycle",
            file: msg_path.clone(),
            line: g.classes[cy[0]].line,
            message: format!(
                "same-vnet cycle without an audited edge: {} -> {}",
                names.join(" -> "),
                names[0]
            ),
            waived_by: None,
        });
    }
}

/// Producer/consumer coverage. Origin classes (vnet 0, core-originated)
/// need no producer; every class needs a consumer.
fn check_endpoints(
    p: &Parsed,
    used: &mut [bool],
    out: &mut Vec<Finding>,
    g: &Graph,
    msg_file: usize,
    consumed: &[bool],
) {
    let pf = &p.files[msg_file];
    for (ci, c) in g.classes.iter().enumerate() {
        let produced = g.edges.iter().any(|e| e.to == ci && e.from != e.to);
        if c.vnet != 0 && !produced {
            let waived_by = p.match_waiver(
                used,
                msg_file,
                "msg_no_producer",
                c.line,
                None,
                Some(&c.name),
            );
            out.push(Finding {
                rule: "msg_no_producer",
                file: pf.src.path.clone(),
                line: c.line,
                message: format!(
                    "MsgClass::{} (vnet {}) is never emitted by any flow",
                    c.name, c.vnet
                ),
                waived_by,
            });
        }
        if !consumed[ci] {
            let waived_by = p.match_waiver(
                used,
                msg_file,
                "msg_no_consumer",
                c.line,
                None,
                Some(&c.name),
            );
            out.push(Finding {
                rule: "msg_no_consumer",
                file: pf.src.path.clone(),
                line: c.line,
                message: format!(
                    "MsgClass::{} is consumed by no annotated flow (no lint:consumes/context)",
                    c.name
                ),
                waived_by,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{SourceFile, Workspace};

    const MSG: &str = "pub enum MsgClass { Req, Fwd, Dat }\nimpl MsgClass {\n pub const fn vnet(self) -> u8 {\n  match self {\n   MsgClass::Req => 0,\n   MsgClass::Fwd => 1,\n   MsgClass::Dat => 2,\n  }\n }\n}\n";

    fn run_on(flow: &str) -> (Graph, Vec<Finding>) {
        let p = Parsed::build(&Workspace {
            files: vec![
                SourceFile {
                    krate: "common".into(),
                    path: "crates/common/src/msg.rs".into(),
                    text: MSG.into(),
                },
                SourceFile {
                    krate: "core".into(),
                    path: "crates/core/src/flow.rs".into(),
                    text: flow.into(),
                },
            ],
        });
        let mut used = vec![false; p.waivers.len()];
        let mut out = Vec::new();
        let g = run(&p, &mut used, &mut out);
        (g, out)
    }

    #[test]
    fn vnet_arms_parse() {
        let arms = scan_vnet_arms("MsgClass::A | MsgClass::B => 0, MsgClass::C => 12,");
        assert_eq!(arms.len(), 2);
        assert_eq!(arms[0], (vec!["A".into(), "B".into()], 0));
        assert_eq!(arms[1], (vec!["C".into()], 12));
    }

    #[test]
    fn monotone_edge_is_clean_and_descent_fires() {
        let (g, out) = run_on(
            "impl Sys {\n // lint:consumes(Req)\n fn serve(&mut self, st: &mut Stats) { st.msg(MsgClass::Fwd, 8); }\n // lint:consumes(Dat)\n fn resp(&mut self, st: &mut Stats) { st.msg(MsgClass::Req, 8); }\n // lint:consumes(Fwd)\n fn fwd(&mut self, st: &mut Stats) { st.msg(MsgClass::Dat, 8); }\n}",
        );
        assert_eq!(g.edges.len(), 3);
        let cyc: Vec<_> = out.iter().filter(|f| f.rule == "msg_class_cycle").collect();
        assert_eq!(cyc.len(), 1);
        assert!(cyc[0].message.contains("Dat"));
        assert!(cyc[0].waived_by.is_none());
    }

    #[test]
    fn audited_descent_is_waived() {
        let (g, out) = run_on(
            "impl Sys {\n // lint:consumes(Req)\n fn a(&mut self, st: &mut Stats) { st.msg(MsgClass::Fwd, 8); }\n // lint:consumes(Fwd)\n fn f(&mut self, st: &mut Stats) { st.msg(MsgClass::Dat, 8); }\n // lint:consumes(Dat)\n fn retry(&mut self, st: &mut Stats) {\n  // lint:allow(msg_class_cycle, bounded backoff)\n  st.msg(MsgClass::Req, 8);\n }\n}",
        );
        let cyc: Vec<_> = out.iter().filter(|f| f.rule == "msg_class_cycle").collect();
        assert_eq!(cyc.len(), 1);
        assert!(cyc[0].waived_by.is_some());
        assert!(g.edges.iter().any(|e| e.audited));
    }

    #[test]
    fn context_scopes_to_block_and_pops() {
        let (g, out) = run_on(
            "impl Sys {\n // lint:consumes(Req)\n fn serve(&mut self, st: &mut Stats) {\n  if x {\n   // lint:context(Fwd)\n   st.msg(MsgClass::Dat, 8);\n  }\n  st.msg(MsgClass::Fwd, 8);\n }\n}",
        );
        assert!(out.iter().all(|f| f.rule != "msg_class_cycle"), "{out:?}");
        let pairs: Vec<(usize, usize)> = g.edges.iter().map(|e| (e.from, e.to)).collect();
        assert!(pairs.contains(&(1, 2))); // Fwd -> Dat (context)
        assert!(pairs.contains(&(0, 1))); // Req -> Fwd (after block pop)
    }

    #[test]
    fn unrooted_emission_and_endpoints() {
        let (_, out) = run_on(
            "impl Sys {\n fn mystery(&mut self, st: &mut Stats) { st.msg(MsgClass::Dat, 8); }\n}",
        );
        assert!(out.iter().any(|f| f.rule == "unrooted_emission"));
        assert!(out
            .iter()
            .any(|f| f.rule == "msg_no_producer" && f.message.contains("Fwd")));
        assert!(out.iter().any(|f| f.rule == "msg_no_consumer"));
    }

    #[test]
    fn self_edges_are_exempt() {
        let (_, out) = run_on(
            "impl Sys {\n // lint:consumes(Req)\n fn ingress(&mut self, st: &mut Stats) { st.msg(MsgClass::Req, 8); // lint:emits(Fwd)\n }\n // lint:consumes(Fwd)\n fn f(&mut self, st: &mut Stats) { st.msg(MsgClass::Dat, 8); }\n // lint:consumes(Dat)\n fn d(&mut self) {}\n}",
        );
        assert!(out.iter().all(|f| f.rule != "msg_class_cycle"), "{out:?}");
    }
}
