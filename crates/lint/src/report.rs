//! Report assembly: waiver meta-findings, text rendering, and the
//! machine-readable `lint_report.json` / `msg_classes.dot` artifacts.
//! Both emitters are hand-rolled — the workspace builds with zero
//! external crates, so no serde.

use crate::model::{Finding, Parsed};
use crate::protocol_graph::Graph;

/// Every rule the analyzer can report, in display order.
pub const ALL_RULES: [&str; 11] = [
    "nondeterministic_map",
    "wall_clock",
    "thread_spawn",
    "ambient_randomness",
    "snapshot_complete",
    "msg_class_cycle",
    "msg_no_producer",
    "msg_no_consumer",
    "unrooted_emission",
    "waiver_no_reason",
    "waiver_unused",
];

#[derive(Debug)]
pub struct Report {
    pub findings: Vec<Finding>,
    /// `(file, line, rule, reason, used)` for every waiver in the tree.
    pub waivers: Vec<(String, u32, String, String, bool)>,
    pub graph: Graph,
}

impl Report {
    /// Findings not covered by a waiver — the CI-failing set.
    pub fn unwaived(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.waived_by.is_none())
    }

    /// `(rule, total, unwaived)` per rule, all rules listed.
    pub fn rule_counts(&self) -> Vec<(&'static str, usize, usize)> {
        ALL_RULES
            .iter()
            .map(|&r| {
                let total = self.findings.iter().filter(|f| f.rule == r).count();
                let open = self
                    .findings
                    .iter()
                    .filter(|f| f.rule == r && f.waived_by.is_none())
                    .count();
                (r, total, open)
            })
            .collect()
    }

    /// Appends the waiver meta-findings (`waiver_no_reason`,
    /// `waiver_unused`) once the passes have marked usage.
    pub fn add_waiver_findings(&mut self, p: &Parsed, used: &[bool]) {
        for (wi, w) in p.waivers.iter().enumerate() {
            let path = p.files[w.file].src.path.clone();
            if w.reason.is_empty() {
                self.findings.push(Finding {
                    rule: "waiver_no_reason",
                    file: path.clone(),
                    line: w.line,
                    message: format!("waiver for `{}` carries no justification", w.rule),
                    waived_by: None,
                });
            }
            if !used[wi] {
                self.findings.push(Finding {
                    rule: "waiver_unused",
                    file: path.clone(),
                    line: w.line,
                    message: format!("waiver for `{}` suppresses nothing — remove it", w.rule),
                    waived_by: None,
                });
            }
            self.waivers
                .push((path, w.line, w.rule.clone(), w.reason.clone(), used[wi]));
        }
    }

    /// Human summary for the terminal / CI log.
    pub fn render_text(&self) -> String {
        let mut s = String::new();
        for f in self.unwaived() {
            s.push_str(&format!(
                "error[{}]: {}:{}: {}\n",
                f.rule, f.file, f.line, f.message
            ));
        }
        let open = self.unwaived().count();
        let waived = self.findings.len() - open;
        s.push_str(&format!(
            "zerodev-lint: {} finding(s) — {open} un-waived, {waived} waived ({} waiver(s) in tree); \
             msg-class graph: {} classes, {} edges, {} audited\n",
            self.findings.len(),
            self.waivers.len(),
            self.graph.classes.len(),
            self.graph.edges.len(),
            self.graph.edges.iter().filter(|e| e.audited).count(),
        ));
        s
    }

    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"waived\": {}, \"message\": {}}}",
                js(f.rule),
                js(&f.file),
                f.line,
                f.waived_by.is_some(),
                js(&f.message)
            ));
        }
        s.push_str("\n  ],\n  \"waivers\": [");
        for (i, (file, line, rule, reason, used)) in self.waivers.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    {{\"file\": {}, \"line\": {line}, \"rule\": {}, \"reason\": {}, \"used\": {used}}}",
                js(file),
                js(rule),
                js(reason)
            ));
        }
        s.push_str("\n  ],\n  \"msg_class_graph\": {\n    \"classes\": [");
        for (i, c) in self.graph.classes.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n      {{\"name\": {}, \"vnet\": {}}}",
                js(&c.name),
                c.vnet
            ));
        }
        s.push_str("\n    ],\n    \"edges\": [");
        let mut first = true;
        for (from, to, audited, self_edge) in self.dedup_edges() {
            if !first {
                s.push(',');
            }
            first = false;
            s.push_str(&format!(
                "\n      {{\"from\": {}, \"to\": {}, \"audited\": {audited}, \"self\": {self_edge}}}",
                js(&self.graph.classes[from].name),
                js(&self.graph.classes[to].name)
            ));
        }
        s.push_str("\n    ]\n  },\n  \"summary\": {");
        for (i, (rule, total, open)) in self.rule_counts().iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    {}: {{\"findings\": {total}, \"unwaived\": {open}}}",
                js(rule)
            ));
        }
        s.push_str(&format!(
            "\n  }},\n  \"waiver_count\": {},\n  \"unwaived_count\": {}\n}}\n",
            self.waivers.len(),
            self.unwaived().count()
        ));
        s
    }

    /// Unique `(from, to, audited, self)` edges, class order.
    fn dedup_edges(&self) -> Vec<(usize, usize, bool, bool)> {
        let mut v: Vec<(usize, usize, bool, bool)> = Vec::new();
        for e in &self.graph.edges {
            match v.iter_mut().find(|(f, t, _, _)| *f == e.from && *t == e.to) {
                Some((_, _, a, _)) => *a |= e.audited,
                None => v.push((e.from, e.to, e.audited, e.from == e.to)),
            }
        }
        v.sort_unstable_by_key(|&(f, t, _, _)| (f, t));
        v
    }

    /// GraphViz rendering of the message-class graph, ranks as clusters.
    pub fn to_dot(&self) -> String {
        let mut s = String::from(
            "// MsgClass consumes->emits dependency graph (zerodev-lint pass 3).\n\
             // Solid: vnet-monotone edge. Bold red: audited descent (DenfNack retry).\n\
             // Dashed: self-edge (same-VN hop / ingress accounting), exempt from cycle checks.\n\
             digraph msg_classes {\n  rankdir=LR;\n  node [shape=box, fontname=\"monospace\"];\n",
        );
        let max_rank = self.graph.classes.iter().map(|c| c.vnet).max().unwrap_or(0);
        for rank in 0..=max_rank {
            let members: Vec<&str> = self
                .graph
                .classes
                .iter()
                .filter(|c| c.vnet == rank)
                .map(|c| c.name.as_str())
                .collect();
            if members.is_empty() {
                continue;
            }
            s.push_str(&format!(
                "  subgraph cluster_vnet{rank} {{\n    label=\"vnet {rank}\";\n"
            ));
            for m in members {
                s.push_str(&format!("    {m};\n"));
            }
            s.push_str("  }\n");
        }
        for (from, to, audited, self_edge) in self.dedup_edges() {
            let attrs = if audited {
                " [color=red, style=bold, label=\"audited\"]"
            } else if self_edge {
                " [style=dashed]"
            } else {
                ""
            };
            s.push_str(&format!(
                "  {} -> {}{attrs};\n",
                self.graph.classes[from].name, self.graph.classes[to].name
            ));
        }
        s.push_str("}\n");
        s
    }
}

/// JSON string literal with escaping.
fn js(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol_graph::{ClassInfo, Edge};

    fn tiny_report() -> Report {
        Report {
            findings: vec![Finding {
                rule: "wall_clock",
                file: "a.rs".into(),
                line: 3,
                message: "x \"quoted\"".into(),
                waived_by: None,
            }],
            waivers: vec![("a.rs".into(), 1, "wall_clock".into(), "why".into(), true)],
            graph: Graph {
                classes: vec![
                    ClassInfo {
                        name: "A".into(),
                        vnet: 0,
                        line: 1,
                    },
                    ClassInfo {
                        name: "B".into(),
                        vnet: 1,
                        line: 2,
                    },
                ],
                edges: vec![
                    Edge {
                        from: 0,
                        to: 1,
                        file: "f".into(),
                        line: 1,
                        audited: false,
                    },
                    Edge {
                        from: 1,
                        to: 0,
                        file: "f".into(),
                        line: 2,
                        audited: true,
                    },
                ],
            },
        }
    }

    #[test]
    fn json_is_escaped_and_counts_match() {
        let j = tiny_report().to_json();
        assert!(j.contains("\\\"quoted\\\""));
        assert!(j.contains("\"unwaived_count\": 1"));
        assert!(j.contains("\"waiver_count\": 1"));
        assert!(j.contains("\"audited\": true"));
    }

    #[test]
    fn dot_marks_audited_edges() {
        let d = tiny_report().to_dot();
        assert!(d.contains("A -> B;"));
        assert!(d.contains("B -> A [color=red"));
        assert!(d.contains("cluster_vnet0"));
    }
}
