//! Pass 1: determinism lints.
//!
//! The simulator's headline guarantee is byte-identical output across
//! thread counts, shard counts, and kill/resume boundaries. Anything that
//! imports ambient nondeterminism — hash-randomized containers, wall
//! clocks, unmanaged threads, OS randomness — can silently break that, so
//! in the deterministic crates (`cache`, `common`, `core`, `sim`,
//! `workloads`) these identifiers are denied outright and every remaining
//! use must carry an audited `lint:allow` waiver:
//!
//! | rule                 | denied identifiers                                |
//! |----------------------|---------------------------------------------------|
//! | `nondeterministic_map` | `HashMap`, `HashSet`, `RandomState`, `DefaultHasher`, `hash_map`, `hash_set` |
//! | `wall_clock`         | `Instant`, `SystemTime`                           |
//! | `thread_spawn`       | `spawn`                                           |
//! | `ambient_randomness` | `thread_rng`, `getrandom`, `rand`, `from_entropy` |
//!
//! Test modules are stripped before this pass runs: assertions may hash
//! freely. `sim::parallel` / `sim::shard` hold the audited waivers for the
//! sweep driver's threads and timers — the wall clock there feeds stderr
//! progress only, never simulated state.

use crate::lexer::Tok;
use crate::model::{Finding, Parsed};

/// Crates whose non-test code must be deterministic.
pub const DETERMINISTIC_CRATES: [&str; 5] = ["cache", "common", "core", "sim", "workloads"];

const RULES: [(&str, &[&str]); 4] = [
    (
        "nondeterministic_map",
        &[
            "HashMap",
            "HashSet",
            "RandomState",
            "DefaultHasher",
            "hash_map",
            "hash_set",
        ],
    ),
    ("wall_clock", &["Instant", "SystemTime"]),
    ("thread_spawn", &["spawn"]),
    (
        "ambient_randomness",
        &["thread_rng", "getrandom", "rand", "from_entropy"],
    ),
];

pub fn run(p: &Parsed, used: &mut [bool], out: &mut Vec<Finding>) {
    for (fi, pf) in p.files.iter().enumerate() {
        if !DETERMINISTIC_CRATES.contains(&pf.src.krate.as_str()) {
            continue;
        }
        // One finding per (rule, line): two `HashMap`s on a line are one
        // violation to fix, and fixture tests assert exactly-once firing.
        let mut last: Option<(&'static str, u32)> = None;
        for s in &pf.toks {
            let Tok::Ident(id) = &s.tok else { continue };
            let Some(rule) = RULES
                .iter()
                .find(|(_, ids)| ids.contains(&id.as_str()))
                .map(|(r, _)| *r)
            else {
                continue;
            };
            if last == Some((rule, s.line)) {
                continue;
            }
            last = Some((rule, s.line));
            let waived_by = p.match_waiver(used, fi, rule, s.line, None, None);
            out.push(Finding {
                rule,
                file: pf.src.path.clone(),
                line: s.line,
                message: format!(
                    "`{id}` is nondeterministic ({rule}) in deterministic crate `{}`",
                    pf.src.krate
                ),
                waived_by,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{SourceFile, Workspace};

    fn findings(krate: &str, src: &str) -> Vec<Finding> {
        let p = Parsed::build(&Workspace {
            files: vec![SourceFile {
                krate: krate.into(),
                path: format!("crates/{krate}/src/lib.rs"),
                text: src.into(),
            }],
        });
        let mut used = vec![false; p.waivers.len()];
        let mut out = Vec::new();
        run(&p, &mut used, &mut out);
        out
    }

    #[test]
    fn hashmap_fires_in_deterministic_crate_only() {
        let f = findings("core", "use std::collections::HashMap;\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "nondeterministic_map");
        assert!(f[0].waived_by.is_none());
        assert!(findings("lint", "use std::collections::HashMap;\n").is_empty());
    }

    #[test]
    fn waiver_suppresses_and_is_marked_used() {
        let p = Parsed::build(&Workspace {
            files: vec![SourceFile {
                krate: "sim".into(),
                path: "x.rs".into(),
                text: "// lint:allow(wall_clock, progress display only)\nlet t = Instant::now();\n"
                    .into(),
            }],
        });
        let mut used = vec![false; p.waivers.len()];
        let mut out = Vec::new();
        run(&p, &mut used, &mut out);
        assert_eq!(out.len(), 1);
        assert!(out[0].waived_by.is_some());
        assert!(used[0]);
    }

    #[test]
    fn test_modules_do_not_fire() {
        let f = findings(
            "cache",
            "struct A;\n#[cfg(test)]\nmod tests { use std::collections::HashSet; }\n",
        );
        assert!(f.is_empty());
    }
}
