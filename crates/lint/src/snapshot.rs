//! Pass 2: snapshot-completeness checker.
//!
//! Kill-and-resume byte-identity (DESIGN.md §9) dies quietly when a new
//! field is added to checkpointed state but not to its `snap`/`unsnap`
//! pair. This pass finds every struct that participates in snapshotting —
//! an impl providing `snap`, `unsnap`, `snapshot_with`, `restore_with`,
//! or the `PausedRun::{checkpoint, restore}` entry points — and requires
//! each declared field of the struct to be *referenced* in the body of
//! each such function (transitively through same-type helper methods, so
//! `Stats::snap` delegating to `Stats::scalar_fields()` counts).
//!
//! Reference-not-serialization is deliberately the bar: a field mentioned
//! in the body was at least thought about, and the existing checkpoint
//! parity tests catch value-level mistakes. A field that is intentionally
//! not captured (e.g. `PausedRun::fx`, empty at every pause boundary)
//! takes a field-scoped waiver:
//!
//! ```text
//! // lint:allow(snapshot_complete(fx), drained before every pause)
//! ```

use crate::lexer::Tok;
use crate::model::{Finding, FnDef, Parsed};

pub const RULE: &str = "snapshot_complete";

/// Method names whose bodies must cover every field of their self type.
const SNAP_FNS: [&str; 4] = ["snap", "unsnap", "snapshot_with", "restore_with"];
/// `(self_ty, fn)` pairs pulled in by name because the generic names
/// (`restore` collides with the protocol's `MemorySide::restore`) cannot
/// be matched globally.
const SPECIAL_FNS: [(&str, &str); 2] = [("PausedRun", "checkpoint"), ("PausedRun", "restore")];

pub fn run(p: &Parsed, used: &mut [bool], out: &mut Vec<Finding>) {
    for f in &p.fns {
        let special = SPECIAL_FNS.contains(&(f.self_ty.as_str(), f.name.as_str()));
        if !special && !SNAP_FNS.contains(&f.name.as_str()) {
            continue;
        }
        if f.self_ty.is_empty() {
            continue;
        }
        let krate = &p.files[f.file].src.krate;
        // Resolve the struct: same crate first, then anywhere.
        let Some(sd) = p
            .structs
            .iter()
            .find(|s| s.name == f.self_ty && &p.files[s.file].src.krate == krate)
            .or_else(|| p.structs.iter().find(|s| s.name == f.self_ty))
        else {
            continue; // impl for a foreign/generic type; nothing to check
        };
        let refs = body_idents_transitive(p, f);
        for (field, _) in &sd.fields {
            if refs.contains(field) {
                continue;
            }
            let waived_by = p.match_waiver(
                used,
                f.file,
                RULE,
                f.line,
                Some((f.line, f.end_line)),
                Some(field),
            );
            out.push(Finding {
                rule: RULE,
                file: p.files[f.file].src.path.clone(),
                line: f.line,
                message: format!(
                    "field `{field}` of `{}` is not referenced in `{}::{}` — snapshot coverage is incomplete",
                    sd.name, f.self_ty, f.name
                ),
                waived_by,
            });
        }
    }
}

/// Identifiers appearing in `f`'s body, plus those of any same-type
/// method it names (transitively). Restricting helpers to the same self
/// type stops an unrelated `other.snap()` call from masking coverage.
fn body_idents_transitive(p: &Parsed, f: &FnDef) -> Vec<String> {
    let mut seen_fns: Vec<(usize, usize)> = Vec::new(); // (file, body start)
    let mut stack: Vec<&FnDef> = vec![f];
    let mut idents: Vec<String> = Vec::new();
    while let Some(cur) = stack.pop() {
        if seen_fns.contains(&(cur.file, cur.body.0)) {
            continue;
        }
        seen_fns.push((cur.file, cur.body.0));
        let toks = &p.files[cur.file].toks;
        for s in &toks[cur.body.0..cur.body.1] {
            let Tok::Ident(id) = &s.tok else { continue };
            if !idents.contains(id) {
                idents.push(id.clone());
            }
            // Same-type helper (possibly in another file of the crate).
            for g in &p.fns {
                if g.name == *id
                    && g.self_ty == f.self_ty
                    && p.files[g.file].src.krate == p.files[f.file].src.krate
                    && !seen_fns.contains(&(g.file, g.body.0))
                {
                    stack.push(g);
                }
            }
        }
    }
    idents
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Parsed, SourceFile, Workspace};

    fn check(src: &str) -> (Vec<Finding>, Vec<bool>) {
        let p = Parsed::build(&Workspace {
            files: vec![SourceFile {
                krate: "sim".into(),
                path: "x.rs".into(),
                text: src.into(),
            }],
        });
        let mut used = vec![false; p.waivers.len()];
        let mut out = Vec::new();
        run(&p, &mut used, &mut out);
        (out, used)
    }

    #[test]
    fn missing_field_is_caught() {
        let (f, _) = check(
            "struct St { a: u64, b: u64 }\nimpl St { fn snap(&self, w: &mut W) { w.u64(self.a); } }",
        );
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("`b`"));
        assert!(f[0].waived_by.is_none());
    }

    #[test]
    fn helper_delegation_counts() {
        let (f, _) = check(
            "struct St { a: u64, b: u64 }\nimpl St {\n fn both(&self) { self.a; self.b; }\n fn snap(&self, w: &mut W) { self.both(); }\n}",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn field_waiver_suppresses_only_named_field() {
        let (f, used) = check(
            "struct St { a: u64, b: u64, c: u64 }\nimpl St {\n // lint:allow(snapshot_complete(b), derived on restore)\n fn snap(&self, w: &mut W) { w.u64(self.a); }\n}",
        );
        assert_eq!(f.len(), 2);
        let b = f.iter().find(|x| x.message.contains("`b`")).unwrap();
        let c = f.iter().find(|x| x.message.contains("`c`")).unwrap();
        assert!(b.waived_by.is_some());
        assert!(c.waived_by.is_none());
        assert!(used[0]);
    }

    #[test]
    fn paused_run_checkpoint_is_special_cased() {
        let (f, _) = check(
            "struct PausedRun { sim: S, fx: F }\nimpl PausedRun { fn checkpoint(&self, w: &mut W) { self.sim.snap(w); } }",
        );
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("`fx`"));
    }

    #[test]
    fn plain_restore_on_other_types_is_ignored() {
        let (f, _) = check("struct Mem { a: u64 }\nimpl Mem { fn restore(&mut self) { } }");
        assert!(f.is_empty());
    }
}
