//! Workspace model: source files, parsed items, findings, and waivers.
//!
//! # Waiver syntax
//!
//! A finding is suppressed by an inline waiver that *must* carry a reason:
//!
//! ```text
//! // lint:allow(<rule>, <reason>)
//! // lint:allow(snapshot_complete(field_a, field_b), <reason>)
//! ```
//!
//! A waiver covers the line it sits on, the next code line below a
//! contiguous comment block, or — for function-scoped rules such as
//! `snapshot_complete` — the whole function it precedes or sits inside.
//! Waivers without a reason, and waivers that suppress nothing, are
//! findings themselves (`waiver_no_reason`, `waiver_unused`).

use crate::lexer::{self, Spanned, Tok};

/// One source file handed to the analyzer.
#[derive(Clone, Debug)]
pub struct SourceFile {
    /// Workspace crate the file belongs to (`"core"`, `"sim"`, …).
    pub krate: String,
    /// Path, repo-relative, for reporting.
    pub path: String,
    /// Full source text.
    pub text: String,
}

/// The set of files under analysis. Built from disk by the binary, or from
/// in-memory sources by the fixture and mutation tests.
#[derive(Clone, Debug, Default)]
pub struct Workspace {
    pub files: Vec<SourceFile>,
}

/// A parsed `lint:allow(rule, reason)` waiver.
#[derive(Clone, Debug)]
pub struct Waiver {
    pub file: usize,
    pub line: u32,
    /// Rule name (`nondeterministic_map`, `snapshot_complete`, …).
    pub rule: String,
    /// Optional rule arguments (`snapshot_complete(fx)` → `["fx"]`).
    pub args: Vec<String>,
    /// Justification text after the rule. Empty = `waiver_no_reason`.
    pub reason: String,
    /// First code line at or below the waiver (what it covers).
    pub covers_line: u32,
}

/// A named-field struct definition.
#[derive(Clone, Debug)]
pub struct StructDef {
    pub file: usize,
    pub name: String,
    pub line: u32,
    /// Field `(name, line)` pairs, declaration order.
    pub fields: Vec<(String, u32)>,
}

/// A function parsed out of an `impl` block (or free-standing).
#[derive(Clone, Debug)]
pub struct FnDef {
    pub file: usize,
    /// `impl` self type, or empty for free functions.
    pub self_ty: String,
    pub name: String,
    pub line: u32,
    pub end_line: u32,
    /// Body token indices into the file's token stream (brace-exclusive).
    pub body: (usize, usize),
}

/// A file after lexing and item extraction.
#[derive(Debug)]
pub struct ParsedFile {
    pub src: SourceFile,
    /// Token stream with `#[cfg(test)] mod` regions removed.
    pub toks: Vec<Spanned>,
}

/// The parsed workspace all passes run over.
#[derive(Debug, Default)]
pub struct Parsed {
    pub files: Vec<ParsedFile>,
    pub waivers: Vec<Waiver>,
    pub structs: Vec<StructDef>,
    pub fns: Vec<FnDef>,
}

/// One rule violation.
#[derive(Clone, Debug)]
pub struct Finding {
    pub rule: &'static str,
    pub file: String,
    pub line: u32,
    pub message: String,
    /// Index of the waiver that suppressed it, if any.
    pub waived_by: Option<usize>,
}

impl Parsed {
    /// Lexes and indexes every file.
    pub fn build(ws: &Workspace) -> Parsed {
        let mut p = Parsed::default();
        for (fi, src) in ws.files.iter().enumerate() {
            let toks = lexer::strip_test_modules(&lexer::lex(&src.text));
            p.collect_waivers(fi, &toks);
            collect_structs(fi, &toks, &mut p.structs);
            collect_fns(fi, &toks, &mut p.fns);
            p.files.push(ParsedFile {
                src: src.clone(),
                toks,
            });
        }
        p
    }

    fn collect_waivers(&mut self, file: usize, toks: &[Spanned]) {
        for (i, s) in toks.iter().enumerate() {
            let Tok::Comment(text) = &s.tok else { continue };
            let Some(rest) = text.strip_prefix("lint:allow(") else {
                continue;
            };
            let (rule_part, reason) = split_waiver(rest);
            let (rule, args) = split_rule_args(&rule_part);
            // The first *code* token line at or below the waiver.
            let covers_line = toks[i + 1..]
                .iter()
                .find(|t| !matches!(t.tok, Tok::Comment(_)))
                .map(|t| t.line)
                .unwrap_or(s.line);
            self.waivers.push(Waiver {
                file,
                line: s.line,
                rule,
                args,
                reason,
                covers_line,
            });
        }
    }

    /// Finds a matching waiver for a finding at `line` in `file` and marks
    /// it used, returning its index. `fn_span` widens the match to a whole
    /// function for function-scoped rules; `arg` must be listed in the
    /// waiver's arguments when the waiver has any.
    pub fn match_waiver(
        &self,
        used: &mut [bool],
        file: usize,
        rule: &str,
        line: u32,
        fn_span: Option<(u32, u32)>,
        arg: Option<&str>,
    ) -> Option<usize> {
        for (wi, w) in self.waivers.iter().enumerate() {
            if w.file != file || w.rule != rule {
                continue;
            }
            if let (Some(a), false) = (arg, w.args.is_empty()) {
                if !w.args.iter().any(|x| x == a) {
                    continue;
                }
            }
            let line_hit = w.line == line || w.covers_line == line;
            let span_hit = fn_span.is_some_and(|(lo, hi)| {
                (w.line >= lo && w.line <= hi) || (w.covers_line >= lo && w.covers_line <= hi)
            });
            if line_hit || span_hit {
                used[wi] = true;
                return Some(wi);
            }
        }
        None
    }
}

/// Splits `rule(args), reason…` → (`rule(args)`, `reason`), respecting the
/// parenthesis nesting of the rule arguments and the closing `)` of the
/// `lint:allow(…)` wrapper.
fn split_waiver(rest: &str) -> (String, String) {
    let mut depth = 0i32;
    for (i, c) in rest.char_indices() {
        match c {
            '(' => depth += 1,
            ')' if depth > 0 => depth -= 1,
            ')' => {
                // Closing the allow() wrapper with no reason present.
                return (rest[..i].trim().to_string(), String::new());
            }
            ',' if depth == 0 => {
                let reason = rest[i + 1..].trim().trim_end_matches(')').trim();
                return (rest[..i].trim().to_string(), reason.to_string());
            }
            _ => {}
        }
    }
    (
        rest.trim().trim_end_matches(')').trim().to_string(),
        String::new(),
    )
}

/// Splits `snapshot_complete(fx, log)` → (`snapshot_complete`, `[fx, log]`).
fn split_rule_args(rule_part: &str) -> (String, Vec<String>) {
    match rule_part.split_once('(') {
        None => (rule_part.to_string(), Vec::new()),
        Some((name, args)) => {
            let args = args
                .trim_end_matches(')')
                .split(',')
                .map(|a| a.trim().to_string())
                .filter(|a| !a.is_empty())
                .collect();
            (name.trim().to_string(), args)
        }
    }
}

fn collect_structs(file: usize, toks: &[Spanned], out: &mut Vec<StructDef>) {
    let code: Vec<(usize, &Spanned)> = toks
        .iter()
        .enumerate()
        .filter(|(_, s)| !matches!(s.tok, Tok::Comment(_)))
        .collect();
    let mut i = 0usize;
    while i < code.len() {
        let (_, s) = code[i];
        if s.tok != Tok::Ident("struct".into()) {
            i += 1;
            continue;
        }
        let Some(&(_, name_tok)) = code.get(i + 1) else {
            break;
        };
        let Tok::Ident(name) = &name_tok.tok else {
            i += 1;
            continue;
        };
        // Scan forward for `{` (named fields), `(` (tuple — skip), or `;`
        // (unit — skip), tolerating generics and where clauses.
        let mut j = i + 2;
        let mut angle = 0i32;
        let mut body_open: Option<usize> = None;
        while let Some(&(ti, t)) = code.get(j) {
            match &t.tok {
                Tok::Punct('<') => angle += 1,
                Tok::Punct('>') => angle -= 1,
                Tok::Punct('(') if angle == 0 => break, // tuple struct
                Tok::Punct(';') if angle == 0 => break, // unit struct
                Tok::Punct('{') if angle == 0 => {
                    body_open = Some(ti);
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        let Some(open) = body_open else {
            i += 1;
            continue;
        };
        let close = lexer::matching_brace(toks, open);
        let mut fields = Vec::new();
        // A field name is an ident directly followed by `:` at depth 1
        // (skipping attribute brackets and generic payloads).
        let mut depth = 0i32;
        let mut k = open;
        while k < close {
            match &toks[k].tok {
                Tok::Punct('{') | Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('<') => depth += 1,
                Tok::Punct('}') | Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('>') => depth -= 1,
                Tok::Ident(id) if depth == 1 => {
                    let next_code = toks[k + 1..close]
                        .iter()
                        .find(|t| !matches!(t.tok, Tok::Comment(_)));
                    let prev_ok = !matches!(
                        prev_code(toks, k).map(|t| &t.tok),
                        Some(Tok::Punct(':')) | Some(Tok::Punct('<'))
                    );
                    if prev_ok
                        && next_code.map(|t| &t.tok) == Some(&Tok::Punct(':'))
                        && toks.get(k + 2).map(|t| &t.tok) != Some(&Tok::Punct(':'))
                        && id != "pub"
                        && id != "crate"
                    {
                        fields.push((id.clone(), toks[k].line));
                    }
                }
                _ => {}
            }
            k += 1;
        }
        // `Type: bound` pairs inside generics sit at depth ≥ 2, and
        // `path::seg` is rejected by the double-colon check above, so the
        // depth-1 `ident:` survivors are exactly the named fields.
        out.push(StructDef {
            file,
            name: name.clone(),
            line: name_tok.line,
            fields,
        });
        i += 1;
    }
}

fn prev_code(toks: &[Spanned], k: usize) -> Option<&Spanned> {
    toks[..k]
        .iter()
        .rev()
        .find(|t| !matches!(t.tok, Tok::Comment(_)))
}

fn collect_fns(file: usize, toks: &[Spanned], out: &mut Vec<FnDef>) {
    // Walk top-level items; descend into `impl`/`mod` blocks tracking the
    // current self type. Function bodies are recorded but not descended
    // into (closures and nested fns belong to their parent's body).
    walk_items(file, toks, 0, toks.len(), "", out);
}

fn walk_items(
    file: usize,
    toks: &[Spanned],
    lo: usize,
    hi: usize,
    self_ty: &str,
    out: &mut Vec<FnDef>,
) {
    let mut i = lo;
    while i < hi {
        match &toks[i].tok {
            Tok::Ident(k) if k == "impl" => {
                let (ty, open) = impl_self_type(toks, i, hi);
                match open {
                    Some(open) => {
                        let close = lexer::matching_brace(toks, open);
                        walk_items(file, toks, open + 1, close, &ty, out);
                        i = close + 1;
                    }
                    None => i += 1,
                }
            }
            Tok::Ident(k) if k == "mod" => {
                // `mod name { … }` — descend with the same self type (none).
                let mut j = i + 1;
                while j < hi && !matches!(toks[j].tok, Tok::Punct('{') | Tok::Punct(';')) {
                    j += 1;
                }
                if j < hi && matches!(toks[j].tok, Tok::Punct('{')) {
                    let close = lexer::matching_brace(toks, j);
                    walk_items(file, toks, j + 1, close, "", out);
                    i = close + 1;
                } else {
                    i = j + 1;
                }
            }
            Tok::Ident(k) if k == "fn" => {
                let Some(name_tok) = toks.get(i + 1) else {
                    break;
                };
                let Tok::Ident(name) = &name_tok.tok else {
                    i += 1;
                    continue;
                };
                // Find the body `{`, skipping the signature. `;` and `{`
                // only terminate at bracket depth 0 — `-> [u64; 34]` and
                // `fn(&T)` parameters nest them.
                let mut j = i + 2;
                let mut depth = 0i32;
                while j < hi {
                    match toks[j].tok {
                        Tok::Punct('(') | Tok::Punct('[') => depth += 1,
                        Tok::Punct(')') | Tok::Punct(']') => depth -= 1,
                        Tok::Punct('{') | Tok::Punct(';') if depth == 0 => break,
                        _ => {}
                    }
                    j += 1;
                }
                if j < hi && matches!(toks[j].tok, Tok::Punct('{')) {
                    let close = lexer::matching_brace(toks, j);
                    out.push(FnDef {
                        file,
                        self_ty: self_ty.to_string(),
                        name: name.clone(),
                        line: name_tok.line,
                        end_line: toks[close].line,
                        body: (j + 1, close),
                    });
                    i = close + 1;
                } else {
                    i = j + 1; // trait method signature
                }
            }
            _ => i += 1,
        }
    }
}

/// Extracts the self type of an `impl` item starting at `i` and the index
/// of its opening `{`. Handles `impl<T> Ty<T>`, `impl Trait for Ty`, and
/// `impl fmt::Display for Ty`.
fn impl_self_type(toks: &[Spanned], i: usize, hi: usize) -> (String, Option<usize>) {
    let mut j = i + 1;
    let mut angle = 0i32;
    let mut after_for = false;
    let mut last_ident_pre_for: Option<String> = None;
    let mut last_ident_post_for: Option<String> = None;
    while j < hi {
        match &toks[j].tok {
            Tok::Punct('<') => angle += 1,
            Tok::Punct('>') => angle -= 1,
            Tok::Ident(k) if k == "for" && angle == 0 => after_for = true,
            Tok::Ident(k) if k == "where" && angle == 0 => {
                // where-clause: the self type is already decided.
                while j < hi && !matches!(toks[j].tok, Tok::Punct('{')) {
                    j += 1;
                }
                continue;
            }
            Tok::Ident(k) if angle == 0 => {
                if after_for {
                    last_ident_post_for = Some(k.clone());
                } else {
                    last_ident_pre_for = Some(k.clone());
                }
            }
            Tok::Punct('{') if angle == 0 => {
                let ty = last_ident_post_for
                    .or(last_ident_pre_for)
                    .unwrap_or_default();
                return (ty, Some(j));
            }
            _ => {}
        }
        j += 1;
    }
    (String::new(), None)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_one(src: &str) -> Parsed {
        Parsed::build(&Workspace {
            files: vec![SourceFile {
                krate: "x".into(),
                path: "x.rs".into(),
                text: src.into(),
            }],
        })
    }

    #[test]
    fn struct_fields_are_extracted() {
        let p = parse_one(
            "pub struct Foo<T: Clone> where T: Copy {\n    pub a: u64,\n    b: Vec<(u8, u8)>,\n    pub(crate) c: T,\n}\nstruct Unit;\nstruct Tup(u64);",
        );
        assert_eq!(p.structs.len(), 1);
        let f: Vec<_> = p.structs[0]
            .fields
            .iter()
            .map(|(n, _)| n.as_str())
            .collect();
        assert_eq!(f, vec!["a", "b", "c"]);
    }

    #[test]
    fn impl_fns_are_attributed() {
        let p = parse_one(
            "impl Foo { fn snap(&self) { self.a; } }\nimpl fmt::Display for Bar { fn fmt(&self) {} }\nfn free() {}",
        );
        let names: Vec<_> = p
            .fns
            .iter()
            .map(|f| (f.self_ty.as_str(), f.name.as_str()))
            .collect();
        assert!(names.contains(&("Foo", "snap")));
        assert!(names.contains(&("Bar", "fmt")));
        assert!(names.contains(&("", "free")));
    }

    #[test]
    fn waivers_parse_rule_args_and_reason() {
        let p = parse_one(
            "// lint:allow(snapshot_complete(fx, log), empty at pause boundaries)\nfn x() {}\n// lint:allow(wall_clock)\nlet t = 1;",
        );
        assert_eq!(p.waivers.len(), 2);
        assert_eq!(p.waivers[0].rule, "snapshot_complete");
        assert_eq!(p.waivers[0].args, vec!["fx", "log"]);
        assert_eq!(p.waivers[0].reason, "empty at pause boundaries");
        assert_eq!(p.waivers[0].covers_line, 2);
        assert_eq!(p.waivers[1].rule, "wall_clock");
        assert!(p.waivers[1].reason.is_empty());
    }
}
