//! A minimal Rust lexer for the static-analysis passes.
//!
//! `syn` is deliberately not used: the workspace builds offline with zero
//! external crates, and the three passes only need a token stream with
//! comments preserved — identifiers, punctuation, and line comments, with
//! string/char literals and block comments stripped (their contents must
//! never look like code or waivers). The lexer also understands just enough
//! structure to skip `#[cfg(test)] mod … { … }` regions, so test-only code
//! (which may freely use `HashSet` in assertions) is invisible to the
//! determinism rules.

/// One lexical token, tagged with its 1-based source line.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Tok {
    /// An identifier or keyword (`struct`, `HashMap`, `snap`, …).
    Ident(String),
    /// A single punctuation character (`{`, `(`, `:`, `#`, …).
    Punct(char),
    /// The text of a `//` line comment, leading slashes and one space
    /// stripped (doc comments included; block comments are discarded).
    Comment(String),
}

/// A token plus its source line.
#[derive(Clone, Debug)]
pub struct Spanned {
    pub tok: Tok,
    pub line: u32,
}

/// Lexes `src` into a token stream. Never fails: unknown bytes are skipped,
/// and an unterminated literal simply consumes the rest of the file (the
/// workspace it runs on is already compiler-checked).
pub fn lex(src: &str) -> Vec<Spanned> {
    let b: Vec<char> = src.chars().collect();
    let mut out = Vec::with_capacity(src.len() / 4);
    let mut i = 0usize;
    let mut line = 1u32;
    while i < b.len() {
        let c = b[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            '/' if b.get(i + 1) == Some(&'/') => {
                let start = i;
                while i < b.len() && b[i] != '\n' {
                    i += 1;
                }
                let text: String = b[start..i].iter().collect();
                let trimmed = text.trim_start_matches('/').trim();
                out.push(Spanned {
                    tok: Tok::Comment(trimmed.to_string()),
                    line,
                });
            }
            '/' if b.get(i + 1) == Some(&'*') => {
                // Nested block comments, contents discarded.
                let mut depth = 1;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == '\n' {
                        line += 1;
                    }
                    if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            '"' => {
                i = skip_string(&b, i, &mut line);
            }
            'r' | 'b' if is_raw_string_start(&b, i) => {
                i = skip_raw_string(&b, i, &mut line);
            }
            '\'' => {
                // Char literal vs lifetime: a lifetime is `'` + ident with no
                // closing quote right after one symbol (or an escape).
                if b.get(i + 1) == Some(&'\\') {
                    // Escaped char literal: skip to closing quote.
                    i += 2;
                    while i < b.len() && b[i] != '\'' {
                        i += 1;
                    }
                    i += 1;
                } else if b.get(i + 2) == Some(&'\'') {
                    i += 3; // plain char literal 'x'
                } else {
                    i += 1; // lifetime tick; the ident lexes next
                }
            }
            _ if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < b.len() && (b[i].is_alphanumeric() || b[i] == '_') {
                    i += 1;
                }
                let ident: String = b[start..i].iter().collect();
                // `b"…"` / `r"…"` prefixes were handled above; anything else
                // alphanumeric is an ident or keyword.
                out.push(Spanned {
                    tok: Tok::Ident(ident),
                    line,
                });
            }
            _ if c.is_ascii_digit() => {
                // Numeric literal (including 0x…, 1_000u64, 1.5e3): skipped —
                // no pass cares about numbers.
                while i < b.len() && (b[i].is_alphanumeric() || b[i] == '_' || b[i] == '.') {
                    // `1..4` range: stop before a second consecutive dot.
                    if b[i] == '.' && b.get(i + 1) == Some(&'.') {
                        break;
                    }
                    i += 1;
                }
            }
            _ if c.is_whitespace() => {
                i += 1;
            }
            _ => {
                out.push(Spanned {
                    tok: Tok::Punct(c),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

fn is_raw_string_start(b: &[char], i: usize) -> bool {
    // r"…", r#"…"#, br"…", b"…" — only when the quote actually follows.
    let mut j = i;
    if b[j] == 'b' {
        j += 1;
    }
    if b.get(j) == Some(&'r') {
        j += 1;
        while b.get(j) == Some(&'#') {
            j += 1;
        }
        return b.get(j) == Some(&'"');
    }
    // b"…" plain byte string.
    b[i] == 'b' && b.get(i + 1) == Some(&'"')
}

fn skip_string(b: &[char], mut i: usize, line: &mut u32) -> usize {
    i += 1; // opening quote
    while i < b.len() {
        match b[i] {
            '\\' => i += 2,
            '"' => return i + 1,
            '\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

fn skip_raw_string(b: &[char], mut i: usize, line: &mut u32) -> usize {
    if b[i] == 'b' {
        i += 1;
    }
    if b.get(i) == Some(&'r') {
        i += 1;
    }
    let mut hashes = 0;
    while b.get(i) == Some(&'#') {
        hashes += 1;
        i += 1;
    }
    if b.get(i) != Some(&'"') {
        // Plain b"…" byte string.
        return skip_string(b, i, line);
    }
    i += 1;
    while i < b.len() {
        if b[i] == '\n' {
            *line += 1;
        }
        if b[i] == '"' {
            let mut j = i + 1;
            let mut seen = 0;
            while seen < hashes && b.get(j) == Some(&'#') {
                seen += 1;
                j += 1;
            }
            if seen == hashes {
                return j;
            }
        }
        i += 1;
    }
    i
}

/// Returns a copy of `toks` with every `#[cfg(test)] mod … { … }` region
/// removed (attribute, item, and body). Code under test gates may freely
/// use nondeterministic containers for assertions.
pub fn strip_test_modules(toks: &[Spanned]) -> Vec<Spanned> {
    let mut out = Vec::with_capacity(toks.len());
    let mut i = 0usize;
    while i < toks.len() {
        if let Some(end) = test_module_end(toks, i) {
            i = end;
            continue;
        }
        out.push(toks[i].clone());
        i += 1;
    }
    out
}

/// If `toks[i]` starts `#[cfg(test)]` (possibly followed by more attributes)
/// introducing a `mod` item, returns the index one past the module's closing
/// brace.
fn test_module_end(toks: &[Spanned], i: usize) -> Option<usize> {
    if !matches!(toks[i].tok, Tok::Punct('#')) {
        return None;
    }
    // Match `# [ cfg ( test ) ]` exactly.
    let pat = [
        Tok::Punct('['),
        Tok::Ident("cfg".into()),
        Tok::Punct('('),
        Tok::Ident("test".into()),
        Tok::Punct(')'),
        Tok::Punct(']'),
    ];
    let mut j = i + 1;
    for p in &pat {
        if toks.get(j).map(|s| &s.tok) != Some(p) {
            return None;
        }
        j += 1;
    }
    // Skip any further attributes and comments, then require `mod ident {`.
    loop {
        match toks.get(j).map(|s| &s.tok) {
            Some(Tok::Comment(_)) => j += 1,
            Some(Tok::Punct('#')) => {
                j += 1;
                if toks.get(j).map(|s| &s.tok) != Some(&Tok::Punct('[')) {
                    return None;
                }
                let mut depth = 0i32;
                while let Some(s) = toks.get(j) {
                    match s.tok {
                        Tok::Punct('[') => depth += 1,
                        Tok::Punct(']') => {
                            depth -= 1;
                            if depth == 0 {
                                j += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
            }
            Some(Tok::Ident(k)) if k == "mod" => {
                j += 1;
                break;
            }
            _ => return None,
        }
    }
    // mod name ({ … } | ;)
    if !matches!(toks.get(j).map(|s| &s.tok), Some(Tok::Ident(_))) {
        return None;
    }
    j += 1;
    match toks.get(j).map(|s| &s.tok) {
        Some(Tok::Punct(';')) => Some(j + 1),
        Some(Tok::Punct('{')) => {
            let mut depth = 0i32;
            while let Some(s) = toks.get(j) {
                match s.tok {
                    Tok::Punct('{') => depth += 1,
                    Tok::Punct('}') => {
                        depth -= 1;
                        if depth == 0 {
                            return Some(j + 1);
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            Some(j)
        }
        _ => None,
    }
}

/// Finds the index of the matching closing brace for the opening brace at
/// `open` (which must be a `{`).
pub fn matching_brace(toks: &[Spanned], open: usize) -> usize {
    debug_assert!(matches!(toks[open].tok, Tok::Punct('{')));
    let mut depth = 0i32;
    let mut i = open;
    while i < toks.len() {
        match toks[i].tok {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
        i += 1;
    }
    toks.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter_map(|s| match s.tok {
                Tok::Ident(i) => Some(i),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_are_opaque() {
        let ids = idents(r##"let x = "HashMap in a string"; /* HashSet */ let y = r#"Instant"#;"##);
        assert_eq!(ids, vec!["let", "x", "let", "y"]);
    }

    #[test]
    fn line_comments_are_captured() {
        let toks = lex("a // lint:allow(foo, bar)\nb");
        let comments: Vec<_> = toks
            .iter()
            .filter_map(|s| match &s.tok {
                Tok::Comment(c) => Some((c.clone(), s.line)),
                _ => None,
            })
            .collect();
        assert_eq!(comments, vec![("lint:allow(foo, bar)".to_string(), 1)]);
    }

    #[test]
    fn lifetimes_do_not_eat_code() {
        let ids = idents("fn f<'a>(x: &'a HashMap) {}");
        assert!(ids.contains(&"HashMap".to_string()));
    }

    #[test]
    fn char_literals_are_skipped() {
        let ids = idents("let c = 'x'; let d = '\\n'; let e = HashSet;");
        assert!(ids.contains(&"HashSet".to_string()));
        assert!(!ids.contains(&"x".to_string()));
    }

    #[test]
    fn test_modules_are_stripped() {
        let src = "struct A; #[cfg(test)] mod tests { use std::collections::HashMap; } struct B;";
        let toks = strip_test_modules(&lex(src));
        let ids: Vec<_> = toks
            .iter()
            .filter_map(|s| match &s.tok {
                Tok::Ident(i) => Some(i.as_str()),
                _ => None,
            })
            .collect();
        assert!(ids.contains(&"A"));
        assert!(ids.contains(&"B"));
        assert!(!ids.contains(&"HashMap"));
    }

    #[test]
    fn raw_and_byte_strings() {
        let ids = idents(r#"let a = b"Instant"; let r = rand_free;"#);
        assert_eq!(ids, vec!["let", "a", "let", "r", "rand_free"]);
    }

    #[test]
    fn matching_brace_finds_partner() {
        let toks = lex("fn f() { if x { y } z }");
        let open = toks
            .iter()
            .position(|s| matches!(s.tok, Tok::Punct('{')))
            .unwrap();
        let close = matching_brace(&toks, open);
        assert!(matches!(toks[close].tok, Tok::Punct('}')));
        assert_eq!(close, toks.len() - 1);
    }
}
