//! `zerodev-lint` — workspace static analysis for the ZeroDEV simulator.
//!
//! Three passes over a [`model::Workspace`] (a set of in-memory source
//! files, so tests can feed mutated sources):
//!
//! 1. [`determinism`] — deny ambient nondeterminism in the deterministic
//!    crates (hash-randomized containers, wall clocks, raw threads,
//!    OS randomness), with audited inline waivers.
//! 2. [`snapshot`] — field-for-field coverage of every snapshotting
//!    struct, so an unserialized new field fails CI instead of breaking
//!    kill-and-resume byte-identity at soak time.
//! 3. [`protocol_graph`] — extract the `MsgClass` consumes→emits graph
//!    from the annotated flows and verify deadlock-freedom: vnet-monotone
//!    edges, per-rank acyclicity, full producer/consumer coverage.
//!
//! Rule catalog, waiver grammar, and the audited `DenfNack → Request`
//! retry edge are documented in DESIGN.md §12.

pub mod determinism;
pub mod lexer;
pub mod model;
pub mod protocol_graph;
pub mod report;
pub mod snapshot;

pub use model::{SourceFile, Workspace};
pub use report::Report;

/// Runs all three passes plus waiver accounting over `ws`.
pub fn analyze(ws: &Workspace) -> Report {
    let p = model::Parsed::build(ws);
    let mut used = vec![false; p.waivers.len()];
    let mut findings = Vec::new();
    determinism::run(&p, &mut used, &mut findings);
    snapshot::run(&p, &mut used, &mut findings);
    let graph = protocol_graph::run(&p, &mut used, &mut findings);
    let mut report = Report {
        findings,
        waivers: Vec::new(),
        graph,
    };
    report.add_waiver_findings(&p, &used);
    report
        .findings
        .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waiver_meta_findings_fire() {
        let ws = Workspace {
            files: vec![SourceFile {
                krate: "core".into(),
                path: "x.rs".into(),
                text: "// lint:allow(wall_clock)\nlet t = Instant::now();\n// lint:allow(thread_spawn, justified but nothing here)\nlet u = 1;\n".into(),
            }],
        };
        let r = analyze(&ws);
        assert!(r.findings.iter().any(|f| f.rule == "waiver_no_reason"));
        assert!(r.findings.iter().any(|f| f.rule == "waiver_unused"));
        // The Instant finding itself is waived (reasonless waivers still
        // suppress — the missing reason is its own finding).
        let wc = r.findings.iter().find(|f| f.rule == "wall_clock").unwrap();
        assert!(wc.waived_by.is_some());
        assert_eq!(r.unwaived().count(), 2);
    }
}
