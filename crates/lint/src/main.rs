//! CLI: `zerodev-lint [--root DIR] [--json PATH] [--dot PATH]`
//!
//! Scans `crates/*/src/**/*.rs` under the workspace root (the lint crate
//! itself excluded — its docs quote waiver syntax), runs the three
//! analysis passes, prints a summary, and exits nonzero when any
//! un-waived finding remains. `--json` / `--dot` write the machine
//! artifacts CI uploads.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use zerodev_lint::{analyze, SourceFile, Workspace};

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json: Option<PathBuf> = None;
    let mut dot: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = |name: &str| {
            args.next()
                .unwrap_or_else(|| die(&format!("{name} needs a value")))
        };
        match a.as_str() {
            "--root" => root = PathBuf::from(val("--root")),
            "--json" => json = Some(PathBuf::from(val("--json"))),
            "--dot" => dot = Some(PathBuf::from(val("--dot"))),
            "--help" | "-h" => {
                println!("usage: zerodev-lint [--root DIR] [--json PATH] [--dot PATH]");
                return ExitCode::SUCCESS;
            }
            other => die(&format!("unknown argument `{other}`")),
        }
    }

    let ws = match load_workspace(&root) {
        Ok(ws) => ws,
        Err(e) => die(&format!("cannot load workspace at {}: {e}", root.display())),
    };
    if ws.files.is_empty() {
        die(&format!(
            "no crates/*/src/**/*.rs found under {} — wrong --root?",
            root.display()
        ));
    }
    let report = analyze(&ws);
    print!("{}", report.render_text());
    if let Some(p) = json {
        write_artifact(&p, &report.to_json());
    }
    if let Some(p) = dot {
        write_artifact(&p, &report.to_dot());
    }
    if report.unwaived().count() > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn die(msg: &str) -> ! {
    eprintln!("zerodev-lint: {msg}");
    std::process::exit(2);
}

fn write_artifact(path: &Path, content: &str) {
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    if let Err(e) = std::fs::write(path, content) {
        die(&format!("cannot write {}: {e}", path.display()));
    }
}

/// Collects every non-test source file of every workspace crate except
/// the lint crate itself. Crate identity is the `crates/<name>` directory
/// name (matching the determinism pass's crate list).
fn load_workspace(root: &Path) -> std::io::Result<Workspace> {
    let mut ws = Workspace::default();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        let name = dir
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        if name == "lint" {
            continue;
        }
        let src = dir.join("src");
        if src.is_dir() {
            collect_rs(&src, &name, root, &mut ws)?;
        }
    }
    ws.files.sort_by(|a, b| a.path.cmp(&b.path));
    Ok(ws)
}

fn collect_rs(dir: &Path, krate: &str, root: &Path, ws: &mut Workspace) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            collect_rs(&p, krate, root, ws)?;
        } else if p.extension().and_then(|e| e.to_str()) == Some("rs") {
            let rel = p
                .strip_prefix(root)
                .unwrap_or(&p)
                .to_string_lossy()
                .into_owned();
            ws.files.push(SourceFile {
                krate: krate.to_string(),
                path: rel,
                text: std::fs::read_to_string(&p)?,
            });
        }
    }
    Ok(())
}
