//! 2D-mesh on-chip interconnect model.
//!
//! Table I of the paper specifies a 2D mesh with 1-cycle routing delay and
//! 1-cycle link latency per hop. The model computes message latency from the
//! XY-routed Manhattan hop count plus flit serialisation, and tracks
//! byte-hop load for diagnostics. Inter-socket links are modelled by the
//! fixed 20 ns routing delay in `SystemConfig::inter_socket_cycles`.
//!
//! # Example
//!
//! ```
//! use zerodev_noc::{Mesh, SocketTopology};
//! use zerodev_common::config::NocConfig;
//!
//! let topo = SocketTopology::new(8, 8, 2, NocConfig::default());
//! let lat = topo.core_bank_latency(0, 7, 72);
//! assert!(lat > 0);
//! ```

use zerodev_common::config::NocConfig;

/// A node position in the mesh.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct NodeId(pub usize);

/// The mesh fabric of one socket.
#[derive(Clone, Debug)]
pub struct Mesh {
    cols: usize,
    rows: usize,
    cfg: NocConfig,
    /// Total byte-hops injected (load diagnostic).
    byte_hops: u64,
    /// Total messages routed.
    messages: u64,
}

impl Mesh {
    /// Creates a mesh with the given dimensions.
    ///
    /// # Panics
    /// Panics when either dimension is zero.
    pub fn new(cols: usize, rows: usize, cfg: NocConfig) -> Self {
        assert!(cols > 0 && rows > 0, "mesh dimensions must be positive");
        Mesh {
            cols,
            rows,
            cfg,
            byte_hops: 0,
            messages: 0,
        }
    }

    /// Picks near-square dimensions for `n` tiles (columns ≥ rows).
    pub fn square_for(n: usize) -> (usize, usize) {
        assert!(n > 0, "need at least one tile");
        let mut rows = (n as f64).sqrt() as usize;
        while rows > 1 && !n.is_multiple_of(rows) {
            rows -= 1;
        }
        (n / rows.max(1), rows.max(1))
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.cols * self.rows
    }

    fn pos(&self, n: NodeId) -> (usize, usize) {
        debug_assert!(n.0 < self.nodes(), "node in range");
        (n.0 % self.cols, n.0 / self.cols)
    }

    /// XY-routing hop count between two nodes.
    pub fn hops(&self, a: NodeId, b: NodeId) -> u64 {
        let (ax, ay) = self.pos(a);
        let (bx, by) = self.pos(b);
        (ax.abs_diff(bx) + ay.abs_diff(by)) as u64
    }

    /// One-way latency for a message of `bytes` from `a` to `b`, in core
    /// cycles: per-hop router+link delay plus flit serialisation. A
    /// same-node message still pays one router traversal.
    pub fn latency(&self, a: NodeId, b: NodeId, bytes: u64) -> u64 {
        let hops = self.hops(a, b).max(1);
        let flits = bytes.div_ceil(self.cfg.flit_bytes).max(1);
        hops * self.cfg.hop_cycles + (flits - 1)
    }

    /// Records a routed message for load accounting and returns its latency.
    /// The load counters saturate instead of wrapping: they are diagnostics,
    /// and long fault campaigns routing phantom traffic must never corrupt
    /// them into small-looking values.
    pub fn route(&mut self, a: NodeId, b: NodeId, bytes: u64) -> u64 {
        self.byte_hops = self
            .byte_hops
            .saturating_add(bytes.saturating_mul(self.hops(a, b).max(1)));
        self.messages = self.messages.saturating_add(1);
        self.latency(a, b, bytes)
    }

    /// Total byte-hops injected so far.
    pub fn byte_hops(&self) -> u64 {
        self.byte_hops
    }

    /// Total messages routed so far.
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Serializes the mutable mesh state (the load counters — geometry and
    /// timing are rebuilt from configuration) for checkpointing.
    // lint:allow(snapshot_complete(cols, rows, cfg), mesh geometry and link timing are configuration; only the load counters are mutable)
    pub fn snap(&self, w: &mut zerodev_common::snap::SnapWriter) {
        w.u64(self.byte_hops);
        w.u64(self.messages);
    }

    /// Restores a [`Mesh::snap`] image into this mesh.
    ///
    /// # Errors
    /// Propagates decode errors from the snapshot reader.
    // lint:allow(snapshot_complete(cols, rows, cfg), mesh geometry and link timing are configuration; only the load counters are mutable)
    pub fn unsnap(
        &mut self,
        r: &mut zerodev_common::snap::SnapReader<'_>,
    ) -> Result<(), zerodev_common::snap::SnapError> {
        self.byte_hops = r.u64("mesh byte_hops")?;
        self.messages = r.u64("mesh messages")?;
        Ok(())
    }
}

/// Placement of cores, LLC banks, and memory controllers on one socket's
/// mesh, with convenience latency queries.
///
/// Cores occupy tiles round-robin; bank *i* sits with core *i·cores/banks*
/// (co-located tiles, the common tiled-CMP arrangement); memory controllers
/// sit at mesh corners.
#[derive(Clone, Debug)]
pub struct SocketTopology {
    mesh: Mesh,
    cores: Vec<NodeId>,
    banks: Vec<NodeId>,
    mcs: Vec<NodeId>,
}

impl SocketTopology {
    /// Builds the topology for `cores` cores, `banks` LLC banks and
    /// `channels` memory controllers.
    ///
    /// # Panics
    /// Panics if any count is zero.
    pub fn new(cores: usize, banks: usize, channels: usize, cfg: NocConfig) -> Self {
        assert!(
            cores > 0 && banks > 0 && channels > 0,
            "counts must be positive"
        );
        let (cols, rows) = Mesh::square_for(cores.max(banks));
        let mesh = Mesh::new(cols, rows, cfg);
        let n = mesh.nodes();
        let core_nodes: Vec<NodeId> = (0..cores).map(|i| NodeId(i % n)).collect();
        let bank_nodes: Vec<NodeId> = (0..banks).map(|i| NodeId(i * n / banks)).collect();
        let corner_like: Vec<usize> = vec![
            0,
            cols - 1,
            n - cols,
            n - 1,
            cols / 2,
            n - cols + cols / 2,
            (rows / 2) * cols,
            (rows / 2) * cols + cols - 1,
        ];
        let mc_nodes: Vec<NodeId> = (0..channels)
            .map(|i| NodeId(corner_like[i % corner_like.len()] % n))
            .collect();
        SocketTopology {
            mesh,
            cores: core_nodes,
            banks: bank_nodes,
            mcs: mc_nodes,
        }
    }

    /// The underlying mesh (mutable, for load accounting).
    pub fn mesh_mut(&mut self) -> &mut Mesh {
        &mut self.mesh
    }

    /// The underlying mesh.
    pub fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    /// One-way latency core → LLC bank.
    pub fn core_bank_latency(&self, core: usize, bank: usize, bytes: u64) -> u64 {
        self.mesh.latency(self.cores[core], self.banks[bank], bytes)
    }

    /// One-way latency core → core (three-hop forwarding).
    pub fn core_core_latency(&self, a: usize, b: usize, bytes: u64) -> u64 {
        self.mesh.latency(self.cores[a], self.cores[b], bytes)
    }

    /// One-way latency bank → core.
    pub fn bank_core_latency(&self, bank: usize, core: usize, bytes: u64) -> u64 {
        self.mesh.latency(self.banks[bank], self.cores[core], bytes)
    }

    /// One-way latency LLC bank → memory controller for `channel`.
    pub fn bank_mc_latency(&self, bank: usize, channel: usize, bytes: u64) -> u64 {
        self.mesh
            .latency(self.banks[bank], self.mcs[channel % self.mcs.len()], bytes)
    }

    /// Routes a phantom core→bank message through the mesh, accumulating
    /// load diagnostics, and returns its one-way latency. Fault-injection
    /// hook: NACK storms and duplicated completions re-traverse the fabric
    /// without touching protocol state or statistics.
    pub fn route_core_bank(&mut self, core: usize, bank: usize, bytes: u64) -> u64 {
        let (a, b) = (self.cores[core], self.banks[bank]);
        self.mesh.route(a, b, bytes)
    }

    /// Average core→bank hop distance (used by tests and for sanity checks).
    pub fn mean_core_bank_hops(&self) -> f64 {
        let mut total = 0u64;
        let mut n = 0u64;
        for &c in &self.cores {
            for &b in &self.banks {
                total += self.mesh.hops(c, b);
                n += 1;
            }
        }
        total as f64 / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> NocConfig {
        NocConfig::default()
    }

    #[test]
    fn square_dims() {
        assert_eq!(Mesh::square_for(8), (4, 2));
        assert_eq!(Mesh::square_for(16), (4, 4));
        assert_eq!(Mesh::square_for(128), (16, 8));
        assert_eq!(Mesh::square_for(1), (1, 1));
        assert_eq!(Mesh::square_for(7), (7, 1));
    }

    #[test]
    fn hops_are_manhattan() {
        let m = Mesh::new(4, 2, cfg());
        assert_eq!(m.hops(NodeId(0), NodeId(3)), 3);
        assert_eq!(m.hops(NodeId(0), NodeId(4)), 1);
        assert_eq!(m.hops(NodeId(0), NodeId(7)), 4);
        assert_eq!(m.hops(NodeId(5), NodeId(5)), 0);
    }

    #[test]
    fn latency_includes_serialisation() {
        let m = Mesh::new(4, 2, cfg());
        // 1 hop, 8-byte msg: 2 cycles, single flit.
        assert_eq!(m.latency(NodeId(0), NodeId(1), 8), 2);
        // 72-byte msg = 5 flits of 16B: +4 serialisation cycles.
        assert_eq!(m.latency(NodeId(0), NodeId(1), 72), 6);
        // same node still pays one router traversal
        assert_eq!(m.latency(NodeId(2), NodeId(2), 8), 2);
    }

    #[test]
    fn route_accumulates_load() {
        let mut m = Mesh::new(4, 2, cfg());
        let l = m.route(NodeId(0), NodeId(3), 72);
        assert_eq!(l, m.latency(NodeId(0), NodeId(3), 72));
        assert_eq!(m.byte_hops(), 72 * 3);
        assert_eq!(m.messages(), 1);
    }

    #[test]
    fn route_counters_saturate_instead_of_wrapping() {
        let mut m = Mesh::new(4, 2, cfg());
        // Each injection would overflow `bytes * hops` and then the running
        // sum; the counters must pin at the ceiling, not wrap to garbage.
        for _ in 0..3 {
            let l = m.route(NodeId(0), NodeId(7), u64::MAX);
            assert_eq!(l, m.latency(NodeId(0), NodeId(7), u64::MAX));
        }
        assert_eq!(m.byte_hops(), u64::MAX);
        assert_eq!(m.messages(), 3);
    }

    #[test]
    fn phantom_core_bank_route_accumulates_load() {
        let mut t = SocketTopology::new(8, 8, 2, cfg());
        let lat = t.route_core_bank(0, 7, 16);
        assert_eq!(lat, t.core_bank_latency(0, 7, 16));
        assert_eq!(t.mesh().messages(), 1);
        assert!(t.mesh().byte_hops() >= 16);
    }

    #[test]
    fn topology_eight_core() {
        let t = SocketTopology::new(8, 8, 2, cfg());
        assert_eq!(t.mesh().nodes(), 8);
        // co-located core/bank pairs: zero-distance access still costs a hop.
        assert_eq!(t.core_bank_latency(0, 0, 8), 2);
        assert!(t.core_bank_latency(0, 7, 8) >= t.core_bank_latency(0, 0, 8));
        assert!(t.mean_core_bank_hops() > 0.0);
    }

    #[test]
    fn topology_server() {
        let t = SocketTopology::new(128, 32, 8, cfg());
        assert_eq!(t.mesh().nodes(), 128);
        // far corner is many hops away
        assert!(t.core_core_latency(0, 127, 8) > 10);
    }

    #[test]
    fn bank_mc_paths_exist() {
        let t = SocketTopology::new(8, 8, 2, cfg());
        assert!(t.bank_mc_latency(3, 0, 72) > 0);
        assert!(t.bank_mc_latency(3, 1, 72) > 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_mesh_panics() {
        let _ = Mesh::new(0, 1, NocConfig::default());
    }
}
