//! Micro-benchmarks for the protocol engine: sustained access/evict
//! throughput under each coherence configuration. These bound how fast the
//! figure harnesses can run.
//!
//! `cargo bench -p zerodev-bench --features criterion-benches`

use zerodev_bench::microbench::{bench_function, black_box, group};
use zerodev_common::config::{DirectoryKind, LlcReplacement, SpillPolicy, ZeroDevConfig};
use zerodev_common::{BlockAddr, CoreId, Cycle, Prng, SocketId, SystemConfig};
use zerodev_core::{EvictKind, Op, System};

/// Drives a random-but-legal single-socket request/evict mix.
fn drive(sys: &mut System, rng: &mut Prng, present: &mut [Option<bool>], blocks: u64) {
    let c = CoreId(rng.below(8) as u16);
    let b = rng.below(blocks);
    let idx = (b * 8 + u64::from(c.0)) as usize;
    let block = BlockAddr(0x10_000 + b);
    match present[idx] {
        None => {
            let write = rng.chance(0.3);
            let op = if write { Op::ReadExclusive } else { Op::Read };
            let r = sys.access(Cycle(0), SocketId(0), c, block, op);
            // Apply invalidations to the tracking array.
            for inv in &r.invalidations {
                let i = (inv.block.0 - 0x10_000) * 8 + u64::from(inv.core.0);
                if let Some(slot) = present.get_mut(i as usize) {
                    *slot = None;
                }
            }
            for d in &r.downgrades {
                let i = (d.block.0 - 0x10_000) * 8 + u64::from(d.core.0);
                if let Some(slot) = present.get_mut(i as usize) {
                    *slot = Some(false);
                }
            }
            present[idx] = Some(write);
            black_box(r.latency);
        }
        Some(dirty) => {
            let kind = if dirty {
                EvictKind::Dirty
            } else {
                EvictKind::CleanShared
            };
            let invals = sys.evict(Cycle(0), SocketId(0), c, block, kind);
            for inv in invals {
                let i = (inv.block.0 - 0x10_000) * 8 + u64::from(inv.core.0);
                if let Some(slot) = present.get_mut(i as usize) {
                    *slot = None;
                }
            }
            present[idx] = None;
        }
    }
}

fn bench_protocol() {
    group("protocol_access");
    let blocks = 4096u64;
    let configs: Vec<(&str, SystemConfig)> = vec![
        ("baseline_1x", SystemConfig::baseline_8core()),
        (
            "zerodev_fpss_nodir",
            SystemConfig::baseline_8core()
                .with_zerodev(ZeroDevConfig::default(), DirectoryKind::None),
        ),
        (
            "zerodev_spillall",
            SystemConfig::baseline_8core().with_zerodev(
                ZeroDevConfig {
                    policy: SpillPolicy::SpillAll,
                    llc_replacement: LlcReplacement::DataLru,
                    ..Default::default()
                },
                DirectoryKind::None,
            ),
        ),
        (
            "zerodev_fuseall",
            SystemConfig::baseline_8core().with_zerodev(
                ZeroDevConfig {
                    policy: SpillPolicy::FuseAll,
                    llc_replacement: LlcReplacement::DataLru,
                    ..Default::default()
                },
                DirectoryKind::None,
            ),
        ),
    ];
    for (name, cfg) in configs {
        bench_function(name, |b| {
            let mut sys = System::new(cfg.clone()).unwrap();
            let mut rng = Prng::seeded(7);
            let mut present = vec![None; (blocks * 8) as usize];
            b.iter(|| drive(&mut sys, &mut rng, &mut present, blocks));
        });
    }
}

fn bench_multisocket() {
    group("multisocket");
    bench_function("protocol_access/four_socket_zerodev", |b| {
        let cfg =
            SystemConfig::four_socket().with_zerodev(ZeroDevConfig::default(), DirectoryKind::None);
        let mut sys = System::new(cfg).unwrap();
        let mut rng = Prng::seeded(11);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let s = SocketId(rng.below(4) as u8);
            let c2 = CoreId(rng.below(8) as u16);
            let block = BlockAddr(0x20_000 + (i % 2048));
            let r = sys.access(Cycle(0), s, c2, block, Op::Read);
            // Evict immediately to keep the model legal and steady-state.
            let _ = sys.evict(Cycle(0), s, c2, block, EvictKind::CleanShared);
            black_box(r.latency)
        });
    });
}

fn main() {
    bench_protocol();
    bench_multisocket();
}
