//! Micro-benchmarks for full end-to-end simulations: one short run per
//! machine configuration, measuring whole-stack throughput (workload
//! generation + private caches + protocol + DRAM + statistics).
//!
//! `cargo bench -p zerodev-bench --features criterion-benches`

use zerodev_bench::microbench::{bench_function, black_box, group};
use zerodev_common::config::{DirectoryKind, LlcDesign, ZeroDevConfig};
use zerodev_common::SystemConfig;
use zerodev_sim::runner::{run, RunParams};
use zerodev_workloads::{multithreaded, rate};

fn bench_simulation() {
    group("simulation");
    let params = RunParams {
        refs_per_core: 3_000,
        warmup_refs: 500,
        ..Default::default()
    };
    let mut epd = SystemConfig::baseline_8core();
    epd.llc_design = LlcDesign::Epd;
    let mut incl =
        SystemConfig::baseline_8core().with_zerodev(ZeroDevConfig::default(), DirectoryKind::None);
    incl.llc_design = LlcDesign::Inclusive;
    let configs: Vec<(&str, SystemConfig)> = vec![
        ("baseline", SystemConfig::baseline_8core()),
        (
            "zerodev_nodir",
            SystemConfig::baseline_8core()
                .with_zerodev(ZeroDevConfig::default(), DirectoryKind::None),
        ),
        ("baseline_epd", epd),
        ("zerodev_inclusive", incl),
    ];
    for (name, cfg) in configs {
        bench_function(&format!("mt_ocean_cp/{name}"), |b| {
            b.iter(|| {
                let wl = multithreaded("ocean_cp", 8, 1).unwrap();
                black_box(run(&cfg, wl, &params).completion_cycles)
            });
        });
    }
    bench_function("rate_xalancbmk/baseline", |b| {
        let cfg = SystemConfig::baseline_8core();
        b.iter(|| {
            let wl = rate("xalancbmk", 8, 1).unwrap();
            black_box(run(&cfg, wl, &params).completion_cycles)
        });
    });
}

fn main() {
    bench_simulation();
}
