//! Micro-benchmarks for the simulator's building blocks: the
//! set-associative array, the directory structures, the LLC bank with
//! ZeroDEV line states, the DRAM timing model, the mesh, and the workload
//! generators.
//!
//! `cargo bench -p zerodev-bench --features criterion-benches`

use zerodev_bench::microbench::{bench_function, black_box, group};
use zerodev_cache::{Replacement, SetAssoc};
use zerodev_common::config::{DirectoryKind, LlcReplacement, Ratio, SystemConfig};
use zerodev_common::{BlockAddr, CoreId, Cycle, Prng};
use zerodev_core::directory::DirStore;
use zerodev_core::{DirEntry, LlcBank};
use zerodev_dram::DramModel;
use zerodev_noc::SocketTopology;
use zerodev_workloads::{multithreaded, rate};

fn bench_setassoc() {
    group("setassoc");
    bench_function("touch_hit", |b| {
        let mut cache: SetAssoc<u64> = SetAssoc::new(1024, 16, Replacement::Lru);
        for i in 0..4096u64 {
            cache.insert(i, i, |_| false);
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 17) % 4096;
            black_box(cache.touch(i, |_| true).is_some())
        });
    });
    bench_function("insert_evict", |b| {
        let mut cache: SetAssoc<u64> = SetAssoc::new(64, 8, Replacement::Lru);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(cache.insert(i, i, |_| false))
        });
    });
}

fn bench_directories() {
    group("directory");
    let cfg = SystemConfig::baseline_8core();
    for (name, kind) in [
        (
            "sparse_1x",
            DirectoryKind::Sparse {
                ratio: Ratio::ONE,
                ways: 8,
                replacement_disabled: false,
            },
        ),
        ("unbounded", DirectoryKind::Unbounded),
        (
            "mgd",
            DirectoryKind::MultiGrain {
                ratio: Ratio::new(1, 8),
                ways: 8,
            },
        ),
        (
            "secdir",
            DirectoryKind::SecDir(DirStore::secdir_geometry(8, false)),
        ),
    ] {
        bench_function(&format!("alloc_remove/{name}"), |b| {
            let mut c2 = cfg.clone();
            c2.directory = kind.clone();
            if matches!(kind, DirectoryKind::None) {
                c2.zerodev = Some(Default::default());
            }
            let mut dir = DirStore::build(&c2);
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                let blk = BlockAddr(i % 100_000);
                if dir.peek(blk).is_none() {
                    let _ = dir.allocate(blk, DirEntry::owned(CoreId((i % 8) as u16)));
                } else {
                    let _ = dir.remove(blk);
                }
            });
        });
    }
}

fn bench_llc_bank() {
    group("llc_bank");
    bench_function("fill_spill_cycle", |b| {
        let mut bank = LlcBank::new(1024, 16, 8, 0);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let blk = BlockAddr((i % 40_000) * 8);
            let _ = bank.fill_data(blk, i.is_multiple_of(3), LlcReplacement::DataLru);
            if i.is_multiple_of(4) {
                let _ = bank.spill_entry(
                    blk,
                    DirEntry::shared(CoreId((i % 8) as u16)),
                    LlcReplacement::DataLru,
                );
            }
        });
    });
}

fn bench_dram() {
    group("dram");
    bench_function("dram/read", |b| {
        let mut dram = DramModel::new(SystemConfig::baseline_8core().dram);
        let mut i = 0u64;
        let mut t = Cycle(0);
        b.iter(|| {
            i += 1;
            t = dram.read(t, BlockAddr(i * 7));
            black_box(t)
        });
    });
}

fn bench_noc() {
    group("noc");
    bench_function("noc/latency_128core", |b| {
        let topo = SocketTopology::new(128, 32, 8, Default::default());
        let mut i = 0usize;
        b.iter(|| {
            i += 1;
            black_box(topo.core_bank_latency(i % 128, i % 32, 72))
        });
    });
}

fn bench_workloads() {
    group("workload_gen");
    bench_function("multithreaded_next_ref", |b| {
        let mut wl = multithreaded("ocean_cp", 8, 1).unwrap();
        let mut t = 0usize;
        b.iter(|| {
            t = (t + 1) % 8;
            black_box(wl.threads[t].next_ref())
        });
    });
    bench_function("rate_next_ref", |b| {
        let mut wl = rate("xalancbmk", 8, 1).unwrap();
        let mut t = 0usize;
        b.iter(|| {
            t = (t + 1) % 8;
            black_box(wl.threads[t].next_ref())
        });
    });
}

fn bench_prng() {
    group("prng");
    bench_function("prng/next_u64", |b| {
        let mut rng = Prng::seeded(1);
        b.iter(|| black_box(rng.next_u64()));
    });
}

fn main() {
    bench_setassoc();
    bench_directories();
    bench_llc_bank();
    bench_dram();
    bench_noc();
    bench_workloads();
    bench_prng();
}
