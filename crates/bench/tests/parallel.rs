//! Integration tests for the parallel sweep engine as the figure harnesses
//! use it: a parallel grid must render tables byte-identical to the serial
//! path, and repeating a grid must be served from the baseline cache.

use std::sync::{Arc, Mutex};
use zerodev_bench::{
    baseline, makers_of, mt_makers, per_app_speedups_with, render_norm_table, run_grid,
    zerodev_trio,
};
use zerodev_common::SystemConfig;
use zerodev_sim::parallel::{clear_memo_cache, reset_summary, summary};
use zerodev_sim::runner::RunParams;
use zerodev_workloads::suites;

/// Both tests reset the process-wide cache and counters, so they must not
/// overlap.
static GUARD: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    GUARD.lock().unwrap_or_else(|e| e.into_inner())
}

#[test]
fn parallel_tables_match_serial_byte_for_byte() {
    let _g = lock();
    let apps = mt_makers(&suites::PARSEC[..4], 8);
    let trio = zerodev_trio();
    let cols: Vec<&str> = trio.iter().map(|(n, _)| *n).collect();
    let serial = RunParams {
        refs_per_core: 6_000,
        warmup_refs: 1_000,
        threads: 1,
        ..Default::default()
    };
    let parallel = RunParams {
        threads: 4,
        ..serial
    };

    clear_memo_cache();
    let rows_serial = per_app_speedups_with(&apps, &trio, &serial);
    clear_memo_cache();
    let rows_parallel = per_app_speedups_with(&apps, &trio, &parallel);

    let table_serial = render_norm_table("parity", &cols, &rows_serial);
    let table_parallel = render_norm_table("parity", &cols, &rows_parallel);
    assert_eq!(
        table_serial, table_parallel,
        "ZERODEV_THREADS=1 and =4 must print identical tables"
    );

    // The underlying statistics match too, not just the rendered speedups.
    clear_memo_cache();
    let base = baseline();
    let cfgs: Vec<&SystemConfig> = vec![&base];
    let grid_serial = run_grid(&cfgs, &makers_of(&apps), &serial);
    clear_memo_cache();
    let grid_parallel = run_grid(&cfgs, &makers_of(&apps), &parallel);
    for (s, p) in grid_serial.iter().zip(&grid_parallel) {
        assert_eq!(s[0].result.completion_cycles, p[0].result.completion_cycles);
        assert_eq!(
            s[0].result.stats.core_cache_misses,
            p[0].result.stats.core_cache_misses
        );
        assert_eq!(
            s[0].result.stats.total_traffic_bytes(),
            p[0].result.stats.total_traffic_bytes()
        );
    }
}

#[test]
fn repeated_grids_hit_the_baseline_cache() {
    let _g = lock();
    let apps = mt_makers(&suites::PARSEC[..2], 8);
    let params = RunParams {
        refs_per_core: 3_000,
        warmup_refs: 500,
        threads: 2,
        ..Default::default()
    };
    clear_memo_cache();
    reset_summary();
    let base = baseline();
    let cfgs: Vec<&SystemConfig> = vec![&base];

    let first = run_grid(&cfgs, &makers_of(&apps), &params);
    let after_first = summary();
    assert_eq!(after_first.runs_executed, apps.len() as u64);
    assert_eq!(after_first.cache_hits, 0);

    let second = run_grid(&cfgs, &makers_of(&apps), &params);
    let after_second = summary();
    assert_eq!(after_second.runs_executed, after_first.runs_executed);
    assert_eq!(after_second.cache_hits, apps.len() as u64);
    for (a, b) in first.iter().zip(&second) {
        assert!(
            Arc::ptr_eq(&a[0], &b[0]),
            "cache hit must return the shared result"
        );
    }
}
