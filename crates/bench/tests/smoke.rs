//! CI smoke test: drives the `all_figures`-critical harness paths in-process
//! under `ZERODEV_QUICK=1` and holds them to a generous wall-clock budget,
//! so a regression that makes the sweeps pathologically slow (or breaks a
//! figure outright) fails fast in CI.

use std::time::{Duration, Instant};
use zerodev_bench::figures;
use zerodev_sim::parallel::{reset_summary, summary};

/// A regression here means either a figure panicked or sweep throughput
/// collapsed; the budget is ~4x slack over the observed quick-mode cost of
/// an unoptimized (debug) build.
const BUDGET: Duration = Duration::from_secs(300);

#[test]
fn quick_figures_complete_within_budget_with_cache_hits() {
    std::env::set_var("ZERODEV_QUICK", "1");
    reset_summary();
    // Representative slice of the figure suite: the config table (no
    // simulation), a per-app multithreaded sweep, and the big
    // suite-grouped sparse-ratio sweep that shares baselines with fig03.
    let wanted = ["fig_table1", "fig03", "fig04"];
    let t0 = Instant::now();
    let mut ran = 0;
    for (name, fig) in figures::ALL {
        if wanted.contains(name) {
            fig();
            ran += 1;
        }
    }
    let elapsed = t0.elapsed();
    assert_eq!(
        ran,
        wanted.len(),
        "every smoke figure must be in figures::ALL"
    );
    assert!(
        elapsed < BUDGET,
        "quick figures took {elapsed:?}, budget {BUDGET:?}"
    );
    let s = summary();
    assert!(s.runs_executed > 0, "figures must execute simulations");
    assert!(
        s.cache_hits > 0,
        "fig03 and fig04 share baselines; the memo cache must serve some"
    );
}

/// The degraded-reproduction contract of `all_figures`: a deliberately
/// panicking figure is caught, counted, and reported — the remaining
/// figures still run and the caller (which exits nonzero on a nonzero
/// count) gets the failure total instead of an unwinding process.
#[test]
fn panicking_figure_degrades_but_does_not_abort_the_run() {
    fn good() {}
    fn bad() {
        panic!("deliberate figure failure");
    }
    let figs: &[(&str, fn())] = &[("good_a", good), ("bad", bad), ("good_b", good)];
    let failed = zerodev_bench::run_figures(figs);
    assert_eq!(failed, 1, "exactly the panicking figure is marked failed");
}
