//! Smoke test for the committed `BENCH_<pr>.json` throughput reports: every
//! report at the repo root must carry the schema marker and the numeric
//! keys the CI perf gate and future trend tooling read. Catches a
//! hand-edited or truncated report before the gate trips over it.

use zerodev_bench::report::{json_number, json_string, SCHEMA, SCHEMA_V1};

/// Keys every committed report must expose as positive numbers.
const REQUIRED_POSITIVE: &[&str] = &[
    "pr",
    "threads",
    "wall_secs",
    "sim_cycles",
    "refs_retired",
    "sim_cycles_per_sec",
    "refs_per_sec",
    "runs_executed",
    "gate_sim_cycles_per_sec",
    "gate_refs_per_sec",
    "gate_mc_states_per_sec",
];

/// Keys the v2 schema added (sharded-driver gate probe); v1 reports
/// committed before the probe existed legitimately lack them.
const REQUIRED_POSITIVE_V2: &[&str] = &[
    "gate_shard_serial_cycles_per_sec",
    "gate_sharded_cycles_per_sec",
];

/// Keys that must parse but may legitimately be zero.
const REQUIRED: &[&str] = &["cache_hits", "memo_hit_rate", "failed_points"];

#[test]
fn committed_bench_reports_satisfy_the_schema() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root resolves");
    let mut reports = Vec::new();
    for entry in std::fs::read_dir(&root).expect("repo root readable") {
        let path = entry.expect("dir entry").path();
        let name = path
            .file_name()
            .unwrap_or_default()
            .to_string_lossy()
            .to_string();
        if name.starts_with("BENCH_") && name.ends_with(".json") {
            reports.push(path);
        }
    }
    assert!(
        !reports.is_empty(),
        "no BENCH_*.json committed at {} — every PR commits its throughput report",
        root.display()
    );
    for path in reports {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
        let schema = json_string(&text, "schema")
            .unwrap_or_else(|| panic!("{} lacks a schema marker", path.display()));
        assert!(
            schema == SCHEMA || schema == SCHEMA_V1,
            "{}: unknown schema {schema:?} (expected {SCHEMA:?} or {SCHEMA_V1:?})",
            path.display()
        );
        let mut required_positive = REQUIRED_POSITIVE.to_vec();
        if schema == SCHEMA {
            required_positive.extend_from_slice(REQUIRED_POSITIVE_V2);
        }
        for key in required_positive {
            let v = json_number(&text, key)
                .unwrap_or_else(|| panic!("{}: key {key:?} missing", path.display()));
            assert!(
                v > 0.0,
                "{}: key {key:?} must be positive, got {v}",
                path.display()
            );
        }
        for key in REQUIRED {
            assert!(
                json_number(&text, key).is_some(),
                "{}: key {key:?} missing",
                path.display()
            );
        }
        assert!(
            text.contains("\"figures\": ["),
            "{} lacks the per-figure timing array",
            path.display()
        );
    }
}
