//! Stats-parity matrix: pins the simulator's observable behaviour across
//! the full (spill policy × LLC design × socket count) grid, with the
//! coherence oracle armed.
//!
//! Every performance change to the hot paths (arena/SoA state layouts,
//! allocation-free protocol flows, the event queue) is required to keep
//! figure output **byte-identical**; this matrix turns that requirement
//! into a test. Each point runs a short audited simulation and fingerprints
//! the complete `Stats` record (the exact `Debug` rendering, which covers
//! every counter) together with the per-core cycle/instruction trajectories
//! and the retired-reference count. The goldens below were harvested from a
//! build whose quick-mode `all_figures` output was verified byte-identical
//! to the pre-optimization harness; any future change that shifts a single
//! counter anywhere in the matrix fails here with the offending
//! configuration named.

use zerodev_common::config::DirectoryKind;
use zerodev_common::config::{LlcDesign, LlcReplacement, SpillPolicy, ZeroDevConfig};
use zerodev_common::SystemConfig;
use zerodev_sim::runner::{run, RunParams};
use zerodev_sim::FaultConfig;
use zerodev_workloads::multithreaded;

/// FNV-1a over the rendered result record (exact: no floats involved).
fn fnv(s: &str) -> u64 {
    s.bytes().fold(0xcbf2_9ce4_8422_2325_u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3)
    })
}

const POLICIES: [SpillPolicy; 3] = [
    SpillPolicy::SpillAll,
    SpillPolicy::FusePrivateSpillShared,
    SpillPolicy::FuseAll,
];

const DESIGNS: [LlcDesign; 3] = [
    LlcDesign::NonInclusive,
    LlcDesign::Epd,
    LlcDesign::Inclusive,
];

/// One audited short run; returns the behaviour fingerprint.
fn point(policy: SpillPolicy, design: LlcDesign, sockets: usize) -> u64 {
    point_sharded(policy, design, sockets, 1)
}

/// [`point`] with an explicit shard count for the sharded-driver parity
/// matrix (`shards = 1` is the exact serial event loop).
fn point_sharded(policy: SpillPolicy, design: LlcDesign, sockets: usize, shards: usize) -> u64 {
    let mut cfg = if sockets == 1 {
        SystemConfig::baseline_8core()
    } else {
        SystemConfig::four_socket()
    };
    cfg.llc_design = design;
    // A small LLC keeps capacity pressure real at this run length, so the
    // inclusion policies actually diverge (with the full-size LLC a short
    // run never evicts and all three designs coincide).
    cfg.llc = zerodev_common::config::CacheGeometry::new(256 << 10, 16);
    let cfg = cfg.with_zerodev(
        ZeroDevConfig {
            policy,
            llc_replacement: LlcReplacement::DataLru,
            ..Default::default()
        },
        DirectoryKind::None,
    );
    let cores = cfg.cores * cfg.sockets;
    let params = RunParams {
        refs_per_core: if sockets == 1 { 2_500 } else { 1_200 },
        warmup_refs: 300,
        threads: 1,
        shards,
        audit: true,
        faults: None,
        ..Default::default()
    };
    let wl = multithreaded("canneal", cores, 0x9a11_7e57).expect("known app");
    let r = run(&cfg, wl, &params).result;
    fnv(&format!(
        "{:?}|{:?}|{:?}|{}|{}",
        r.stats, r.core_cycles, r.core_instrs, r.completion_cycles, r.refs_retired
    ))
}

/// The pinned behaviour of the whole matrix, row-major over
/// `POLICIES × DESIGNS × [1, 4] sockets`. Harvest order matches
/// `matrix_points()`.
const GOLDEN: [u64; 18] = [
    0x57bd3c5d3009837a, // SpillAll/NonInclusive/1s
    0x9ae3bcd58b59eeaf, // SpillAll/NonInclusive/4s
    0x6a0a9ef5901e8122, // SpillAll/Epd/1s
    0x395d1a8327233a66, // SpillAll/Epd/4s
    0xc6bff6b05c430a53, // SpillAll/Inclusive/1s
    0x0eb21ab27806b2e2, // SpillAll/Inclusive/4s
    0x7bdd14f7e3f07883, // FusePrivateSpillShared/NonInclusive/1s
    0x5644440a4a23c3b4, // FusePrivateSpillShared/NonInclusive/4s
    0x1182a3076d2feff9, // FusePrivateSpillShared/Epd/1s
    0xe66b689706fa2dcb, // FusePrivateSpillShared/Epd/4s
    0x7b10f9e2877b09e4, // FusePrivateSpillShared/Inclusive/1s
    0xc4557d1ad6c59ae1, // FusePrivateSpillShared/Inclusive/4s
    0x78ba5336efad8b05, // FuseAll/NonInclusive/1s
    0x8d851f5f9ef1ef2f, // FuseAll/NonInclusive/4s
    0xeeb1fb9767a9a206, // FuseAll/Epd/1s
    0x509210e480298946, // FuseAll/Epd/4s
    0xfbcfdfe6c9a316d7, // FuseAll/Inclusive/1s
    0x1f492945a4790637, // FuseAll/Inclusive/4s
];

fn matrix_points() -> Vec<(SpillPolicy, LlcDesign, usize)> {
    let mut pts = Vec::new();
    for policy in POLICIES {
        for design in DESIGNS {
            for sockets in [1usize, 4] {
                pts.push((policy, design, sockets));
            }
        }
    }
    pts
}

#[test]
fn audited_matrix_matches_pinned_fingerprints() {
    for (i, (policy, design, sockets)) in matrix_points().into_iter().enumerate() {
        let got = point(policy, design, sockets);
        assert_eq!(
            got, GOLDEN[i],
            "behaviour changed at {policy:?}/{design:?}/{sockets} socket(s) \
             (matrix index {i}): got {got:#018x}, pinned {:#018x}",
            GOLDEN[i]
        );
    }
}

/// The sharded driver's hard invariant (DESIGN.md §8): at any shard count
/// the run is **byte-identical** to the serial event loop. The serial
/// goldens above therefore *are* the sharded expectations — no separate
/// harvest, no tolerance. Every point of the audited matrix is re-run at
/// 2 and 4 shards and must land on the exact pinned fingerprint.
#[test]
fn sharded_matrix_matches_the_serial_goldens() {
    for (i, (policy, design, sockets)) in matrix_points().into_iter().enumerate() {
        for shards in [2usize, 4] {
            let got = point_sharded(policy, design, sockets, shards);
            assert_eq!(
                got, GOLDEN[i],
                "sharded run diverged from serial at \
                 {policy:?}/{design:?}/{sockets} socket(s) with {shards} shard(s) \
                 (matrix index {i}): got {got:#018x}, pinned {:#018x}",
                GOLDEN[i]
            );
        }
    }
}

/// Shard × sweep-thread determinism under an active fault plan: the
/// `ZERODEV_SHARDS` × `ZERODEV_THREADS` grid (expressed directly through
/// `RunParams` so the test cannot race on process-global env vars) must
/// produce one identical fingerprint — fault draws included — with the
/// coherence oracle armed. Message-level faults only: state-corruption
/// faults deliberately trip the oracle, which is its own test elsewhere.
#[test]
fn shards_and_threads_agree_under_audit_and_faults() {
    let cfg = SystemConfig::four_socket().with_zerodev(
        ZeroDevConfig {
            policy: SpillPolicy::FusePrivateSpillShared,
            llc_replacement: LlcReplacement::DataLru,
            ..Default::default()
        },
        DirectoryKind::None,
    );
    let faults = FaultConfig {
        seed: 0xdead_f00d,
        nack_ppm: 800,
        delay_ppm: 500,
        dup_ppm: 300,
        ..Default::default()
    };
    let fingerprint = |shards: usize, threads: usize| {
        let params = RunParams {
            refs_per_core: 1_000,
            warmup_refs: 200,
            threads,
            shards,
            audit: true,
            faults: Some(faults),
            ..Default::default()
        };
        let wl = multithreaded("canneal", cfg.cores * cfg.sockets, 0x0dd5_eed5).expect("known app");
        let r = run(&cfg, wl, &params).result;
        fnv(&format!(
            "{:?}|{:?}|{:?}|{:?}|{}|{}",
            r.stats, r.faults, r.core_cycles, r.core_instrs, r.completion_cycles, r.refs_retired
        ))
    };
    let reference = fingerprint(1, 1);
    for (shards, threads) in [(1, 4), (2, 1), (2, 4), (4, 1), (4, 4)] {
        let got = fingerprint(shards, threads);
        assert_eq!(
            got, reference,
            "faulted audited run diverged at shards={shards}, threads={threads}: \
             got {got:#018x}, serial single-thread reference {reference:#018x}"
        );
    }
}

/// Harvest helper: prints the matrix in golden-array form.
/// `cargo test --release -p zerodev-bench --test parity -- --ignored --nocapture`
#[test]
#[ignore = "golden harvest helper, not a check"]
fn print_golden_fingerprints() {
    for (policy, design, sockets) in matrix_points() {
        println!(
            "    {:#018x}, // {policy:?}/{design:?}/{sockets}s",
            point(policy, design, sockets)
        );
    }
}
