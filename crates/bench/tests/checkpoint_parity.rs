//! Kill-and-resume parity matrix: a run that is checkpointed mid-flight,
//! dropped ("killed"), and restored from the image must finish with
//! **byte-identical** results to the uninterrupted run — same statistics,
//! same per-core completion data, same fault sequence — across directory
//! families, ZeroDEV policies, torture workloads, auditing, fault
//! injection, and multi-socket machines. This is the contract the soak
//! driver's budget-aware checkpointing stands on.

use zerodev_bench::{baseline, zerodev_default_nodir};
use zerodev_common::SystemConfig;
use zerodev_sim::{FaultConfig, PausedRun, RunStatus, SimResult, Simulation, StateFault};
use zerodev_workloads::multithreaded;

const REFS: u64 = 2_000;
const WARM: u64 = 400;

#[derive(Clone)]
struct Point {
    label: &'static str,
    cfg: SystemConfig,
    app: &'static str,
    seed: u64,
    audit: bool,
    faults: Option<FaultConfig>,
    refs: u64,
    cut: u64,
}

fn matrix() -> Vec<Point> {
    let message_faults = FaultConfig {
        nack_ppm: 20_000,
        delay_ppm: 10_000,
        dup_ppm: 10_000,
        ..Default::default()
    };
    let corrupting = FaultConfig {
        corrupt: Some((StateFault::SharerFlip, 900)),
        ..Default::default()
    };
    vec![
        Point {
            label: "baseline/canneal/audit",
            cfg: baseline(),
            app: "canneal",
            seed: 0x5eed_0001,
            audit: true,
            faults: None,
            refs: REFS,
            cut: 1_000,
        },
        Point {
            label: "zerodev/torture.ping_pong/audit",
            cfg: zerodev_default_nodir(),
            app: "torture.ping_pong",
            seed: 0x5eed_0002,
            audit: true,
            faults: None,
            refs: REFS,
            cut: 700,
        },
        Point {
            label: "zerodev/torture.entry_thrash/message-faults",
            cfg: zerodev_default_nodir(),
            app: "torture.entry_thrash",
            seed: 0x5eed_0003,
            audit: true,
            faults: Some(message_faults),
            refs: REFS,
            cut: 1_500,
        },
        // Cut *before* the armed corruption injects at access 900: the
        // restored fault plan (PRNG, cursor, armed trigger) and the
        // lane-exact cache/directory images must pick the same victim.
        Point {
            label: "baseline/torture.false_sharing/corruption",
            cfg: baseline(),
            app: "torture.false_sharing",
            seed: 0x5eed_0004,
            audit: false,
            faults: Some(corrupting),
            refs: REFS,
            cut: 500,
        },
        Point {
            label: "four-socket/torture.reader_swarm/audit",
            cfg: SystemConfig::four_socket(),
            app: "torture.reader_swarm",
            seed: 0x5eed_0005,
            audit: true,
            faults: None,
            refs: 300,
            cut: 1_500,
        },
    ]
}

fn build(p: &Point) -> Simulation {
    let cores = p.cfg.cores * p.cfg.sockets;
    let wl = multithreaded(p.app, cores, p.seed).expect("known app");
    let mut sim = Simulation::new(&p.cfg, wl);
    if p.audit {
        sim.enable_audit();
    }
    if let Some(fc) = p.faults {
        sim.set_faults(fc);
    }
    sim
}

fn uninterrupted(p: &Point) -> SimResult {
    let mut run = build(p).start(p.refs, WARM);
    run.advance(u64::MAX).expect("clean run must not stall");
    run.finish()
}

/// Runs to `cut` retired references, checkpoints, drops the live run, and
/// finishes from the restored image.
fn killed_and_resumed(p: &Point) -> SimResult {
    let mut run = build(p).start(p.refs, WARM);
    let status = run.advance(p.cut).expect("clean run must not stall");
    let image = run.checkpoint();
    drop(run); // the "kill": only the image survives
    let mut resumed = PausedRun::restore(&p.cfg, &image).expect("image restores");
    if status == RunStatus::Paused {
        resumed
            .advance(u64::MAX)
            .expect("resumed run must not stall");
    }
    resumed.finish()
}

fn assert_identical(a: &SimResult, b: &SimResult, label: &str) {
    assert_eq!(a.stats, b.stats, "{label}: stats diverged");
    assert_eq!(
        a.core_cycles, b.core_cycles,
        "{label}: core cycles diverged"
    );
    assert_eq!(
        a.core_instrs, b.core_instrs,
        "{label}: core instrs diverged"
    );
    assert_eq!(
        a.completion_cycles, b.completion_cycles,
        "{label}: completion diverged"
    );
    assert_eq!(
        a.refs_retired, b.refs_retired,
        "{label}: refs retired diverged"
    );
    assert_eq!(a.dram_rw, b.dram_rw, "{label}: dram counts diverged");
    assert_eq!(a.faults, b.faults, "{label}: fault stats diverged");
}

#[test]
fn kill_and_resume_is_byte_identical_across_the_matrix() {
    for p in matrix() {
        let a = uninterrupted(&p);
        let b = killed_and_resumed(&p);
        assert_identical(&a, &b, p.label);
    }
}

#[test]
fn resume_is_byte_identical_at_every_cut_depth() {
    let p = Point {
        label: "cut sweep",
        cfg: zerodev_default_nodir(),
        app: "torture.phase_mix",
        seed: 0x5eed_0010,
        audit: true,
        faults: None,
        refs: REFS,
        cut: 0,
    };
    let reference = uninterrupted(&p);
    // Cut at the very first boundary, mid-run, near the end, and past the
    // end (the run finishes inside advance; restore then sees Finished).
    for cut in [1, 333, 8 * REFS - 1, 8 * REFS + 1_000] {
        let p = Point { cut, ..p.clone() };
        let resumed = killed_and_resumed(&p);
        assert_identical(&reference, &resumed, &format!("cut at {cut}"));
    }
}

#[test]
fn checkpoint_round_trips_through_restore() {
    // Re-serializing a restored run must reproduce the image exactly.
    let p = &matrix()[1];
    let mut run = build(p).start(p.refs, WARM);
    run.advance(p.cut).expect("clean");
    let image = run.checkpoint();
    let restored = PausedRun::restore(&p.cfg, &image).expect("image restores");
    assert_eq!(
        image,
        restored.checkpoint(),
        "restored run re-serializes differently"
    );
    assert_eq!(run.refs_retired(), restored.refs_retired());
    assert_eq!(run.refs_per_core(), restored.refs_per_core());
}

#[test]
fn restore_rejects_a_mismatched_config() {
    let p = &matrix()[0];
    let mut run = build(p).start(p.refs, WARM);
    run.advance(100).expect("clean");
    let image = run.checkpoint();
    let wrong = zerodev_default_nodir();
    assert!(
        PausedRun::restore(&wrong, &image).is_err(),
        "a differently shaped machine must be rejected"
    );
}

#[test]
fn restore_rejects_a_damaged_image() {
    let p = &matrix()[0];
    let mut run = build(p).start(p.refs, WARM);
    run.advance(100).expect("clean");
    let mut image = run.checkpoint();
    let mid = image.len() / 2;
    image[mid] ^= 0xff;
    assert!(
        PausedRun::restore(&p.cfg, &image).is_err(),
        "a flipped payload byte must fail the checksum"
    );
    assert!(
        PausedRun::restore(&p.cfg, &image[..image.len() - 3]).is_err(),
        "a truncated image must be rejected"
    );
}
