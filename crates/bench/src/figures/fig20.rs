//! Figure 20: performance of ZeroDEV on SPLASH2X, SPEC OMP and FFTW with
//! three directory configurations (1×, 1/8×, none), normalised to the 1×
//! baseline.

use crate::{mt_makers, per_app_speedups, print_norm_table, zerodev_trio};
use zerodev_workloads::suites;

pub fn run() {
    let configs = zerodev_trio();
    let apps: Vec<&'static str> = suites::SPLASH2X
        .iter()
        .chain(suites::SPECOMP.iter())
        .chain(suites::FFTW.iter())
        .copied()
        .collect();
    let rows = per_app_speedups(&mt_makers(&apps, 8), &configs);
    print_norm_table(
        "Figure 20: ZeroDEV on SPLASH2X / SPEC OMP / FFTW (normalised to 1x baseline)",
        &["ZD+1x", "ZD+1/8x", "ZD+NoDir"],
        &rows,
    );
    println!(
        "paper shape: within ~1% of baseline on average; lu_ncb, raytrace,\n\
         water_nsquared and 330.art see 1-4% slowdowns."
    );
}
