//! Figure 25: ZeroDEV on exclusive-private-data (EPD) and inclusive LLCs.
//! Per application group: the EPD baseline at three directory sizes, the
//! ZeroDEV EPD design at three directory configurations, the inclusive
//! baseline, and inclusive ZeroDEV without a directory — all normalised to
//! the non-inclusive 1×-directory baseline.
//!
//! CPU-RATE and CPU-HET are subsampled (every third workload) to keep the
//! sweep tractable; the suite averages are stable under the subsample.

use crate::{baseline, mt, mt_suites, rate8, run_grid, server_params, wl, Maker, SEED};
use zerodev_common::config::{DirectoryKind, LlcDesign, Ratio, ZeroDevConfig};
use zerodev_common::table::{geomean, Table};
use zerodev_common::SystemConfig;
use zerodev_sim::runner::RunParams;
use zerodev_workloads::{hetero_mix, suites};

fn with_design(mut cfg: SystemConfig, d: LlcDesign) -> SystemConfig {
    cfg.llc_design = d;
    cfg
}

fn configs_for(server: bool) -> Vec<(&'static str, SystemConfig)> {
    let base = if server {
        SystemConfig::server_128core()
    } else {
        baseline()
    };
    let zd = |dir: DirectoryKind| base.clone().with_zerodev(ZeroDevConfig::default(), dir);
    let sp = |num, den| DirectoryKind::Sparse {
        ratio: Ratio::new(num, den),
        ways: 8,
        replacement_disabled: true,
    };
    vec![
        ("BaseEPD+1x", with_design(base.clone(), LlcDesign::Epd)),
        (
            "BaseEPD+1/2x",
            with_design(
                base.clone().with_sparse_dir(Ratio::new(1, 2)),
                LlcDesign::Epd,
            ),
        ),
        (
            "BaseEPD+1/8x",
            with_design(
                base.clone().with_sparse_dir(Ratio::new(1, 8)),
                LlcDesign::Epd,
            ),
        ),
        (
            "ZDEPD+NoDir",
            with_design(zd(DirectoryKind::None), LlcDesign::Epd),
        ),
        ("ZDEPD+1/2x", with_design(zd(sp(1, 2)), LlcDesign::Epd)),
        ("ZDEPD+1x", with_design(zd(sp(1, 1)), LlcDesign::Epd)),
        (
            "BaseIncl+1x",
            with_design(base.clone(), LlcDesign::Inclusive),
        ),
        (
            "ZDIncl+NoDir",
            with_design(zd(DirectoryKind::None), LlcDesign::Inclusive),
        ),
    ]
}

pub fn run() {
    let labels: Vec<&str> = configs_for(false).iter().map(|(n, _)| *n).collect();
    let mut header = vec!["group"];
    header.extend(labels.iter());
    let mut t = Table::new(&header);

    let mut groups: Vec<(&str, Vec<Maker>, bool)> = Vec::new();
    for (suite, apps) in mt_suites() {
        let makers: Vec<Maker> = apps.iter().map(|&a| wl(move || mt(a, 8))).collect();
        groups.push((suite, makers, false));
    }
    let rate_sub: Vec<Maker> = suites::CPU2017
        .iter()
        .step_by(3)
        .map(|&a| wl(move || rate8(a)))
        .collect();
    groups.push(("CPU-RATE", rate_sub, false));
    let het_sub: Vec<Maker> = (0..36)
        .step_by(3)
        .map(|i| wl(move || hetero_mix(i, 8, SEED)))
        .collect();
    groups.push(("CPU-HET", het_sub, false));
    let server_makers: Vec<Maker> = suites::SERVER
        .iter()
        .map(|&a| wl(move || mt(a, 128)))
        .collect();
    groups.push(("SERVER", server_makers, true));

    for (group, makers, server) in groups {
        let base_cfg = if server {
            SystemConfig::server_128core()
        } else {
            baseline()
        };
        let params = if server {
            server_params()
        } else {
            RunParams::from_env()
        };
        let configs = configs_for(server);
        let mut cfg_refs: Vec<&SystemConfig> = vec![&base_cfg];
        cfg_refs.extend(configs.iter().map(|(_, c)| c));
        let grid = run_grid(&cfg_refs, &makers, &params);
        let mut cells = vec![group.to_string()];
        for c in 1..cfg_refs.len() {
            let speedups: Vec<f64> = grid
                .iter()
                .map(|row| {
                    row[c]
                        .result
                        .speedup_vs(&row[0].result)
                        .expect("same workload, same core count")
                })
                .collect();
            cells.push(format!("{:.3}", geomean(&speedups)));
        }
        t.row(&cells);
    }
    println!(
        "== Figure 25: EPD and inclusive LLC designs (normalised to non-inclusive 1x baseline) =="
    );
    print!("{}", t.render());
    println!(
        "paper shape: the EPD baseline beats the non-inclusive baseline (better\n\
         space utilisation); ZeroDEV-EPD tracks its baseline within 1-2% when it\n\
         has a 1/2x-1x directory but loses without one (no fusion possible in an\n\
         EPD LLC); inclusive ZeroDEV without a directory tracks the inclusive\n\
         baseline within 1-2%."
    );
}
