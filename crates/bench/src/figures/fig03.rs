//! Figure 3: normalised traffic, core cache misses, and speedup of the
//! multi-threaded applications under an unbounded directory (PARSEC shown
//! per-application; SPLASH2X / SPEC OMP / FFTW as suite averages, as in the
//! paper).

use crate::{baseline, makers_of, mt_makers, mt_suites, run_grid_env, unbounded};
use zerodev_common::table::{mean, Table};

pub fn run() {
    let base_cfg = baseline();
    let unb_cfg = unbounded();
    let mut t = Table::new(&["workload", "traffic", "misses", "speedup", "d-mpki"]);
    for (suite, apps) in mt_suites() {
        let workloads = mt_makers(&apps, 8);
        let grid = run_grid_env(&[&base_cfg, &unb_cfg], &makers_of(&workloads));
        let (mut traf, mut miss, mut spd) = (Vec::new(), Vec::new(), Vec::new());
        for ((app, _), row) in workloads.iter().zip(&grid) {
            let (b, u) = (&row[0], &row[1]);
            let tr =
                u.stats.total_traffic_bytes() as f64 / b.stats.total_traffic_bytes().max(1) as f64;
            let mr = u.stats.core_cache_misses as f64 / b.stats.core_cache_misses.max(1) as f64;
            let sp = u
                .result
                .speedup_vs(&b.result)
                .expect("same workload, same core count");
            if suite == "PARSEC" {
                let dm = (b.misses_per_kilo_instr() - u.misses_per_kilo_instr()).max(0.0);
                t.row(&[
                    (*app).to_string(),
                    format!("{tr:.3}"),
                    format!("{mr:.3}"),
                    format!("{sp:.3}"),
                    format!("{dm:.2}"),
                ]);
            }
            traf.push(tr);
            miss.push(mr);
            spd.push(sp);
        }
        t.row(&[
            format!("{suite}-AVG"),
            format!("{:.3}", mean(&traf)),
            format!("{:.3}", mean(&miss)),
            format!("{:.3}", mean(&spd)),
            String::new(),
        ]);
    }
    println!("== Figure 3: multi-threaded applications, unbounded vs 1x directory ==");
    print!("{}", t.render());
    println!(
        "paper shape: a 1x directory is adequate for these suites (speedups ~1.0);\n\
         freqmine *loses* with the unbounded directory because baseline DEVs\n\
         pre-clean its dirty blocks into the LLC."
    );
}
