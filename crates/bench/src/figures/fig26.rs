//! Figure 26: comparison with the Multi-grain Directory (MgD). MgD at
//! 1/8×, 1/16×, and 1/32× sizes against ZeroDEV at 1×, 1/8×, and no
//! directory — all on the non-inclusive LLC, normalised to the 1× baseline.
//!
//! CPU-RATE and CPU-HET are subsampled (every third workload).

use crate::{baseline, mt, mt_suites, rate8, run_grid_env, wl, zerodev_trio, Maker, SEED};
use zerodev_common::config::{DirectoryKind, Ratio};
use zerodev_common::table::{geomean, Table};
use zerodev_common::SystemConfig;
use zerodev_workloads::{hetero_mix, suites};

fn mgd(num: u32, den: u32) -> SystemConfig {
    let mut cfg = baseline();
    cfg.directory = DirectoryKind::MultiGrain {
        ratio: Ratio::new(num, den),
        ways: 8,
    };
    cfg
}

pub fn run() {
    let mut configs: Vec<(&str, SystemConfig)> = vec![
        ("MgD+1/8x", mgd(1, 8)),
        ("MgD+1/16x", mgd(1, 16)),
        ("MgD+1/32x", mgd(1, 32)),
    ];
    configs.extend(zerodev_trio());
    let labels: Vec<&str> = configs.iter().map(|(n, _)| *n).collect();
    let mut header = vec!["group"];
    header.extend(labels.iter());
    let mut t = Table::new(&header);

    let mut groups: Vec<(&str, Vec<Maker>)> = Vec::new();
    for (suite, apps) in mt_suites() {
        let makers: Vec<Maker> = apps.iter().map(|&a| wl(move || mt(a, 8))).collect();
        groups.push((suite, makers));
    }
    groups.push((
        "CPU-RATE",
        suites::CPU2017
            .iter()
            .step_by(3)
            .map(|&a| wl(move || rate8(a)))
            .collect(),
    ));
    groups.push((
        "CPU-HET",
        (0..36)
            .step_by(3)
            .map(|i| wl(move || hetero_mix(i, 8, SEED)))
            .collect(),
    ));

    let base_cfg = baseline();
    let mut cfg_refs: Vec<&SystemConfig> = vec![&base_cfg];
    cfg_refs.extend(configs.iter().map(|(_, c)| c));
    for (group, makers) in groups {
        let grid = run_grid_env(&cfg_refs, &makers);
        let mut cells = vec![group.to_string()];
        for c in 1..cfg_refs.len() {
            let speedups: Vec<f64> = grid
                .iter()
                .map(|row| {
                    row[c]
                        .result
                        .speedup_vs(&row[0].result)
                        .expect("same workload, same core count")
                })
                .collect();
            cells.push(format!("{:.3}", geomean(&speedups)));
        }
        t.row(&cells);
    }
    println!("== Figure 26: Multi-grain Directory vs ZeroDEV (normalised to 1x baseline) ==");
    print!("{}", t.render());
    println!(
        "paper shape: MgD at 1/8x roughly matches the 1x baseline, then degrades\n\
         as the directory shrinks (but much more gracefully than the baseline);\n\
         ZeroDEV stays within ~1% at every size, so the gap widens as the\n\
         directory shrinks."
    );
}
