//! Table I: the simulated-machine parameters (one socket).

pub fn run() {
    println!("== Table I: baseline simulation environment (one socket) ==\n");
    print!("{}", crate::baseline().describe());
    println!("\n== 128-core server machine ==\n");
    print!(
        "{}",
        zerodev_common::SystemConfig::server_128core().describe()
    );
    println!("\n== Four-socket machine (Section V) ==\n");
    print!("{}", zerodev_common::SystemConfig::four_socket().describe());
}
