//! Figure 17: comparison between the SpillAll, FusePrivateSpillShared
//! (FPSS) and FuseAll directory-entry caching policies on the 8-core
//! single-socket system. ZeroDEV runs with **no** sparse directory (to
//! maximise the directory footprint in the LLC) and the dataLRU policy.
//! Speedups are normalised to the 1× baseline; the annotation is the
//! minimum speedup within each suite.

use crate::{baseline, makers_of, run_grid_env, suite_groups_mt_rate, zerodev_nodir};
use zerodev_common::config::{LlcReplacement, SpillPolicy};
use zerodev_common::table::{geomean, Table};
use zerodev_common::SystemConfig;

pub fn run() {
    let base_cfg = baseline();
    let policies: Vec<SystemConfig> = [
        SpillPolicy::SpillAll,
        SpillPolicy::FusePrivateSpillShared,
        SpillPolicy::FuseAll,
    ]
    .iter()
    .map(|&p| zerodev_nodir(p, LlcReplacement::DataLru))
    .collect();
    let mut cfg_refs: Vec<&SystemConfig> = vec![&base_cfg];
    cfg_refs.extend(policies.iter());
    let mut t = Table::new(&[
        "suite",
        "SpillAll",
        "FPSS",
        "FuseAll",
        "min(SpillAll/FPSS/FuseAll)",
    ]);
    for (suite, workloads) in suite_groups_mt_rate() {
        let grid = run_grid_env(&cfg_refs, &makers_of(&workloads));
        let mut cells = vec![suite.to_string()];
        let mut mins = Vec::new();
        for c in 1..cfg_refs.len() {
            let speedups: Vec<f64> = grid
                .iter()
                .map(|row| {
                    row[c]
                        .result
                        .speedup_vs(&row[0].result)
                        .expect("same workload, same core count")
                })
                .collect();
            mins.push(speedups.iter().copied().fold(f64::INFINITY, f64::min));
            cells.push(format!("{:.3}", geomean(&speedups)));
        }
        cells.push(format!("{:.2}/{:.2}/{:.2}", mins[0], mins[1], mins[2]));
        t.row(&cells);
    }
    println!("== Figure 17: SpillAll vs FPSS vs FuseAll (ZeroDEV, no directory, dataLRU) ==");
    print!("{}", t.render());
    println!(
        "paper shape: SpillAll worst; FPSS and FuseAll close on average but FPSS\n\
         has clearly better minimum speedups (FuseAll lengthens shared reads)."
    );
}
