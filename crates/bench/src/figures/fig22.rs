//! Figure 22: sensitivity to LLC capacity — 4 MB and 16 MB shared LLCs
//! (both 16-way), all normalised to the 8 MB baseline. At 16 MB ZeroDEV
//! needs no directory; at 4 MB it gets a 1/4× sparse-directory assist.

use crate::{
    baseline, makers_of, run_grid_env, suite_groups_mt_rate, zerodev_default_nodir, zerodev_sparse,
};
use zerodev_common::config::CacheGeometry;
use zerodev_common::table::{geomean, Table};
use zerodev_common::SystemConfig;

fn with_llc_mb(mut cfg: SystemConfig, mb: usize) -> SystemConfig {
    cfg.llc = CacheGeometry::new(mb << 20, 16);
    cfg.validate().expect("valid capacity");
    cfg
}

pub fn run() {
    let base8 = baseline();
    let configs: Vec<SystemConfig> = vec![
        with_llc_mb(baseline(), 4),
        with_llc_mb(zerodev_sparse(1, 4), 4),
        with_llc_mb(baseline(), 16),
        with_llc_mb(zerodev_default_nodir(), 16),
    ];
    let mut cfg_refs: Vec<&SystemConfig> = vec![&base8];
    cfg_refs.extend(configs.iter());
    let mut t = Table::new(&["suite", "Base4MB", "ZD4MB+1/4x", "Base16MB", "ZD16MB+NoDir"]);
    for (suite, workloads) in suite_groups_mt_rate() {
        let grid = run_grid_env(&cfg_refs, &makers_of(&workloads));
        let mut cells = vec![suite.to_string()];
        for c in 1..cfg_refs.len() {
            let speedups: Vec<f64> = grid
                .iter()
                .map(|row| {
                    row[c]
                        .result
                        .speedup_vs(&row[0].result)
                        .expect("same workload, same core count")
                })
                .collect();
            cells.push(format!("{:.3}", geomean(&speedups)));
        }
        t.row(&cells);
    }
    println!("== Figure 22: 4 MB / 16 MB LLC sensitivity (normalised to 8 MB baseline) ==");
    print!("{}", t.render());
    println!(
        "paper shape: ZeroDEV tracks its same-capacity baseline within ~1% at both\n\
         capacities (the 4 MB point needs the small sparse-directory assist)."
    );
}
