//! Figure 4: performance impact of sparse directory size. Per suite, the
//! speedup (normalised to the 1× baseline) of 1/2×, 1/8×, and 1/32× sparse
//! directories.

use crate::{baseline, makers_of, run_grid_env, sparse, suite_groups_mt_rate};
use zerodev_common::table::{geomean, Table};
use zerodev_common::SystemConfig;

pub fn run() {
    let base_cfg = baseline();
    let sized: Vec<SystemConfig> = [(1u32, 2u32), (1, 8), (1, 32)]
        .iter()
        .map(|&(num, den)| sparse(num, den))
        .collect();
    let mut cfg_refs: Vec<&SystemConfig> = vec![&base_cfg];
    cfg_refs.extend(sized.iter());
    let mut t = Table::new(&["suite", "1/2x", "1/8x", "1/32x"]);
    for (suite, workloads) in suite_groups_mt_rate() {
        let grid = run_grid_env(&cfg_refs, &makers_of(&workloads));
        let mut cells = vec![suite.to_string()];
        for c in 1..cfg_refs.len() {
            let speedups: Vec<f64> = grid
                .iter()
                .map(|row| {
                    row[c]
                        .result
                        .speedup_vs(&row[0].result)
                        .expect("same workload, same core count")
                })
                .collect();
            cells.push(format!("{:.3}", geomean(&speedups)));
        }
        t.row(&cells);
    }
    println!("== Figure 4: speedup vs sparse directory size (normalised to 1x) ==");
    print!("{}", t.render());
    println!("paper shape: gradual decline with shrinking directory; 1/32x worst (~0.6-0.9).");
}
