//! Figure 21: performance of ZeroDEV on the 36 SPEC CPU 2017 rate
//! workloads with three directory configurations (1×, 1/8×, none),
//! normalised weighted speedup against the 1× baseline.

use crate::{per_app_speedups, print_norm_table, rate_makers, zerodev_trio};
use zerodev_workloads::suites;

pub fn run() {
    let configs = zerodev_trio();
    let rows = per_app_speedups(&rate_makers(&suites::CPU2017), &configs);
    print_norm_table(
        "Figure 21: ZeroDEV on SPEC CPU 2017 rate (normalised weighted speedup)",
        &["ZD+1x", "ZD+1/8x", "ZD+NoDir"],
        &rows,
    );
    println!("paper shape: within ~1% of baseline on average; cam4 worst at ~2% slowdown.");
}
