//! Section V "Energy Expense": sparse-directory + LLC energy of ZeroDEV
//! without a sparse directory, relative to the baseline (non-inclusive LLC
//! + 1× directory). The paper's CACTI estimate is ~9% average savings.

use crate::{
    baseline, mt_makers, mt_suites, rate8, run_grid_env, wl, zerodev_default_nodir, Maker,
};
use zerodev_common::table::{mean, Table};
use zerodev_workloads::suites;

pub fn run() {
    let base_cfg = baseline();
    let zd_cfg = zerodev_default_nodir();
    let mut t = Table::new(&["suite", "dir+LLC energy (ZD/base)", "saving %"]);
    let mut groups: Vec<(&str, Vec<Maker>)> = mt_suites()
        .into_iter()
        .map(|(s, apps)| (s, mt_makers(&apps, 8).into_iter().map(|(_, m)| m).collect()))
        .collect();
    groups.push((
        "CPU2017RATE",
        suites::CPU2017
            .iter()
            .step_by(3)
            .map(|&a| wl(move || rate8(a)))
            .collect(),
    ));
    let mut all_savings = Vec::new();
    for (suite, makers) in groups {
        let grid = run_grid_env(&[&base_cfg, &zd_cfg], &makers);
        let ratios: Vec<f64> = grid
            .iter()
            .map(|row| row[1].energy.total_nj() / row[0].energy.total_nj().max(1e-9))
            .collect();
        let r = mean(&ratios);
        all_savings.push(1.0 - r);
        t.row(&[
            suite.to_string(),
            format!("{r:.3}"),
            format!("{:.1}", (1.0 - r) * 100.0),
        ]);
    }
    t.row(&[
        "AVERAGE".into(),
        String::new(),
        format!("{:.1}", mean(&all_savings) * 100.0),
    ]);
    println!("== Energy: ZeroDEV (no directory) vs baseline, directory+LLC energy ==");
    print!("{}", t.render());
    println!("paper shape: ~9% average energy saving from eliminating the sparse directory.");
}
