//! Figure 23: ZeroDEV on the 36 heterogeneous multi-programmed workloads
//! (W1–W36) with three directory configurations, normalised weighted
//! speedup against the 1× baseline.

use crate::{per_app_speedups, print_norm_table, wl, zerodev_trio, Maker, SEED};
use zerodev_workloads::hetero_mix;

pub fn run() {
    let configs = zerodev_trio();
    let names: Vec<String> = (0..36).map(|i| format!("W{}", i + 1)).collect();
    let makers: Vec<(&str, Maker)> = names
        .iter()
        .enumerate()
        .map(|(i, n)| (n.as_str(), wl(move || hetero_mix(i, 8, SEED))))
        .collect();
    let rows = per_app_speedups(&makers, &configs);
    print_norm_table(
        "Figure 23: ZeroDEV on heterogeneous multi-programmed mixes",
        &["ZD+1x", "ZD+1/8x", "ZD+NoDir"],
        &rows,
    );
    println!(
        "paper shape: individual slowdowns at most ~2%; all three configurations\n\
         within ~1% of the 1x baseline on average."
    );
}
