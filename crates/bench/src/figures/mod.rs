//! Library form of every figure harness. Each submodule exposes `run()`
//! printing the same table its `src/bin/figNN` wrapper used to print; the
//! binaries are now one-line wrappers so `all_figures` can execute every
//! figure in one process and share the sweep engine's baseline memoization
//! cache across figures.

pub mod fig02;
pub mod fig03;
pub mod fig04;
pub mod fig05;
pub mod fig06;
pub mod fig17;
pub mod fig18;
pub mod fig19;
pub mod fig20;
pub mod fig21;
pub mod fig22;
pub mod fig23;
pub mod fig24;
pub mod fig25;
pub mod fig26;
pub mod fig27;
pub mod fig_energy;
pub mod fig_multisocket;
pub mod fig_table1;

/// Every figure, in the order `all_figures` reproduces them.
pub const ALL: &[(&str, fn())] = &[
    ("fig_table1", fig_table1::run),
    ("fig02", fig02::run),
    ("fig03", fig03::run),
    ("fig04", fig04::run),
    ("fig05", fig05::run),
    ("fig06", fig06::run),
    ("fig17", fig17::run),
    ("fig18", fig18::run),
    ("fig19", fig19::run),
    ("fig20", fig20::run),
    ("fig21", fig21::run),
    ("fig22", fig22::run),
    ("fig23", fig23::run),
    ("fig24", fig24::run),
    ("fig25", fig25::run),
    ("fig26", fig26::run),
    ("fig27", fig27::run),
    ("fig_energy", fig_energy::run),
    ("fig_multisocket", fig_multisocket::run),
];
