//! Figure 19: performance of ZeroDEV on the PARSEC suite with three
//! directory configurations (1×, 1/8×, and no directory), normalised to
//! the baseline with a 1× sparse directory.

use crate::{mt_makers, per_app_speedups, print_norm_table, zerodev_trio};
use zerodev_workloads::suites;

pub fn run() {
    let configs = zerodev_trio();
    let rows = per_app_speedups(&mt_makers(&suites::PARSEC, 8), &configs);
    print_norm_table(
        "Figure 19: ZeroDEV on PARSEC (normalised to 1x baseline)",
        &["ZD+1x", "ZD+1/8x", "ZD+NoDir"],
        &rows,
    );
    println!(
        "paper shape: nearly invariant of the directory size; within ~1% of the\n\
         baseline on average; freqmine has the largest slowdown."
    );
}
