//! Figure 5: projected LLC occupancy of spilled directory entries — how
//! many directory entries a 1× sparse directory cannot accommodate (set
//! conflicts), each spilled into one full LLC block, as a percentage of
//! LLC blocks.
//!
//! Measured directly: ZeroDEV with a replacement-disabled 1× directory and
//! the SpillAll policy (every overflow takes a full line); the high-water
//! mark of spilled lines is the projection. Per suite: the application
//! with the largest footprint and the average of the per-application
//! maxima.

use crate::{makers_of, run_grid_env, suite_groups_mt_rate};
use zerodev_common::config::{DirectoryKind, LlcReplacement, Ratio, SpillPolicy, ZeroDevConfig};
use zerodev_common::table::{mean, Table};
use zerodev_common::SystemConfig;

fn spill_probe_cfg() -> SystemConfig {
    SystemConfig::baseline_8core().with_zerodev(
        ZeroDevConfig {
            policy: SpillPolicy::SpillAll,
            llc_replacement: LlcReplacement::DataLru,
            ..Default::default()
        },
        DirectoryKind::Sparse {
            ratio: Ratio::ONE,
            ways: 8,
            replacement_disabled: true,
        },
    )
}

pub fn run() {
    let cfg = spill_probe_cfg();
    let llc_blocks = cfg.llc.lines() as f64;
    let mut t = Table::new(&["suite", "max-of-max %", "max app", "avg-of-max %"]);
    for (suite, workloads) in suite_groups_mt_rate() {
        let grid = run_grid_env(&[&cfg], &makers_of(&workloads));
        let mut maxima = Vec::new();
        let mut worst = (0.0f64, String::new());
        for ((app, _), row) in workloads.iter().zip(&grid) {
            let pct = row[0].stats.spilled_lines_max as f64 / llc_blocks * 100.0;
            if pct > worst.0 {
                worst = (pct, (*app).to_string());
            }
            maxima.push(pct);
        }
        t.row(&[
            suite.to_string(),
            format!("{:.1}", worst.0),
            worst.1,
            format!("{:.1}", mean(&maxima)),
        ]);
    }
    println!("== Figure 5: projected LLC occupancy of spilled directory entries ==");
    println!("(entries a 1x directory cannot hold, one full LLC line each)");
    print!("{}", t.render());
    println!(
        "paper shape: maximum occupancy around 12% of LLC blocks (< 2 of 16 ways),\n\
         average at most ~10%; led by the largest-footprint application per suite."
    );
}
