//! Figure 24: ZeroDEV on the trace-driven server workloads, evaluated on
//! the 128-core single-socket machine with a 32 MB LLC, with three
//! directory configurations, normalised to the 1× baseline.

use crate::{mt, print_norm_table, rows_vs_col0, run_grid, server_params, wl, Maker};
use zerodev_common::config::{DirectoryKind, Ratio, ZeroDevConfig};
use zerodev_common::SystemConfig;
use zerodev_workloads::suites;

fn server_base() -> SystemConfig {
    SystemConfig::server_128core()
}

fn server_zd(dir: DirectoryKind) -> SystemConfig {
    server_base().with_zerodev(ZeroDevConfig::default(), dir)
}

pub fn run() {
    let base_cfg = server_base();
    let configs = [
        server_zd(DirectoryKind::Sparse {
            ratio: Ratio::ONE,
            ways: 8,
            replacement_disabled: true,
        }),
        server_zd(DirectoryKind::Sparse {
            ratio: Ratio::new(1, 8),
            ways: 8,
            replacement_disabled: true,
        }),
        server_zd(DirectoryKind::None),
    ];
    let mut cfg_refs: Vec<&SystemConfig> = vec![&base_cfg];
    cfg_refs.extend(configs.iter());
    let makers: Vec<Maker> = suites::SERVER
        .iter()
        .map(|&a| wl(move || mt(a, 128)))
        .collect();
    let grid = run_grid(&cfg_refs, &makers, &server_params());
    let rows = rows_vs_col0(&suites::SERVER, &grid);
    print_norm_table(
        "Figure 24: server workloads on the 128-core machine",
        &["ZD+1x", "ZD+1/8x", "ZD+NoDir"],
        &rows,
    );
    println!(
        "paper shape: average within ~1% of baseline for all three configurations;\n\
         worst case ~1.4% (SPECWeb-S) without a directory."
    );
}
