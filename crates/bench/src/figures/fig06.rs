//! Figure 6: performance with reduced LLC associativity. Ways are removed
//! from every LLC set (keeping the set count fixed), modelling the capacity
//! a directory cached in the LLC would take. Speedups are normalised to the
//! 16-way baseline; the annotation is the worst application in each suite.

use crate::{baseline, makers_of, run_grid_env, suite_groups_mt_rate};
use zerodev_common::config::CacheGeometry;
use zerodev_common::table::{geomean, Table};
use zerodev_common::SystemConfig;

/// The baseline LLC with `ways` ways per set (same 1024 sets per bank).
fn reduced_llc(ways: usize) -> SystemConfig {
    let mut cfg = baseline();
    cfg.llc = CacheGeometry::new(ways * 512 * 1024, ways);
    cfg.validate().expect("reduced-way LLC is valid");
    cfg
}

pub fn run() {
    let base_cfg = baseline();
    let reduced: Vec<SystemConfig> = [15usize, 14, 13, 12]
        .iter()
        .map(|&w| reduced_llc(w))
        .collect();
    let mut cfg_refs: Vec<&SystemConfig> = vec![&base_cfg];
    cfg_refs.extend(reduced.iter());
    let mut t = Table::new(&[
        "suite",
        "15 ways",
        "14 ways",
        "13 ways",
        "12 ways",
        "worst app @12",
    ]);
    for (suite, workloads) in suite_groups_mt_rate() {
        let grid = run_grid_env(&cfg_refs, &makers_of(&workloads));
        let mut cells = vec![suite.to_string()];
        let mut worst_at_12 = (f64::INFINITY, String::new());
        for (c, _ways) in [15usize, 14, 13, 12].iter().enumerate() {
            let mut speedups = Vec::new();
            for ((app, _), row) in workloads.iter().zip(&grid) {
                let s = row[c + 1]
                    .result
                    .speedup_vs(&row[0].result)
                    .expect("same workload, same core count");
                if c == 3 && s < worst_at_12.0 {
                    worst_at_12 = (s, (*app).to_string());
                }
                speedups.push(s);
            }
            cells.push(format!("{:.3}", geomean(&speedups)));
        }
        cells.push(format!("{} ({:.2})", worst_at_12.1, worst_at_12.0));
        t.row(&cells);
    }
    println!("== Figure 6: performance with reduced LLC associativity ==");
    print!("{}", t.render());
    println!(
        "paper shape: losing 2 ways costs at most ~3% on average, but the worst\n\
         applications (vips, lu_ncb, 330.art, gcc.ppO2) lose 5-14%; at 12 ways the\n\
         worst-case losses reach 9-22%."
    );
}
