//! Figure 27: comparison with SecDir. Iso-storage SecDir at 1× and 1/8×
//! (plus the baseline at 1/8× for reference) against ZeroDEV at 1×, 1/8×,
//! and no directory — normalised to the 1× baseline. The min-speedup
//! annotations expose SecDir's private-partition fragmentation.
//!
//! CPU-RATE and CPU-HET are subsampled (every third workload); the SERVER
//! group runs on the 128-core machine with its iso-storage geometries.

use crate::{
    baseline, column_min, mt, mt_suites, rate8, rows_vs_col0, run_grid, server_params, sparse, wl,
    zerodev_trio, Maker, SEED,
};
use zerodev_common::config::{DirectoryKind, Ratio, ZeroDevConfig};
use zerodev_common::table::{geomean, Table};
use zerodev_common::SystemConfig;
use zerodev_core::DirStore;
use zerodev_sim::runner::RunParams;
use zerodev_workloads::{hetero_mix, suites};

fn secdir_cfg(base: &SystemConfig, eighth: bool) -> SystemConfig {
    let mut cfg = base.clone();
    cfg.directory = DirectoryKind::SecDir(DirStore::secdir_geometry(cfg.cores, eighth));
    cfg
}

pub fn run() {
    let mut groups: Vec<(&str, Vec<Maker>, bool)> = Vec::new();
    for (suite, apps) in mt_suites() {
        let makers: Vec<Maker> = apps.iter().map(|&a| wl(move || mt(a, 8))).collect();
        groups.push((suite, makers, false));
    }
    groups.push((
        "CPU-RATE",
        suites::CPU2017
            .iter()
            .step_by(3)
            .map(|&a| wl(move || rate8(a)))
            .collect(),
        false,
    ));
    groups.push((
        "CPU-HET",
        (0..36)
            .step_by(3)
            .map(|i| wl(move || hetero_mix(i, 8, SEED)))
            .collect(),
        false,
    ));
    groups.push((
        "SERVER",
        suites::SERVER
            .iter()
            .map(|&a| wl(move || mt(a, 128)))
            .collect(),
        true,
    ));

    let labels = [
        "SecDir+1x",
        "Base+1/8x",
        "SecDir+1/8x",
        "ZD+1x",
        "ZD+1/8x",
        "ZD+NoDir",
    ];
    let mut header = vec!["group"];
    header.extend(labels.iter());
    header.push("min(SecDir1x/SecDir8th/ZD-NoDir)");
    let mut t = Table::new(&header);

    for (group, makers, server) in groups {
        let base_cfg = if server {
            SystemConfig::server_128core()
        } else {
            baseline()
        };
        let configs: Vec<(&str, SystemConfig)> = if server {
            let zd =
                |dir: DirectoryKind| base_cfg.clone().with_zerodev(ZeroDevConfig::default(), dir);
            let sp = |num, den| DirectoryKind::Sparse {
                ratio: Ratio::new(num, den),
                ways: 8,
                replacement_disabled: true,
            };
            vec![
                ("SecDir+1x", secdir_cfg(&base_cfg, false)),
                (
                    "Base+1/8x",
                    base_cfg.clone().with_sparse_dir(Ratio::new(1, 8)),
                ),
                ("SecDir+1/8x", secdir_cfg(&base_cfg, true)),
                ("ZD+1x", zd(sp(1, 1))),
                ("ZD+1/8x", zd(sp(1, 8))),
                ("ZD+NoDir", zd(DirectoryKind::None)),
            ]
        } else {
            let mut v = vec![
                ("SecDir+1x", secdir_cfg(&base_cfg, false)),
                ("Base+1/8x", sparse(1, 8)),
                ("SecDir+1/8x", secdir_cfg(&base_cfg, true)),
            ];
            v.extend(zerodev_trio());
            v
        };
        let params = if server {
            server_params()
        } else {
            RunParams::from_env()
        };
        let mut cfg_refs: Vec<&SystemConfig> = vec![&base_cfg];
        cfg_refs.extend(configs.iter().map(|(_, c)| c));
        let grid = run_grid(&cfg_refs, &makers, &params);
        let names: Vec<&str> = makers.iter().map(|_| "").collect();
        let rows = rows_vs_col0(&names, &grid);
        let mut cells = vec![group.to_string()];
        for c in 0..configs.len() {
            cells.push(format!(
                "{:.3}",
                geomean(&rows.iter().map(|r| r.values[c]).collect::<Vec<_>>())
            ));
        }
        cells.push(format!(
            "{:.2}/{:.2}/{:.2}",
            column_min(&rows, 0),
            column_min(&rows, 2),
            column_min(&rows, 5)
        ));
        t.row(&cells);
    }
    println!("== Figure 27: SecDir vs ZeroDEV (normalised to 1x baseline) ==");
    print!("{}", t.render());
    println!(
        "paper shape: SecDir loses performance as the directory shrinks (internal\n\
         fragmentation in the private partitions, severe on 128 cores); ZeroDEV is\n\
         insensitive to directory size and its minimum speedups stay near 1."
    );
}
