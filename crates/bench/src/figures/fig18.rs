//! Figure 18: comparison between the spLRU and dataLRU LLC replacement
//! extensions for ZeroDEV (no sparse directory) at 8 MB and at a
//! capacity-constrained 4 MB LLC. All results normalised to the 8 MB
//! baseline; Base4MB (plain LRU baseline at 4 MB) is shown for reference.

use crate::{baseline, makers_of, run_grid_env, suite_groups_mt_rate, zerodev_nodir};
use zerodev_common::config::{CacheGeometry, LlcReplacement, SpillPolicy};
use zerodev_common::table::{geomean, Table};
use zerodev_common::SystemConfig;

fn with_llc_mb(mut cfg: SystemConfig, mb: usize) -> SystemConfig {
    cfg.llc = CacheGeometry::new(mb << 20, 16);
    cfg.validate().expect("valid LLC capacity");
    cfg
}

pub fn run() {
    let base8 = baseline();
    let configs: Vec<SystemConfig> = vec![
        zerodev_nodir(SpillPolicy::FusePrivateSpillShared, LlcReplacement::SpLru),
        zerodev_nodir(SpillPolicy::FusePrivateSpillShared, LlcReplacement::DataLru),
        with_llc_mb(baseline(), 4),
        with_llc_mb(
            zerodev_nodir(SpillPolicy::FusePrivateSpillShared, LlcReplacement::SpLru),
            4,
        ),
        with_llc_mb(
            zerodev_nodir(SpillPolicy::FusePrivateSpillShared, LlcReplacement::DataLru),
            4,
        ),
    ];
    let mut cfg_refs: Vec<&SystemConfig> = vec![&base8];
    cfg_refs.extend(configs.iter());
    let mut t = Table::new(&["suite", "sp8MB", "data8MB", "Base4MB", "sp4MB", "data4MB"]);
    for (suite, workloads) in suite_groups_mt_rate() {
        let grid = run_grid_env(&cfg_refs, &makers_of(&workloads));
        let mut cells = vec![suite.to_string()];
        for c in 1..cfg_refs.len() {
            let speedups: Vec<f64> = grid
                .iter()
                .map(|row| {
                    row[c]
                        .result
                        .speedup_vs(&row[0].result)
                        .expect("same workload, same core count")
                })
                .collect();
            cells.push(format!("{:.3}", geomean(&speedups)));
        }
        t.row(&cells);
    }
    println!("== Figure 18: spLRU vs dataLRU (normalised to the 8 MB baseline) ==");
    print!("{}", t.render());
    println!(
        "paper shape: dataLRU beats spLRU across the board; the gap widens at the\n\
         capacity-constrained 4 MB LLC because spLRU leaves fused entries exposed."
    );
}
