//! Section V "Multi-socket Evaluation": a four-socket machine (each socket
//! eight cores with an 8 MB non-inclusive LLC). ZeroDEV without an
//! intra-socket sparse directory against the 1× baseline, plus the
//! corrupted-block statistics the paper reports in §III-D3 (<0.5% of DRAM
//! writes from directory-entry eviction; <0.05% of LLC read misses to
//! corrupted blocks).

use crate::{mt, run_grid_env, wl, Maker, SEED};
use zerodev_common::config::{DirectoryKind, ZeroDevConfig};
use zerodev_common::table::{geomean, mean, Table};
use zerodev_common::SystemConfig;
use zerodev_workloads::{hetero_mix, rate, suites};

pub fn run() {
    let base_cfg = SystemConfig::four_socket();
    let zd_cfg =
        SystemConfig::four_socket().with_zerodev(ZeroDevConfig::default(), DirectoryKind::None);
    let total_cores = 32;

    let mut t = Table::new(&[
        "group",
        "ZD+NoDir speedup",
        "wbde/DRAM-wr %",
        "corrupt-read/miss %",
    ]);
    let mut groups: Vec<(&str, Vec<Maker>)> = Vec::new();
    let mt_apps = [
        "canneal", "freqmine", "vips", "ocean_cp", "fft", "330.art", "FFTW",
    ];
    groups.push((
        "MT(32-thread)",
        mt_apps
            .iter()
            .map(|&a| wl(move || mt(a, total_cores)))
            .collect(),
    ));
    groups.push((
        "CPU-RATE(32-copy)",
        suites::CPU2017
            .iter()
            .step_by(6)
            .map(|&a| wl(move || rate(a, total_cores, SEED).unwrap()))
            .collect(),
    ));
    groups.push((
        "CPU-HET(32-app)",
        (0..6usize)
            .map(|i| wl(move || hetero_mix(i, total_cores, SEED)))
            .collect(),
    ));

    for (group, makers) in groups {
        let grid = run_grid_env(&[&base_cfg, &zd_cfg], &makers);
        let mut speedups = Vec::new();
        let mut wbde_pct = Vec::new();
        let mut corrupt_pct = Vec::new();
        for row in &grid {
            let (b, z) = (&row[0], &row[1]);
            speedups.push(
                z.result
                    .speedup_vs(&b.result)
                    .expect("same workload, same core count"),
            );
            wbde_pct
                .push(z.stats.dram_writes_dir as f64 * 100.0 / z.stats.dram_writes.max(1) as f64);
            corrupt_pct.push(
                z.stats.llc_read_misses_corrupted as f64 * 100.0 / z.stats.llc_misses.max(1) as f64,
            );
        }
        t.row(&[
            group.to_string(),
            format!("{:.3}", geomean(&speedups)),
            format!("{:.2}", mean(&wbde_pct)),
            format!("{:.3}", mean(&corrupt_pct)),
        ]);
    }
    println!("== Multi-socket (4 x 8 cores): ZeroDEV without intra-socket directory ==");
    print!("{}", t.render());
    println!(
        "paper shape: ZeroDEV-NoDir within ~1.6% of the 1x baseline on average;\n\
         <0.5% of DRAM writes from directory-entry eviction; a very small\n\
         fraction of LLC read misses touch corrupted blocks."
    );
}
