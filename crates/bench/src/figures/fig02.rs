//! Figure 2: normalised interconnect traffic, core cache misses, and
//! weighted speedup of the eight-way rate (homogeneous) multi-programmed
//! workloads when going from the 1× sparse directory to an
//! unlimited-capacity directory. The last column is the paper's bar-top
//! annotation: core-cache misses saved per kilo-instruction.

use crate::{baseline, makers_of, rate_makers, run_grid_env, unbounded};
use zerodev_common::table::{mean, Table};
use zerodev_workloads::suites;

pub fn run() {
    let base_cfg = baseline();
    let unb_cfg = unbounded();
    let workloads = rate_makers(&suites::CPU2017);
    let grid = run_grid_env(&[&base_cfg, &unb_cfg], &makers_of(&workloads));
    let mut t = Table::new(&["app", "traffic", "misses", "speedup", "d-mpki"]);
    let (mut traf, mut miss, mut spd) = (Vec::new(), Vec::new(), Vec::new());
    for ((app, _), row) in workloads.iter().zip(&grid) {
        let (b, u) = (&row[0], &row[1]);
        let tr = u.stats.total_traffic_bytes() as f64 / b.stats.total_traffic_bytes().max(1) as f64;
        let mr = u.stats.core_cache_misses as f64 / b.stats.core_cache_misses.max(1) as f64;
        let sp = u
            .result
            .speedup_vs(&b.result)
            .expect("same workload, same core count");
        let dm = (b.misses_per_kilo_instr() - u.misses_per_kilo_instr()).max(0.0);
        t.row(&[
            (*app).to_string(),
            format!("{tr:.3}"),
            format!("{mr:.3}"),
            format!("{sp:.3}"),
            format!("{dm:.2}"),
        ]);
        traf.push(tr);
        miss.push(mr);
        spd.push(sp);
    }
    t.row(&[
        "AVERAGE".into(),
        format!("{:.3}", mean(&traf)),
        format!("{:.3}", mean(&miss)),
        format!("{:.3}", mean(&spd)),
        String::new(),
    ]);
    println!("== Figure 2: 1x sparse directory vs unbounded directory (CPU2017 rate) ==");
    println!("(values are unbounded normalised to the 1x baseline)");
    print!("{}", t.render());
    println!(
        "paper shape: average speedup under 1.01; ~10% traffic and ~15% miss savings;\n\
         xalancbmk is the outlier with the largest saved-misses-per-kilo-instruction."
    );
}
