//! The `BENCH_<pr>.json` throughput report: a machine-readable record of
//! how fast the simulator runs, committed at the repo root once per PR so
//! the trajectory is visible in history and CI can gate on regressions.
//!
//! Two kinds of numbers live in a report:
//!
//! * **Full-run numbers** — whatever the `all_figures` reproduction that
//!   emitted the report actually did (simulated cycles/s, references
//!   retired/s, memo hit rate, per-figure wall time). These depend on the
//!   quick/full mode and thread count of that run, so they describe the
//!   run, not the machine.
//! * **Gate numbers** (`gate_*` keys) — a fixed, serial, standardized probe
//!   ([`measure_gate`]) re-runnable in seconds. The CI perf gate
//!   (`perf_gate` binary, wired into `scripts/ci.sh`) re-measures the probe
//!   and compares it against the committed report, so the comparison is
//!   always apples-to-apples regardless of how the report's full run was
//!   configured.
//!
//! JSON is hand-rolled (the tier-1 build graph stays dependency-free): the
//! writer emits a flat object plus a `figures` array, and the reader is a
//! key scanner that only understands the flat top-level keys — exactly what
//! the gate needs.

use std::time::{Duration, Instant};
use zerodev_common::config::{LlcDesign, SpillPolicy};
use zerodev_common::SystemConfig;
use zerodev_model::config::tiny;
use zerodev_model::{explore, Limits};
use zerodev_sim::parallel::SweepSummary;
use zerodev_sim::runner::{run, RunParams};

/// Identifies the report format for future readers. `v2` added the sharded
/// gate probe (`gate_shard_serial_cycles_per_sec` /
/// `gate_sharded_cycles_per_sec`); the gate fields of `v1` are a strict
/// subset, so `perf_gate` accepts both.
pub const SCHEMA: &str = "zerodev-bench-v2";

/// The previous report format, still accepted as a gate baseline.
pub const SCHEMA_V1: &str = "zerodev-bench-v1";

/// Wall time and outcome of one figure inside an `all_figures` run.
#[derive(Clone, Debug)]
pub struct FigureTiming {
    /// Figure name (e.g. `fig19`).
    pub name: String,
    /// Wall-clock seconds the figure took.
    pub secs: f64,
    /// True when the figure panicked and was isolated.
    pub failed: bool,
}

/// The standardized serial probe the CI perf gate compares across commits.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GateNumbers {
    /// Simulated cycles per second of the fixed simulation probe.
    pub sim_cycles_per_sec: f64,
    /// References retired per second of the fixed simulation probe.
    pub refs_per_sec: f64,
    /// Model-checker states explored per second of the fixed exploration.
    pub mc_states_per_sec: f64,
    /// Simulated cycles per second of the fixed shard probe (the paper's
    /// four-socket machine) run serially — the denominator of the
    /// intra-run parallelism speedup. Schema v2; 0.0 in v1 baselines.
    pub shard_serial_cycles_per_sec: f64,
    /// The same probe at `ZERODEV_SHARDS=4`. Byte-identical results, so
    /// the ratio to the serial number is pure wall-clock speedup.
    /// Schema v2; 0.0 in v1 baselines.
    pub sharded_cycles_per_sec: f64,
}

/// One committed benchmark report.
#[derive(Clone, Debug)]
pub struct BenchReport {
    /// PR number the report belongs to (the `<pr>` in `BENCH_<pr>.json`).
    pub pr: u32,
    /// Sweep-engine worker count of the emitting run.
    pub threads: usize,
    /// True when the emitting run used the quick measurement window.
    pub quick: bool,
    /// Wall-clock seconds of the emitting run.
    pub wall_secs: f64,
    /// Aggregate sweep accounting of the emitting run.
    pub summary: SweepSummary,
    /// The standardized gate probe measured on the emitting machine.
    pub gate: GateNumbers,
    /// Per-figure wall times of the emitting run.
    pub figures: Vec<FigureTiming>,
}

impl BenchReport {
    /// Fraction of jobs served from the baseline memo cache.
    pub fn memo_hit_rate(&self) -> f64 {
        let total = self.summary.runs_executed + self.summary.cache_hits;
        self.summary.cache_hits as f64 / (total as f64).max(1.0)
    }

    /// Renders the report as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let elapsed = Duration::from_secs_f64(self.wall_secs.max(1e-9));
        let mut out = String::from("{\n");
        let mut field = |key: &str, val: String| {
            out.push_str(&format!("  \"{key}\": {val},\n"));
        };
        field("schema", format!("\"{SCHEMA}\""));
        field("pr", self.pr.to_string());
        field("threads", self.threads.to_string());
        field("quick", self.quick.to_string());
        field("wall_secs", fmt_f64(self.wall_secs));
        field("sim_cycles", self.summary.sim_cycles.to_string());
        field("refs_retired", self.summary.refs_retired.to_string());
        field(
            "sim_cycles_per_sec",
            fmt_f64(self.summary.cycles_per_sec(elapsed)),
        );
        field("refs_per_sec", fmt_f64(self.summary.refs_per_sec(elapsed)));
        field("runs_executed", self.summary.runs_executed.to_string());
        field("cache_hits", self.summary.cache_hits.to_string());
        field("memo_hit_rate", fmt_f64(self.memo_hit_rate()));
        field("failed_points", self.summary.failed.to_string());
        field(
            "gate_sim_cycles_per_sec",
            fmt_f64(self.gate.sim_cycles_per_sec),
        );
        field("gate_refs_per_sec", fmt_f64(self.gate.refs_per_sec));
        field(
            "gate_mc_states_per_sec",
            fmt_f64(self.gate.mc_states_per_sec),
        );
        field(
            "gate_shard_serial_cycles_per_sec",
            fmt_f64(self.gate.shard_serial_cycles_per_sec),
        );
        field(
            "gate_sharded_cycles_per_sec",
            fmt_f64(self.gate.sharded_cycles_per_sec),
        );
        out.push_str("  \"figures\": [\n");
        for (i, f) in self.figures.iter().enumerate() {
            let comma = if i + 1 < self.figures.len() { "," } else { "" };
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"secs\": {}, \"failed\": {}}}{comma}\n",
                f.name,
                fmt_f64(f.secs),
                f.failed
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Wall-clock speedup of the sharded gate probe over its serial twin
    /// (0.0 when the report predates the shard probe).
    pub fn shard_speedup(&self) -> f64 {
        if self.gate.shard_serial_cycles_per_sec <= 0.0 {
            return 0.0;
        }
        self.gate.sharded_cycles_per_sec / self.gate.shard_serial_cycles_per_sec
    }

    /// One-line human digest of the report (the `all_figures` stderr line).
    pub fn digest(&self) -> String {
        let elapsed = Duration::from_secs_f64(self.wall_secs.max(1e-9));
        format!(
            "BENCH pr{}: {:.1}M sim-cycles/s, {:.0}K refs/s (full run, {} threads); \
             gate {:.1}M cyc/s, {:.0}K refs/s, {:.0}K mc-states/s; \
             shard gate {:.1}M → {:.1}M cyc/s ({:.2}x at 4 shards); memo hit rate {:.0}%",
            self.pr,
            self.summary.cycles_per_sec(elapsed) / 1e6,
            self.summary.refs_per_sec(elapsed) / 1e3,
            self.threads,
            self.gate.sim_cycles_per_sec / 1e6,
            self.gate.refs_per_sec / 1e3,
            self.gate.mc_states_per_sec / 1e3,
            self.gate.shard_serial_cycles_per_sec / 1e6,
            self.gate.sharded_cycles_per_sec / 1e6,
            self.shard_speedup(),
            self.memo_hit_rate() * 100.0,
        )
    }
}

/// Formats a float with enough precision for a gate comparison and no
/// locale surprises.
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.4}")
    } else {
        "0.0".to_string()
    }
}

/// Reads the numeric value of a flat top-level `"key": <number>` pair out
/// of a report. Understands exactly what [`BenchReport::to_json`] writes;
/// returns `None` when the key is absent or non-numeric.
pub fn json_number(text: &str, key: &str) -> Option<f64> {
    json_number_required(text, key).ok()
}

/// What went wrong reading one gate-relevant field of a baseline report.
/// `perf_gate` surfaces this verbatim (field name plus problem) instead of
/// panicking on a hand-edited, truncated, or future-schema baseline.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FieldError {
    /// The flat top-level key that could not be read.
    pub field: String,
    /// Human-readable description of the problem.
    pub problem: String,
}

impl std::fmt::Display for FieldError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "field \"{}\" {}", self.field, self.problem)
    }
}

impl std::error::Error for FieldError {}

/// [`json_number`] with a structured error: distinguishes a missing key
/// from a malformed value so callers can report exactly what is bad.
pub fn json_number_required(text: &str, key: &str) -> Result<f64, FieldError> {
    let needle = format!("\"{key}\":");
    let Some(at) = text.find(&needle) else {
        return Err(FieldError {
            field: key.to_string(),
            problem: "is missing".to_string(),
        });
    };
    let rest = text[at + needle.len()..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().map_err(|_| FieldError {
        field: key.to_string(),
        problem: format!(
            "is not a number (found {:?})",
            rest.chars().take(12).collect::<String>()
        ),
    })
}

/// Reads the string value of a flat top-level `"key": "value"` pair
/// (e.g. the `schema` tag); `None` when absent or not a string.
pub fn json_string(text: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\":");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start().strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

/// The fixed simulation probe: two representative machines (the Table I
/// baseline and the paper's selected ZeroDEV configuration) each running
/// one multi-threaded workload serially for a fixed window. Kept small so
/// the gate finishes in seconds, and fixed forever so gate numbers compare
/// across commits.
fn gate_sim_probe() -> (u64, u64) {
    let params = RunParams {
        refs_per_core: 20_000,
        warmup_refs: 2_000,
        threads: 1,
        shards: 1,
        audit: false,
        faults: None,
        ..Default::default()
    };
    let mut cycles = 0u64;
    let mut refs = 0u64;
    for (cfg, app) in [
        (crate::baseline(), "ferret"),
        (crate::zerodev_default_nodir(), "canneal"),
    ] {
        let r = run(&cfg, crate::mt(app, 8), &params);
        cycles += r.result.completion_cycles;
        refs += r.result.refs_retired;
    }
    (cycles, refs)
}

/// The fixed intra-run-parallelism probe: the paper's four-socket machine
/// (32 cores, full-size LLC — the configuration whose wall clock dominates
/// full reproductions) running one multi-threaded workload. Measured with
/// identical parameters at `shards = 1` (the exact serial loop) and
/// `shards = 4`; the results are byte-identical, so the throughput ratio
/// is pure wall-clock speedup of the sharded driver.
fn gate_shard_probe(shards: usize) -> u64 {
    let params = RunParams {
        refs_per_core: 12_000,
        warmup_refs: 1_200,
        threads: 1,
        shards,
        audit: false,
        faults: None,
        ..Default::default()
    };
    let r = run(
        &SystemConfig::four_socket(),
        crate::mt("swaptions", 32),
        &params,
    );
    r.result.completion_cycles
}

/// Measures the standardized gate probe: best-of-3 timings of the fixed
/// simulation pair, the shard probe (serial and 4-shard), and a bounded
/// model-checker exploration (best-of-N filters scheduler noise, which
/// only ever slows a run down).
pub fn measure_gate() -> GateNumbers {
    let mut sim_best = GateNumbers {
        sim_cycles_per_sec: 0.0,
        refs_per_sec: 0.0,
        mc_states_per_sec: 0.0,
        shard_serial_cycles_per_sec: 0.0,
        sharded_cycles_per_sec: 0.0,
    };
    for _ in 0..3 {
        let t0 = Instant::now();
        let (cycles, refs) = gate_sim_probe();
        let dt = t0.elapsed().as_secs_f64().max(1e-9);
        if cycles as f64 / dt > sim_best.sim_cycles_per_sec {
            sim_best.sim_cycles_per_sec = cycles as f64 / dt;
            sim_best.refs_per_sec = refs as f64 / dt;
        }
    }
    for _ in 0..3 {
        let t0 = Instant::now();
        let cycles = gate_shard_probe(1);
        let dt = t0.elapsed().as_secs_f64().max(1e-9);
        sim_best.shard_serial_cycles_per_sec =
            sim_best.shard_serial_cycles_per_sec.max(cycles as f64 / dt);
    }
    for _ in 0..3 {
        let t0 = Instant::now();
        let cycles = gate_shard_probe(4);
        let dt = t0.elapsed().as_secs_f64().max(1e-9);
        sim_best.sharded_cycles_per_sec = sim_best.sharded_cycles_per_sec.max(cycles as f64 / dt);
    }
    let mc = tiny(
        SpillPolicy::FusePrivateSpillShared,
        LlcDesign::NonInclusive,
        2,
        1,
        2,
        2,
    );
    for _ in 0..3 {
        let t0 = Instant::now();
        let ex = explore(&mc, &Limits::quick());
        let dt = t0.elapsed().as_secs_f64().max(1e-9);
        sim_best.mc_states_per_sec = sim_best.mc_states_per_sec.max(ex.states as f64 / dt);
    }
    sim_best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchReport {
        BenchReport {
            pr: 6,
            threads: 4,
            quick: true,
            wall_secs: 120.5,
            summary: SweepSummary {
                runs_executed: 10,
                cache_hits: 5,
                failed: 0,
                sim_cycles: 1_000_000,
                refs_retired: 40_000,
                busy: Duration::from_secs(300),
            },
            gate: GateNumbers {
                sim_cycles_per_sec: 5.5e6,
                refs_per_sec: 2.5e5,
                mc_states_per_sec: 1.25e4,
                shard_serial_cycles_per_sec: 1.0e7,
                sharded_cycles_per_sec: 2.0e7,
            },
            figures: vec![
                FigureTiming {
                    name: "fig02".into(),
                    secs: 1.5,
                    failed: false,
                },
                FigureTiming {
                    name: "fig19".into(),
                    secs: 30.25,
                    failed: true,
                },
            ],
        }
    }

    #[test]
    fn json_round_trips_through_the_extractor() {
        let r = sample();
        let j = r.to_json();
        assert!(j.contains(&format!("\"schema\": \"{SCHEMA}\"")));
        assert_eq!(json_number(&j, "pr"), Some(6.0));
        assert_eq!(json_number(&j, "threads"), Some(4.0));
        assert_eq!(json_number(&j, "sim_cycles"), Some(1e6));
        assert_eq!(json_number(&j, "refs_retired"), Some(40_000.0));
        assert_eq!(json_number(&j, "runs_executed"), Some(10.0));
        assert_eq!(json_number(&j, "cache_hits"), Some(5.0));
        let hit = json_number(&j, "memo_hit_rate").unwrap();
        assert!((hit - 1.0 / 3.0).abs() < 1e-3);
        let cps = json_number(&j, "sim_cycles_per_sec").unwrap();
        assert!((cps - 1e6 / 120.5).abs() < 1.0);
        assert_eq!(json_number(&j, "gate_sim_cycles_per_sec"), Some(5.5e6));
        assert_eq!(json_number(&j, "gate_refs_per_sec"), Some(2.5e5));
        assert_eq!(json_number(&j, "gate_mc_states_per_sec"), Some(1.25e4));
        assert_eq!(
            json_number(&j, "gate_shard_serial_cycles_per_sec"),
            Some(1.0e7)
        );
        assert_eq!(json_number(&j, "gate_sharded_cycles_per_sec"), Some(2.0e7));
        assert_eq!(json_number(&j, "no_such_key"), None);
        assert_eq!(json_string(&j, "schema").as_deref(), Some(SCHEMA));
    }

    #[test]
    fn structured_reader_names_the_broken_field() {
        let j = sample().to_json();
        let missing = json_number_required(&j, "no_such_key").unwrap_err();
        assert_eq!(missing.field, "no_such_key");
        assert!(missing.problem.contains("missing"), "{missing}");
        let mangled = j.replace("\"pr\": 6", "\"pr\": oops");
        let bad = json_number_required(&mangled, "pr").unwrap_err();
        assert_eq!(bad.field, "pr");
        assert!(bad.problem.contains("not a number"), "{bad}");
        assert!(bad.to_string().contains("\"pr\""), "{bad}");
    }

    #[test]
    fn shard_speedup_handles_v1_reports() {
        let mut r = sample();
        assert!((r.shard_speedup() - 2.0).abs() < 1e-9);
        r.gate.shard_serial_cycles_per_sec = 0.0;
        assert_eq!(r.shard_speedup(), 0.0);
    }

    #[test]
    fn figures_array_lists_every_timing() {
        let j = sample().to_json();
        assert!(j.contains("{\"name\": \"fig02\", \"secs\": 1.5000, \"failed\": false}"));
        assert!(j.contains("{\"name\": \"fig19\", \"secs\": 30.2500, \"failed\": true}"));
    }

    #[test]
    fn digest_is_one_line() {
        let d = sample().digest();
        assert_eq!(d.lines().count(), 1);
        assert!(d.contains("BENCH pr6"));
    }
}
