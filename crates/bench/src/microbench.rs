//! A minimal, dependency-free timing harness for the micro-benchmark
//! targets in `benches/` (gated behind the off-by-default
//! `criterion-benches` feature so the tier-1 build graph stays free of
//! external crates).
//!
//! The API mirrors the criterion subset the benches use — a named
//! `bench_function` taking a closure over a [`Bencher`] whose `iter` runs
//! the workload — so the bench bodies read the same: probe one call to
//! size the batches, then measure batches against a fixed wall budget and
//! report nanoseconds per iteration.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measures one benchmark body; filled in by [`Bencher::iter`].
#[derive(Default)]
pub struct Bencher {
    ns_per_iter: f64,
    iters: u64,
}

impl Bencher {
    /// Runs `f` repeatedly (one probe call, then timed batches totalling
    /// ~200 ms) and records the mean cost per call.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        let t0 = Instant::now();
        black_box(f());
        let probe = t0.elapsed().max(Duration::from_nanos(1));
        // ~10 ms batches keep timer overhead negligible for fast bodies
        // while slow bodies (full simulations) fall back to batch = 1.
        let batch =
            (Duration::from_millis(10).as_nanos() / probe.as_nanos()).clamp(1, 1_000_000) as u64;
        let budget = Duration::from_millis(200);
        let mut iters = 0u64;
        let mut elapsed = Duration::ZERO;
        while elapsed < budget {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            elapsed += t.elapsed();
            iters += batch;
        }
        self.ns_per_iter = elapsed.as_nanos() as f64 / iters as f64;
        self.iters = iters;
    }

    /// Mean measured cost per iteration, in nanoseconds.
    pub fn ns_per_iter(&self) -> f64 {
        self.ns_per_iter
    }

    /// Iterations executed by the last [`Self::iter`] call.
    pub fn iters(&self) -> u64 {
        self.iters
    }
}

fn human(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else {
        format!("{:.2} ms", ns / 1_000_000.0)
    }
}

/// Runs and reports one named benchmark.
pub fn bench_function(name: &str, f: impl FnOnce(&mut Bencher)) {
    let _ = bench_function_value(name, f);
}

/// [`bench_function`], additionally returning the measured ns/iteration so
/// callers can derive throughput numbers (e.g. for a `BENCH_<pr>.json`
/// trajectory entry).
pub fn bench_function_value(name: &str, f: impl FnOnce(&mut Bencher)) -> f64 {
    let mut b = Bencher::default();
    f(&mut b);
    println!(
        "{name:<44} {:>12}/iter  ({} iters)",
        human(b.ns_per_iter),
        b.iters
    );
    b.ns_per_iter
}

/// A named group (printed as a header, matching the criterion layout).
pub fn group(name: &str) {
    println!("\n-- {name} --");
}
