//! Figure 4: performance impact of sparse directory size. Per suite, the
//! speedup (normalised to the 1× baseline) of 1/2×, 1/8×, and 1/32× sparse
//! directories.

use zerodev_bench::{baseline, execute, mt, mt_suites, rate8, sparse, Maker};
use zerodev_common::table::{geomean, Table};
use zerodev_workloads::suites;

fn main() {
    let base_cfg = baseline();
    let sizes = [(1u32, 2u32), (1, 8), (1, 32)];
    let mut t = Table::new(&["suite", "1/2x", "1/8x", "1/32x"]);
    let mut groups: Vec<(&str, Vec<Maker>)> = Vec::new();
    for (suite, apps) in mt_suites() {
        let makers: Vec<Maker> = apps
            .iter()
            .map(|a| {
                let a = a.to_string();
                Box::new(move || mt(&a, 8)) as Maker
            })
            .collect();
        groups.push((suite, makers));
    }
    let rate_makers: Vec<Maker> = suites::CPU2017
        .iter()
        .map(|a| {
            let a = a.to_string();
            Box::new(move || rate8(&a)) as Maker
        })
        .collect();
    groups.push(("CPU2017RATE", rate_makers));

    for (suite, makers) in groups {
        let mut cells = vec![suite.to_string()];
        let bases: Vec<_> = makers.iter().map(|m| execute(&base_cfg, m())).collect();
        for (num, den) in sizes {
            let cfg = sparse(num, den);
            let speedups: Vec<f64> = makers
                .iter()
                .zip(&bases)
                .map(|(m, b)| execute(&cfg, m()).result.speedup_vs(&b.result))
                .collect();
            cells.push(format!("{:.3}", geomean(&speedups)));
        }
        t.row(&cells);
    }
    println!("== Figure 4: speedup vs sparse directory size (normalised to 1x) ==");
    print!("{}", t.render());
    println!("paper shape: gradual decline with shrinking directory; 1/32x worst (~0.6-0.9).");
}
