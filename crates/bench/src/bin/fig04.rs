//! Figure 4: performance impact of sparse directory size. Per suite, the
//! speedup (normalised to the 1× baseline) of 1/2×, 1/8×, and 1/32× sparse
//! directories.

fn main() {
    zerodev_bench::figures::fig04::run();
}
