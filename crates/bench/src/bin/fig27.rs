//! Figure 27: comparison with SecDir. Iso-storage SecDir at 1× and 1/8×
//! (plus the baseline at 1/8× for reference) against ZeroDEV at 1×, 1/8×,
//! and no directory — normalised to the 1× baseline. The min-speedup
//! annotations expose SecDir's private-partition fragmentation.
//!
//! CPU-RATE and CPU-HET are subsampled (every third workload); the SERVER
//! group runs on the 128-core machine with its iso-storage geometries.

fn main() {
    zerodev_bench::figures::fig27::run();
}
