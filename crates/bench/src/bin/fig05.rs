//! Figure 5: projected LLC occupancy of spilled directory entries — how
//! many directory entries a 1× sparse directory cannot accommodate (set
//! conflicts), each spilled into one full LLC block, as a percentage of
//! LLC blocks.
//!
//! Measured directly: ZeroDEV with a replacement-disabled 1× directory and
//! the SpillAll policy (every overflow takes a full line); the high-water
//! mark of spilled lines is the projection. Per suite: the application
//! with the largest footprint and the average of the per-application
//! maxima.

use zerodev_bench::{execute, mt, mt_suites, rate8};
use zerodev_common::config::{
    DirectoryKind, LlcReplacement, Ratio, SpillPolicy, ZeroDevConfig,
};
use zerodev_common::table::{mean, Table};
use zerodev_common::SystemConfig;
use zerodev_workloads::suites;

fn spill_probe_cfg() -> SystemConfig {
    SystemConfig::baseline_8core().with_zerodev(
        ZeroDevConfig {
            policy: SpillPolicy::SpillAll,
            llc_replacement: LlcReplacement::DataLru,
            ..Default::default()
        },
        DirectoryKind::Sparse {
            ratio: Ratio::ONE,
            ways: 8,
            replacement_disabled: true,
        },
    )
}

fn main() {
    let cfg = spill_probe_cfg();
    let llc_blocks = cfg.llc.lines() as f64;
    let mut t = Table::new(&["suite", "max-of-max %", "max app", "avg-of-max %"]);
    let mut groups: Vec<(&str, Vec<String>, bool)> = mt_suites()
        .into_iter()
        .map(|(s, apps)| (s, apps.iter().map(|a| a.to_string()).collect(), true))
        .collect();
    groups.push((
        "CPU2017RATE",
        suites::CPU2017.iter().map(|a| a.to_string()).collect(),
        false,
    ));
    for (suite, apps, is_mt) in groups {
        let mut maxima = Vec::new();
        let mut worst = (0.0f64, String::new());
        for app in &apps {
            let wl = if is_mt { mt(app, 8) } else { rate8(app) };
            let r = execute(&cfg, wl);
            let pct = r.stats.spilled_lines_max as f64 / llc_blocks * 100.0;
            if pct > worst.0 {
                worst = (pct, app.clone());
            }
            maxima.push(pct);
        }
        t.row(&[
            suite.to_string(),
            format!("{:.1}", worst.0),
            worst.1,
            format!("{:.1}", mean(&maxima)),
        ]);
    }
    println!("== Figure 5: projected LLC occupancy of spilled directory entries ==");
    println!("(entries a 1x directory cannot hold, one full LLC line each)");
    print!("{}", t.render());
    println!(
        "paper shape: maximum occupancy around 12% of LLC blocks (< 2 of 16 ways),\n\
         average at most ~10%; led by the largest-footprint application per suite."
    );
}
