//! Figure 5: projected LLC occupancy of spilled directory entries — how
//! many directory entries a 1× sparse directory cannot accommodate (set
//! conflicts), each spilled into one full LLC block, as a percentage of
//! LLC blocks.
//!
//! Measured directly: ZeroDEV with a replacement-disabled 1× directory and
//! the SpillAll policy (every overflow takes a full line); the high-water
//! mark of spilled lines is the projection. Per suite: the application
//! with the largest footprint and the average of the per-application
//! maxima.

fn main() {
    zerodev_bench::figures::fig05::run();
}
