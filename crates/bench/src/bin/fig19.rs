//! Figure 19: performance of ZeroDEV on the PARSEC suite with three
//! directory configurations (1×, 1/8×, and no directory), normalised to
//! the baseline with a 1× sparse directory.

fn main() {
    zerodev_bench::figures::fig19::run();
}
