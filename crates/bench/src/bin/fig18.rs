//! Figure 18: comparison between the spLRU and dataLRU LLC replacement
//! extensions for ZeroDEV (no sparse directory) at 8 MB and at a
//! capacity-constrained 4 MB LLC. All results normalised to the 8 MB
//! baseline; Base4MB (plain LRU baseline at 4 MB) is shown for reference.

use zerodev_bench::{baseline, execute, mt, mt_suites, rate8, zerodev_nodir};
use zerodev_common::config::{CacheGeometry, LlcReplacement, SpillPolicy};
use zerodev_common::table::{geomean, Table};
use zerodev_common::SystemConfig;
use zerodev_workloads::suites;

fn with_llc_mb(mut cfg: SystemConfig, mb: usize) -> SystemConfig {
    cfg.llc = CacheGeometry::new(mb << 20, 16);
    cfg.validate().expect("valid LLC capacity");
    cfg
}

fn main() {
    let base8 = baseline();
    let configs: Vec<(&str, SystemConfig)> = vec![
        (
            "sp8MB",
            zerodev_nodir(SpillPolicy::FusePrivateSpillShared, LlcReplacement::SpLru),
        ),
        (
            "data8MB",
            zerodev_nodir(SpillPolicy::FusePrivateSpillShared, LlcReplacement::DataLru),
        ),
        ("Base4MB", with_llc_mb(baseline(), 4)),
        (
            "sp4MB",
            with_llc_mb(
                zerodev_nodir(SpillPolicy::FusePrivateSpillShared, LlcReplacement::SpLru),
                4,
            ),
        ),
        (
            "data4MB",
            with_llc_mb(
                zerodev_nodir(SpillPolicy::FusePrivateSpillShared, LlcReplacement::DataLru),
                4,
            ),
        ),
    ];
    let mut t = Table::new(&["suite", "sp8MB", "data8MB", "Base4MB", "sp4MB", "data4MB"]);
    let mut groups: Vec<(&str, Vec<String>, bool)> = mt_suites()
        .into_iter()
        .map(|(s, apps)| (s, apps.iter().map(|a| a.to_string()).collect(), true))
        .collect();
    groups.push((
        "CPU2017RATE",
        suites::CPU2017.iter().map(|a| a.to_string()).collect(),
        false,
    ));
    for (suite, apps, is_mt) in groups {
        let bases: Vec<_> = apps
            .iter()
            .map(|a| execute(&base8, if is_mt { mt(a, 8) } else { rate8(a) }))
            .collect();
        let mut cells = vec![suite.to_string()];
        for (_, cfg) in &configs {
            let speedups: Vec<f64> = apps
                .iter()
                .zip(&bases)
                .map(|(a, b)| {
                    execute(cfg, if is_mt { mt(a, 8) } else { rate8(a) })
                        .result
                        .speedup_vs(&b.result)
                })
                .collect();
            cells.push(format!("{:.3}", geomean(&speedups)));
        }
        t.row(&cells);
    }
    println!("== Figure 18: spLRU vs dataLRU (normalised to the 8 MB baseline) ==");
    print!("{}", t.render());
    println!(
        "paper shape: dataLRU beats spLRU across the board; the gap widens at the\n\
         capacity-constrained 4 MB LLC because spLRU leaves fused entries exposed."
    );
}
