//! Figure 18: comparison between the spLRU and dataLRU LLC replacement
//! extensions for ZeroDEV (no sparse directory) at 8 MB and at a
//! capacity-constrained 4 MB LLC. All results normalised to the 8 MB
//! baseline; Base4MB (plain LRU baseline at 4 MB) is shown for reference.

fn main() {
    zerodev_bench::figures::fig18::run();
}
