//! Figure 23: ZeroDEV on the 36 heterogeneous multi-programmed workloads
//! (W1–W36) with three directory configurations, normalised weighted
//! speedup against the 1× baseline.

fn main() {
    zerodev_bench::figures::fig23::run();
}
