//! Figure 24: ZeroDEV on the trace-driven server workloads, evaluated on
//! the 128-core single-socket machine with a 32 MB LLC, with three
//! directory configurations, normalised to the 1× baseline.

use zerodev_bench::{execute_with, mt, server_params, print_norm_table, NormRow};
use zerodev_common::config::{DirectoryKind, Ratio, ZeroDevConfig};
use zerodev_common::SystemConfig;
use zerodev_workloads::suites;

fn server_base() -> SystemConfig {
    SystemConfig::server_128core()
}

fn server_zd(dir: DirectoryKind) -> SystemConfig {
    server_base().with_zerodev(ZeroDevConfig::default(), dir)
}

fn main() {
    let base_cfg = server_base();
    let configs = [(
            "ZD+1x",
            server_zd(DirectoryKind::Sparse {
                ratio: Ratio::ONE,
                ways: 8,
                replacement_disabled: true,
            }),
        ),
        (
            "ZD+1/8x",
            server_zd(DirectoryKind::Sparse {
                ratio: Ratio::new(1, 8),
                ways: 8,
                replacement_disabled: true,
            }),
        ),
        ("ZD+NoDir", server_zd(DirectoryKind::None))];
    let params = server_params();
    let mut rows = Vec::new();
    for app in suites::SERVER {
        let b = execute_with(&base_cfg, mt(app, 128), &params);
        let values = configs
            .iter()
            .map(|(_, cfg)| {
                execute_with(cfg, mt(app, 128), &params)
                    .result
                    .speedup_vs(&b.result)
            })
            .collect();
        rows.push(NormRow {
            name: app.to_string(),
            values,
        });
    }
    print_norm_table(
        "Figure 24: server workloads on the 128-core machine",
        &["ZD+1x", "ZD+1/8x", "ZD+NoDir"],
        &rows,
    );
    println!(
        "paper shape: average within ~1% of baseline for all three configurations;\n\
         worst case ~1.4% (SPECWeb-S) without a directory."
    );
}
