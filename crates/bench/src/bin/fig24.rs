//! Figure 24: ZeroDEV on the trace-driven server workloads, evaluated on
//! the 128-core single-socket machine with a 32 MB LLC, with three
//! directory configurations, normalised to the 1× baseline.

fn main() {
    zerodev_bench::figures::fig24::run();
}
