//! Figure 2: normalised interconnect traffic, core cache misses, and
//! weighted speedup of the eight-way rate (homogeneous) multi-programmed
//! workloads when going from the 1× sparse directory to an
//! unlimited-capacity directory. The last column is the paper's bar-top
//! annotation: core-cache misses saved per kilo-instruction.

fn main() {
    zerodev_bench::figures::fig02::run();
}
