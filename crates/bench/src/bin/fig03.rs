//! Figure 3: normalised traffic, core cache misses, and speedup of the
//! multi-threaded applications under an unbounded directory (PARSEC shown
//! per-application; SPLASH2X / SPEC OMP / FFTW as suite averages, as in the
//! paper).

fn main() {
    zerodev_bench::figures::fig03::run();
}
