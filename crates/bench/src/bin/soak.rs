//! Torture soak campaign: long-run adversarial workloads under per-point
//! wall-clock and memory budgets, with watchdog escalation, panic
//! quarantine, and a machine-readable report.
//!
//! `cargo run --release -p zerodev-bench --bin soak`
//!
//! Every point drives a torture workload (`zerodev_workloads::torture`)
//! through the resumable engine ([`zerodev_sim::PausedRun`]) in bounded
//! steps, checking budgets between steps:
//!
//! * **Clean finish** — the point passes; throughput is reported.
//! * **Budget exhausted** (wall clock or resident memory) — the run is
//!   checkpointed to disk and skipped: *graceful degradation*, the
//!   campaign continues, the report says exactly where the budget went.
//! * **Watchdog stall** ([`SimError::Stalled`]) — the point is
//!   *quarantined*: the paused run is checkpointed for post-mortem replay,
//!   a replayable trace artifact is recorded, and the campaign continues
//!   with a nonzero final exit.
//! * **Panic** (oracle violation, protocol bug) — the point is quarantined
//!   and the failure is *minimized*: the smallest `refs_per_core` that
//!   still reproduces is found by bisection (runs are deterministic, so
//!   the prefix property holds), emitted as a trace artifact, and printed
//!   as an oracle repro command.
//!
//! Environment: the shared `ZERODEV_QUICK` / `ZERODEV_AUDIT` /
//! `ZERODEV_FAULTS` / `ZERODEV_WATCHDOG_*` knobs (see
//! [`RunParams::from_env`]), plus `ZERODEV_SOAK_WALL_MS` (per-point wall
//! budget, default 60000), `ZERODEV_SOAK_RSS_MB` (resident-set ceiling,
//! default 8192), `ZERODEV_SOAK_DIR` (artifact directory, default
//! `target/soak`), and `ZERODEV_SOAK_ONLY=<substr>` (run only matching
//! point ids — the repro filter quarantine reports print).
//!
//! Exits nonzero when any point was quarantined; budget-degraded points
//! alone exit zero. The report is written to `<dir>/soak_report.json`.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

use zerodev_bench::{baseline, sparse, zerodev_default_nodir, zerodev_sparse, SEED};
use zerodev_common::{env, SystemConfig};
use zerodev_sim::runner::RunParams;
use zerodev_sim::{RunStatus, SimError, Simulation};
use zerodev_workloads::{multithreaded, Trace, TORTURE};

/// References advanced between budget checks: small enough that a budget
/// overshoot is bounded, large enough that the check cost is noise.
const STEP: u64 = 16_384;

/// One campaign point.
struct Point {
    id: String,
    cfg_label: &'static str,
    cfg: SystemConfig,
    app: &'static str,
    seed: u64,
}

/// How a point ended.
enum Outcome {
    /// Finished inside its budgets.
    Ok { completion_cycles: u64 },
    /// Budget ran out; checkpointed and skipped (not a failure).
    Degraded {
        what: &'static str,
        artifact: String,
    },
    /// Watchdog/retry-budget stall; checkpointed and quarantined.
    Stalled {
        error: SimError,
        artifact: String,
        trace: String,
    },
    /// Panic; minimized and quarantined.
    Panicked {
        message: String,
        minimized_refs: Option<u64>,
        artifact: String,
    },
}

impl Outcome {
    fn quarantined(&self) -> bool {
        matches!(self, Outcome::Stalled { .. } | Outcome::Panicked { .. })
    }

    fn label(&self) -> &'static str {
        match self {
            Outcome::Ok { .. } => "ok",
            Outcome::Degraded { .. } => "degraded",
            Outcome::Stalled { .. } => "stalled",
            Outcome::Panicked { .. } => "panicked",
        }
    }
}

/// One row of the report.
struct PointReport {
    point: Point,
    outcome: Outcome,
    refs_retired: u64,
    wall_ms: u128,
}

fn configs(quick: bool) -> Vec<(&'static str, SystemConfig)> {
    let mut cfgs = vec![
        ("baseline", baseline()),
        ("zerodev_nodir", zerodev_default_nodir()),
    ];
    if !quick {
        cfgs.push(("sparse_1_8", sparse(1, 8)));
        cfgs.push(("zerodev_sparse_1_8", zerodev_sparse(1, 8)));
    }
    cfgs
}

fn matrix(quick: bool) -> Vec<Point> {
    let seeds: &[u64] = if quick { &[SEED] } else { &[SEED, 0x7041_5eed] };
    let mut points = Vec::new();
    for (cfg_label, cfg) in configs(quick) {
        for app in TORTURE {
            for &seed in seeds {
                points.push(Point {
                    id: format!("{app}@{cfg_label}#{seed:x}"),
                    cfg_label,
                    cfg: cfg.clone(),
                    app,
                    seed,
                });
            }
        }
    }
    points
}

fn build(p: &Point, params: &RunParams) -> Simulation {
    let cores = p.cfg.cores * p.cfg.sockets;
    let wl = multithreaded(p.app, cores, p.seed).expect("torture workloads are registered");
    let mut sim = Simulation::new(&p.cfg, wl);
    sim.set_watchdog(params.watchdog_horizon, params.watchdog_period);
    if params.audit {
        sim.enable_audit();
    }
    if let Some(fc) = params.faults {
        sim.set_faults(fc);
    }
    sim
}

/// Resident-set size in bytes, from `/proc/self/statm` (None off Linux or
/// on any parse hiccup — the memory budget then simply never fires).
fn rss_bytes() -> Option<u64> {
    let statm = std::fs::read_to_string("/proc/self/statm").ok()?;
    let pages: u64 = statm.split_whitespace().nth(1)?.parse().ok()?;
    Some(pages * 4096)
}

fn artifact_path(dir: &str, id: &str, ext: &str) -> String {
    let safe: String = id
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    format!("{dir}/{safe}.{ext}")
}

fn write_artifact(path: &str, bytes: &[u8]) -> String {
    match std::fs::write(path, bytes) {
        Ok(()) => path.to_string(),
        Err(e) => {
            eprintln!("warning: could not write artifact {path}: {e}");
            String::new()
        }
    }
}

/// Records a fresh copy of the point's workload as a replayable trace
/// covering the failure prefix: warm-up plus the per-core share of the
/// retired references, plus slack for early finishers.
fn trace_artifact(p: &Point, params: &RunParams, retired: u64, dir: &str) -> String {
    let cores = (p.cfg.cores * p.cfg.sockets).max(1);
    let per_thread = params.warmup_refs + retired.div_ceil(cores as u64) + 64;
    let mut wl = multithreaded(p.app, cores, p.seed).expect("torture workloads are registered");
    let trace = Trace::record(&mut wl, per_thread as usize);
    write_artifact(
        &artifact_path(dir, &p.id, "trace"),
        trace.to_text().as_bytes(),
    )
}

/// True when a fresh run of this point with target `refs` panics.
/// Deterministic, so this is a pure function of `refs`.
fn panics_with(p: &Point, params: &RunParams, refs: u64) -> bool {
    catch_unwind(AssertUnwindSafe(|| {
        let mut run = build(p, params).start(refs, params.warmup_refs);
        let _ = run.advance(u64::MAX); // a stall is not a panic
        let _ = run.finish();
    }))
    .is_err()
}

/// Bisects the smallest `refs_per_core` that still reproduces the panic.
/// The event order of two runs is identical until the first core reaches
/// its target, so panic-at-target is monotone in the target and binary
/// search applies. Returns `None` when even the observed target no longer
/// reproduces (e.g. the panic needed the post-run audit sweep timing).
fn minimize(p: &Point, params: &RunParams, hi: u64) -> Option<u64> {
    if !panics_with(p, params, hi) {
        return None;
    }
    let (mut lo, mut hi) = (1u64, hi);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if panics_with(p, params, mid) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    Some(hi)
}

fn repro_command(p: &Point) -> String {
    // Carry the knobs that shaped this run so the command stands alone.
    let mut env_prefix = String::from("ZERODEV_AUDIT=1 ");
    for knob in [
        "ZERODEV_FAULTS",
        "ZERODEV_QUICK",
        "ZERODEV_WATCHDOG_HORIZON",
        "ZERODEV_WATCHDOG_PERIOD",
    ] {
        if let Ok(v) = std::env::var(knob) {
            env_prefix.push_str(&format!("{knob}='{v}' "));
        }
    }
    format!(
        "{env_prefix}ZERODEV_SOAK_ONLY='{}' cargo run --release -p zerodev-bench --bin soak",
        p.id
    )
}

fn run_point(
    p: Point,
    params: &RunParams,
    wall_budget_ms: u128,
    rss_budget: u64,
    dir: &str,
) -> PointReport {
    let t0 = Instant::now();
    let started = catch_unwind(AssertUnwindSafe(|| {
        build(&p, params).start(params.refs_per_core, params.warmup_refs)
    }));
    let mut run = match started {
        Ok(run) => run,
        Err(e) => {
            // Panic during warm-up: minimize against the smallest target
            // (the warm-up runs in full whatever the target is).
            let message = panic_text(&e);
            let minimized_refs = minimize(&p, params, 1);
            let artifact = trace_artifact(&p, params, 0, dir);
            return PointReport {
                point: p,
                outcome: Outcome::Panicked {
                    message,
                    minimized_refs,
                    artifact,
                },
                refs_retired: 0,
                wall_ms: t0.elapsed().as_millis(),
            };
        }
    };
    loop {
        let before = run.refs_retired();
        let step = catch_unwind(AssertUnwindSafe(|| run.advance(STEP)));
        match step {
            Err(e) => {
                let message = panic_text(&e);
                let retired = before + STEP; // upper bound on the failing pop
                drop(run); // state after a panic is unspecified
                let minimized_refs = minimize(&p, params, params.refs_per_core.min(retired));
                let artifact = trace_artifact(&p, params, retired, dir);
                return PointReport {
                    refs_retired: before,
                    wall_ms: t0.elapsed().as_millis(),
                    point: p,
                    outcome: Outcome::Panicked {
                        message,
                        minimized_refs,
                        artifact,
                    },
                };
            }
            Ok(Err(error)) => {
                // Watchdog escalation: checkpoint-and-skip.
                let artifact =
                    write_artifact(&artifact_path(dir, &p.id, "ckpt"), &run.checkpoint());
                let retired = run.refs_retired();
                let trace = trace_artifact(&p, params, retired, dir);
                return PointReport {
                    refs_retired: retired,
                    wall_ms: t0.elapsed().as_millis(),
                    point: p,
                    outcome: Outcome::Stalled {
                        error,
                        artifact,
                        trace,
                    },
                };
            }
            Ok(Ok(RunStatus::Finished)) => {
                let retired = run.refs_retired();
                let finished = catch_unwind(AssertUnwindSafe(|| run.finish()));
                return match finished {
                    Ok(result) => PointReport {
                        refs_retired: retired,
                        wall_ms: t0.elapsed().as_millis(),
                        point: p,
                        outcome: Outcome::Ok {
                            completion_cycles: result.completion_cycles,
                        },
                    },
                    Err(e) => {
                        // The final audit sweep flagged a violation.
                        let message = panic_text(&e);
                        let minimized_refs = minimize(&p, params, params.refs_per_core);
                        let artifact = trace_artifact(&p, params, retired, dir);
                        PointReport {
                            refs_retired: retired,
                            wall_ms: t0.elapsed().as_millis(),
                            point: p,
                            outcome: Outcome::Panicked {
                                message,
                                minimized_refs,
                                artifact,
                            },
                        }
                    }
                };
            }
            Ok(Ok(RunStatus::Paused)) => {
                let wall = t0.elapsed().as_millis();
                let over_rss = rss_bytes().is_some_and(|b| b > rss_budget);
                if wall > wall_budget_ms || over_rss {
                    let artifact =
                        write_artifact(&artifact_path(dir, &p.id, "ckpt"), &run.checkpoint());
                    return PointReport {
                        refs_retired: run.refs_retired(),
                        wall_ms: wall,
                        point: p,
                        outcome: Outcome::Degraded {
                            what: if over_rss { "memory" } else { "wall-clock" },
                            artifact,
                        },
                    };
                }
            }
        }
    }
}

fn panic_text(p: &Box<dyn std::any::Any + Send>) -> String {
    p.downcast_ref::<String>()
        .cloned()
        .or_else(|| p.downcast_ref::<&str>().map(|s| (*s).to_string()))
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn report_json(params: &RunParams, rows: &[PointReport], wall_ms: u128) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"zerodev-soak-v1\",\n");
    out.push_str(&format!(
        "  \"refs_per_core\": {},\n  \"warmup_refs\": {},\n  \"audit\": {},\n  \"faults\": {},\n",
        params.refs_per_core,
        params.warmup_refs,
        params.audit,
        params.faults.is_some(),
    ));
    out.push_str(&format!("  \"wall_ms\": {wall_ms},\n  \"points\": [\n"));
    for (i, row) in rows.iter().enumerate() {
        let p = &row.point;
        out.push_str(&format!(
            "    {{\"id\": \"{}\", \"workload\": \"{}\", \"config\": \"{}\", \
             \"seed\": \"{:#x}\", \"outcome\": \"{}\", \"refs_retired\": {}, \"wall_ms\": {}",
            json_escape(&p.id),
            json_escape(p.app),
            json_escape(p.cfg_label),
            p.seed,
            row.outcome.label(),
            row.refs_retired,
            row.wall_ms,
        ));
        match &row.outcome {
            Outcome::Ok { completion_cycles } => {
                out.push_str(&format!(", \"completion_cycles\": {completion_cycles}"));
            }
            Outcome::Degraded { what, artifact } => {
                out.push_str(&format!(
                    ", \"budget\": \"{what}\", \"checkpoint\": \"{}\"",
                    json_escape(artifact)
                ));
            }
            Outcome::Stalled {
                error,
                artifact,
                trace,
            } => {
                out.push_str(&format!(
                    ", \"error\": \"{}\", \"checkpoint\": \"{}\", \"trace\": \"{}\", \
                     \"repro\": \"{}\"",
                    json_escape(&error.to_string()),
                    json_escape(artifact),
                    json_escape(trace),
                    json_escape(&repro_command(p)),
                ));
            }
            Outcome::Panicked {
                message,
                minimized_refs,
                artifact,
            } => {
                out.push_str(&format!(
                    ", \"error\": \"{}\", \"minimized_refs_per_core\": {}, \
                     \"trace\": \"{}\", \"repro\": \"{}\"",
                    json_escape(message),
                    minimized_refs.map_or("null".to_string(), |r| r.to_string()),
                    json_escape(artifact),
                    json_escape(&repro_command(p)),
                ));
            }
        }
        out.push_str(if i + 1 == rows.len() { "}\n" } else { "},\n" });
    }
    let quarantined = rows.iter().filter(|r| r.outcome.quarantined()).count();
    let degraded = rows
        .iter()
        .filter(|r| matches!(r.outcome, Outcome::Degraded { .. }))
        .count();
    out.push_str(&format!(
        "  ],\n  \"total\": {},\n  \"quarantined\": {quarantined},\n  \"degraded\": {degraded}\n}}\n",
        rows.len()
    ));
    out
}

fn main() {
    let params = RunParams::from_env();
    let quick = env::var_flag("ZERODEV_QUICK");
    let wall_budget_ms: u128 = env::var_or("ZERODEV_SOAK_WALL_MS", 60_000u64).into();
    let rss_budget: u64 = env::var_or("ZERODEV_SOAK_RSS_MB", 8_192u64) * (1 << 20);
    let dir = env::var_or("ZERODEV_SOAK_DIR", "target/soak".to_string());
    let only = std::env::var("ZERODEV_SOAK_ONLY").unwrap_or_default();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {dir}: {e}; artifacts will be dropped");
    }

    // Quarantined points panic by design (oracle violations); keep the
    // default hook from spamming backtraces mid-campaign.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    let points: Vec<Point> = matrix(quick)
        .into_iter()
        .filter(|p| only.is_empty() || p.id.contains(&only))
        .collect();
    println!(
        "== soak: {} points, {} refs/core, audit={}, faults={}, budgets {}ms/{}MB ==",
        points.len(),
        params.refs_per_core,
        params.audit,
        params.faults.is_some(),
        wall_budget_ms,
        rss_budget >> 20,
    );

    let t0 = Instant::now();
    let mut rows: Vec<PointReport> = Vec::with_capacity(points.len());
    for p in points {
        let id = p.id.clone();
        let row = run_point(p, &params, wall_budget_ms, rss_budget, &dir);
        match &row.outcome {
            Outcome::Ok { .. } => {
                println!("  {id}: ok ({} refs, {}ms)", row.refs_retired, row.wall_ms);
            }
            Outcome::Degraded { what, artifact } => {
                println!(
                    "  {id}: DEGRADED ({what} budget at {} refs; checkpoint {artifact})",
                    row.refs_retired
                );
            }
            Outcome::Stalled {
                error,
                artifact,
                trace,
            } => {
                println!("  {id}: QUARANTINED (stall: {error})");
                println!("    checkpoint {artifact}; trace {trace}");
                println!("    repro: {}", repro_command(&row.point));
            }
            Outcome::Panicked {
                message,
                minimized_refs,
                artifact,
            } => {
                let first = message.lines().next().unwrap_or(message);
                println!("  {id}: QUARANTINED (panic: {first})");
                match minimized_refs {
                    Some(r) => println!("    minimized to refs_per_core={r}; trace {artifact}"),
                    None => println!("    not reproducible standalone; trace {artifact}"),
                }
                println!("    repro: {}", repro_command(&row.point));
            }
        }
        rows.push(row);
    }
    std::panic::set_hook(default_hook);

    let wall_ms = t0.elapsed().as_millis();
    let report = report_json(&params, &rows, wall_ms);
    let report_path = format!("{dir}/soak_report.json");
    let _ = write_artifact(&report_path, report.as_bytes());

    let quarantined = rows.iter().filter(|r| r.outcome.quarantined()).count();
    let degraded = rows
        .iter()
        .filter(|r| matches!(r.outcome, Outcome::Degraded { .. }))
        .count();
    println!(
        "\nsoak: {} points, {} ok, {degraded} degraded, {quarantined} quarantined in {:.1}s \
         (report {report_path})",
        rows.len(),
        rows.len() - degraded - quarantined,
        wall_ms as f64 / 1e3,
    );
    if quarantined > 0 {
        for r in rows.iter().filter(|r| r.outcome.quarantined()) {
            println!("  quarantined: {}", r.point.id);
        }
        std::process::exit(1);
    }
}
