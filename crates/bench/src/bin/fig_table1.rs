//! Table I: the simulated-machine parameters (one socket).

fn main() {
    zerodev_bench::figures::fig_table1::run();
}
