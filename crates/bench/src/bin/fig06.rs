//! Figure 6: performance with reduced LLC associativity. Ways are removed
//! from every LLC set (keeping the set count fixed), modelling the capacity
//! a directory cached in the LLC would take. Speedups are normalised to the
//! 16-way baseline; the annotation is the worst application in each suite.

fn main() {
    zerodev_bench::figures::fig06::run();
}
