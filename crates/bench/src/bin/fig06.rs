//! Figure 6: performance with reduced LLC associativity. Ways are removed
//! from every LLC set (keeping the set count fixed), modelling the capacity
//! a directory cached in the LLC would take. Speedups are normalised to the
//! 16-way baseline; the annotation is the worst application in each suite.

use zerodev_bench::{baseline, execute, mt, mt_suites, rate8};
use zerodev_common::config::CacheGeometry;
use zerodev_common::table::{geomean, Table};
use zerodev_common::SystemConfig;
use zerodev_workloads::suites;

/// The baseline LLC with `ways` ways per set (same 1024 sets per bank).
fn reduced_llc(ways: usize) -> SystemConfig {
    let mut cfg = baseline();
    cfg.llc = CacheGeometry::new(ways * 512 * 1024, ways);
    cfg.validate().expect("reduced-way LLC is valid");
    cfg
}

fn main() {
    let base_cfg = baseline();
    let mut t = Table::new(&["suite", "15 ways", "14 ways", "13 ways", "12 ways", "worst app @12"]);
    let mut groups: Vec<(&str, Vec<String>, bool)> = mt_suites()
        .into_iter()
        .map(|(s, apps)| (s, apps.iter().map(|a| a.to_string()).collect(), true))
        .collect();
    groups.push((
        "CPU2017RATE",
        suites::CPU2017.iter().map(|a| a.to_string()).collect(),
        false,
    ));
    for (suite, apps, is_mt) in groups {
        let bases: Vec<_> = apps
            .iter()
            .map(|a| {
                let wlb = if is_mt { mt(a, 8) } else { rate8(a) };
                execute(&base_cfg, wlb)
            })
            .collect();
        let mut cells = vec![suite.to_string()];
        let mut worst_at_12 = (f64::INFINITY, String::new());
        for ways in [15usize, 14, 13, 12] {
            let cfg = reduced_llc(ways);
            let mut speedups = Vec::new();
            for (a, b) in apps.iter().zip(&bases) {
                let wlc = if is_mt { mt(a, 8) } else { rate8(a) };
                let s = execute(&cfg, wlc).result.speedup_vs(&b.result);
                if ways == 12 && s < worst_at_12.0 {
                    worst_at_12 = (s, a.clone());
                }
                speedups.push(s);
            }
            cells.push(format!("{:.3}", geomean(&speedups)));
        }
        cells.push(format!("{} ({:.2})", worst_at_12.1, worst_at_12.0));
        t.row(&cells);
    }
    println!("== Figure 6: performance with reduced LLC associativity ==");
    print!("{}", t.render());
    println!(
        "paper shape: losing 2 ways costs at most ~3% on average, but the worst\n\
         applications (vips, lu_ncb, 330.art, gcc.ppO2) lose 5-14%; at 12 ways the\n\
         worst-case losses reach 9-22%."
    );
}
