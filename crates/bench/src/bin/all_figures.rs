//! Runs every figure harness in one process (the full paper reproduction).
//!
//! `cargo run --release -p zerodev-bench --bin all_figures`
//!
//! Set `ZERODEV_QUICK=1` for a fast smoke pass and `ZERODEV_THREADS=N` to
//! control the sweep engine's worker count (`1` = serial). Running in one
//! process lets every figure share the engine's baseline memoization
//! cache — each (config, workload) simulation is computed once and every
//! later figure that needs it gets a cache hit; the sweep-throughput
//! summary at the end reports how much work that saved.
//!
//! Each figure runs under `catch_unwind`: a panicking figure (a failed
//! sweep point, a bug, an injected fault) marks that figure failed and the
//! reproduction continues. A degraded run prints a failure summary to
//! stderr and exits nonzero.

use std::time::Instant;
use zerodev_bench::figures;

fn main() {
    let t_all = Instant::now();
    let failed = zerodev_bench::run_figures(figures::ALL);
    if failed == 0 {
        println!("\nall {} figures regenerated", figures::ALL.len());
    } else {
        println!(
            "\n{} of {} figures regenerated ({failed} failed)",
            figures::ALL.len() - failed,
            figures::ALL.len()
        );
    }
    zerodev_bench::print_sweep_summary(t_all.elapsed());
    if failed > 0 {
        std::process::exit(1);
    }
}
