//! Runs every figure harness in one process (the full paper reproduction).
//!
//! `cargo run --release -p zerodev-bench --bin all_figures`
//!
//! Set `ZERODEV_QUICK=1` for a fast smoke pass and `ZERODEV_THREADS=N` to
//! control the sweep engine's worker count (`1` = serial). Running in one
//! process lets every figure share the engine's baseline memoization
//! cache — each (config, workload) simulation is computed once and every
//! later figure that needs it gets a cache hit; the sweep-throughput
//! summary at the end reports how much work that saved.

use std::time::Instant;
use zerodev_bench::figures;

fn main() {
    let t_all = Instant::now();
    for (name, fig) in figures::ALL {
        let t0 = Instant::now();
        fig();
        eprintln!("[{name}: {:?}]", t0.elapsed());
    }
    println!("\nall {} figures regenerated", figures::ALL.len());
    zerodev_bench::print_sweep_summary(t_all.elapsed());
}
