//! Runs every figure harness in one process (the full paper reproduction).
//!
//! `cargo run --release -p zerodev-bench --bin all_figures`
//!
//! Set `ZERODEV_QUICK=1` for a fast smoke pass and `ZERODEV_THREADS=N` to
//! control the sweep engine's worker count (`1` = serial). Running in one
//! process lets every figure share the engine's baseline memoization
//! cache — each (config, workload) simulation is computed once and every
//! later figure that needs it gets a cache hit; the sweep-throughput
//! summary at the end reports how much work that saved.
//!
//! Set `ZERODEV_BENCH_JSON=<path>` to additionally write a `BENCH_<pr>.json`
//! throughput report there (see `zerodev_bench::report`): full-run
//! cycles/s and refs/s, per-figure wall times, the memo hit rate, and the
//! standardized gate probe the CI perf gate compares across commits. The
//! report number comes from `ZERODEV_BENCH_PR` (default 0). Everything the
//! report adds goes to the file and stderr — stdout stays byte-identical.
//!
//! Each figure runs under `catch_unwind`: a panicking figure (a failed
//! sweep point, a bug, an injected fault) marks that figure failed and the
//! reproduction continues. A degraded run prints a failure summary to
//! stderr and exits nonzero.

use std::time::Instant;
use zerodev_bench::{figures, report};
use zerodev_common::env;
use zerodev_sim::parallel;
use zerodev_sim::runner::RunParams;

fn main() {
    let t_all = Instant::now();
    let timings = zerodev_bench::run_figures_timed(figures::ALL);
    let failed = timings.iter().filter(|t| t.failed).count();
    if failed == 0 {
        println!("\nall {} figures regenerated", figures::ALL.len());
    } else {
        println!(
            "\n{} of {} figures regenerated ({failed} failed)",
            figures::ALL.len() - failed,
            figures::ALL.len()
        );
    }
    let elapsed = t_all.elapsed();
    zerodev_bench::print_sweep_summary(elapsed, failed);
    if let Some(path) = std::env::var_os("ZERODEV_BENCH_JSON") {
        eprintln!("measuring standardized gate probe for the BENCH report...");
        let r = report::BenchReport {
            pr: env::var_or("ZERODEV_BENCH_PR", 0u32),
            threads: RunParams::from_env().threads,
            quick: env::var_flag("ZERODEV_QUICK"),
            wall_secs: elapsed.as_secs_f64(),
            summary: parallel::summary(),
            gate: report::measure_gate(),
            figures: timings,
        };
        match std::fs::write(&path, r.to_json()) {
            Ok(()) => eprintln!("{}\nwrote {}", r.digest(), path.to_string_lossy()),
            Err(e) => eprintln!("failed to write {}: {e}", path.to_string_lossy()),
        }
    }
    if failed > 0 {
        std::process::exit(1);
    }
}
