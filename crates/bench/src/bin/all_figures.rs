//! Runs every figure harness in sequence (the full paper reproduction).
//!
//! `cargo run --release -p zerodev-bench --bin all_figures`
//!
//! Set `ZERODEV_QUICK=1` for a fast smoke pass.

use std::process::Command;

const FIGURES: &[&str] = &[
    "fig_table1",
    "fig02",
    "fig03",
    "fig04",
    "fig05",
    "fig06",
    "fig17",
    "fig18",
    "fig19",
    "fig20",
    "fig21",
    "fig22",
    "fig23",
    "fig24",
    "fig25",
    "fig26",
    "fig27",
    "fig_energy",
    "fig_multisocket",
];

fn main() {
    let exe_dir = std::env::current_exe()
        .expect("current exe")
        .parent()
        .expect("exe dir")
        .to_path_buf();
    let mut failed = Vec::new();
    for fig in FIGURES {
        let t0 = std::time::Instant::now();
        let status = Command::new(exe_dir.join(fig))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {fig}: {e}"));
        eprintln!("[{fig}: {:?}]", t0.elapsed());
        if !status.success() {
            failed.push(*fig);
        }
    }
    if failed.is_empty() {
        println!("\nall {} figures regenerated", FIGURES.len());
    } else {
        eprintln!("\nFAILED figures: {failed:?}");
        std::process::exit(1);
    }
}
