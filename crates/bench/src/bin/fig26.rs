//! Figure 26: comparison with the Multi-grain Directory (MgD). MgD at
//! 1/8×, 1/16×, and 1/32× sizes against ZeroDEV at 1×, 1/8×, and no
//! directory — all on the non-inclusive LLC, normalised to the 1× baseline.
//!
//! CPU-RATE and CPU-HET are subsampled (every third workload).

fn main() {
    zerodev_bench::figures::fig26::run();
}
