//! The fault-injection campaign: proves the oracle's detector sensitivity
//! and the protocol's message-fault resilience across the spill-policy ×
//! LLC-design matrix.
//!
//! `cargo run --release -p zerodev-bench --bin fault_campaign`
//!
//! Two sub-campaigns, both fully deterministic (`ZERODEV_FAULTS` seeds):
//!
//! * **Sensitivity** — every [`StateFault`] class (sharer-bit flip,
//!   LLC-resident entry corruption, housed home-segment flip) is injected
//!   into every spill policy × LLC design, with the oracle auditing. A
//!   campaign point passes only when the oracle flags the corruption (a
//!   panic containing `coherence oracle violation`); a run that completes
//!   without injecting is also a failure — the fault must actually land.
//! * **Resilience** — `DENF_NACK` storms, delayed completions, and
//!   duplicated completions at material rates. A point passes when the run
//!   completes violation-free under audit with final statistics,
//!   completion time, and DRAM traffic byte-identical to the fault-free
//!   run, while the fault plan reports a nonzero injected-event count.
//!
//! Set `ZERODEV_QUICK=1` for the CI smoke matrix (one policy × one design
//! per fault class). Exits nonzero if any point fails.

use std::panic::{catch_unwind, AssertUnwindSafe};
use zerodev_common::config::{DirectoryKind, LlcDesign, SpillPolicy, ZeroDevConfig};
use zerodev_common::{env, SystemConfig};
use zerodev_sim::runner::{run, RunParams};
use zerodev_sim::{FaultConfig, StateFault};

/// A ZeroDEV machine with no dedicated directory: every live directory
/// entry is LLC-resident or housed in a corrupted home block, so all three
/// state-fault classes have victims. The LLC is shrunk so entry evictions
/// (WB_DE) occur within the short campaign run — without them no corrupted
/// home block ever exists and the `home` fault class has no victim.
fn campaign_cfg(policy: SpillPolicy, design: LlcDesign) -> SystemConfig {
    let mut cfg = SystemConfig::baseline_8core().with_zerodev(
        ZeroDevConfig {
            policy,
            ..Default::default()
        },
        DirectoryKind::None,
    );
    cfg.llc_design = design;
    cfg.llc = zerodev_common::config::CacheGeometry::new(1 << 20, 16);
    cfg
}

fn params() -> RunParams {
    RunParams {
        refs_per_core: if env::var_flag("ZERODEV_QUICK") {
            6_000
        } else {
            20_000
        },
        warmup_refs: 1_500,
        audit: true,
        ..Default::default()
    }
}

fn panic_text(p: Box<dyn std::any::Any + Send>) -> String {
    p.downcast_ref::<String>()
        .cloned()
        .or_else(|| p.downcast_ref::<&str>().map(|s| (*s).to_string()))
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

fn matrix_over(designs: &[LlcDesign]) -> Vec<(SpillPolicy, LlcDesign)> {
    let policies = [
        SpillPolicy::SpillAll,
        SpillPolicy::FusePrivateSpillShared,
        SpillPolicy::FuseAll,
    ];
    if env::var_flag("ZERODEV_QUICK") {
        // One point per policy still covers every policy and design.
        policies
            .iter()
            .copied()
            .zip(designs.iter().copied().cycle())
            .collect()
    } else {
        policies
            .iter()
            .flat_map(|&p| designs.iter().map(move |&d| (p, d)))
            .collect()
    }
}

fn matrix() -> Vec<(SpillPolicy, LlcDesign)> {
    matrix_over(&[
        LlcDesign::NonInclusive,
        LlcDesign::Epd,
        LlcDesign::Inclusive,
    ])
}

/// The matrix for home-segment corruption: an inclusive LLC never evicts a
/// directory entry to memory (§III-F — evicting the line invalidates the
/// private copies, which frees the entry), so no corrupted home block ever
/// houses a segment there and the fault class has no victim by design.
fn home_matrix() -> Vec<(SpillPolicy, LlcDesign)> {
    matrix_over(&[LlcDesign::NonInclusive, LlcDesign::Epd])
}

/// One sensitivity point: inject `kind` at `at` and demand the oracle
/// flags it. Returns an error description on failure.
fn sensitivity_point(
    kind: StateFault,
    policy: SpillPolicy,
    design: LlcDesign,
    at: u64,
) -> Result<(), String> {
    let cfg = campaign_cfg(policy, design);
    let faults = FaultConfig {
        corrupt: Some((kind, at)),
        ..Default::default()
    };
    let p = RunParams {
        faults: Some(faults),
        ..params()
    };
    let wl = zerodev_workloads::multithreaded("ocean_cp", 8, 5).expect("known app");
    match catch_unwind(AssertUnwindSafe(|| run(&cfg, wl, &p))) {
        Ok(r) => {
            if r.result.faults.corruptions == 0 {
                Err(format!(
                    "corruption never injected (no victim found from access {at} onward)"
                ))
            } else {
                Err(format!(
                    "oracle missed the corruption: {:?}",
                    r.result.faults.injected
                ))
            }
        }
        Err(p) => {
            let msg = panic_text(p);
            if msg.contains("coherence oracle violation") {
                Ok(())
            } else {
                Err(format!("run panicked for the wrong reason: {msg}"))
            }
        }
    }
}

/// One resilience point: message-level faults at material rates must leave
/// the audited run violation-free and byte-identical to the fault-free run.
fn resilience_point(policy: SpillPolicy, design: LlcDesign) -> Result<(), String> {
    let cfg = campaign_cfg(policy, design);
    let wl = || zerodev_workloads::multithreaded("ocean_cp", 8, 5).expect("known app");
    let clean = match catch_unwind(AssertUnwindSafe(|| run(&cfg, wl(), &params()))) {
        Ok(r) => r,
        Err(e) => return Err(format!("fault-free run panicked: {}", panic_text(e))),
    };
    let faults = FaultConfig {
        nack_ppm: 20_000,
        delay_ppm: 10_000,
        dup_ppm: 10_000,
        ..Default::default()
    };
    let p = RunParams {
        faults: Some(faults),
        ..params()
    };
    let faulted = match catch_unwind(AssertUnwindSafe(|| run(&cfg, wl(), &p))) {
        Ok(r) => r,
        Err(e) => return Err(format!("faulted run panicked: {}", panic_text(e))),
    };
    if faulted.result.faults.total_events() == 0 {
        return Err("no fault events injected at these rates".to_string());
    }
    if faulted.result.stats != clean.result.stats {
        return Err("message faults diverged the protocol statistics".to_string());
    }
    if faulted.result.completion_cycles != clean.result.completion_cycles {
        return Err("message faults diverged the completion time".to_string());
    }
    if faulted.result.dram_rw != clean.result.dram_rw {
        return Err("message faults diverged DRAM traffic".to_string());
    }
    Ok(())
}

fn main() {
    // The sensitivity campaign panics on purpose (that is the pass
    // condition); silence the default hook's backtrace spam.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    let kinds = [
        ("sharer", StateFault::SharerFlip),
        ("llc", StateFault::LlcEntryCorrupt),
        ("home", StateFault::HomeSegmentFlip),
    ];
    let mut failures: Vec<String> = Vec::new();
    let mut points = 0usize;

    println!("== sensitivity: every state corruption must be flagged ==");
    for (label, kind) in kinds {
        let points_for_kind = if kind == StateFault::HomeSegmentFlip {
            home_matrix()
        } else {
            matrix()
        };
        for (policy, design) in points_for_kind {
            points += 1;
            let verdict = sensitivity_point(kind, policy, design, 1_000);
            let tag = format!("{label:>6} x {policy:?}/{design:?}");
            match verdict {
                Ok(()) => println!("  {tag}: detected"),
                Err(e) => {
                    println!("  {tag}: FAILED");
                    failures.push(format!("sensitivity {tag}: {e}"));
                }
            }
        }
    }

    println!("== resilience: message faults must be absorbed unchanged ==");
    for (policy, design) in matrix() {
        points += 1;
        let tag = format!("{policy:?}/{design:?}");
        match resilience_point(policy, design) {
            Ok(()) => println!("  {tag}: absorbed, stats byte-identical"),
            Err(e) => {
                println!("  {tag}: FAILED");
                failures.push(format!("resilience {tag}: {e}"));
            }
        }
    }

    std::panic::set_hook(default_hook);
    if failures.is_empty() {
        println!("\nfault campaign: all {points} points passed");
    } else {
        println!(
            "\nfault campaign: {} of {points} points FAILED",
            failures.len()
        );
        for f in &failures {
            println!("  {f}");
        }
        std::process::exit(1);
    }
}
