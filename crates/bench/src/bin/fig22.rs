//! Figure 22: sensitivity to LLC capacity — 4 MB and 16 MB shared LLCs
//! (both 16-way), all normalised to the 8 MB baseline. At 16 MB ZeroDEV
//! needs no directory; at 4 MB it gets a 1/4× sparse-directory assist.

use zerodev_bench::{
    baseline, execute, mt, mt_suites, rate8, zerodev_default_nodir, zerodev_sparse,
};
use zerodev_common::config::CacheGeometry;
use zerodev_common::table::{geomean, Table};
use zerodev_common::SystemConfig;
use zerodev_workloads::suites;

fn with_llc_mb(mut cfg: SystemConfig, mb: usize) -> SystemConfig {
    cfg.llc = CacheGeometry::new(mb << 20, 16);
    cfg.validate().expect("valid capacity");
    cfg
}

fn main() {
    let base8 = baseline();
    let configs: Vec<(&str, SystemConfig)> = vec![
        ("Base4MB", with_llc_mb(baseline(), 4)),
        ("ZD4MB+1/4x", with_llc_mb(zerodev_sparse(1, 4), 4)),
        ("Base16MB", with_llc_mb(baseline(), 16)),
        ("ZD16MB+NoDir", with_llc_mb(zerodev_default_nodir(), 16)),
    ];
    let mut t = Table::new(&["suite", "Base4MB", "ZD4MB+1/4x", "Base16MB", "ZD16MB+NoDir"]);
    let mut groups: Vec<(&str, Vec<String>, bool)> = mt_suites()
        .into_iter()
        .map(|(s, apps)| (s, apps.iter().map(|a| a.to_string()).collect(), true))
        .collect();
    groups.push((
        "CPU2017RATE",
        suites::CPU2017.iter().map(|a| a.to_string()).collect(),
        false,
    ));
    for (suite, apps, is_mt) in groups {
        let bases: Vec<_> = apps
            .iter()
            .map(|a| execute(&base8, if is_mt { mt(a, 8) } else { rate8(a) }))
            .collect();
        let mut cells = vec![suite.to_string()];
        for (_, cfg) in &configs {
            let speedups: Vec<f64> = apps
                .iter()
                .zip(&bases)
                .map(|(a, b)| {
                    execute(cfg, if is_mt { mt(a, 8) } else { rate8(a) })
                        .result
                        .speedup_vs(&b.result)
                })
                .collect();
            cells.push(format!("{:.3}", geomean(&speedups)));
        }
        t.row(&cells);
    }
    println!("== Figure 22: 4 MB / 16 MB LLC sensitivity (normalised to 8 MB baseline) ==");
    print!("{}", t.render());
    println!(
        "paper shape: ZeroDEV tracks its same-capacity baseline within ~1% at both\n\
         capacities (the 4 MB point needs the small sparse-directory assist)."
    );
}
