//! Figure 22: sensitivity to LLC capacity — 4 MB and 16 MB shared LLCs
//! (both 16-way), all normalised to the 8 MB baseline. At 16 MB ZeroDEV
//! needs no directory; at 4 MB it gets a 1/4× sparse-directory assist.

fn main() {
    zerodev_bench::figures::fig22::run();
}
