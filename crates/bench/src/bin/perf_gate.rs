//! CI perf regression gate.
//!
//! `cargo run --release -p zerodev-bench --bin perf_gate -- <BENCH_prev.json>`
//!
//! Re-measures the standardized gate probe (`zerodev_bench::report::
//! measure_gate`: a fixed serial simulation pair plus a bounded
//! model-checker exploration) on the current build and compares it against
//! the `gate_*` numbers of the committed report given as the argument.
//! Exits nonzero when any gate metric regressed by more than
//! [`MAX_REGRESSION`] (throughputs: lower is worse). Comparing probe
//! against probe keeps the check apples-to-apples — the committed report's
//! full-run numbers depend on that run's mode and thread count, the gate
//! numbers do not.
//!
//! Skip in CI with `ZERODEV_NO_PERF_GATE=1` (handled by `scripts/ci.sh`;
//! the binary also honours it so a local invocation behaves the same).

use zerodev_bench::report::{json_number, measure_gate};
use zerodev_common::env;

/// Allowed fractional throughput drop before the gate fails (0.25 = 25%).
const MAX_REGRESSION: f64 = 0.25;

fn main() {
    if env::var_flag("ZERODEV_NO_PERF_GATE") {
        println!("perf gate: skipped (ZERODEV_NO_PERF_GATE=1)");
        return;
    }
    let path = std::env::args().nth(1).unwrap_or_else(|| {
        eprintln!("usage: perf_gate <BENCH_prev.json>");
        std::process::exit(2);
    });
    let committed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("perf gate: cannot read {path}: {e}");
        std::process::exit(2);
    });
    println!("perf gate: measuring standardized probe (vs {path})...");
    let fresh = measure_gate();
    let checks = [
        ("gate_sim_cycles_per_sec", fresh.sim_cycles_per_sec),
        ("gate_refs_per_sec", fresh.refs_per_sec),
        ("gate_mc_states_per_sec", fresh.mc_states_per_sec),
    ];
    let mut failed = false;
    for (key, now) in checks {
        let Some(prev) = json_number(&committed, key) else {
            println!("  {key:<28} baseline missing in {path}; skipping");
            continue;
        };
        if prev <= 0.0 {
            println!("  {key:<28} baseline non-positive ({prev}); skipping");
            continue;
        }
        let ratio = now / prev;
        let verdict = if ratio < 1.0 - MAX_REGRESSION {
            failed = true;
            "REGRESSED"
        } else {
            "ok"
        };
        println!("  {key:<28} {prev:>14.0} -> {now:>14.0}  ({ratio:>5.2}x)  {verdict}");
    }
    if failed {
        eprintln!(
            "perf gate: throughput regressed more than {:.0}% vs {path}",
            MAX_REGRESSION * 100.0
        );
        std::process::exit(1);
    }
    println!("perf gate: ok");
}
