//! CI perf regression gate.
//!
//! `cargo run --release -p zerodev-bench --bin perf_gate -- <BENCH_prev.json>`
//!
//! Re-measures the standardized gate probe (`zerodev_bench::report::
//! measure_gate`: a fixed serial simulation pair, the sharded-driver probe,
//! and a bounded model-checker exploration) on the current build and
//! compares it against the `gate_*` numbers of the committed report given
//! as the argument. Exits nonzero when any gate metric regressed by more
//! than [`MAX_REGRESSION`] (throughputs: lower is worse).
//!
//! The comparison normalizes on the standardized probe *only*: the
//! committed report's full-run numbers depend on that run's `quick`/
//! `threads` mode (e.g. `BENCH_6.json` was recorded quick with 4 sweep
//! threads), so they are never compared — the gate numbers are measured
//! serially under fixed parameters on both sides, keeping the check
//! apples-to-apples regardless of how the baseline's full run was
//! configured. The baseline's mode flags are echoed so a surprising
//! verdict can be read in context.
//!
//! Baselines must carry a known schema tag (`zerodev-bench-v1` or `-v2`);
//! a missing or unknown schema, or a missing/malformed gate field that the
//! schema says must exist, is a structured failure naming the field and
//! file — never a panic. v1 baselines simply lack the shard-probe fields,
//! so those comparisons are skipped for them.
//!
//! Skip in CI with `ZERODEV_NO_PERF_GATE=1` (handled by `scripts/ci.sh`;
//! the binary also honours it so a local invocation behaves the same).

use zerodev_bench::report::{
    json_number, json_number_required, json_string, measure_gate, SCHEMA, SCHEMA_V1,
};
use zerodev_common::env;

/// Allowed fractional throughput drop before the gate fails (0.25 = 25%).
const MAX_REGRESSION: f64 = 0.25;

fn main() {
    if env::var_flag("ZERODEV_NO_PERF_GATE") {
        println!("perf gate: skipped (ZERODEV_NO_PERF_GATE=1)");
        return;
    }
    let path = std::env::args().nth(1).unwrap_or_else(|| {
        eprintln!("usage: perf_gate <BENCH_prev.json>");
        std::process::exit(2);
    });
    let committed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("perf gate: cannot read {path}: {e}");
        std::process::exit(2);
    });
    let schema = json_string(&committed, "schema").unwrap_or_else(|| {
        eprintln!("perf gate: {path}: field \"schema\" is missing or not a string");
        std::process::exit(2);
    });
    let has_shard_probe = match schema.as_str() {
        SCHEMA => true,
        SCHEMA_V1 => false,
        other => {
            eprintln!(
                "perf gate: {path}: unknown schema {other:?} \
                 (expected {SCHEMA:?} or {SCHEMA_V1:?})"
            );
            std::process::exit(2);
        }
    };
    // Full-run numbers depend on the baseline's mode; the gate never
    // compares them, but echo the flags so the context is visible.
    let quick = if committed.contains("\"quick\": true") {
        Some(true)
    } else if committed.contains("\"quick\": false") {
        Some(false)
    } else {
        None
    };
    let threads = json_number(&committed, "threads");
    println!(
        "perf gate: baseline {path} ({schema}, quick: {}, threads: {}) — \
         comparing the standardized serial probe only",
        quick.map_or("unknown".into(), |q| q.to_string()),
        threads.map_or("unknown".into(), |t| format!("{t:.0}")),
    );
    println!("perf gate: measuring standardized probe...");
    let fresh = measure_gate();
    let mut checks = vec![
        ("gate_sim_cycles_per_sec", fresh.sim_cycles_per_sec),
        ("gate_refs_per_sec", fresh.refs_per_sec),
        ("gate_mc_states_per_sec", fresh.mc_states_per_sec),
    ];
    if has_shard_probe {
        checks.push((
            "gate_shard_serial_cycles_per_sec",
            fresh.shard_serial_cycles_per_sec,
        ));
        checks.push(("gate_sharded_cycles_per_sec", fresh.sharded_cycles_per_sec));
    } else {
        println!(
            "  (v1 baseline: shard-probe comparisons skipped; measured \
             serial {:.0} -> sharded {:.0} cyc/s)",
            fresh.shard_serial_cycles_per_sec, fresh.sharded_cycles_per_sec
        );
    }
    let mut failed = false;
    for (key, now) in checks {
        let prev = match json_number_required(&committed, key) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("perf gate: {path}: {e}");
                std::process::exit(2);
            }
        };
        if prev <= 0.0 {
            println!("  {key:<33} baseline non-positive ({prev}); skipping");
            continue;
        }
        let ratio = now / prev;
        let verdict = if ratio < 1.0 - MAX_REGRESSION {
            failed = true;
            "REGRESSED"
        } else {
            "ok"
        };
        println!("  {key:<33} {prev:>14.0} -> {now:>14.0}  ({ratio:>5.2}x)  {verdict}");
    }
    if failed {
        eprintln!(
            "perf gate: throughput regressed more than {:.0}% vs {path}",
            MAX_REGRESSION * 100.0
        );
        std::process::exit(1);
    }
    println!("perf gate: ok");
}
