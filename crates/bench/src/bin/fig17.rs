//! Figure 17: comparison between the SpillAll, FusePrivateSpillShared
//! (FPSS) and FuseAll directory-entry caching policies on the 8-core
//! single-socket system. ZeroDEV runs with **no** sparse directory (to
//! maximise the directory footprint in the LLC) and the dataLRU policy.
//! Speedups are normalised to the 1× baseline; the annotation is the
//! minimum speedup within each suite.

use zerodev_bench::{baseline, execute, mt, mt_suites, rate8, zerodev_nodir};
use zerodev_common::config::{LlcReplacement, SpillPolicy};
use zerodev_common::table::{geomean, Table};
use zerodev_workloads::suites;

fn main() {
    let base_cfg = baseline();
    let policies = [
        ("SpillAll", SpillPolicy::SpillAll),
        ("FPSS", SpillPolicy::FusePrivateSpillShared),
        ("FuseAll", SpillPolicy::FuseAll),
    ];
    let mut t = Table::new(&["suite", "SpillAll", "FPSS", "FuseAll", "min(SpillAll/FPSS/FuseAll)"]);
    let mut groups: Vec<(&str, Vec<String>, bool)> = mt_suites()
        .into_iter()
        .map(|(s, apps)| (s, apps.iter().map(|a| a.to_string()).collect(), true))
        .collect();
    groups.push((
        "CPU2017RATE",
        suites::CPU2017.iter().map(|a| a.to_string()).collect(),
        false,
    ));
    for (suite, apps, is_mt) in groups {
        let bases: Vec<_> = apps
            .iter()
            .map(|a| execute(&base_cfg, if is_mt { mt(a, 8) } else { rate8(a) }))
            .collect();
        let mut cells = vec![suite.to_string()];
        let mut mins = Vec::new();
        for (_, policy) in policies {
            let cfg = zerodev_nodir(policy, LlcReplacement::DataLru);
            let speedups: Vec<f64> = apps
                .iter()
                .zip(&bases)
                .map(|(a, b)| {
                    execute(&cfg, if is_mt { mt(a, 8) } else { rate8(a) })
                        .result
                        .speedup_vs(&b.result)
                })
                .collect();
            mins.push(speedups.iter().copied().fold(f64::INFINITY, f64::min));
            cells.push(format!("{:.3}", geomean(&speedups)));
        }
        cells.push(format!(
            "{:.2}/{:.2}/{:.2}",
            mins[0], mins[1], mins[2]
        ));
        t.row(&cells);
    }
    println!("== Figure 17: SpillAll vs FPSS vs FuseAll (ZeroDEV, no directory, dataLRU) ==");
    print!("{}", t.render());
    println!(
        "paper shape: SpillAll worst; FPSS and FuseAll close on average but FPSS\n\
         has clearly better minimum speedups (FuseAll lengthens shared reads)."
    );
}
