//! Figure 17: comparison between the SpillAll, FusePrivateSpillShared
//! (FPSS) and FuseAll directory-entry caching policies on the 8-core
//! single-socket system. ZeroDEV runs with **no** sparse directory (to
//! maximise the directory footprint in the LLC) and the dataLRU policy.
//! Speedups are normalised to the 1× baseline; the annotation is the
//! minimum speedup within each suite.

fn main() {
    zerodev_bench::figures::fig17::run();
}
