//! Figure 20: performance of ZeroDEV on SPLASH2X, SPEC OMP and FFTW with
//! three directory configurations (1×, 1/8×, none), normalised to the 1×
//! baseline.

fn main() {
    zerodev_bench::figures::fig20::run();
}
