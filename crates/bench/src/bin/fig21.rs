//! Figure 21: performance of ZeroDEV on the 36 SPEC CPU 2017 rate
//! workloads with three directory configurations (1×, 1/8×, none),
//! normalised weighted speedup against the 1× baseline.

fn main() {
    zerodev_bench::figures::fig21::run();
}
