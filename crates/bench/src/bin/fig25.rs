//! Figure 25: ZeroDEV on exclusive-private-data (EPD) and inclusive LLCs.
//! Per application group: the EPD baseline at three directory sizes, the
//! ZeroDEV EPD design at three directory configurations, the inclusive
//! baseline, and inclusive ZeroDEV without a directory — all normalised to
//! the non-inclusive 1×-directory baseline.
//!
//! CPU-RATE and CPU-HET are subsampled (every third workload) to keep the
//! sweep tractable; the suite averages are stable under the subsample.

fn main() {
    zerodev_bench::figures::fig25::run();
}
