//! Section V "Multi-socket Evaluation": a four-socket machine (each socket
//! eight cores with an 8 MB non-inclusive LLC). ZeroDEV without an
//! intra-socket sparse directory against the 1× baseline, plus the
//! corrupted-block statistics the paper reports in §III-D3 (<0.5% of DRAM
//! writes from directory-entry eviction; <0.05% of LLC read misses to
//! corrupted blocks).

fn main() {
    zerodev_bench::figures::fig_multisocket::run();
}
