//! Section V "Energy Expense": sparse-directory + LLC energy of ZeroDEV
//! without a sparse directory, relative to the baseline (non-inclusive LLC
//! + 1× directory). The paper's CACTI estimate is ~9% average savings.

use zerodev_bench::{baseline, execute, mt, mt_suites, rate8, zerodev_default_nodir};
use zerodev_common::table::{mean, Table};
use zerodev_workloads::suites;

fn main() {
    let base_cfg = baseline();
    let zd_cfg = zerodev_default_nodir();
    let mut t = Table::new(&["suite", "dir+LLC energy (ZD/base)", "saving %"]);
    let mut groups: Vec<(&str, Vec<String>, bool)> = mt_suites()
        .into_iter()
        .map(|(s, apps)| (s, apps.iter().map(|a| a.to_string()).collect(), true))
        .collect();
    groups.push((
        "CPU2017RATE",
        suites::CPU2017
            .iter()
            .step_by(3)
            .map(|a| a.to_string())
            .collect(),
        false,
    ));
    let mut all_savings = Vec::new();
    for (suite, apps, is_mt) in groups {
        let mut ratios = Vec::new();
        for app in &apps {
            let b = execute(&base_cfg, if is_mt { mt(app, 8) } else { rate8(app) });
            let z = execute(&zd_cfg, if is_mt { mt(app, 8) } else { rate8(app) });
            ratios.push(z.energy.total_nj() / b.energy.total_nj().max(1e-9));
        }
        let r = mean(&ratios);
        all_savings.push(1.0 - r);
        t.row(&[
            suite.to_string(),
            format!("{r:.3}"),
            format!("{:.1}", (1.0 - r) * 100.0),
        ]);
    }
    t.row(&[
        "AVERAGE".into(),
        String::new(),
        format!("{:.1}", mean(&all_savings) * 100.0),
    ]);
    println!("== Energy: ZeroDEV (no directory) vs baseline, directory+LLC energy ==");
    print!("{}", t.render());
    println!("paper shape: ~9% average energy saving from eliminating the sparse directory.");
}
