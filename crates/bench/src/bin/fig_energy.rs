//! Section V "Energy Expense": sparse-directory + LLC energy of ZeroDEV
//! without a sparse directory, relative to the baseline (non-inclusive LLC
//! + 1× directory). The paper's CACTI estimate is ~9% average savings.

fn main() {
    zerodev_bench::figures::fig_energy::run();
}
