//! Shared harness code for the figure-reproduction binaries.
//!
//! Every `figNN` binary in `src/bin/` reproduces one table or figure of the
//! paper: it sweeps the relevant configurations over the relevant workloads
//! and prints the same rows/series the paper reports. Absolute numbers
//! differ from the paper (different substrate, synthetic workloads); the
//! *shape* — who wins, by roughly what factor, where crossovers fall — is
//! the reproduction target. See EXPERIMENTS.md for the index.
//!
//! The figure bodies live in [`figures`] so `all_figures` can run every
//! figure in one process and share the sweep engine's baseline memoization
//! cache; the binaries are thin wrappers.
//!
//! All (config × workload) grids execute on the parallel sweep engine
//! ([`zerodev_sim::parallel`]): results land in deterministic slots, so the
//! printed tables are bit-identical whatever the worker count. Set
//! `ZERODEV_THREADS=N` to control it (`1` = exact serial path; default =
//! available parallelism) and `ZERODEV_QUICK=1` to run every figure with a
//! shortened measurement window (used by the integration tests).

use std::sync::Arc;
use std::time::Duration;
use zerodev_common::config::{DirectoryKind, LlcReplacement, Ratio, SpillPolicy, ZeroDevConfig};
use zerodev_common::table::{geomean, Table};
use zerodev_common::SystemConfig;
use zerodev_sim::parallel::{self, Engine, RunJob};
use zerodev_sim::runner::{run, RunParams, RunWithEnergy};
use zerodev_workloads::{multithreaded, rate, suites, Workload};

pub mod figures;
#[cfg(feature = "criterion-benches")]
pub mod microbench;
pub mod report;

/// Seed used by every figure harness (results are fully deterministic).
pub const SEED: u64 = 0x5eed_2021;

/// The multi-threaded suites of Table II, with their figure labels.
pub fn mt_suites() -> Vec<(&'static str, Vec<&'static str>)> {
    vec![
        ("PARSEC", suites::PARSEC.to_vec()),
        ("SPLASH2X", suites::SPLASH2X.to_vec()),
        ("SPECOMP", suites::SPECOMP.to_vec()),
        ("FFTW", suites::FFTW.to_vec()),
    ]
}

/// Builds the multi-threaded workload for `name` on an `cores`-core machine.
pub fn mt(name: &str, cores: usize) -> Workload {
    multithreaded(name, cores, SEED).unwrap_or_else(|| panic!("unknown app {name}"))
}

/// Builds the 8-copy rate workload for `app`.
pub fn rate8(app: &str) -> Workload {
    rate(app, 8, SEED).unwrap_or_else(|| panic!("unknown app {app}"))
}

/// The Table I baseline machine.
pub fn baseline() -> SystemConfig {
    SystemConfig::baseline_8core()
}

/// Baseline machine with an unbounded directory.
pub fn unbounded() -> SystemConfig {
    let mut cfg = baseline();
    cfg.directory = DirectoryKind::Unbounded;
    cfg
}

/// Baseline machine with an `R×` sparse directory.
pub fn sparse(num: u32, den: u32) -> SystemConfig {
    baseline().with_sparse_dir(Ratio::new(num, den))
}

/// ZeroDEV machine with no dedicated directory.
pub fn zerodev_nodir(policy: SpillPolicy, repl: LlcReplacement) -> SystemConfig {
    baseline().with_zerodev(
        ZeroDevConfig {
            policy,
            llc_replacement: repl,
            ..Default::default()
        },
        DirectoryKind::None,
    )
}

/// ZeroDEV machine (FPSS + dataLRU — the paper's selected configuration)
/// with a replacement-disabled `R×` sparse directory.
pub fn zerodev_sparse(num: u32, den: u32) -> SystemConfig {
    baseline().with_zerodev(
        ZeroDevConfig::default(),
        DirectoryKind::Sparse {
            ratio: Ratio::new(num, den),
            ways: 8,
            replacement_disabled: true,
        },
    )
}

/// ZeroDEV machine (FPSS + dataLRU) with no dedicated directory.
pub fn zerodev_default_nodir() -> SystemConfig {
    zerodev_nodir(SpillPolicy::FusePrivateSpillShared, LlcReplacement::DataLru)
}

/// Runs `workload` on `cfg` with the environment-selected run length
/// (serial, unmemoized — grid sweeps go through [`run_grid`]).
pub fn execute(cfg: &SystemConfig, workload: Workload) -> RunWithEnergy {
    run(cfg, workload, &RunParams::from_env())
}

/// Runs `workload` on `cfg` with an explicit run length (the 128-core
/// server experiments use a shorter window per core).
pub fn execute_with(cfg: &SystemConfig, workload: Workload, params: &RunParams) -> RunWithEnergy {
    run(cfg, workload, params)
}

/// Run length for the 128-core server experiments.
pub fn server_params() -> RunParams {
    let p = RunParams::from_env();
    RunParams {
        refs_per_core: p.refs_per_core / 4,
        warmup_refs: p.warmup_refs / 4,
        ..p
    }
}

/// A shareable workload constructor (workloads are consumed per run, so
/// sweeps take factories; `Send + Sync` lets any engine worker build one).
pub type Maker = zerodev_sim::parallel::WorkloadMaker;

/// Wraps a workload constructor (helper for [`sweep`] / [`run_grid`]).
pub fn wl<F: Fn() -> Workload + Send + Sync + 'static>(f: F) -> Maker {
    Arc::new(f)
}

/// Convenience: (name, constructor) pairs for a multi-threaded app list.
pub fn mt_makers(apps: &[&'static str], cores: usize) -> Vec<(&'static str, Maker)> {
    apps.iter()
        .map(|&a| (a, wl(move || mt(a, cores))))
        .collect()
}

/// Convenience: (name, constructor) pairs for 8-copy rate workloads.
pub fn rate_makers(apps: &[&'static str]) -> Vec<(&'static str, Maker)> {
    apps.iter().map(|&a| (a, wl(move || rate8(a)))).collect()
}

/// The groups most figures sweep: the four multi-threaded suites of
/// Table II plus the CPU2017 8-copy rate group.
pub fn suite_groups_mt_rate() -> Vec<(&'static str, Vec<(&'static str, Maker)>)> {
    let mut groups: Vec<(&'static str, Vec<(&'static str, Maker)>)> = mt_suites()
        .into_iter()
        .map(|(suite, apps)| (suite, mt_makers(&apps, 8)))
        .collect();
    groups.push(("CPU2017RATE", rate_makers(&suites::CPU2017)));
    groups
}

/// Executes the full (workload × config) grid on the parallel sweep engine
/// and returns the runs indexed `[workload][config]`, in submission order
/// (so downstream table code is order-independent of the worker count).
/// Every run is memoized process-wide, which is what lets `all_figures`
/// compute each shared baseline once.
pub fn run_grid(
    configs: &[&SystemConfig],
    makers: &[Maker],
    params: &RunParams,
) -> Vec<Vec<Arc<RunWithEnergy>>> {
    let engine = Engine::new(params.threads);
    let jobs: Vec<RunJob> = makers
        .iter()
        .flat_map(|make| {
            configs
                .iter()
                .map(move |cfg| RunJob::new((*cfg).clone(), make.clone(), *params, SEED))
        })
        .collect();
    let outcomes = engine.run_grid(&jobs);
    outcomes
        .chunks(configs.len().max(1))
        .map(|row| row.iter().map(|o| o.run.unwrap().clone()).collect())
        .collect()
}

/// [`run_grid`] with the environment-selected run length.
pub fn run_grid_env(configs: &[&SystemConfig], makers: &[Maker]) -> Vec<Vec<Arc<RunWithEnergy>>> {
    run_grid(configs, makers, &RunParams::from_env())
}

/// Normalised rows from a grid whose column 0 is the per-workload baseline
/// (`names` parallels the grid's workload axis).
pub fn rows_vs_col0(names: &[&str], grid: &[Vec<Arc<RunWithEnergy>>]) -> Vec<NormRow> {
    names
        .iter()
        .zip(grid)
        .map(|(name, row)| NormRow {
            name: (*name).to_string(),
            values: row[1..]
                .iter()
                .map(|r| {
                    r.result
                        .speedup_vs(&row[0].result)
                        .expect("grid rows share one workload, so core counts match")
                })
                .collect(),
        })
        .collect()
}

/// The makers of a named workload list (the grid axis order).
pub fn makers_of(workloads: &[(&str, Maker)]) -> Vec<Maker> {
    workloads.iter().map(|(_, m)| m.clone()).collect()
}

/// The names of a named workload list.
pub fn names_of<'a>(workloads: &[(&'a str, Maker)]) -> Vec<&'a str> {
    workloads.iter().map(|(n, _)| *n).collect()
}

/// One normalised row of a figure: speedups of each configuration against
/// the per-workload baseline.
#[derive(Clone, Debug, PartialEq)]
pub struct NormRow {
    /// Workload name.
    pub name: String,
    /// One normalised value per swept configuration.
    pub values: Vec<f64>,
}

/// Sweeps `configs` over `workloads` on the parallel engine, normalising
/// the chosen metric against the first config (the baseline). Returns one
/// row per workload.
pub fn sweep<F>(
    configs: &[(&str, SystemConfig)],
    workloads: &[(&str, Maker)],
    metric: F,
) -> Vec<NormRow>
where
    F: Fn(&RunWithEnergy, &RunWithEnergy) -> f64,
{
    let cfg_refs: Vec<&SystemConfig> = configs.iter().map(|(_, c)| c).collect();
    let grid = run_grid_env(&cfg_refs, &makers_of(workloads));
    workloads
        .iter()
        .zip(&grid)
        .map(|((wname, _), row)| NormRow {
            name: (*wname).to_string(),
            values: row[1..].iter().map(|r| metric(r, &row[0])).collect(),
        })
        .collect()
}

/// Speedup metric for [`sweep`].
pub fn speedup_metric(r: &RunWithEnergy, base: &RunWithEnergy) -> f64 {
    r.result
        .speedup_vs(&base.result)
        .expect("sweep compares runs of the same workload, so core counts match")
}

/// Runs the per-application speedup table used by Figures 19–21 and 23 on
/// the parallel engine: each workload under every config, normalised to
/// the baseline machine.
pub fn per_app_speedups(apps: &[(&str, Maker)], configs: &[(&str, SystemConfig)]) -> Vec<NormRow> {
    per_app_speedups_with(apps, configs, &RunParams::from_env())
}

/// [`per_app_speedups`] with an explicit run length.
pub fn per_app_speedups_with(
    apps: &[(&str, Maker)],
    configs: &[(&str, SystemConfig)],
    params: &RunParams,
) -> Vec<NormRow> {
    let base_cfg = baseline();
    let mut cfg_refs: Vec<&SystemConfig> = vec![&base_cfg];
    cfg_refs.extend(configs.iter().map(|(_, c)| c));
    let grid = run_grid(&cfg_refs, &makers_of(apps), params);
    rows_vs_col0(&names_of(apps), &grid)
}

/// Renders a table of rows (one column per non-baseline config) followed
/// by a GEOMEAN row.
pub fn render_norm_table(title: &str, col_names: &[&str], rows: &[NormRow]) -> String {
    let mut out = format!("\n== {title} ==\n");
    let mut header = vec!["workload"];
    header.extend(col_names);
    let mut t = Table::new(&header);
    for row in rows {
        let mut cells = vec![row.name.clone()];
        cells.extend(row.values.iter().map(|v| format!("{v:.3}")));
        t.row(&cells);
    }
    if !rows.is_empty() {
        let mut cells = vec!["GEOMEAN".to_string()];
        for c in 0..rows[0].values.len() {
            let vals: Vec<f64> = rows.iter().map(|r| r.values[c]).collect();
            cells.push(format!("{:.3}", geomean(&vals)));
        }
        t.row(&cells);
    }
    out.push_str(&t.render());
    out
}

/// Prints [`render_norm_table`].
pub fn print_norm_table(title: &str, col_names: &[&str], rows: &[NormRow]) {
    print!("{}", render_norm_table(title, col_names, rows));
}

/// Geomean of one column of a row set.
pub fn column_geomean(rows: &[NormRow], col: usize) -> f64 {
    geomean(&rows.iter().map(|r| r.values[col]).collect::<Vec<_>>())
}

/// Minimum of one column (the paper annotates min speedups above bars).
pub fn column_min(rows: &[NormRow], col: usize) -> f64 {
    rows.iter()
        .map(|r| r.values[col])
        .fold(f64::INFINITY, f64::min)
}

/// The three ZeroDEV directory configurations of Figures 19–24: a 1×
/// replacement-disabled sparse directory, a 1/8× one, and none at all.
pub fn zerodev_trio() -> Vec<(&'static str, SystemConfig)> {
    vec![
        ("ZD+1x", zerodev_sparse(1, 1)),
        ("ZD+1/8x", zerodev_sparse(1, 8)),
        ("ZD+NoDir", zerodev_default_nodir()),
    ]
}

/// Prints the sweep-throughput summary `all_figures` reports after the
/// full reproduction: executed runs, baseline-cache hits, and simulated
/// cycles per second of real time over `elapsed`. Goes to stderr (like the
/// per-figure timings) so stdout stays byte-identical across thread counts
/// and machines.
///
/// A degraded run — `failed_figures > 0`, or any `catch_unwind`-isolated
/// sweep point — is labelled **partial**: the cycle totals then only cover
/// the work that completed, so presenting them as the full reproduction's
/// throughput would overstate how fast (or how much of) the sweep ran.
pub fn print_sweep_summary(elapsed: Duration, failed_figures: usize) {
    let s = parallel::summary();
    eprintln!(
        "sweep engine: {} threads; {} simulations executed, {} baseline-cache hits",
        RunParams::from_env().threads,
        s.runs_executed,
        s.cache_hits,
    );
    let qualifier = if failed_figures > 0 || s.failed > 0 {
        format!(
            " (PARTIAL: {failed_figures} figure(s) failed, {} sweep point(s) isolated; \
             totals cover completed work only)",
            s.failed
        )
    } else {
        String::new()
    };
    eprintln!(
        "throughput{qualifier}: {:.0}M sim-cycles in {:.1}s wall \
         ({:.1}M sim-cycles/s; {:.0}K refs/s; worker-busy {:.1}s)",
        s.sim_cycles as f64 / 1e6,
        elapsed.as_secs_f64(),
        s.cycles_per_sec(elapsed) / 1e6,
        s.refs_per_sec(elapsed) / 1e3,
        s.busy.as_secs_f64(),
    );
}

/// Runs a list of `(name, body)` figures, each under `catch_unwind`, so a
/// panicking figure (a failed sweep point, a bug, an injected fault)
/// degrades the reproduction instead of aborting it. Returns the number of
/// failed figures; when nonzero, a degraded-sweep summary — every failed
/// figure and every failed sweep point — is printed to stderr.
pub fn run_figures(figs: &[(&str, fn())]) -> usize {
    run_figures_timed(figs).iter().filter(|t| t.failed).count()
}

/// [`run_figures`], additionally returning each figure's wall time and
/// outcome (the `BENCH_<pr>.json` `figures` array).
pub fn run_figures_timed(figs: &[(&str, fn())]) -> Vec<report::FigureTiming> {
    let mut timings = Vec::with_capacity(figs.len());
    let mut failed: Vec<(&str, String)> = Vec::new();
    for &(name, fig) in figs {
        let t0 = std::time::Instant::now();
        // Isolated sweep-point failures inside this figure's grids report
        // the figure they degraded.
        parallel::set_sweep_context(Some(name));
        let outcome = std::panic::catch_unwind(fig);
        parallel::set_sweep_context(None);
        let wall = t0.elapsed();
        let fig_failed = outcome.is_err();
        if let Err(p) = outcome {
            let msg = p
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| p.downcast_ref::<&str>().map(|s| (*s).to_string()))
                .unwrap_or_else(|| "non-string panic payload".to_string());
            eprintln!("[{name}: FAILED after {wall:?}]");
            failed.push((name, msg));
        } else {
            eprintln!("[{name}: {wall:?}]");
        }
        timings.push(report::FigureTiming {
            name: name.to_string(),
            secs: wall.as_secs_f64(),
            failed: fig_failed,
        });
    }
    if !failed.is_empty() {
        eprintln!("\ndegraded reproduction: {} figure(s) failed", failed.len());
        for (name, msg) in &failed {
            let first = msg.lines().next().unwrap_or(msg);
            eprintln!("  {name}: {first}");
        }
        let points = parallel::failed_points();
        if !points.is_empty() {
            eprintln!("failed sweep points ({}):", points.len());
            for p in &points {
                eprintln!("  {p}");
            }
        }
    }
    timings
}
