//! Shared harness code for the figure-reproduction binaries.
//!
//! Every `figNN` binary in `src/bin/` reproduces one table or figure of the
//! paper: it sweeps the relevant configurations over the relevant workloads
//! and prints the same rows/series the paper reports. Absolute numbers
//! differ from the paper (different substrate, synthetic workloads); the
//! *shape* — who wins, by roughly what factor, where crossovers fall — is
//! the reproduction target. See EXPERIMENTS.md for the index.
//!
//! Set `ZERODEV_QUICK=1` to run every figure with a shortened measurement
//! window (used by the integration tests).

use zerodev_common::config::{
    DirectoryKind, LlcReplacement, Ratio, SpillPolicy, ZeroDevConfig,
};
use zerodev_common::table::{geomean, Table};
use zerodev_common::SystemConfig;
use zerodev_sim::runner::{run, RunParams, RunWithEnergy};
use zerodev_workloads::{multithreaded, rate, suites, Workload};

/// Seed used by every figure harness (results are fully deterministic).
pub const SEED: u64 = 0x5eed_2021;

/// The multi-threaded suites of Table II, with their figure labels.
pub fn mt_suites() -> Vec<(&'static str, Vec<&'static str>)> {
    vec![
        ("PARSEC", suites::PARSEC.to_vec()),
        ("SPLASH2X", suites::SPLASH2X.to_vec()),
        ("SPECOMP", suites::SPECOMP.to_vec()),
        ("FFTW", suites::FFTW.to_vec()),
    ]
}

/// Builds the multi-threaded workload for `name` on an `cores`-core machine.
pub fn mt(name: &str, cores: usize) -> Workload {
    multithreaded(name, cores, SEED).unwrap_or_else(|| panic!("unknown app {name}"))
}

/// Builds the 8-copy rate workload for `app`.
pub fn rate8(app: &str) -> Workload {
    rate(app, 8, SEED).unwrap_or_else(|| panic!("unknown app {app}"))
}

/// The Table I baseline machine.
pub fn baseline() -> SystemConfig {
    SystemConfig::baseline_8core()
}

/// Baseline machine with an unbounded directory.
pub fn unbounded() -> SystemConfig {
    let mut cfg = baseline();
    cfg.directory = DirectoryKind::Unbounded;
    cfg
}

/// Baseline machine with an `R×` sparse directory.
pub fn sparse(num: u32, den: u32) -> SystemConfig {
    baseline().with_sparse_dir(Ratio::new(num, den))
}

/// ZeroDEV machine with no dedicated directory.
pub fn zerodev_nodir(policy: SpillPolicy, repl: LlcReplacement) -> SystemConfig {
    baseline().with_zerodev(
        ZeroDevConfig {
            policy,
            llc_replacement: repl,
            ..Default::default()
        },
        DirectoryKind::None,
    )
}

/// ZeroDEV machine (FPSS + dataLRU — the paper's selected configuration)
/// with a replacement-disabled `R×` sparse directory.
pub fn zerodev_sparse(num: u32, den: u32) -> SystemConfig {
    baseline().with_zerodev(
        ZeroDevConfig::default(),
        DirectoryKind::Sparse {
            ratio: Ratio::new(num, den),
            ways: 8,
            replacement_disabled: true,
        },
    )
}

/// ZeroDEV machine (FPSS + dataLRU) with no dedicated directory.
pub fn zerodev_default_nodir() -> SystemConfig {
    zerodev_nodir(SpillPolicy::FusePrivateSpillShared, LlcReplacement::DataLru)
}

/// Runs `workload` on `cfg` with the environment-selected run length.
pub fn execute(cfg: &SystemConfig, workload: Workload) -> RunWithEnergy {
    run(cfg, workload, &RunParams::from_env())
}

/// Runs `workload` on `cfg` with an explicit run length (the 128-core
/// server experiments use a shorter window per core).
pub fn execute_with(cfg: &SystemConfig, workload: Workload, params: &RunParams) -> RunWithEnergy {
    run(cfg, workload, params)
}

/// Run length for the 128-core server experiments.
pub fn server_params() -> RunParams {
    let p = RunParams::from_env();
    RunParams {
        refs_per_core: p.refs_per_core / 4,
        warmup_refs: p.warmup_refs / 4,
    }
}

/// A boxed workload constructor (workloads are consumed per run, so sweeps
/// take factories).
pub type Maker = Box<dyn Fn() -> Workload>;

/// One normalised row of a figure: speedups of each configuration against
/// the per-workload baseline.
#[derive(Clone, Debug)]
pub struct NormRow {
    /// Workload name.
    pub name: String,
    /// One normalised value per swept configuration.
    pub values: Vec<f64>,
}

/// Sweeps `configs` over `workloads`, normalising the chosen metric against
/// the first config (the baseline). Returns one row per workload.
pub fn sweep<F>(
    configs: &[(&str, SystemConfig)],
    workloads: &[(&str, Maker)],
    metric: F,
) -> Vec<NormRow>
where
    F: Fn(&RunWithEnergy, &RunWithEnergy) -> f64,
{
    let mut rows = Vec::new();
    for (wname, make) in workloads {
        let base = execute(&configs[0].1, make());
        let mut values = Vec::new();
        for (_, cfg) in &configs[1..] {
            let r = execute(cfg, make());
            values.push(metric(&r, &base));
        }
        rows.push(NormRow {
            name: (*wname).to_string(),
            values,
        });
    }
    rows
}

/// Boxes a workload constructor (helper for [`sweep`]).
pub fn wl<F: Fn() -> Workload + 'static>(f: F) -> Maker {
    Box::new(f)
}

/// Speedup metric for [`sweep`].
pub fn speedup_metric(r: &RunWithEnergy, base: &RunWithEnergy) -> f64 {
    r.result.speedup_vs(&base.result)
}

/// Prints a table of rows (one column per non-baseline config) followed by
/// a GEOMEAN row.
pub fn print_norm_table(title: &str, col_names: &[&str], rows: &[NormRow]) {
    println!("\n== {title} ==");
    let mut header = vec!["workload"];
    header.extend(col_names);
    let mut t = Table::new(&header);
    for row in rows {
        let mut cells = vec![row.name.clone()];
        cells.extend(row.values.iter().map(|v| format!("{v:.3}")));
        t.row(&cells);
    }
    if !rows.is_empty() {
        let mut cells = vec!["GEOMEAN".to_string()];
        for c in 0..rows[0].values.len() {
            let vals: Vec<f64> = rows.iter().map(|r| r.values[c]).collect();
            cells.push(format!("{:.3}", geomean(&vals)));
        }
        t.row(&cells);
    }
    print!("{}", t.render());
}

/// Geomean of one column of a row set.
pub fn column_geomean(rows: &[NormRow], col: usize) -> f64 {
    geomean(&rows.iter().map(|r| r.values[col]).collect::<Vec<_>>())
}

/// Minimum of one column (the paper annotates min speedups above bars).
pub fn column_min(rows: &[NormRow], col: usize) -> f64 {
    rows.iter()
        .map(|r| r.values[col])
        .fold(f64::INFINITY, f64::min)
}

/// The three ZeroDEV directory configurations of Figures 19–24: a 1×
/// replacement-disabled sparse directory, a 1/8× one, and none at all.
pub fn zerodev_trio() -> Vec<(&'static str, SystemConfig)> {
    vec![
        ("ZD+1x", zerodev_sparse(1, 1)),
        ("ZD+1/8x", zerodev_sparse(1, 8)),
        ("ZD+NoDir", zerodev_default_nodir()),
    ]
}

/// Runs the per-application speedup table used by Figures 19–21 and 23:
/// each workload under every config, normalised to the baseline machine.
pub fn per_app_speedups(
    apps: &[(&str, Maker)],
    configs: &[(&str, SystemConfig)],
) -> Vec<NormRow> {
    let base_cfg = baseline();
    let mut rows = Vec::new();
    for (name, make) in apps {
        let b = execute(&base_cfg, make());
        let values = configs
            .iter()
            .map(|(_, cfg)| execute(cfg, make()).result.speedup_vs(&b.result))
            .collect();
        rows.push(NormRow {
            name: (*name).to_string(),
            values,
        });
    }
    rows
}

/// Convenience: (name, constructor) pairs for a multi-threaded app list.
pub fn mt_makers(apps: &[&'static str], cores: usize) -> Vec<(&'static str, Maker)> {
    apps.iter()
        .map(|&a| (a, Box::new(move || mt(a, cores)) as Maker))
        .collect()
}

/// Convenience: (name, constructor) pairs for 8-copy rate workloads.
pub fn rate_makers(apps: &[&'static str]) -> Vec<(&'static str, Maker)> {
    apps.iter()
        .map(|&a| (a, Box::new(move || rate8(a)) as Maker))
        .collect()
}
